//! Attacks *inside* the `Broadcast_Single_Bit` / Phase-King machinery.
//!
//! The consensus protocol's safety rests on `Broadcast_Single_Bit` being
//! error-free for `t < n/3`; these strategies attack the primitive itself
//! (equivocating sources, lying kings, flipped votes). The protocol must
//! shrug them off — the property tests assert that agreement and the
//! diagnosis-graph invariants survive.

use mvbc_bsb::BsbHooks;
use mvbc_core::ProtocolHooks;
use mvbc_netsim::NodeId;

/// Equivocates as a broadcast source (sends different bits to different
/// recipients in round 0) and flips its Phase-King votes toward whatever
/// the recipient id suggests, maximising disagreement pressure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BsbEquivocator;

impl BsbHooks for BsbEquivocator {
    fn source_bits(&mut self, _session: &'static str, to: NodeId, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            *b = to.is_multiple_of(2);
        }
    }

    fn king_values(&mut self, _session: &'static str, _phase: usize, to: NodeId, values: &mut [bool]) {
        for v in values.iter_mut() {
            *v = to.is_multiple_of(2);
        }
    }

    fn king_proposals(&mut self, _session: &'static str, _phase: usize, to: NodeId, proposals: &mut [u8]) {
        for p in proposals.iter_mut() {
            *p = if to.is_multiple_of(2) { 2 } else { 1 };
        }
    }
}

impl ProtocolHooks for BsbEquivocator {}

/// Lies only when it is the king: tells half the recipients `true` and
/// the other half `false`, trying to split the non-confident processors.
/// Phase-King tolerates this because a later fault-free king re-unifies
/// the values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KingLiar;

impl BsbHooks for KingLiar {
    fn king_bits(&mut self, _session: &'static str, _phase: usize, to: NodeId, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            *b = to.is_multiple_of(2);
        }
    }
}

impl ProtocolHooks for KingLiar {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivocator_differs_by_recipient() {
        let mut a = BsbEquivocator;
        let mut bits_even = vec![false];
        a.source_bits("s", 2, &mut bits_even);
        let mut bits_odd = vec![false];
        a.source_bits("s", 3, &mut bits_odd);
        assert_ne!(bits_even, bits_odd);
    }

    #[test]
    fn king_liar_splits() {
        let mut a = KingLiar;
        let mut b0 = vec![true];
        a.king_bits("s", 0, 0, &mut b0);
        let mut b1 = vec![true];
        a.king_bits("s", 0, 1, &mut b1);
        assert_eq!(b0, vec![true]);
        assert_eq!(b1, vec![false]);
    }
}
