//! Compiling a [`Scenario`] corruption timeline into [`SmrHooks`].
//!
//! Each corrupted replica gets a [`ScenarioHooks`] that, per slot,
//! selects the broadcast-layer attack matching its currently-active
//! behaviour and role (primary vs. echo-set member). Selection is a
//! pure function of `(slot, i_am_primary)` — the determinism the
//! pipelined log requires for discard-and-repropose to commit exactly
//! the sequential log.

use mvbc_broadcast::attacks::{
    EquivocatingSource, FramingAccuser, LyingDiagnosisSource, LyingEcho, SilentEcho, SilentSource,
};
use mvbc_broadcast::{BroadcastHooks, NoopBroadcastHooks};
use mvbc_smr::{HonestReplica, SmrHooks};

use super::scenario::{Behavior, Corruption, Scenario};

/// The per-slot behaviour of one corrupted replica, driven by the
/// scenario's corruption timeline.
#[derive(Debug, Clone)]
pub struct ScenarioHooks {
    replica: usize,
    n: usize,
    corruptions: Vec<Corruption>,
}

impl ScenarioHooks {
    /// Hooks for `replica` under `scenario` (only that replica's
    /// corruption entries are kept).
    pub fn new(scenario: &Scenario, replica: usize) -> Self {
        ScenarioHooks {
            replica,
            n: scenario.n,
            corruptions: scenario
                .corruptions
                .iter()
                .filter(|c| c.replica == replica)
                .cloned()
                .collect(),
        }
    }
}

impl SmrHooks for ScenarioHooks {
    fn slot_hooks(&mut self, slot: u64, i_am_primary: bool) -> Box<dyn BroadcastHooks> {
        // First active entry whose behaviour applies to this role wins;
        // entry order in the scenario document is the tiebreak.
        for c in self.corruptions.iter().filter(|c| c.active(slot)) {
            match (&c.behavior, i_am_primary) {
                (Behavior::Equivocate, true) => return Box::new(EquivocatingSource),
                (Behavior::SilentLeader, true) => return Box::new(SilentSource),
                (Behavior::LyingDiagnosis, true) => return Box::new(LyingDiagnosisSource),
                (Behavior::LyingEcho { step }, false) => {
                    return Box::new(LyingEcho::new(vec![(self.replica + step) % self.n]));
                }
                (Behavior::SilentEcho, false) => return Box::new(SilentEcho),
                (Behavior::Frame { slots }, false) if slots.contains(&slot) => {
                    return Box::new(FramingAccuser);
                }
                _ => {}
            }
        }
        NoopBroadcastHooks::boxed()
    }
}

/// One [`SmrHooks`] per replica for `scenario`: [`ScenarioHooks`] for
/// corrupted replicas, [`HonestReplica`] for the rest.
pub fn hooks_for(scenario: &Scenario) -> Vec<Box<dyn SmrHooks>> {
    let corrupted = scenario.byzantine();
    (0..scenario.n)
        .map(|i| -> Box<dyn SmrHooks> {
            if corrupted.contains(&i) {
                Box::new(ScenarioHooks::new(scenario, i))
            } else {
                HonestReplica::boxed()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario_with(corruptions: Vec<Corruption>) -> Scenario {
        Scenario {
            name: "t".to_owned(),
            seed: 1,
            n: 7,
            t: 2,
            slots: 10,
            batch: 1,
            pipeline: 1,
            max_vtime: None,
            net: None,
            corruptions,
        }
    }

    #[test]
    fn behaviour_respects_role_and_window() {
        let s = scenario_with(vec![Corruption {
            replica: 2,
            from_slot: 3,
            until_slot: Some(6),
            behavior: Behavior::Equivocate,
        }]);
        let mut h = ScenarioHooks::new(&s, 2);
        // Equivocate is a primary-role behaviour: as primary inside the
        // window the dispersal symbol toward an odd id is corrupted.
        let mut p = vec![0xAAu8];
        assert!(h.slot_hooks(4, true).dispersal_symbol(0, 1, &mut p));
        assert_eq!(p, vec![0x55]);
        // Outside the window, honest.
        let mut p = vec![0xAAu8];
        assert!(h.slot_hooks(6, true).dispersal_symbol(0, 1, &mut p));
        assert_eq!(p, vec![0xAA]);
        // Wrong role (not primary): honest.
        let mut p = vec![0xAAu8];
        assert!(h.slot_hooks(4, false).dispersal_symbol(0, 1, &mut p));
        assert_eq!(p, vec![0xAA]);
    }

    #[test]
    fn frame_fires_only_on_listed_slots() {
        let s = scenario_with(vec![Corruption {
            replica: 1,
            from_slot: 0,
            until_slot: None,
            behavior: Behavior::Frame { slots: vec![5] },
        }]);
        let mut h = ScenarioHooks::new(&s, 1);
        let mut flag = false;
        h.slot_hooks(5, false).detected_flag(0, &mut flag);
        assert!(flag, "accuses on the listed slot");
        let mut flag = false;
        h.slot_hooks(4, false).detected_flag(0, &mut flag);
        assert!(!flag, "honest elsewhere");
    }

    #[test]
    fn lying_echo_targets_step_ahead_mod_n() {
        let s = scenario_with(vec![Corruption {
            replica: 6,
            from_slot: 0,
            until_slot: None,
            behavior: Behavior::LyingEcho { step: 2 },
        }]);
        let mut h = ScenarioHooks::new(&s, 6);
        // (6 + 2) % 7 == 1: relays toward node 1 are corrupted.
        let mut p = vec![0x0Fu8];
        assert!(h.slot_hooks(0, false).echo_symbol(0, 1, &mut p));
        assert_eq!(p, vec![0xF0]);
        let mut p = vec![0x0Fu8];
        assert!(h.slot_hooks(0, false).echo_symbol(0, 3, &mut p));
        assert_eq!(p, vec![0x0F]);
    }

    #[test]
    fn hooks_for_marks_only_corrupted_replicas() {
        let s = scenario_with(vec![Corruption {
            replica: 3,
            from_slot: 0,
            until_slot: None,
            behavior: Behavior::SilentLeader,
        }]);
        let mut all = hooks_for(&s);
        assert_eq!(all.len(), 7);
        let mut p = vec![1u8];
        assert!(!all[3].slot_hooks(0, true).dispersal_symbol(0, 1, &mut p), "silent leader");
        assert!(all[0].slot_hooks(0, true).dispersal_symbol(0, 1, &mut p), "honest replica");
    }
}
