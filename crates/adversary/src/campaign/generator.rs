//! Bounded-random, model-preserving scenario generation.
//!
//! [`ScenarioGenerator`] deterministically expands one campaign seed
//! into a stream of [`Scenario`]s. Every draw stays *inside* the
//! error-free synchronous model — at most `t` corrupted replicas, delay
//! (never drop) partitions — so the paper's guarantees apply to each
//! one and any invariant violation the campaign runner finds is a real
//! protocol bug, not an artefact of an impossible environment.
//!
//! Three campaign styles are drawn in rotation with plain independent
//! scenarios: *slow-compromise ramps* (corruptions switching on one
//! after another as the log progresses), *colluding frame groups*
//! (several replicas splitting a schedule of framing accusations across
//! slots, the Lemma 4 attack surface), and *eclipse* draws (a delay
//! partition isolating a single replica over the netsim topology).

use super::scenario::{Behavior, Corruption, LinkPlan, NetPlan, PartitionPlan, Scenario};

/// The deterministic xorshift64* stream used across the workspace.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // xorshift64* has a single fixed point at zero; nudge it off.
        Rng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform draw in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100.
    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A seeded stream of bounded-random campaign scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    seed: u64,
    rng: Rng,
    index: u64,
}

/// `(n, t)` pairs the generator draws from (all satisfy `t < n/3`).
const SYSTEM_SIZES: [(usize, usize); 3] = [(4, 1), (7, 2), (10, 3)];

impl ScenarioGenerator {
    /// A generator whose draw sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        ScenarioGenerator { seed, rng: Rng::new(seed), index: 0 }
    }

    /// Draws the next scenario in the stream.
    pub fn next_scenario(&mut self) -> Scenario {
        let (n, t) = SYSTEM_SIZES[self.rng.below(SYSTEM_SIZES.len() as u64) as usize];
        let slots = self.rng.range(6, 15) as usize;
        let batch = self.rng.range(1, 4) as usize;
        let pipeline = [1usize, 2, 4][self.rng.below(3) as usize];

        let f = self.rng.range(1, t as u64) as usize;
        let corrupted = self.pick_replicas(n, f);

        let style = self.rng.below(4);
        let corruptions = match style {
            // Slow-compromise ramp: corruptions switch on one after
            // another, staggered across the log.
            1 => self.ramp(&corrupted, n, slots),
            // Colluding frame group: the corrupted set splits a framing
            // schedule across distinct slots.
            2 => self.frame_group(&corrupted, slots),
            // Independent draws (styles 0 and 3 — plain mixes dominate).
            _ => corrupted
                .iter()
                .map(|&r| self.independent(r, n, slots))
                .collect(),
        };

        let net = if self.rng.chance(50) { Some(self.net_plan(n)) } else { None };

        let scenario = Scenario {
            name: format!("gen-{:016x}-{}", self.seed, self.index),
            seed: self.rng.next_u64(),
            n,
            t,
            slots,
            batch,
            pipeline,
            max_vtime: None,
            net,
            corruptions,
        };
        self.index += 1;
        debug_assert!(scenario.validate().is_ok() && scenario.is_model_preserving());
        scenario
    }

    /// `f` distinct replica ids out of `0..n`.
    fn pick_replicas(&mut self, n: usize, f: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: the first f entries are the draw.
        for i in 0..f {
            let j = i + self.rng.below((n - i) as u64) as usize;
            ids.swap(i, j);
        }
        ids.truncate(f);
        ids.sort_unstable();
        ids
    }

    /// A random behaviour (frame schedules restricted to `window`).
    fn behavior(&mut self, n: usize, window: (u64, u64)) -> Behavior {
        match self.rng.below(6) {
            0 => Behavior::Equivocate,
            1 => Behavior::SilentLeader,
            2 => Behavior::LyingDiagnosis,
            3 => Behavior::LyingEcho { step: self.rng.range(1, n as u64 - 1) as usize },
            4 => Behavior::SilentEcho,
            _ => {
                let (lo, hi) = window;
                let mut slots = vec![self.rng.range(lo, hi - 1)];
                if self.rng.chance(40) {
                    slots.push(self.rng.range(lo, hi - 1));
                    slots.sort_unstable();
                    slots.dedup();
                }
                Behavior::Frame { slots }
            }
        }
    }

    /// One independently-drawn corruption with a random window.
    fn independent(&mut self, replica: usize, n: usize, slots: usize) -> Corruption {
        let from_slot = self.rng.below(slots as u64);
        let until_slot = if self.rng.chance(40) {
            Some(self.rng.range(from_slot + 1, slots as u64))
        } else {
            None
        };
        let window = (from_slot, until_slot.unwrap_or(slots as u64));
        Corruption { replica, from_slot, until_slot, behavior: self.behavior(n, window) }
    }

    /// Slow-compromise ramp: corrupted replicas switch on in order,
    /// each `stride` slots after the previous one, and stay corrupted.
    fn ramp(&mut self, corrupted: &[usize], n: usize, slots: usize) -> Vec<Corruption> {
        let stride = (slots / (corrupted.len() + 1)).max(1) as u64;
        corrupted
            .iter()
            .enumerate()
            .map(|(k, &replica)| {
                let from_slot = (k as u64 + 1) * stride;
                Corruption {
                    replica,
                    from_slot,
                    until_slot: None,
                    behavior: self.behavior(n, (from_slot, slots as u64)),
                }
            })
            .collect()
    }

    /// Colluding frame group: the group splits distinct accusation
    /// slots among its members (each frame burns one accuser edge, so
    /// the group spends at most `f(t+1)` of the `t(t+2)` budget).
    fn frame_group(&mut self, corrupted: &[usize], slots: usize) -> Vec<Corruption> {
        let mut schedule: Vec<u64> = (0..slots as u64).collect();
        for i in 0..schedule.len() {
            let j = i + self.rng.below((schedule.len() - i) as u64) as usize;
            schedule.swap(i, j);
        }
        corrupted
            .iter()
            .enumerate()
            .map(|(k, &replica)| Corruption {
                replica,
                from_slot: 0,
                until_slot: None,
                behavior: Behavior::Frame { slots: vec![schedule[k % schedule.len()]] },
            })
            .collect()
    }

    /// A model-preserving network plan: random link model, optional
    /// clusters, delay-only partitions (often a single-node eclipse).
    fn net_plan(&mut self, n: usize) -> NetPlan {
        let clusters = if self.rng.chance(40) && n >= 4 {
            let first = self.rng.range(1, n as u64 - 1) as usize;
            vec![first, n - first]
        } else {
            Vec::new()
        };
        let link = if !clusters.is_empty() && self.rng.chance(50) {
            LinkPlan::Wan {
                intra: self.rng.range(1, 3),
                inter: self.rng.range(5, 20),
                jitter: self.rng.range(0, 4),
            }
        } else if self.rng.chance(50) {
            LinkPlan::Jitter { base: self.rng.range(1, 3), jitter: self.rng.range(1, 6) }
        } else {
            LinkPlan::Fixed(self.rng.range(1, 5))
        };
        let mut partitions = Vec::new();
        for _ in 0..self.rng.below(3) {
            let start = self.rng.below(300);
            let heal = start + self.rng.range(10, 200);
            // 70% eclipse (one suppressed replica), else a small island.
            let island = if self.rng.chance(70) {
                vec![self.rng.below(n as u64) as usize]
            } else {
                self.pick_replicas(n, 2)
            };
            partitions.push(PartitionPlan { start, heal, island, drop: false });
        }
        NetPlan { link, clusters, partitions, net_seed: self.rng.next_u64() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = ScenarioGenerator::new(42);
        let mut b = ScenarioGenerator::new(42);
        for _ in 0..20 {
            assert_eq!(a.next_scenario(), b.next_scenario());
        }
        let mut c = ScenarioGenerator::new(43);
        assert_ne!(a.next_scenario(), c.next_scenario());
    }

    #[test]
    fn every_draw_is_valid_and_model_preserving() {
        let mut g = ScenarioGenerator::new(7);
        for _ in 0..200 {
            let s = g.next_scenario();
            s.validate().unwrap_or_else(|e| panic!("invalid draw {}: {e}", s.name));
            assert!(s.is_model_preserving(), "{} leaves the model", s.name);
            assert!(!s.corruptions.is_empty(), "{} has no adversary", s.name);
        }
    }

    #[test]
    fn draws_cover_the_behaviour_catalogue() {
        let mut g = ScenarioGenerator::new(11);
        let mut kinds = std::collections::BTreeSet::new();
        let mut saw_net = false;
        let mut saw_eclipse = false;
        for _ in 0..300 {
            let s = g.next_scenario();
            for c in &s.corruptions {
                kinds.insert(c.behavior.kind());
            }
            if let Some(net) = &s.net {
                saw_net = true;
                saw_eclipse |= net.partitions.iter().any(|p| p.island.len() == 1);
            }
        }
        assert_eq!(kinds.len(), 6, "all six behaviours drawn: {kinds:?}");
        assert!(saw_net && saw_eclipse);
    }

    #[test]
    fn round_trip_survives_generation() {
        let mut g = ScenarioGenerator::new(3);
        for _ in 0..50 {
            let s = g.next_scenario();
            let back = Scenario::from_json(&s.to_json()).unwrap();
            assert_eq!(back, s);
        }
    }
}
