//! Adversary campaigns: scenarios as data, executed and machine-checked.
//!
//! The one-off adversary strategies elsewhere in this crate each script
//! a single attack. A *campaign* instead treats the whole adversarial
//! environment as a replayable document: a [`Scenario`] captures the
//! system size, the network model (link latencies, cluster topology,
//! delay partitions, eclipse-style single-node suppression) and a
//! timeline of composable Byzantine behaviours — corruptions switching
//! on mid-run, slow-compromise ramps, colluding frame groups across
//! slots. Scenarios (de)serialize byte-stably through the shared
//! [`mvbc_metrics::json`] model, so a failing draw replays exactly from
//! its JSON.
//!
//! [`ScenarioGenerator`] expands a campaign seed into bounded-random,
//! model-preserving scenarios; [`run_scenario`] executes one through
//! the replicated-log engine and machine-checks agreement, validity,
//! prefix consistency, sequential equivalence, isolation safety and the
//! global `t(t+2)` dispute budget; [`CampaignRunner`] and
//! [`CampaignReport`] drive and aggregate whole campaigns. The CLI
//! surfaces all of it as `mvbc smr soak`, and the nightly CI gauntlet
//! runs a fresh randomized campaign every day.

mod behavior;
mod generator;
mod runner;
mod scenario;

pub use behavior::{hooks_for, ScenarioHooks};
pub use generator::ScenarioGenerator;
pub use runner::{
    run_scenario, CampaignReport, CampaignRun, CampaignRunner, RunOutcome, Violation,
};
pub use scenario::{
    Behavior, Corruption, LinkPlan, NetPlan, PartitionPlan, Scenario, SCENARIO_SCHEMA,
};
