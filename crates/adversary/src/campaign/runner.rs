//! Executing scenarios and machine-checking the paper's guarantees.
//!
//! [`run_scenario`] replays one [`Scenario`] through the replicated-log
//! engine under the event-driven network simulator and checks every
//! guarantee the Liang-Vaidya construction owes a model-preserving
//! environment: per-slot agreement and validity, committed-log prefix
//! consistency (a pipelined log commits exactly its sequential log),
//! honest-isolation safety (Lemma 4) and the global `t(t+2)` dispute
//! budget. [`CampaignRunner`] streams generated scenarios through it
//! and [`CampaignReport`] aggregates the results; emitting failing
//! scenarios to disk is the caller's job (the CLI and bench do it), so
//! this crate stays free of file IO.

use std::collections::BTreeMap;

use mvbc_metrics::MetricsSink;
use mvbc_netsim::trace::TraceSink;
use mvbc_netsim::{
    LinkModel, NetModel, Partition, PartitionBehavior, SchedulingPolicy, Topology, VirtualTime,
};
use mvbc_smr::{simulate_smr_traced, synthetic_workloads, SmrConfig, SmrReport};

use super::behavior::hooks_for;
use super::generator::ScenarioGenerator;
use super::scenario::{LinkPlan, Scenario};

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed (`agreement`, `validity`, `liveness`,
    /// `prefix`, `sequential-equivalence`, `honest-isolated`,
    /// `dispute-budget`).
    pub check: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn new(check: &'static str, detail: String) -> Self {
        Violation { check, detail }
    }
}

/// The machine-checked result of one scenario execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Every invariant violation found (empty = the run upheld all the
    /// paper's guarantees).
    pub violations: Vec<Violation>,
    /// FNV-1a digest of the committed log (agreement-relevant fields of
    /// every slot) — the replay-determinism fingerprint.
    pub log_digest: u64,
    /// Message-trace digest (see [`TraceSink::digest`]): pins the whole
    /// delivery schedule shape, not just the committed output.
    pub trace_digest: u64,
    /// Commands committed across the log (at the reference honest
    /// replica).
    pub committed_commands: u64,
    /// Slots that committed the agreed fallback (empty) batch.
    pub fallback_slots: u64,
    /// Total diagnosis-stage invocations across the whole log — the
    /// quantity the `t(t+2)` dispute budget bounds.
    pub diagnosis_total: u64,
    /// Pipelined slot attempts discarded by dispute-state changes.
    pub restarts: u64,
    /// Latest per-slot commit virtual time observed at the reference
    /// honest replica (worst-case commit latency of the run).
    pub max_commit_vtime: VirtualTime,
    /// Final virtual clock of the simulation.
    pub vtime: VirtualTime,
    /// Synchronous rounds the log consumed.
    pub rounds: u64,
}

/// Builds the scheduling policy a scenario's network plan describes.
fn policy_for(scenario: &Scenario) -> SchedulingPolicy {
    let Some(net) = &scenario.net else {
        return SchedulingPolicy::RoundBarrier;
    };
    let link = match net.link {
        LinkPlan::Fixed(ticks) => LinkModel::Fixed(ticks),
        LinkPlan::Jitter { base, jitter } => LinkModel::UniformJitter { base, jitter },
        LinkPlan::Wan { intra, inter, jitter } => LinkModel::Wan { intra, inter, jitter },
    };
    let topology = if net.clusters.is_empty() {
        Topology::Clique
    } else {
        Topology::Clusters(net.clusters.clone())
    };
    let mut model = NetModel::new(link, topology).with_seed(net.net_seed);
    for p in &net.partitions {
        model = model.with_partition(Partition {
            start: p.start,
            heal: p.heal,
            island: p.island.clone(),
            behavior: if p.drop { PartitionBehavior::Drop } else { PartitionBehavior::Delay },
        });
    }
    SchedulingPolicy::EventDriven(model)
}

/// The [`SmrConfig`] a scenario describes.
fn config_for(scenario: &Scenario) -> Result<SmrConfig, String> {
    let mut cfg = SmrConfig::new(scenario.n, scenario.t, scenario.slots, scenario.batch)
        .map_err(|e| format!("scenario {}: {e:?}", scenario.name))?
        .with_pipeline(scenario.pipeline)
        .with_policy(policy_for(scenario));
    if let Some(limit) = scenario.max_vtime {
        cfg = cfg.with_max_vtime(limit);
    }
    Ok(cfg)
}

/// FNV-1a over the agreement-relevant fields of a committed log.
fn log_digest(report: &SmrReport) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for s in &report.slots {
        eat(s.slot);
        eat(s.primary as u64);
        eat(u64::from(s.fallback));
        eat(s.committed.len() as u64);
        for c in &s.committed {
            eat(u64::from(c.key));
            eat(u64::from(c.value));
        }
    }
    h
}

/// Executes `scenario` and machine-checks every guarantee of the
/// error-free model. For a model-preserving scenario any reported
/// violation is a protocol bug; for a non-model-preserving one (more
/// than `t` corruptions, drop partitions) violations are the *expected*
/// demonstration that the checker catches real damage.
///
/// # Errors
///
/// Returns the validation or configuration error of a structurally
/// broken scenario (a generated scenario never is).
pub fn run_scenario(scenario: &Scenario) -> Result<RunOutcome, String> {
    scenario.validate()?;
    let cfg = config_for(scenario)?;
    let per_replica = scenario.batch * scenario.slots;
    let workloads = synthetic_workloads(scenario.n, per_replica, scenario.seed);
    let trace = TraceSink::new();
    let run = simulate_smr_traced(
        &cfg,
        workloads.clone(),
        hooks_for(scenario),
        MetricsSink::new(),
        Some(trace.clone()),
    );

    let corrupted = scenario.byzantine();
    let honest: Vec<usize> = (0..scenario.n).filter(|i| !corrupted.contains(i)).collect();
    let reference = honest[0]; // validate() guarantees n - t >= 3 honest
    let mut violations = Vec::new();

    // Liveness: every honest replica committed every slot.
    for &h in &honest {
        let got = run.reports[h].slots.len();
        if got != scenario.slots {
            violations.push(Violation::new(
                "liveness",
                format!("replica {h} committed {got} of {} slots", scenario.slots),
            ));
        }
    }

    // Prefix consistency: the committed log is the contiguous slot
    // sequence 0, 1, 2, ... with no gap or reorder.
    for (i, s) in run.reports[reference].slots.iter().enumerate() {
        if s.slot != i as u64 {
            violations.push(Violation::new(
                "prefix",
                format!("position {i} of the log holds slot {}", s.slot),
            ));
        }
    }

    // Agreement: all honest replicas committed the same log and hold the
    // same state.
    for &h in &honest[1..] {
        if run.reports[h].agreed_log() != run.reports[reference].agreed_log() {
            violations.push(Violation::new(
                "agreement",
                format!("replicas {reference} and {h} committed different logs"),
            ));
        }
        if run.reports[h].digest != run.reports[reference].digest
            || run.stores[h] != run.stores[reference]
        {
            violations.push(Violation::new(
                "agreement",
                format!("replicas {reference} and {h} hold different state"),
            ));
        }
    }

    // Validity: what an honest primary's slots commit (fallbacks aside)
    // is a prefix of that primary's client stream, in order — framed
    // primaries re-queue, so no honest command is reordered or invented.
    for &p in &honest {
        let committed: Vec<_> = run.reports[reference]
            .slots
            .iter()
            .filter(|s| s.primary == p && !s.fallback)
            .flat_map(|s| s.committed.iter().copied())
            .collect();
        if committed != workloads[p][..committed.len().min(workloads[p].len())]
            || committed.len() > workloads[p].len()
        {
            violations.push(Violation::new(
                "validity",
                format!("honest primary {p}'s committed commands are not a prefix of its stream"),
            ));
        }
    }

    // Lemma 4 safety: only faulty replicas are ever isolated.
    for &h in &honest {
        for &iso in &run.reports[h].isolated {
            if !corrupted.contains(&iso) {
                violations.push(Violation::new(
                    "honest-isolated",
                    format!("replica {h} isolated fault-free replica {iso}"),
                ));
            }
        }
    }

    // Global dispute budget: the diagnosis graph persists across the
    // log, so total diagnosis invocations are bounded by t(t+2).
    let diagnosis_total: u64 = run.reports[reference]
        .slots
        .iter()
        .map(|s| s.diagnosis_invocations)
        .sum();
    let budget = (scenario.t * (scenario.t + 2)) as u64;
    if diagnosis_total > budget {
        violations.push(Violation::new(
            "dispute-budget",
            format!("{diagnosis_total} diagnosis invocations exceed t(t+2) = {budget}"),
        ));
    }

    // Sequential equivalence: a pipelined log must commit exactly the
    // log its sequential twin commits.
    if scenario.pipeline > 1 {
        let seq_cfg = config_for(&Scenario { pipeline: 1, ..scenario.clone() })?;
        let seq = simulate_smr_traced(
            &seq_cfg,
            workloads,
            hooks_for(scenario),
            MetricsSink::new(),
            None,
        );
        if seq.reports[reference].agreed_log() != run.reports[reference].agreed_log() {
            violations.push(Violation::new(
                "sequential-equivalence",
                format!("pipeline = {} commits a different log than sequential", scenario.pipeline),
            ));
        }
    }

    let reference_report = &run.reports[reference];
    Ok(RunOutcome {
        violations,
        log_digest: log_digest(reference_report),
        trace_digest: trace.digest(),
        committed_commands: reference_report.committed_commands,
        fallback_slots: reference_report.fallback_slots,
        diagnosis_total,
        restarts: reference_report.restarts,
        max_commit_vtime: reference_report
            .slots
            .iter()
            .map(|s| s.commit_vtime)
            .max()
            .unwrap_or(0),
        vtime: run.vtime,
        rounds: run.rounds,
    })
}

/// One executed campaign draw.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The scenario that ran (serialize with [`Scenario::to_json`] to
    /// emit a replayable failure artifact).
    pub scenario: Scenario,
    /// Its machine-checked outcome.
    pub outcome: RunOutcome,
}

/// Streams bounded-random scenarios from a seeded generator through the
/// invariant checker.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    generator: ScenarioGenerator,
}

impl CampaignRunner {
    /// A campaign whose draw sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        CampaignRunner { generator: ScenarioGenerator::new(seed) }
    }

    /// Draws and executes the next scenario.
    pub fn next_run(&mut self) -> CampaignRun {
        let scenario = self.generator.next_scenario();
        let outcome = run_scenario(&scenario)
            .unwrap_or_else(|e| panic!("generated scenario {} failed to run: {e}", scenario.name));
        CampaignRun { scenario, outcome }
    }
}

/// Aggregated campaign statistics.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Scenarios executed.
    pub scenarios: u64,
    /// Total invariant violations across all runs.
    pub violations: u64,
    /// Names of the scenarios that violated an invariant.
    pub failed: Vec<String>,
    /// How often each behaviour kind appeared across all corruption
    /// timelines.
    pub behavior_mix: BTreeMap<String, u64>,
    /// Slots committed across all runs.
    pub total_slots: u64,
    /// Commands committed across all runs.
    pub total_commands: u64,
    /// Diagnosis invocations across all runs.
    pub total_diagnosis: u64,
    /// Worst per-slot commit virtual time seen in any run.
    pub worst_commit_vtime: VirtualTime,
}

impl CampaignReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one executed run into the statistics.
    pub fn absorb(&mut self, run: &CampaignRun) {
        self.scenarios += 1;
        self.violations += run.outcome.violations.len() as u64;
        if !run.outcome.violations.is_empty() {
            self.failed.push(run.scenario.name.clone());
        }
        for c in &run.scenario.corruptions {
            *self.behavior_mix.entry(c.behavior.kind().to_owned()).or_insert(0) += 1;
        }
        self.total_slots += run.scenario.slots as u64;
        self.total_commands += run.outcome.committed_commands;
        self.total_diagnosis += run.outcome.diagnosis_total;
        self.worst_commit_vtime = self.worst_commit_vtime.max(run.outcome.max_commit_vtime);
    }
}

#[cfg(test)]
mod tests {
    use super::super::scenario::{Behavior, Corruption};
    use super::*;

    fn honest_scenario() -> Scenario {
        Scenario {
            name: "honest".to_owned(),
            seed: 5,
            n: 4,
            t: 1,
            slots: 4,
            batch: 2,
            pipeline: 1,
            max_vtime: None,
            net: None,
            corruptions: Vec::new(),
        }
    }

    #[test]
    fn honest_run_upholds_every_invariant() {
        let out = run_scenario(&honest_scenario()).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.committed_commands > 0);
        assert_eq!(out.diagnosis_total, 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let mut s = honest_scenario();
        s.corruptions.push(Corruption {
            replica: 1,
            from_slot: 0,
            until_slot: None,
            behavior: Behavior::Equivocate,
        });
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a, b, "same scenario, same outcome");
        assert!(a.violations.is_empty());
        assert!(a.diagnosis_total >= 1, "the equivocation forced diagnosis");
    }

    #[test]
    fn equivocator_burns_budget_but_stays_within_it() {
        let mut s = honest_scenario();
        s.slots = 8;
        s.corruptions.push(Corruption {
            replica: 2,
            from_slot: 0,
            until_slot: None,
            behavior: Behavior::Equivocate,
        });
        let out = run_scenario(&s).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.diagnosis_total <= (s.t * (s.t + 2)) as u64);
        assert!(out.fallback_slots >= 1);
    }

    #[test]
    fn campaign_runner_aggregates() {
        let mut runner = CampaignRunner::new(123);
        let mut report = CampaignReport::new();
        for _ in 0..3 {
            report.absorb(&runner.next_run());
        }
        assert_eq!(report.scenarios, 3);
        assert!(report.total_slots >= 18, "at least 6 slots per draw");
        assert!(!report.behavior_mix.is_empty());
    }
}
