//! The declarative [`Scenario`] description and its JSON round-trip.
//!
//! A scenario is *data*: everything a replicated-log adversary campaign
//! run depends on — parameters, network model, and the timeline of
//! Byzantine behaviours — captured in one plain struct that
//! (de)serializes through the shared [`mvbc_metrics::json`] document
//! model. Because every input is in the document and every simulation
//! component is seeded, a failing draw replays byte-exactly from its
//! JSON alone.

use mvbc_metrics::json::{parse_json, JsonValue};

/// Schema marker embedded in every scenario document.
pub const SCENARIO_SCHEMA: &str = "mvbc.scenario.v1";

/// One composable Byzantine behaviour a corrupted replica runs while a
/// [`Corruption`] window is active. Each maps onto a broadcast-layer
/// attack hook from [`mvbc_broadcast::attacks`], chosen per slot by
/// whether the replica is that slot's primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Behavior {
    /// Equivocate during dispersal whenever primary: odd-id recipients
    /// get corrupted symbols, the split proposal is detected, the slot
    /// falls back and the rotation drops the replica.
    Equivocate,
    /// Never disperse when primary (a crashed or withholding leader).
    SilentLeader,
    /// Flip the claimed data bits during any diagnosis stage of the
    /// replica's own slots (a primary lying about what it sent).
    LyingDiagnosis,
    /// As an echo-set member, corrupt relays toward the replica `step`
    /// ids ahead (mod `n`).
    LyingEcho {
        /// Offset of the framed relay target, `1 <= step < n`.
        step: usize,
    },
    /// As an echo-set member, never relay (receivers detect the
    /// silence).
    SilentEcho,
    /// On each listed slot (when not primary), claim a false detection
    /// and accuse that slot's primary during diagnosis — the framing
    /// attack that burns one of the accuser's `t + 1` disposable edges
    /// per accusation and evicts a fault-free primary from rotation.
    Frame {
        /// Slots on which to fire the accusation.
        slots: Vec<u64>,
    },
}

impl Behavior {
    /// Stable behaviour name, used in scenario JSON and campaign
    /// behaviour-mix statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Behavior::Equivocate => "equivocate",
            Behavior::SilentLeader => "silent-leader",
            Behavior::LyingDiagnosis => "lying-diagnosis",
            Behavior::LyingEcho { .. } => "lying-echo",
            Behavior::SilentEcho => "silent-echo",
            Behavior::Frame { .. } => "frame",
        }
    }

    fn to_json(&self) -> JsonValue {
        let mut fields = vec![("kind".to_owned(), JsonValue::Str(self.kind().to_owned()))];
        match self {
            Behavior::LyingEcho { step } => {
                fields.push(("step".to_owned(), JsonValue::Num(*step as f64)));
            }
            Behavior::Frame { slots } => {
                fields.push((
                    "slots".to_owned(),
                    JsonValue::Arr(slots.iter().map(|&s| JsonValue::Num(s as f64)).collect()),
                ));
            }
            _ => {}
        }
        JsonValue::Obj(fields)
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("behavior missing \"kind\"")?;
        match kind {
            "equivocate" => Ok(Behavior::Equivocate),
            "silent-leader" => Ok(Behavior::SilentLeader),
            "lying-diagnosis" => Ok(Behavior::LyingDiagnosis),
            "lying-echo" => Ok(Behavior::LyingEcho {
                step: req_u64(v, "step", "lying-echo behavior")? as usize,
            }),
            "silent-echo" => Ok(Behavior::SilentEcho),
            "frame" => {
                let slots = v
                    .get("slots")
                    .and_then(JsonValue::as_array)
                    .ok_or("frame behavior missing \"slots\"")?
                    .iter()
                    .map(|s| s.as_u64().ok_or_else(|| "frame slot must be a non-negative integer".to_owned()))
                    .collect::<Result<Vec<u64>, String>>()?;
                Ok(Behavior::Frame { slots })
            }
            other => Err(format!("unknown behavior kind {other:?}")),
        }
    }
}

/// One entry of a scenario's corruption timeline: `replica` runs
/// `behavior` for slots in `[from_slot, until_slot)` (`None` = to the
/// end of the log). Later `from_slot`s model corruptions switching on
/// mid-run; a staggered sequence of them is a slow-compromise ramp, and
/// several replicas sharing coordinated [`Behavior::Frame`] schedules
/// form a colluding group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// The corrupted replica.
    pub replica: usize,
    /// First slot (inclusive) on which the behaviour is active.
    pub from_slot: u64,
    /// First slot on which it is inactive again (`None` = never).
    pub until_slot: Option<u64>,
    /// What the replica does while active.
    pub behavior: Behavior,
}

impl Corruption {
    /// Whether the window covers `slot`.
    pub fn active(&self, slot: u64) -> bool {
        slot >= self.from_slot && self.until_slot.is_none_or(|u| slot < u)
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("replica".to_owned(), JsonValue::Num(self.replica as f64)),
            ("from_slot".to_owned(), JsonValue::Num(self.from_slot as f64)),
            (
                "until_slot".to_owned(),
                match self.until_slot {
                    Some(u) => JsonValue::Num(u as f64),
                    None => JsonValue::Null,
                },
            ),
            ("behavior".to_owned(), self.behavior.to_json()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        Ok(Corruption {
            replica: req_u64(v, "replica", "corruption")? as usize,
            from_slot: req_u64(v, "from_slot", "corruption")?,
            until_slot: match v.get("until_slot") {
                None | Some(JsonValue::Null) => None,
                Some(u) => Some(u.as_u64().ok_or("corruption until_slot must be a non-negative integer or null")?),
            },
            behavior: Behavior::from_json(v.get("behavior").ok_or("corruption missing \"behavior\"")?)?,
        })
    }
}

/// Per-link latency of a scenario's network plan (mirror of
/// [`mvbc_netsim::LinkModel`] in plain data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkPlan {
    /// Every link takes exactly this many ticks.
    Fixed(u64),
    /// `base + U[0, jitter]` ticks per message.
    Jitter {
        /// Minimum link latency.
        base: u64,
        /// Uniform jitter bound.
        jitter: u64,
    },
    /// Cluster-dependent base latency (needs a clusters topology).
    Wan {
        /// Base latency inside a cluster.
        intra: u64,
        /// Base latency between clusters.
        inter: u64,
        /// Uniform jitter bound.
        jitter: u64,
    },
}

impl LinkPlan {
    fn to_json(self) -> JsonValue {
        match self {
            LinkPlan::Fixed(ticks) => JsonValue::Obj(vec![
                ("kind".to_owned(), JsonValue::Str("fixed".to_owned())),
                ("ticks".to_owned(), JsonValue::Num(ticks as f64)),
            ]),
            LinkPlan::Jitter { base, jitter } => JsonValue::Obj(vec![
                ("kind".to_owned(), JsonValue::Str("jitter".to_owned())),
                ("base".to_owned(), JsonValue::Num(base as f64)),
                ("jitter".to_owned(), JsonValue::Num(jitter as f64)),
            ]),
            LinkPlan::Wan { intra, inter, jitter } => JsonValue::Obj(vec![
                ("kind".to_owned(), JsonValue::Str("wan".to_owned())),
                ("intra".to_owned(), JsonValue::Num(intra as f64)),
                ("inter".to_owned(), JsonValue::Num(inter as f64)),
                ("jitter".to_owned(), JsonValue::Num(jitter as f64)),
            ]),
        }
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        match v.get("kind").and_then(JsonValue::as_str).ok_or("link missing \"kind\"")? {
            "fixed" => Ok(LinkPlan::Fixed(req_u64(v, "ticks", "fixed link")?)),
            "jitter" => Ok(LinkPlan::Jitter {
                base: req_u64(v, "base", "jitter link")?,
                jitter: req_u64(v, "jitter", "jitter link")?,
            }),
            "wan" => Ok(LinkPlan::Wan {
                intra: req_u64(v, "intra", "wan link")?,
                inter: req_u64(v, "inter", "wan link")?,
                jitter: req_u64(v, "jitter", "wan link")?,
            }),
            other => Err(format!("unknown link kind {other:?}")),
        }
    }
}

/// One scheduled partition of a scenario's network plan. `drop: false`
/// (delay) preserves the synchronous model — crossings queue at the cut
/// and deliver at the heal; with a single-node island this is the
/// eclipse-style suppression of one replica. `drop: true` loses
/// crossings outright, which steps *outside* the error-free model: the
/// campaign generator never draws it, but hand-written known-bad
/// scenarios use it to demonstrate the invariant checker firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Virtual time at which the cut forms.
    pub start: u64,
    /// Virtual time at which it heals (exclusive).
    pub heal: u64,
    /// The cut-off nodes.
    pub island: Vec<usize>,
    /// Drop crossings (`true`) or delay them until the heal (`false`).
    pub drop: bool,
}

impl PartitionPlan {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("start".to_owned(), JsonValue::Num(self.start as f64)),
            ("heal".to_owned(), JsonValue::Num(self.heal as f64)),
            (
                "island".to_owned(),
                JsonValue::Arr(self.island.iter().map(|&i| JsonValue::Num(i as f64)).collect()),
            ),
            (
                "mode".to_owned(),
                JsonValue::Str(if self.drop { "drop" } else { "delay" }.to_owned()),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let island = v
            .get("island")
            .and_then(JsonValue::as_array)
            .ok_or("partition missing \"island\"")?
            .iter()
            .map(|i| i.as_u64().map(|i| i as usize).ok_or_else(|| "partition island ids must be non-negative integers".to_owned()))
            .collect::<Result<Vec<usize>, String>>()?;
        let drop = match v.get("mode").and_then(JsonValue::as_str).unwrap_or("delay") {
            "drop" => true,
            "delay" => false,
            other => return Err(format!("partition mode is drop or delay, got {other:?}")),
        };
        Ok(PartitionPlan {
            start: req_u64(v, "start", "partition")?,
            heal: req_u64(v, "heal", "partition")?,
            island,
            drop,
        })
    }
}

/// A scenario's event-driven network plan; a scenario without one runs
/// under the round-barrier policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPlan {
    /// Per-link latency model.
    pub link: LinkPlan,
    /// Cluster sizes (empty = clique; non-empty sizes must sum to `n`).
    pub clusters: Vec<usize>,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionPlan>,
    /// Seed of the jitter stream.
    pub net_seed: u64,
}

impl NetPlan {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("link".to_owned(), self.link.to_json()),
            (
                "clusters".to_owned(),
                JsonValue::Arr(self.clusters.iter().map(|&c| JsonValue::Num(c as f64)).collect()),
            ),
            (
                "partitions".to_owned(),
                JsonValue::Arr(self.partitions.iter().map(PartitionPlan::to_json).collect()),
            ),
            ("net_seed".to_owned(), JsonValue::Str(self.net_seed.to_string())),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let clusters = match v.get("clusters") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(c) => c
                .as_array()
                .ok_or("net clusters must be an array")?
                .iter()
                .map(|s| s.as_u64().map(|s| s as usize).ok_or_else(|| "cluster sizes must be non-negative integers".to_owned()))
                .collect::<Result<Vec<usize>, String>>()?,
        };
        let partitions = match v.get("partitions") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(p) => p
                .as_array()
                .ok_or("net partitions must be an array")?
                .iter()
                .map(PartitionPlan::from_json)
                .collect::<Result<Vec<PartitionPlan>, String>>()?,
        };
        Ok(NetPlan {
            link: LinkPlan::from_json(v.get("link").ok_or("net missing \"link\"")?)?,
            clusters,
            partitions,
            net_seed: seed_u64(v, "net_seed")?.unwrap_or(1),
        })
    }
}

/// One declarative campaign scenario: the full input of a replicated-log
/// run under a composed adversary, as replayable data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Human-readable scenario name (doubles as the emitted file stem).
    pub name: String,
    /// Workload seed (the client command streams).
    pub seed: u64,
    /// Number of replicas.
    pub n: usize,
    /// Fault tolerance (`t < n/3`).
    pub t: usize,
    /// Log slots.
    pub slots: usize,
    /// Max commands per slot batch.
    pub batch: usize,
    /// Pipeline depth `W`.
    pub pipeline: usize,
    /// Abort if the virtual clock exceeds this budget (`None` =
    /// unbounded).
    pub max_vtime: Option<u64>,
    /// Event-driven network plan (`None` = round-barrier).
    pub net: Option<NetPlan>,
    /// The adversary timeline.
    pub corruptions: Vec<Corruption>,
}

impl Scenario {
    /// The distinct corrupted replica ids, sorted.
    pub fn byzantine(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.corruptions.iter().map(|c| c.replica).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Whether every assumption of the error-free synchronous model
    /// holds: at most `t` corrupted replicas and no drop partitions.
    /// The campaign generator only draws model-preserving scenarios, so
    /// the invariant checker proves a protocol bug on any violation; a
    /// non-model-preserving scenario (a known-bad fixture) is *expected*
    /// to trip the checker.
    pub fn is_model_preserving(&self) -> bool {
        self.byzantine().len() <= self.t
            && self
                .net
                .as_ref()
                .is_none_or(|net| net.partitions.iter().all(|p| !p.drop))
    }

    /// Structural validation: parameter ranges, cluster coverage,
    /// partition windows and corruption targets.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 4 || 3 * self.t >= self.n {
            return Err(format!("need 4 <= n and t < n/3 (n = {}, t = {})", self.n, self.t));
        }
        if self.slots == 0 || self.batch == 0 || self.pipeline == 0 {
            return Err("slots, batch and pipeline must all be at least 1".to_owned());
        }
        for c in &self.corruptions {
            if c.replica >= self.n {
                return Err(format!("corruption replica {} out of range (n = {})", c.replica, self.n));
            }
            if c.until_slot.is_some_and(|u| u <= c.from_slot) {
                return Err(format!(
                    "corruption window [{}, {:?}) of replica {} is empty",
                    c.from_slot, c.until_slot, c.replica
                ));
            }
            if let Behavior::LyingEcho { step } = c.behavior {
                if step == 0 || step >= self.n {
                    return Err(format!("lying-echo step {step} must be in 1..n"));
                }
            }
        }
        let Some(net) = &self.net else { return Ok(()) };
        if !net.clusters.is_empty() {
            if net.clusters.contains(&0) {
                return Err("clusters must be non-empty".to_owned());
            }
            let total: usize = net.clusters.iter().sum();
            if total != self.n {
                return Err(format!("cluster sizes {:?} sum to {total}, not n = {}", net.clusters, self.n));
            }
        }
        if matches!(net.link, LinkPlan::Wan { .. }) && net.clusters.is_empty() {
            return Err("the wan link model needs a clusters topology".to_owned());
        }
        for p in &net.partitions {
            if p.start >= p.heal {
                return Err(format!("partition window [{}, {}) is empty", p.start, p.heal));
            }
            if p.island.is_empty() {
                return Err("partition island is empty".to_owned());
            }
            if let Some(bad) = p.island.iter().find(|&&i| i >= self.n) {
                return Err(format!("partition island id {bad} out of range (n = {})", self.n));
            }
        }
        Ok(())
    }

    /// Renders the scenario as its canonical JSON document.
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("schema".to_owned(), JsonValue::Str(SCENARIO_SCHEMA.to_owned())),
            ("name".to_owned(), JsonValue::Str(self.name.clone())),
            // Seeds are full 64-bit values; JSON numbers (f64) lose
            // precision above 2^53, so they travel as decimal strings.
            ("seed".to_owned(), JsonValue::Str(self.seed.to_string())),
            ("n".to_owned(), JsonValue::Num(self.n as f64)),
            ("t".to_owned(), JsonValue::Num(self.t as f64)),
            ("slots".to_owned(), JsonValue::Num(self.slots as f64)),
            ("batch".to_owned(), JsonValue::Num(self.batch as f64)),
            ("pipeline".to_owned(), JsonValue::Num(self.pipeline as f64)),
            (
                "max_vtime".to_owned(),
                match self.max_vtime {
                    Some(v) => JsonValue::Num(v as f64),
                    None => JsonValue::Null,
                },
            ),
            (
                "net".to_owned(),
                match &self.net {
                    Some(net) => net.to_json(),
                    None => JsonValue::Null,
                },
            ),
            (
                "corruptions".to_owned(),
                JsonValue::Arr(self.corruptions.iter().map(Corruption::to_json).collect()),
            ),
        ])
        .render()
    }

    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax, schema or validation
    /// error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = parse_json(text)?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(SCENARIO_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported scenario schema {other:?}")),
            None => return Err("scenario missing \"schema\"".to_owned()),
        }
        let corruptions = match doc.get("corruptions") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(c) => c
                .as_array()
                .ok_or("corruptions must be an array")?
                .iter()
                .map(Corruption::from_json)
                .collect::<Result<Vec<Corruption>, String>>()?,
        };
        let scenario = Scenario {
            name: doc
                .get("name")
                .and_then(JsonValue::as_str)
                .unwrap_or("unnamed")
                .to_owned(),
            seed: seed_u64(&doc, "seed")?.unwrap_or(1),
            n: req_u64(&doc, "n", "scenario")? as usize,
            t: req_u64(&doc, "t", "scenario")? as usize,
            slots: req_u64(&doc, "slots", "scenario")? as usize,
            batch: req_u64(&doc, "batch", "scenario")? as usize,
            pipeline: req_u64(&doc, "pipeline", "scenario")? as usize,
            max_vtime: match doc.get("max_vtime") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("max_vtime must be a non-negative integer or null")?),
            },
            net: match doc.get("net") {
                None | Some(JsonValue::Null) => None,
                Some(net) => Some(NetPlan::from_json(net)?),
            },
            corruptions,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

/// Required non-negative integer field.
fn req_u64(v: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{what} missing non-negative integer \"{key}\""))
}

/// A 64-bit seed field: either a decimal string (the canonical form,
/// precision-safe beyond 2^53) or a plain integral number.
fn seed_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Str(s)) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("\"{key}\" is not a decimal u64: {s:?}")),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be a u64 (string or integer)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            name: "sample".to_owned(),
            seed: u64::MAX - 3, // above 2^53: exercises the string form
            n: 7,
            t: 2,
            slots: 12,
            batch: 2,
            pipeline: 2,
            max_vtime: None,
            net: Some(NetPlan {
                link: LinkPlan::Wan { intra: 10, inter: 100, jitter: 5 },
                clusters: vec![3, 2, 2],
                partitions: vec![PartitionPlan { start: 50, heal: 500, island: vec![6], drop: false }],
                net_seed: 9,
            }),
            corruptions: vec![
                Corruption {
                    replica: 1,
                    from_slot: 3,
                    until_slot: Some(8),
                    behavior: Behavior::Equivocate,
                },
                Corruption {
                    replica: 5,
                    from_slot: 0,
                    until_slot: None,
                    behavior: Behavior::Frame { slots: vec![2, 9] },
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let s = sample();
        let text = s.to_json();
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(back, s);
        // Byte-stability: render(parse(render(x))) == render(x).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn corruption_windows() {
        let c = Corruption {
            replica: 0,
            from_slot: 2,
            until_slot: Some(5),
            behavior: Behavior::SilentLeader,
        };
        assert!(!c.active(1) && c.active(2) && c.active(4) && !c.active(5));
        let forever = Corruption { until_slot: None, ..c };
        assert!(forever.active(1_000_000));
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let mut s = sample();
        s.t = 3; // 3t >= n
        assert!(s.validate().is_err());
        let mut s = sample();
        s.corruptions[0].replica = 7;
        assert!(s.validate().is_err());
        let mut s = sample();
        s.net.as_mut().unwrap().clusters = vec![3, 3]; // sums to 6, not 7
        assert!(s.validate().is_err());
        let mut s = sample();
        s.net.as_mut().unwrap().partitions[0].heal = 50; // empty window
        assert!(s.validate().is_err());
        let mut s = sample();
        s.net.as_mut().unwrap().clusters = Vec::new(); // wan needs clusters
        assert!(s.validate().is_err());
        let mut s = sample();
        s.corruptions[0].behavior = Behavior::LyingEcho { step: 0 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn model_preservation_flags() {
        let s = sample();
        assert!(s.is_model_preserving(), "2 corrupted <= t = 2, delay-only");
        let mut over = s.clone();
        over.corruptions.push(Corruption {
            replica: 3,
            from_slot: 0,
            until_slot: None,
            behavior: Behavior::SilentEcho,
        });
        assert!(!over.is_model_preserving(), "3 corrupted > t");
        let mut dropped = s.clone();
        dropped.net.as_mut().unwrap().partitions[0].drop = true;
        assert!(!dropped.is_model_preserving(), "drop partitions leave the model");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("{\"schema\": \"mvbc.scenario.v2\"}").is_err());
        let mut s = sample();
        s.t = 9; // valid JSON, invalid parameters: from_json re-validates
        let text = s.to_json();
        assert!(Scenario::from_json(&text).is_err());
        // Seeds parse from both canonical string and plain number forms.
        let num_seed = text.replace(&format!("\"seed\": \"{}\"", u64::MAX - 3), "\"seed\": 41");
        let _ = num_seed; // (t is still invalid; just checking it parses to the seed error path)
        let ok = sample().to_json().replace(
            &format!("\"seed\": \"{}\"", u64::MAX - 3),
            "\"seed\": 41",
        );
        assert_eq!(Scenario::from_json(&ok).unwrap().seed, 41);
    }
}
