//! Symbol-corruption strategies for the matching and diagnosis stages.

use mvbc_bsb::BsbHooks;
use mvbc_core::ProtocolHooks;
use mvbc_netsim::NodeId;

/// Flips every byte of a payload (a maximally visible corruption).
fn flip_payload(payload: &mut [u8]) {
    for b in payload {
        *b ^= 0xFF;
    }
}

/// Sends a corrupted matching-stage symbol (line 1(a)) to the listed
/// targets and behaves honestly otherwise.
///
/// When the targets end up outside `P_match` they detect the
/// inconsistency (line 2(a)) and force the diagnosis stage, which removes
/// an edge adjacent to this processor — the canonical misbehaviour the
/// paper's Lemma 4 case 1 analyses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptSymbolTo {
    targets: Vec<NodeId>,
    /// Only corrupt in generations `g < until` (`usize::MAX` = always).
    until: usize,
}

impl CorruptSymbolTo {
    /// Corrupts the symbol sent to each of `targets`, in every generation.
    pub fn new(targets: Vec<NodeId>) -> Self {
        CorruptSymbolTo {
            targets,
            until: usize::MAX,
        }
    }

    /// Corrupts only during the first `generations` generations.
    pub fn for_first_generations(targets: Vec<NodeId>, generations: usize) -> Self {
        CorruptSymbolTo {
            targets,
            until: generations,
        }
    }
}

impl BsbHooks for CorruptSymbolTo {}

impl ProtocolHooks for CorruptSymbolTo {
    fn matching_symbol(&mut self, g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        if g < self.until && self.targets.contains(&to) {
            flip_payload(payload);
        }
        true
    }
}

/// Equivocates in the matching stage: sends the true symbol to low-id
/// processors and a corrupted one to high-id processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquivocateSymbol;

impl BsbHooks for EquivocateSymbol {}

impl ProtocolHooks for EquivocateSymbol {
    fn matching_symbol(&mut self, _g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        if to % 2 == 1 {
            flip_payload(payload);
        }
        true
    }
}

/// Broadcasts a corrupted `S_j[j]` in the diagnosis stage (line 3(a)),
/// making `R#` inconsistent and sacrificing this processor's edges to
/// every honest processor that received the true symbol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptDiagnosisSymbol;

impl BsbHooks for CorruptDiagnosisSymbol {}

impl ProtocolHooks for CorruptDiagnosisSymbol {
    fn diagnosis_symbol_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        for b in bits {
            *b = !*b;
        }
    }

    // Also trigger the diagnosis stage in the first place by announcing a
    // (false) detection whenever this processor is outside P_match.
    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        *flag = true;
    }
}

/// Uses a different input value than the one it was given (per-generation
/// shift). Indistinguishable from "a processor whose input really
/// differs": honest processors either match without it or decide the
/// default if unanimity is broken — never an inconsistent decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShiftedInput;

impl BsbHooks for ShiftedInput {}

impl ProtocolHooks for ShiftedInput {
    fn input_override(&mut self, _g: usize, value: &mut Vec<u8>) {
        for b in value.iter_mut() {
            *b = b.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_symbol_only_targets() {
        let mut a = CorruptSymbolTo::new(vec![2]);
        let mut p1 = vec![0xAA, 0x55];
        assert!(a.matching_symbol(0, 1, &mut p1));
        assert_eq!(p1, vec![0xAA, 0x55]);
        let mut p2 = vec![0xAA, 0x55];
        assert!(a.matching_symbol(0, 2, &mut p2));
        assert_eq!(p2, vec![0x55, 0xAA]);
    }

    #[test]
    fn corrupt_symbol_generation_bound() {
        let mut a = CorruptSymbolTo::for_first_generations(vec![1], 2);
        let mut p = vec![0x00];
        a.matching_symbol(1, 1, &mut p);
        assert_eq!(p, vec![0xFF]);
        let mut p = vec![0x00];
        a.matching_symbol(2, 1, &mut p);
        assert_eq!(p, vec![0x00]);
    }

    #[test]
    fn equivocator_splits_by_parity() {
        let mut a = EquivocateSymbol;
        let mut even = vec![1u8];
        a.matching_symbol(0, 2, &mut even);
        assert_eq!(even, vec![1]);
        let mut odd = vec![1u8];
        a.matching_symbol(0, 3, &mut odd);
        assert_eq!(odd, vec![0xFE]);
    }

    #[test]
    fn diagnosis_corruptor_flips_bits_and_detects() {
        let mut a = CorruptDiagnosisSymbol;
        let mut bits = vec![true, false];
        a.diagnosis_symbol_bits(0, &mut bits);
        assert_eq!(bits, vec![false, true]);
        let mut flag = false;
        a.detected_flag(0, &mut flag);
        assert!(flag);
    }

    #[test]
    fn shifted_input_changes_value() {
        let mut a = ShiftedInput;
        let mut v = vec![0x00, 0xFF];
        a.input_override(0, &mut v);
        assert_eq!(v, vec![0x01, 0x00]);
    }
}
