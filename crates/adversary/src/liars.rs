//! Control-information lying strategies: `M`, `Detected`, `Trust`.

use mvbc_bsb::BsbHooks;
use mvbc_core::ProtocolHooks;
use mvbc_netsim::NodeId;

/// Lies in the matching-stage `M` vector (line 1(d)).
///
/// With `claim: true` the processor claims to match everyone (which can
/// pull it into `P_match` without actually agreeing — the checking stage
/// then catches the inconsistent symbols); with `claim: false` it refuses
/// to match anyone, excluding itself from every `P_match`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LieMVector {
    /// The uniform value claimed for every entry.
    pub claim: bool,
}

impl BsbHooks for LieMVector {}

impl ProtocolHooks for LieMVector {
    fn m_vector(&mut self, _g: usize, m: &mut Vec<bool>) {
        for e in m.iter_mut() {
            *e = self.claim;
        }
    }
}

/// Announces `Detected = true` in the checking stage (line 2(b)) even
/// though its received symbols are perfectly consistent.
///
/// This is Lemma 4 case 2(a): when the diagnosis broadcast `R#` turns out
/// consistent and no edge at this processor is removed, lines 3(f)
/// identify the false accuser and isolate it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FalseDetect;

impl BsbHooks for FalseDetect {}

impl ProtocolHooks for FalseDetect {
    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        *flag = true;
    }
}

/// Falsely accuses the listed processors in the diagnosis-stage `Trust`
/// vector (line 3(d)), sacrificing this processor's own edges (every
/// removed edge is adjacent to the liar — Lemma 4's guarantee).
///
/// On its own this strategy never triggers a diagnosis stage; combine it
/// with [`FalseDetect`]-style detection (it also sets `Detected = true`)
/// so the `Trust` broadcast actually happens.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LieTrust {
    accuse: Vec<NodeId>,
    p_match: Vec<NodeId>,
}

impl LieTrust {
    /// Accuse each processor in `accuse` whenever it appears in `P_match`.
    pub fn new(accuse: Vec<NodeId>) -> Self {
        LieTrust {
            accuse,
            p_match: Vec::new(),
        }
    }
}

impl BsbHooks for LieTrust {}

impl ProtocolHooks for LieTrust {
    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        *flag = true;
    }

    fn observe_generation_start(&mut self, _g: usize, _me: NodeId, _diag: &mvbc_core::DiagGraph) {}

    fn trust_vector(&mut self, _g: usize, trust: &mut Vec<bool>) {
        // The trust vector is indexed by position within P_match; the
        // protocol calls this hook with the vector already computed, so we
        // can only flip entries. Without access to the P_match layout we
        // accuse *every* member, the maximal version of the attack.
        if self.accuse.is_empty() {
            for e in trust.iter_mut() {
                *e = false;
            }
        } else {
            // Heuristic: accuse the first |accuse| members.
            for (i, e) in trust.iter_mut().enumerate() {
                if i < self.accuse.len() {
                    *e = false;
                }
            }
        }
        let _ = &self.p_match;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lie_m_vector_uniform() {
        let mut a = LieMVector { claim: true };
        let mut m = vec![false, true, false];
        a.m_vector(0, &mut m);
        assert_eq!(m, vec![true; 3]);
        let mut b = LieMVector { claim: false };
        b.m_vector(0, &mut m);
        assert_eq!(m, vec![false; 3]);
    }

    #[test]
    fn false_detect_sets_flag() {
        let mut a = FalseDetect;
        let mut flag = false;
        a.detected_flag(3, &mut flag);
        assert!(flag);
    }

    #[test]
    fn lie_trust_accuses() {
        let mut a = LieTrust::new(vec![]);
        let mut trust = vec![true, true, true];
        a.trust_vector(0, &mut trust);
        assert_eq!(trust, vec![false; 3]);

        let mut b = LieTrust::new(vec![0]);
        let mut trust = vec![true, true, true];
        b.trust_vector(0, &mut trust);
        assert_eq!(trust, vec![false, true, true]);
    }
}
