//! Byzantine attack strategies for the Liang-Vaidya consensus protocol.
//!
//! The paper's adversary (§1) has complete knowledge of every processor's
//! state, controls up to `t < n/3` processors, and can make them deviate
//! arbitrarily in message *content* (channels are authenticated, so
//! identity cannot be forged). In this workspace a Byzantine processor
//! executes the honest code with a [`ProtocolHooks`](mvbc_core::ProtocolHooks)
//! implementation that mutates outgoing information at every send point,
//! including inside the `Broadcast_Single_Bit` sub-protocol.
//!
//! The strategies here cover every hook point at least once and include
//! the orchestrated [`WorstCaseDiagnosis`] adversary that drives the
//! diagnosis stage toward its `t(t+1)` bound (Theorem 1), used by
//! experiment E4.
//!
//! # Examples
//!
//! A corrupted symbol triggers detection and diagnosis, yet every
//! fault-free processor still decides the common input:
//!
//! ```
//! use mvbc_adversary::CorruptSymbolTo;
//! use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
//! use mvbc_metrics::MetricsSink;
//!
//! let cfg = ConsensusConfig::new(4, 1, 64)?;
//! let v = vec![7u8; 64];
//! let hooks: Vec<Box<dyn ProtocolHooks>> = vec![
//!     Box::new(CorruptSymbolTo::new(vec![3])), // node 0 is Byzantine
//!     NoopHooks::boxed(),
//!     NoopHooks::boxed(),
//!     NoopHooks::boxed(),
//! ];
//! let run = simulate_consensus(&cfg, vec![v.clone(); 4], hooks, MetricsSink::new());
//! for honest in 1..4 {
//!     assert_eq!(run.outputs[honest], v);
//! }
//! assert!(run.reports[1].diagnosis_invocations >= 1);
//! # Ok::<(), mvbc_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsb_attacks;
pub mod campaign;
mod corrupt;
mod liars;
mod random;
mod scripted;
mod silent;
mod sleeper;
mod worst_case;

pub use bsb_attacks::{BsbEquivocator, KingLiar};
pub use corrupt::{CorruptDiagnosisSymbol, CorruptSymbolTo, EquivocateSymbol, ShiftedInput};
pub use liars::{FalseDetect, LieMVector, LieTrust};
pub use random::RandomAdversary;
pub use scripted::{ScriptedAdversary, Strategy, SymbolAction, VectorLie};
pub use silent::{CrashAt, Silent};
pub use sleeper::{Deadline, Sleeper};
pub use worst_case::WorstCaseDiagnosis;
