//! A randomized Byzantine strategy for property-based testing.

use mvbc_bsb::BsbHooks;
use mvbc_core::ProtocolHooks;
use mvbc_netsim::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deviates at every hook point with probability `p`, driven by a seeded
/// RNG (deterministic per seed, so failures reproduce).
///
/// Used by the property tests: for *any* seed, fault-free safety must
/// hold — agreement, validity, bounded diagnosis count, and no
/// honest-honest diagnosis-graph edge ever removed.
#[derive(Debug)]
pub struct RandomAdversary {
    rng: StdRng,
    p: f64,
}

impl RandomAdversary {
    /// Creates a strategy that misbehaves at each opportunity with
    /// probability `p` (clamped to `[0, 1]`).
    pub fn new(seed: u64, p: f64) -> Self {
        RandomAdversary {
            rng: StdRng::seed_from_u64(seed),
            p: p.clamp(0.0, 1.0),
        }
    }

    fn fire(&mut self) -> bool {
        self.rng.random_bool(self.p)
    }
}

impl BsbHooks for RandomAdversary {
    fn source_bits(&mut self, _session: &'static str, _to: NodeId, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            if self.fire() {
                *b = !*b;
            }
        }
    }

    fn king_values(&mut self, _session: &'static str, _phase: usize, _to: NodeId, values: &mut [bool]) {
        for v in values.iter_mut() {
            if self.fire() {
                *v = !*v;
            }
        }
    }

    fn king_proposals(&mut self, _session: &'static str, _phase: usize, _to: NodeId, proposals: &mut [u8]) {
        for p in proposals.iter_mut() {
            if self.fire() {
                *p = self.rng.random_range(0..3);
            }
        }
    }

    fn king_bits(&mut self, _session: &'static str, _phase: usize, _to: NodeId, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            if self.fire() {
                *b = !*b;
            }
        }
    }
}

impl ProtocolHooks for RandomAdversary {
    fn matching_symbol(&mut self, _g: usize, _to: NodeId, payload: &mut Vec<u8>) -> bool {
        if self.fire() {
            for b in payload.iter_mut() {
                *b = self.rng.random();
            }
        }
        !self.fire() || !payload.is_empty() // occasionally suppress empty sends
    }

    fn m_vector(&mut self, _g: usize, m: &mut Vec<bool>) {
        for e in m.iter_mut() {
            if self.fire() {
                *e = !*e;
            }
        }
    }

    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        if self.fire() {
            *flag = !*flag;
        }
    }

    fn diagnosis_symbol_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        for b in bits.iter_mut() {
            if self.fire() {
                *b = !*b;
            }
        }
    }

    fn trust_vector(&mut self, _g: usize, trust: &mut Vec<bool>) {
        for e in trust.iter_mut() {
            if self.fire() {
                *e = !*e;
            }
        }
    }

    fn input_override(&mut self, _g: usize, value: &mut Vec<u8>) {
        if self.fire() {
            for b in value.iter_mut() {
                *b = self.rng.random();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut a = RandomAdversary::new(seed, 0.5);
            let mut m = vec![true; 32];
            a.m_vector(0, &mut m);
            m
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn zero_probability_is_honest() {
        let mut a = RandomAdversary::new(1, 0.0);
        let mut m = vec![true, false, true];
        a.m_vector(0, &mut m);
        assert_eq!(m, vec![true, false, true]);
        let mut flag = false;
        a.detected_flag(0, &mut flag);
        assert!(!flag);
    }

    #[test]
    fn full_probability_always_fires() {
        let mut a = RandomAdversary::new(1, 1.0);
        let mut flag = false;
        a.detected_flag(0, &mut flag);
        assert!(flag);
    }
}
