//! Enumerable scripted adversary for exhaustive state-space sweeps.
//!
//! The Byzantine adversary's *content* choices at each protocol decision
//! point form a finite space once each choice is restricted to a small
//! set of canonical behaviours (honest / flip / drop / uniform lies).
//! This is the standard reduction used when model-checking Byzantine
//! protocols: for the symbol-comparison logic of Algorithm 1, a faulty
//! symbol either equals the honest one or it does not — *which* wrong
//! value it takes never changes any comparison outcome, so one canonical
//! corruption per relation class covers the full behaviour space of the
//! matching/checking/diagnosis state machine.
//!
//! [`Strategy`] captures one element of that space; [`Strategy::grid`]
//! enumerates all of them for a given `n`. The workspace-level
//! `exhaustive_small_n` test sweeps every strategy, every choice of the
//! faulty processor and several input patterns, asserting Termination,
//! Consistency, Validity and the diagnosis-graph invariants on every
//! branch.

use mvbc_bsb::BsbHooks;
use mvbc_core::ProtocolHooks;
use mvbc_netsim::NodeId;

/// Per-receiver treatment of the matching-stage symbol (line 1(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolAction {
    /// Send the correct coded symbol.
    Honest,
    /// Send a corrupted symbol (bitwise complement — canonical "wrong").
    Flip,
    /// Send nothing (the receiver records `⊥`).
    Drop,
}

/// Uniform lie applied to a broadcast boolean vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorLie {
    /// Broadcast the truthful vector.
    Truthful,
    /// Claim `true` everywhere.
    AllTrue,
    /// Claim `false` everywhere.
    AllFalse,
}

impl VectorLie {
    const ALL: [VectorLie; 3] = [VectorLie::Truthful, VectorLie::AllTrue, VectorLie::AllFalse];

    fn apply(self, v: &mut [bool]) {
        match self {
            VectorLie::Truthful => {}
            VectorLie::AllTrue => v.iter_mut().for_each(|b| *b = true),
            VectorLie::AllFalse => v.iter_mut().for_each(|b| *b = false),
        }
    }
}

/// One complete scripted behaviour for a single Byzantine processor.
///
/// Applied identically in every generation (the diagnosis graph
/// remembers across generations, so a repeated strategy exercises the
/// isolation machinery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strategy {
    /// Matching-stage symbol treatment per receiver id (length `n`; the
    /// entry at the adversary's own id is ignored).
    pub symbols: Vec<SymbolAction>,
    /// Lie applied to the `M` vector before broadcast (line 1(d)).
    pub m_lie: VectorLie,
    /// Announce `Detected = true` as an outsider even when the received
    /// symbols are consistent (line 2(b)).
    pub false_detect: bool,
    /// Corrupt the diagnosis-stage broadcast of `S_j[j]` (line 3(a)).
    pub corrupt_rsharp: bool,
    /// Lie applied to the `Trust` vector before broadcast (line 3(d)).
    pub trust_lie: VectorLie,
    /// Equivocate inside every `Broadcast_Single_Bit` source round:
    /// flip the sourced bits for odd-id recipients.
    pub bsb_equivocate: bool,
    /// Use a different input value (complement of the honest one).
    pub input_flip: bool,
}

impl Strategy {
    /// The fully honest strategy (useful as a grid sanity anchor).
    pub fn honest(n: usize) -> Self {
        Strategy {
            symbols: vec![SymbolAction::Honest; n],
            m_lie: VectorLie::Truthful,
            false_detect: false,
            corrupt_rsharp: false,
            trust_lie: VectorLie::Truthful,
            bsb_equivocate: false,
            input_flip: false,
        }
    }

    /// Enumerates the full strategy grid for the Byzantine processor
    /// `me` in an `n`-processor network: `3^(n-1)` symbol patterns (one
    /// action per receiver) × 3 `M` lies × 2 detect × 2 `R#` × 3 trust
    /// lies × 2 BSB equivocation × 2 input choices.
    ///
    /// The count grows as `144 · 3^(n-1)`; intended for `n = 4` (3 888
    /// strategies) and smaller.
    pub fn grid(n: usize, me: NodeId) -> Vec<Strategy> {
        let receivers: Vec<usize> = (0..n).filter(|&j| j != me).collect();
        let mut out = Vec::new();
        let patterns = 3usize.pow(receivers.len() as u32);
        for pat in 0..patterns {
            let mut symbols = vec![SymbolAction::Honest; n];
            let mut rest = pat;
            for &j in &receivers {
                symbols[j] = match rest % 3 {
                    0 => SymbolAction::Honest,
                    1 => SymbolAction::Flip,
                    _ => SymbolAction::Drop,
                };
                rest /= 3;
            }
            for m_lie in VectorLie::ALL {
                for false_detect in [false, true] {
                    for corrupt_rsharp in [false, true] {
                        for trust_lie in VectorLie::ALL {
                            for bsb_equivocate in [false, true] {
                                for input_flip in [false, true] {
                                    out.push(Strategy {
                                        symbols: symbols.clone(),
                                        m_lie,
                                        false_detect,
                                        corrupt_rsharp,
                                        trust_lie,
                                        bsb_equivocate,
                                        input_flip,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// A reduced grid that drops the two axes already swept by dedicated
    /// BSB-level tests (`bsb_equivocate`) and the input axis, keeping
    /// the protocol-stage lies exhaustive. `36 · 3^(n-1)` entries.
    pub fn protocol_grid(n: usize, me: NodeId) -> Vec<Strategy> {
        Strategy::grid(n, me)
            .into_iter()
            .filter(|s| !s.bsb_equivocate && !s.input_flip)
            .collect()
    }

    /// True when every component is the honest choice.
    pub fn is_honest(&self) -> bool {
        self.symbols.iter().all(|&a| a == SymbolAction::Honest)
            && self.m_lie == VectorLie::Truthful
            && !self.false_detect
            && !self.corrupt_rsharp
            && self.trust_lie == VectorLie::Truthful
            && !self.bsb_equivocate
            && !self.input_flip
    }
}

/// A Byzantine processor executing one fixed [`Strategy`].
///
/// # Examples
///
/// Sweeping part of the canonical grid (the workspace's
/// `exhaustive_small_n` test runs the whole of it):
///
/// ```
/// use mvbc_adversary::{ScriptedAdversary, Strategy};
/// use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
/// use mvbc_metrics::MetricsSink;
///
/// let cfg = ConsensusConfig::new(4, 1, 16)?;
/// let v = vec![9u8; 16];
/// for strategy in Strategy::grid(4, 0).into_iter().step_by(500) {
///     let mut hooks: Vec<Box<dyn ProtocolHooks>> =
///         (0..4).map(|_| NoopHooks::boxed()).collect();
///     hooks[0] = Box::new(ScriptedAdversary::new(strategy));
///     let run = simulate_consensus(&cfg, vec![v.clone(); 4], hooks, MetricsSink::new());
///     for honest in 1..4 {
///         assert_eq!(run.outputs[honest], v); // validity on every branch
///     }
/// }
/// # Ok::<(), mvbc_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedAdversary {
    strategy: Strategy,
}

impl ScriptedAdversary {
    /// Creates the adversary for `strategy`.
    pub fn new(strategy: Strategy) -> Self {
        ScriptedAdversary { strategy }
    }

    /// The strategy being executed.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }
}

impl BsbHooks for ScriptedAdversary {
    fn source_bits(&mut self, _session: &'static str, to: NodeId, bits: &mut [bool]) {
        if self.strategy.bsb_equivocate && to % 2 == 1 {
            bits.iter_mut().for_each(|b| *b = !*b);
        }
    }
}

impl ProtocolHooks for ScriptedAdversary {
    fn input_override(&mut self, _g: usize, value: &mut Vec<u8>) {
        if self.strategy.input_flip {
            value.iter_mut().for_each(|b| *b = !*b);
        }
    }

    fn matching_symbol(&mut self, _g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        match self.strategy.symbols[to] {
            SymbolAction::Honest => true,
            SymbolAction::Flip => {
                payload.iter_mut().for_each(|b| *b = !*b);
                true
            }
            SymbolAction::Drop => false,
        }
    }

    fn m_vector(&mut self, _g: usize, m: &mut Vec<bool>) {
        self.strategy.m_lie.apply(m);
    }

    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        if self.strategy.false_detect {
            *flag = true;
        }
    }

    fn diagnosis_symbol_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        if self.strategy.corrupt_rsharp {
            bits.iter_mut().for_each(|b| *b = !*b);
        }
    }

    fn trust_vector(&mut self, _g: usize, trust: &mut Vec<bool>) {
        self.strategy.trust_lie.apply(trust);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size_n4() {
        // 3^3 symbol patterns × 3 × 2 × 2 × 3 × 2 × 2 = 27 × 144.
        assert_eq!(Strategy::grid(4, 0).len(), 27 * 144);
        assert_eq!(Strategy::protocol_grid(4, 0).len(), 27 * 36);
    }

    #[test]
    fn grid_contains_honest_exactly_once() {
        let honest: Vec<_> =
            Strategy::grid(4, 2).into_iter().filter(Strategy::is_honest).collect();
        assert_eq!(honest.len(), 1);
        assert_eq!(honest[0], Strategy::honest(4));
    }

    #[test]
    fn grid_entries_are_distinct() {
        let grid = Strategy::grid(4, 1);
        for (i, a) in grid.iter().enumerate() {
            for b in &grid[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn scripted_honest_is_noop() {
        let mut adv = ScriptedAdversary::new(Strategy::honest(4));
        let mut payload = vec![0xAAu8, 0x55];
        assert!(adv.matching_symbol(0, 1, &mut payload));
        assert_eq!(payload, vec![0xAA, 0x55]);
        let mut m = vec![true, false];
        adv.m_vector(0, &mut m);
        assert_eq!(m, vec![true, false]);
        let mut flag = false;
        adv.detected_flag(0, &mut flag);
        assert!(!flag);
    }

    #[test]
    fn scripted_flip_and_drop() {
        let mut strat = Strategy::honest(4);
        strat.symbols[1] = SymbolAction::Flip;
        strat.symbols[2] = SymbolAction::Drop;
        let mut adv = ScriptedAdversary::new(strat);
        let mut payload = vec![0x0Fu8];
        assert!(adv.matching_symbol(0, 1, &mut payload));
        assert_eq!(payload, vec![0xF0]);
        assert!(!adv.matching_symbol(0, 2, &mut payload));
        assert!(adv.matching_symbol(0, 3, &mut payload));
    }

    #[test]
    fn scripted_lies_apply() {
        let mut strat = Strategy::honest(4);
        strat.m_lie = VectorLie::AllTrue;
        strat.trust_lie = VectorLie::AllFalse;
        strat.false_detect = true;
        strat.corrupt_rsharp = true;
        let mut adv = ScriptedAdversary::new(strat);
        let mut m = vec![false, false];
        adv.m_vector(0, &mut m);
        assert_eq!(m, vec![true, true]);
        let mut trust = vec![true, true];
        adv.trust_vector(0, &mut trust);
        assert_eq!(trust, vec![false, false]);
        let mut flag = false;
        adv.detected_flag(0, &mut flag);
        assert!(flag);
        let mut bits = vec![true, false];
        adv.diagnosis_symbol_bits(0, &mut bits);
        assert_eq!(bits, vec![false, true]);
    }

    #[test]
    fn bsb_equivocation_targets_odd_ids() {
        let mut strat = Strategy::honest(4);
        strat.bsb_equivocate = true;
        let mut adv = ScriptedAdversary::new(strat);
        let mut bits = vec![true, false];
        adv.source_bits("s", 2, &mut bits);
        assert_eq!(bits, vec![true, false]);
        adv.source_bits("s", 3, &mut bits);
        assert_eq!(bits, vec![false, true]);
    }
}
