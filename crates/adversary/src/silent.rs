//! Crash/silence strategies.

use mvbc_bsb::BsbHooks;
use mvbc_core::ProtocolHooks;

/// Crashes before the first generation: the processor never sends
/// anything. The honest processors treat its silence as `⊥` everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Silent;

impl BsbHooks for Silent {}

impl ProtocolHooks for Silent {
    fn crash_before_generation(&mut self, _g: usize) -> bool {
        true
    }
}

/// Participates honestly until generation `g`, then crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashAt {
    /// First generation in which the processor no longer participates.
    pub generation: usize,
}

impl CrashAt {
    /// Crash immediately before generation `generation`.
    pub fn new(generation: usize) -> Self {
        CrashAt { generation }
    }
}

impl BsbHooks for CrashAt {}

impl ProtocolHooks for CrashAt {
    fn crash_before_generation(&mut self, g: usize) -> bool {
        g >= self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_always_crashes() {
        let mut s = Silent;
        assert!(s.crash_before_generation(0));
        assert!(s.crash_before_generation(100));
    }

    #[test]
    fn crash_at_threshold() {
        let mut c = CrashAt::new(3);
        assert!(!c.crash_before_generation(0));
        assert!(!c.crash_before_generation(2));
        assert!(c.crash_before_generation(3));
        assert!(c.crash_before_generation(9));
    }
}
