//! Late-activation ("sleeper") adversary combinator.
//!
//! The paper's adversary "can take over up to `t` processors **at any
//! point during the algorithm**" (§1). Most strategies in this crate
//! misbehave from generation 0; [`Sleeper`] wraps any strategy and keeps
//! it dormant (honest) until a chosen generation, modelling a processor
//! that is taken over mid-run — after the diagnosis graph has already
//! accumulated trust in it. The `t(t+1)` bound of Theorem 1 is global,
//! so late activation must not buy the adversary extra diagnoses.

use mvbc_bsb::BsbHooks;
use mvbc_core::{DiagGraph, ProtocolHooks};
use mvbc_netsim::NodeId;

/// Wraps an inner strategy, activating it from `start_generation` on.
///
/// Before activation every hook behaves honestly. BSB-level hooks
/// (which have no generation parameter) are keyed off the most recent
/// `observe_generation_start` call.
///
/// # Examples
///
/// ```
/// use mvbc_adversary::{CorruptSymbolTo, Sleeper};
/// use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
/// use mvbc_metrics::MetricsSink;
///
/// // Honest for 3 generations, then corrupts toward processor 3.
/// let cfg = ConsensusConfig::with_gen_bytes(4, 1, 48, 8)?;
/// let v = vec![5u8; 48];
/// let mut hooks: Vec<Box<dyn ProtocolHooks>> =
///     (0..4).map(|_| NoopHooks::boxed()).collect();
/// hooks[2] = Box::new(Sleeper::new(3, CorruptSymbolTo::new(vec![3])));
/// let run = simulate_consensus(&cfg, vec![v.clone(); 4], hooks, MetricsSink::new());
/// assert_eq!(run.outputs[0], v); // agreement survives the mid-run takeover
/// # Ok::<(), mvbc_core::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Sleeper<H> {
    inner: H,
    start_generation: usize,
    current_generation: usize,
}

impl<H: ProtocolHooks> Sleeper<H> {
    /// Sleeps through generations `0..start_generation`, then runs
    /// `inner`.
    pub fn new(start_generation: usize, inner: H) -> Self {
        Sleeper {
            inner,
            start_generation,
            current_generation: 0,
        }
    }

    fn awake(&self) -> bool {
        self.current_generation >= self.start_generation
    }
}

impl<H: ProtocolHooks> BsbHooks for Sleeper<H> {
    fn source_bits(&mut self, session: &'static str, to: NodeId, bits: &mut [bool]) {
        if self.awake() {
            self.inner.source_bits(session, to, bits);
        }
    }

    fn king_values(&mut self, session: &'static str, phase: usize, to: NodeId, values: &mut [bool]) {
        if self.awake() {
            self.inner.king_values(session, phase, to, values);
        }
    }

    fn king_proposals(&mut self, session: &'static str, phase: usize, to: NodeId, proposals: &mut [u8]) {
        if self.awake() {
            self.inner.king_proposals(session, phase, to, proposals);
        }
    }

    fn king_bits(&mut self, session: &'static str, phase: usize, to: NodeId, bits: &mut [bool]) {
        if self.awake() {
            self.inner.king_bits(session, phase, to, bits);
        }
    }

    fn eig_values(&mut self, session: &'static str, round: usize, to: NodeId, values: &mut [bool]) {
        if self.awake() {
            self.inner.eig_values(session, round, to, values);
        }
    }

    fn ds_relay(&mut self, session: &'static str, round: usize, instance: usize, bit: bool) -> bool {
        if self.awake() {
            self.inner.ds_relay(session, round, instance, bit)
        } else {
            true
        }
    }
}

impl<H: ProtocolHooks> ProtocolHooks for Sleeper<H> {
    fn observe_generation_start(&mut self, g: usize, me: NodeId, diag: &DiagGraph) {
        self.current_generation = g;
        self.inner.observe_generation_start(g, me, diag);
    }

    fn input_override(&mut self, g: usize, value: &mut Vec<u8>) {
        if self.awake() {
            self.inner.input_override(g, value);
        }
    }

    fn matching_symbol(&mut self, g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        if self.awake() {
            self.inner.matching_symbol(g, to, payload)
        } else {
            true
        }
    }

    fn m_vector(&mut self, g: usize, m: &mut Vec<bool>) {
        if self.awake() {
            self.inner.m_vector(g, m);
        }
    }

    fn detected_flag(&mut self, g: usize, flag: &mut bool) {
        if self.awake() {
            self.inner.detected_flag(g, flag);
        }
    }

    fn diagnosis_symbol_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        if self.awake() {
            self.inner.diagnosis_symbol_bits(g, bits);
        }
    }

    fn trust_vector(&mut self, g: usize, trust: &mut Vec<bool>) {
        if self.awake() {
            self.inner.trust_vector(g, trust);
        }
    }

    fn crash_before_generation(&mut self, g: usize) -> bool {
        self.awake() && self.inner.crash_before_generation(g)
    }
}

/// The inverse of [`Sleeper`]: runs the inner strategy only for
/// generations `0..stop_generation`, honest afterwards.
///
/// Used by experiment E14 to bound how long an orchestrated adversary
/// keeps attacking, separating "attack persistence" from the `t(t+1)`
/// diagnosis budget it can actually spend.
#[derive(Debug)]
pub struct Deadline<H> {
    inner: H,
    stop_generation: usize,
    current_generation: usize,
}

impl<H: ProtocolHooks> Deadline<H> {
    /// Runs `inner` for generations `0..stop_generation`, then honest.
    pub fn new(stop_generation: usize, inner: H) -> Self {
        Deadline {
            inner,
            stop_generation,
            current_generation: 0,
        }
    }

    fn active(&self) -> bool {
        self.current_generation < self.stop_generation
    }
}

impl<H: ProtocolHooks> BsbHooks for Deadline<H> {
    fn source_bits(&mut self, session: &'static str, to: NodeId, bits: &mut [bool]) {
        if self.active() {
            self.inner.source_bits(session, to, bits);
        }
    }

    fn king_values(&mut self, session: &'static str, phase: usize, to: NodeId, values: &mut [bool]) {
        if self.active() {
            self.inner.king_values(session, phase, to, values);
        }
    }

    fn king_proposals(&mut self, session: &'static str, phase: usize, to: NodeId, proposals: &mut [u8]) {
        if self.active() {
            self.inner.king_proposals(session, phase, to, proposals);
        }
    }

    fn king_bits(&mut self, session: &'static str, phase: usize, to: NodeId, bits: &mut [bool]) {
        if self.active() {
            self.inner.king_bits(session, phase, to, bits);
        }
    }

    fn eig_values(&mut self, session: &'static str, round: usize, to: NodeId, values: &mut [bool]) {
        if self.active() {
            self.inner.eig_values(session, round, to, values);
        }
    }

    fn ds_relay(&mut self, session: &'static str, round: usize, instance: usize, bit: bool) -> bool {
        if self.active() {
            self.inner.ds_relay(session, round, instance, bit)
        } else {
            true
        }
    }
}

impl<H: ProtocolHooks> ProtocolHooks for Deadline<H> {
    fn observe_generation_start(&mut self, g: usize, me: NodeId, diag: &DiagGraph) {
        self.current_generation = g;
        self.inner.observe_generation_start(g, me, diag);
    }

    fn input_override(&mut self, g: usize, value: &mut Vec<u8>) {
        if self.active() {
            self.inner.input_override(g, value);
        }
    }

    fn matching_symbol(&mut self, g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        if self.active() {
            self.inner.matching_symbol(g, to, payload)
        } else {
            true
        }
    }

    fn m_vector(&mut self, g: usize, m: &mut Vec<bool>) {
        if self.active() {
            self.inner.m_vector(g, m);
        }
    }

    fn detected_flag(&mut self, g: usize, flag: &mut bool) {
        if self.active() {
            self.inner.detected_flag(g, flag);
        }
    }

    fn diagnosis_symbol_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        if self.active() {
            self.inner.diagnosis_symbol_bits(g, bits);
        }
    }

    fn trust_vector(&mut self, g: usize, trust: &mut Vec<bool>) {
        if self.active() {
            self.inner.trust_vector(g, trust);
        }
    }

    fn crash_before_generation(&mut self, g: usize) -> bool {
        self.active() && self.inner.crash_before_generation(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorruptSymbolTo;
    use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
    use mvbc_metrics::MetricsSink;

    #[test]
    fn dormant_phase_is_honest() {
        let mut sleeper = Sleeper::new(2, CorruptSymbolTo::new(vec![1]));
        sleeper.observe_generation_start(0, 0, &DiagGraph::new(4, 1));
        let mut payload = vec![0xFFu8];
        assert!(sleeper.matching_symbol(0, 1, &mut payload));
        assert_eq!(payload, vec![0xFF], "dormant sleeper must not corrupt");
    }

    #[test]
    fn wakes_at_start_generation() {
        let mut sleeper = Sleeper::new(2, CorruptSymbolTo::new(vec![1]));
        sleeper.observe_generation_start(2, 0, &DiagGraph::new(4, 1));
        let mut payload = vec![0xFFu8];
        let _ = sleeper.matching_symbol(2, 1, &mut payload);
        assert_ne!(payload, vec![0xFF], "awake sleeper must corrupt");
    }

    #[test]
    fn deadline_stops_attacking() {
        let mut d = Deadline::new(2, CorruptSymbolTo::new(vec![1]));
        d.observe_generation_start(1, 0, &DiagGraph::new(4, 1));
        let mut payload = vec![0xFFu8];
        let _ = d.matching_symbol(1, 1, &mut payload);
        assert_ne!(payload, vec![0xFF], "active deadline must corrupt");
        d.observe_generation_start(2, 0, &DiagGraph::new(4, 1));
        let mut payload = vec![0xFFu8];
        assert!(d.matching_symbol(2, 1, &mut payload));
        assert_eq!(payload, vec![0xFF], "expired deadline must be honest");
    }

    #[test]
    fn deadline_bounded_attack_preserves_invariants() {
        let cfg = ConsensusConfig::with_gen_bytes(4, 1, 48, 8).unwrap();
        let v: Vec<u8> = (0..48).map(|i| (i * 5) as u8).collect();
        let hooks: Vec<Box<dyn ProtocolHooks>> = (0..4)
            .map(|i| {
                if i == 0 {
                    Box::new(Deadline::new(2, CorruptSymbolTo::new(vec![3])))
                        as Box<dyn ProtocolHooks>
                } else {
                    NoopHooks::boxed()
                }
            })
            .collect();
        let run = simulate_consensus(&cfg, vec![v.clone(); 4], hooks, MetricsSink::new());
        for honest in 1..4 {
            assert_eq!(run.outputs[honest], v);
            assert!(run.reports[honest].diagnosis_invocations <= 2);
        }
    }

    #[test]
    fn late_takeover_cannot_break_agreement_or_bounds() {
        // Processor 2 behaves honestly for 3 generations, then corrupts
        // symbols: agreement, validity and the t(t+1) diagnosis bound
        // must all survive the mid-run takeover.
        let cfg = ConsensusConfig::with_gen_bytes(4, 1, 48, 8).unwrap();
        let v: Vec<u8> = (0..48).map(|i| i as u8).collect();
        let hooks: Vec<Box<dyn ProtocolHooks>> = (0..4)
            .map(|i| {
                if i == 2 {
                    // Corrupt toward a single victim so the sleeper stays
                    // inside P_match and the inconsistency must be
                    // diagnosed (corrupting toward everyone would merely
                    // exclude it from P_match, diagnosis-free).
                    Box::new(Sleeper::new(3, CorruptSymbolTo::new(vec![3])))
                        as Box<dyn ProtocolHooks>
                } else {
                    NoopHooks::boxed()
                }
            })
            .collect();
        let run = simulate_consensus(&cfg, vec![v.clone(); 4], hooks, MetricsSink::new());
        for honest in [0usize, 1, 3] {
            assert_eq!(run.outputs[honest], v);
            assert!(run.reports[honest].diagnosis_invocations <= 2);
            assert!(run.reports[honest].isolated.iter().all(|&i| i == 2));
        }
        // The attack really fired: at least one diagnosis ran after g=3.
        assert!(run.reports[0].diagnosis_invocations >= 1);
    }
}
