//! The orchestrated worst-case adversary for experiment E4.
//!
//! Theorem 1 bounds the number of diagnosis-stage executions by `t(t+1)`:
//! each diagnosis removes at least one edge adjacent to a faulty vertex
//! (Lemma 4), and a faulty vertex is isolated once `t + 1` of its edges
//! are gone, so `t` faulty processors can spend at most `t(t+1)` edges.
//!
//! [`WorstCaseDiagnosis`] tries to *realise* that bound: the colluding
//! faulty processors take turns (one per generation); the acting processor
//! corrupts its matching-stage symbol toward a single carefully chosen
//! honest victim — the highest-id processor that still trusts it — and
//! claims a (false) detection when it ends up outside `P_match` itself.
//! Either path triggers a diagnosis stage, and behaving honestly *inside*
//! the diagnosis keeps the damage to roughly one sacrificed edge per
//! diagnosis, stretching the faulty processors' edge budget as far as it
//! goes.

use mvbc_bsb::BsbHooks;
use mvbc_core::{DiagGraph, ProtocolHooks};
use mvbc_netsim::NodeId;

/// One member of the colluding worst-case team (create one per faulty
/// processor, all with the same `faulty` list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorstCaseDiagnosis {
    faulty: Vec<NodeId>,
    me: Option<NodeId>,
    acting: bool,
    victim: Option<NodeId>,
}

impl WorstCaseDiagnosis {
    /// Creates the strategy for one member of the colluding set `faulty`
    /// (ascending ids; every member must receive the same list).
    pub fn new(faulty: Vec<NodeId>) -> Self {
        WorstCaseDiagnosis {
            faulty,
            me: None,
            acting: false,
            victim: None,
        }
    }

    /// The victim currently under attack (visible for tests).
    pub fn victim(&self) -> Option<NodeId> {
        self.victim
    }
}

impl BsbHooks for WorstCaseDiagnosis {}

impl ProtocolHooks for WorstCaseDiagnosis {
    fn observe_generation_start(&mut self, g: usize, me: NodeId, diag: &DiagGraph) {
        self.me = Some(me);
        // Take turns: faulty processor `g mod |faulty|` acts this
        // generation (isolated members skip their turn implicitly — the
        // engine stops running them).
        let turn = self.faulty[g % self.faulty.len()];
        self.acting = turn == me && !diag.is_isolated(me);
        // Victim: highest-id honest processor that still trusts me.
        self.victim = if self.acting {
            (0..diag.n())
                .rev()
                .find(|&v| v != me && !self.faulty.contains(&v) && diag.trusts(me, v))
        } else {
            None
        };
    }

    fn matching_symbol(&mut self, _g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        if self.acting && Some(to) == self.victim {
            for b in payload.iter_mut() {
                *b ^= 0xFF;
            }
        }
        true
    }

    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        // If the acting processor landed outside P_match its symbol
        // corruption is invisible (all P_match symbols are consistent);
        // claim a detection anyway to force the diagnosis stage and burn
        // one more of our own edges (or get isolated per line 3(f)).
        if self.acting {
            *flag = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turn_taking_round_robin() {
        let diag = DiagGraph::new(7, 2);
        let mut a = WorstCaseDiagnosis::new(vec![0, 1]);
        a.observe_generation_start(0, 0, &diag);
        assert!(a.acting);
        a.observe_generation_start(1, 0, &diag);
        assert!(!a.acting);
        a.observe_generation_start(2, 0, &diag);
        assert!(a.acting);
    }

    #[test]
    fn victim_is_highest_trusted_honest() {
        let mut diag = DiagGraph::new(7, 2);
        let mut a = WorstCaseDiagnosis::new(vec![0, 1]);
        a.observe_generation_start(0, 0, &diag);
        assert_eq!(a.victim(), Some(6));
        // After losing the edge to 6, the next victim is 5.
        diag.remove_edge(0, 6);
        a.observe_generation_start(2, 0, &diag);
        assert_eq!(a.victim(), Some(5));
    }

    #[test]
    fn non_acting_member_stays_honest() {
        let diag = DiagGraph::new(7, 2);
        let mut a = WorstCaseDiagnosis::new(vec![0, 1]);
        a.observe_generation_start(0, 1, &diag); // node 1, but turn = 0
        assert!(!a.acting);
        let mut payload = vec![0xAB];
        a.matching_symbol(0, 6, &mut payload);
        assert_eq!(payload, vec![0xAB]);
        let mut flag = false;
        a.detected_flag(0, &mut flag);
        assert!(!flag);
    }

    #[test]
    fn acting_member_corrupts_only_victim() {
        let diag = DiagGraph::new(4, 1);
        let mut a = WorstCaseDiagnosis::new(vec![0]);
        a.observe_generation_start(0, 0, &diag);
        assert_eq!(a.victim(), Some(3));
        let mut to_victim = vec![0x00];
        a.matching_symbol(0, 3, &mut to_victim);
        assert_eq!(to_victim, vec![0xFF]);
        let mut to_other = vec![0x00];
        a.matching_symbol(0, 2, &mut to_other);
        assert_eq!(to_other, vec![0x00]);
    }
}
