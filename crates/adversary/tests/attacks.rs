//! Adversarial end-to-end tests: every strategy must leave the fault-free
//! processors' safety intact (agreement + validity), and attacks that
//! trigger diagnosis must damage only faulty processors' edges.

use mvbc_adversary::{
    BsbEquivocator, CorruptDiagnosisSymbol, CorruptSymbolTo, CrashAt, EquivocateSymbol,
    FalseDetect, KingLiar, LieMVector, LieTrust, RandomAdversary, ShiftedInput, Silent,
    WorstCaseDiagnosis,
};
use mvbc_core::{simulate_consensus, ConsensusConfig, ConsensusRun, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;

fn value(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(17).wrapping_add(seed)).collect()
}

/// Runs consensus with `faulty[i]`'s hooks at those ids, honest elsewhere,
/// all processors holding the same input.
fn run_attack(
    n: usize,
    t: usize,
    l: usize,
    gen_bytes: Option<usize>,
    faulty: Vec<(usize, Box<dyn ProtocolHooks>)>,
) -> (ConsensusRun, Vec<u8>, Vec<usize>) {
    let cfg = match gen_bytes {
        Some(d) => ConsensusConfig::with_gen_bytes(n, t, l, d).unwrap(),
        None => ConsensusConfig::new(n, t, l).unwrap(),
    };
    let v = value(l, 3);
    let faulty_ids: Vec<usize> = faulty.iter().map(|(id, _)| *id).collect();
    assert!(faulty_ids.len() <= t, "more faulty nodes than t");
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
    for (id, h) in faulty {
        hooks[id] = h;
    }
    let run = simulate_consensus(&cfg, vec![v.clone(); n], hooks, MetricsSink::new());
    (run, v, faulty_ids)
}

/// Asserts the core safety properties from the perspective of honest
/// processors: agreement on the common input, bounded diagnosis count,
/// and no honest-honest edge removed.
fn assert_safety(run: &ConsensusRun, expect: &[u8], faulty: &[usize], t: usize) {
    let n = run.outputs.len();
    for id in 0..n {
        if faulty.contains(&id) {
            continue;
        }
        assert_eq!(run.outputs[id], expect, "honest node {id} decided wrong value");
        let r = &run.reports[id];
        assert!(
            r.diagnosis_invocations <= (t * (t + 1)) as u64,
            "diagnosis bound violated: {} > t(t+1)",
            r.diagnosis_invocations
        );
        for iso in &r.isolated {
            assert!(faulty.contains(iso), "honest node {iso} was isolated");
        }
    }
    // Honest reports agree with each other on the shared diagnosis state.
    let honest: Vec<usize> = (0..n).filter(|id| !faulty.contains(id)).collect();
    for w in honest.windows(2) {
        assert_eq!(
            run.reports[w[0]].isolated, run.reports[w[1]].isolated,
            "isolation sets diverged between honest nodes"
        );
        assert_eq!(
            run.reports[w[0]].diagnosis_invocations,
            run.reports[w[1]].diagnosis_invocations
        );
    }
}

#[test]
fn silent_node_tolerated() {
    let (run, v, faulty) = run_attack(4, 1, 64, None, vec![(2, Box::new(Silent))]);
    assert_safety(&run, &v, &faulty, 1);
    // Silence alone never triggers diagnosis: the other n - t form P_match.
    assert_eq!(run.reports[0].diagnosis_invocations, 0);
}

#[test]
fn crash_mid_protocol_tolerated() {
    let (run, v, faulty) = run_attack(4, 1, 64, Some(8), vec![(1, Box::new(CrashAt::new(4)))]);
    assert_safety(&run, &v, &faulty, 1);
}

#[test]
fn corrupt_symbol_triggers_diagnosis_and_edge_removal() {
    let (run, v, faulty) = run_attack(
        4,
        1,
        64,
        Some(16),
        vec![(0, Box::new(CorruptSymbolTo::for_first_generations(vec![3], 1)))],
    );
    assert_safety(&run, &v, &faulty, 1);
    let r = &run.reports[1];
    assert!(r.diagnosis_invocations >= 1, "corruption must be diagnosed");
    assert!(r.edges_removed >= 1);
}

#[test]
fn equivocating_symbols_tolerated() {
    let (run, v, faulty) = run_attack(7, 2, 128, None, vec![(0, Box::new(EquivocateSymbol))]);
    assert_safety(&run, &v, &faulty, 2);
}

#[test]
fn m_vector_liar_true_claims() {
    let (run, v, faulty) = run_attack(4, 1, 64, None, vec![(1, Box::new(LieMVector { claim: true }))]);
    assert_safety(&run, &v, &faulty, 1);
}

#[test]
fn m_vector_liar_false_claims() {
    let (run, v, faulty) =
        run_attack(4, 1, 64, None, vec![(1, Box::new(LieMVector { claim: false }))]);
    assert_safety(&run, &v, &faulty, 1);
    // Refusing to match anyone simply leaves the liar outside P_match;
    // the others agree without it.
    assert_eq!(run.reports[0].diagnosis_invocations, 0);
}

#[test]
fn false_detect_gets_isolated() {
    // Lemma 4 case 2(a)/line 3(f): a false accuser with consistent R# and
    // no removed edge is identified and isolated.
    let (run, v, faulty) = run_attack(4, 1, 64, Some(8), vec![(3, Box::new(FalseDetect))]);
    assert_safety(&run, &v, &faulty, 1);
    let r = &run.reports[0];
    assert!(r.diagnosis_invocations >= 1);
    assert_eq!(r.isolated, vec![3], "false detector must be isolated");
}

#[test]
fn trust_liar_burns_own_edges() {
    let (run, v, faulty) = run_attack(7, 2, 128, Some(16), vec![(6, Box::new(LieTrust::new(vec![])))]);
    assert_safety(&run, &v, &faulty, 2);
    let r = &run.reports[0];
    // Every removed edge must touch the liar (node 6) — checked
    // indirectly by assert_safety (no honest node isolated) plus at least
    // one diagnosis having run.
    assert!(r.diagnosis_invocations >= 1);
}

#[test]
fn corrupt_diagnosis_symbol_tolerated() {
    let (run, v, faulty) =
        run_attack(4, 1, 64, Some(8), vec![(3, Box::new(CorruptDiagnosisSymbol))]);
    assert_safety(&run, &v, &faulty, 1);
    assert!(run.reports[0].diagnosis_invocations >= 1);
}

#[test]
fn bsb_equivocator_cannot_break_broadcast_consistency() {
    let (run, v, faulty) = run_attack(4, 1, 64, None, vec![(2, Box::new(BsbEquivocator))]);
    assert_safety(&run, &v, &faulty, 1);
}

#[test]
fn king_liar_tolerated() {
    // Node 0 is king of phase 0 in every BSB instance; its lies split
    // non-confident processors only until an honest king re-unifies.
    let (run, v, faulty) = run_attack(4, 1, 64, None, vec![(0, Box::new(KingLiar))]);
    assert_safety(&run, &v, &faulty, 1);
}

#[test]
fn shifted_input_reduces_to_differing_inputs() {
    let (run, _v, faulty) = run_attack(4, 1, 64, None, vec![(2, Box::new(ShiftedInput))]);
    // Honest processors still hold the common value, so validity pins the
    // decision to it.
    let v = value(64, 3);
    assert_safety(&run, &v, &faulty, 1);
}

#[test]
fn two_colluding_byzantine_nodes_n7() {
    let (run, v, faulty) = run_attack(
        7,
        2,
        128,
        Some(16),
        vec![
            (5, Box::new(CorruptSymbolTo::new(vec![0, 1]))),
            (6, Box::new(FalseDetect)),
        ],
    );
    assert_safety(&run, &v, &faulty, 2);
    assert!(run.reports[0].diagnosis_invocations >= 1);
}

#[test]
fn worst_case_adversary_hits_diagnosis_bound_n4() {
    // t = 1: bound is t(t+1) = 2 diagnoses.
    let (run, v, faulty) = run_attack(
        4,
        1,
        200,
        Some(8), // 25 generations: plenty of rounds to act in
        vec![(0, Box::new(WorstCaseDiagnosis::new(vec![0])))],
    );
    assert_safety(&run, &v, &faulty, 1);
    let r = &run.reports[1];
    assert_eq!(
        r.diagnosis_invocations, 2,
        "worst case should achieve exactly t(t+1) = 2 diagnoses"
    );
    assert_eq!(r.isolated, vec![0], "faulty node must end up isolated");
}

#[test]
fn worst_case_adversary_n7_t2() {
    // t = 2: bound is 6 diagnoses; the team should get close to it.
    let (run, v, faulty) = run_attack(
        7,
        2,
        512,
        Some(16),
        vec![
            (0, Box::new(WorstCaseDiagnosis::new(vec![0, 1]))),
            (1, Box::new(WorstCaseDiagnosis::new(vec![0, 1]))),
        ],
    );
    assert_safety(&run, &v, &faulty, 2);
    let r = &run.reports[2];
    assert!(
        r.diagnosis_invocations >= 4,
        "worst case should get near t(t+1) = 6, got {}",
        r.diagnosis_invocations
    );
    assert!(r.diagnosis_invocations <= 6);
    assert_eq!(r.isolated, vec![0, 1]);
}

#[test]
fn random_adversaries_never_break_safety() {
    for seed in 0..5u64 {
        let (run, v, faulty) = run_attack(
            4,
            1,
            48,
            Some(16),
            vec![(3, Box::new(RandomAdversary::new(seed, 0.3)))],
        );
        assert_safety(&run, &v, &faulty, 1);
    }
}

#[test]
fn random_colluders_n7() {
    for seed in 0..3u64 {
        let (run, v, faulty) = run_attack(
            7,
            2,
            64,
            Some(16),
            vec![
                (2, Box::new(RandomAdversary::new(seed, 0.2))),
                (5, Box::new(RandomAdversary::new(seed.wrapping_add(99), 0.2))),
            ],
        );
        assert_safety(&run, &v, &faulty, 2);
    }
}

#[test]
fn adversary_cannot_forge_validity_with_differing_honest_inputs() {
    // Honest inputs differ; the adversary tries to push a value. The
    // decision must still be *common* among honest processors and must be
    // either one of the honest inputs or the default.
    let n = 4;
    let cfg = ConsensusConfig::new(n, 1, 32).unwrap();
    let mut inputs: Vec<Vec<u8>> = vec![value(32, 1), value(32, 1), value(32, 2), value(32, 9)];
    let hooks: Vec<Box<dyn ProtocolHooks>> = vec![
        NoopHooks::boxed(),
        NoopHooks::boxed(),
        NoopHooks::boxed(),
        Box::new(RandomAdversary::new(7, 0.4)),
    ];
    let run = simulate_consensus(&cfg, inputs.clone(), hooks, MetricsSink::new());
    let honest = [0usize, 1, 2];
    for w in honest.windows(2) {
        assert_eq!(run.outputs[w[0]], run.outputs[w[1]]);
    }
    let decided = &run.outputs[0];
    inputs.truncate(3);
    assert!(
        inputs.contains(decided) || *decided == cfg.default_value(),
        "decision must be an honest input or the default"
    );
}
