//! Baseline 1: bitwise multi-valued consensus.
//!
//! Runs one Phase-King binary consensus instance per bit of the value
//! (all `8L` instances batched into shared rounds — batching changes
//! wall-clock time only, not the bit count). This is the strawman of the
//! paper's §1: with a `Θ(n²)`-bit 1-bit primitive the total is `Θ(n² L)`
//! bits, a factor `≈ n/3` worse than Liang-Vaidya for large `L`.

use mvbc_bsb::{run_king_batch, BsbConfig, NoopBsbHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::bits::{pack_bits, unpack_bits};
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};

/// Modelled bit cost of the bitwise baseline with the paper's assumed
/// `B = Θ(n²)` primitive.
pub fn model_bits_theta_n2(n: usize, l_bits: u64) -> f64 {
    2.0 * (n as f64) * (n as f64) * l_bits as f64
}

/// Modelled bit cost with this workspace's Phase-King primitive
/// (`Θ(n²(t+1))` per bit; no extra source round since consensus is run
/// directly on local input bits).
pub fn model_bits_phase_king(n: usize, t: usize, l_bits: u64) -> f64 {
    let nf = n as f64;
    let tf = t as f64;
    (tf + 1.0) * (3.0 * nf * (nf - 1.0) + (nf - 1.0)) * l_bits as f64
}

/// Runs bitwise consensus among `n` fault-free processors over the
/// simulator and returns the decided values.
///
/// # Panics
///
/// Panics when `t >= n/3`, `inputs.len() != n`, or the inputs have
/// unequal lengths.
pub fn simulate_bitwise(
    n: usize,
    t: usize,
    inputs: Vec<Vec<u8>>,
    metrics: MetricsSink,
) -> Vec<Vec<u8>> {
    assert_eq!(inputs.len(), n, "one input per processor");
    let len = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == len), "equal-length inputs");

    let logics: Vec<NodeLogic<Vec<u8>>> = inputs
        .into_iter()
        .map(|value| {
            Box::new(move |ctx: &mut NodeCtx| {
                let bits = unpack_bits(&value, value.len() * 8).expect("exact length");
                let cfg = BsbConfig::new(t, "baseline.bitwise", vec![true; ctx.n()]);
                let decided = run_king_batch(ctx, &cfg, bits, &mut NoopBsbHooks);
                pack_bits(&decided)
            }) as NodeLogic<Vec<u8>>
        })
        .collect();
    run_simulation(SimConfig::new(n), metrics, logics).outputs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed)).collect()
    }

    #[test]
    fn validity_unanimous() {
        let v = value(32, 1);
        let outs = simulate_bitwise(4, 1, vec![v.clone(); 4], MetricsSink::new());
        assert!(outs.iter().all(|o| *o == v));
    }

    #[test]
    fn agreement_differing_inputs() {
        // Bitwise consensus decides *bit by bit*: agreement per bit, but
        // the result can be a blend that equals no processor's input —
        // exactly why it is only used as a complexity baseline here.
        let inputs: Vec<Vec<u8>> = (0..4).map(|i| value(16, i)).collect();
        let outs = simulate_bitwise(4, 1, inputs, MetricsSink::new());
        for o in &outs {
            assert_eq!(*o, outs[0]);
        }
    }

    #[test]
    fn measured_bits_match_phase_king_model() {
        let (n, t, l) = (4usize, 1usize, 64usize);
        let metrics = MetricsSink::new();
        let v = value(l, 3);
        let _ = simulate_bitwise(n, t, vec![v; n], metrics.clone());
        let measured = metrics.snapshot().total_logical_bits() as f64;
        let model = model_bits_phase_king(n, t, (l * 8) as u64);
        let ratio = measured / model;
        assert!((0.9..1.1).contains(&ratio), "measured {measured} vs model {model}");
    }

    #[test]
    fn cost_grows_quadratically_in_n() {
        let l = 16usize;
        let mut costs = Vec::new();
        for (n, t) in [(4usize, 1usize), (8, 2)] {
            let metrics = MetricsSink::new();
            let v = value(l, 0);
            let _ = simulate_bitwise(n, t, vec![v; n], metrics.clone());
            costs.push(metrics.snapshot().total_logical_bits() as f64);
        }
        // Doubling n (and scaling t) should grow cost by ≈ (t+1)·4 >> 2.
        assert!(costs[1] / costs[0] > 4.0);
    }

    #[test]
    #[should_panic(expected = "equal-length inputs")]
    fn unequal_inputs_rejected() {
        let _ = simulate_bitwise(
            2,
            0,
            vec![vec![0u8; 4], vec![0u8; 5]],
            MetricsSink::new(),
        );
    }
}
