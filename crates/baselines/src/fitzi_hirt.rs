//! Baseline 2: a Fitzi-Hirt-style probabilistic multi-valued consensus
//! (PODC 2006 — "Optimally efficient multi-valued Byzantine agreement").
//!
//! Structure (simplified per DESIGN.md §2, preserving the complexity
//! shape `O(nL + n³(n+κ))` and the probabilistic-correctness property):
//!
//! 1. A common random hash key is derived from a seed (the original paper
//!    generates it interactively; the cost of that sub-protocol is folded
//!    into the `n³(n+κ)` term either way).
//! 2. Each processor hashes its `L`-bit value to `κ` bits with an
//!    ε-universal polynomial hash over GF(2^16) and the processors run
//!    binary consensus per hash bit.
//! 3. Processors whose value matches the agreed hash ("matchers")
//!    disperse the value with an `(n, t+1)` Reed-Solomon code: matcher
//!    `m` sends coded symbol `j` to processor `j`; each processor
//!    majority-votes its own symbol, re-broadcasts it, and reconstructs
//!    the value by *error-correcting* decoding (Berlekamp-Welch,
//!    tolerating `t` bad symbols).
//! 4. Each processor verifies the reconstruction against the agreed hash
//!    and delivers it (or the default on failure).
//!
//! **The error case.** Unlike Liang-Vaidya, correctness is conditional on
//! hash-collision freedom: if a processor holds a *different* value with
//! the *same* hash (computable by the full-information adversary, who
//! knows the key — see [`find_collision`]), matchers disperse symbols of
//! two different codewords and reconstruction can deliver a wrong or
//! inconsistent value. Experiment E8 demonstrates this constructively.

use mvbc_gf::{Field, Gf65536, Poly};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::bits::{pack_bits, unpack_bits};
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};
use mvbc_rscode::{StripedCode, Symbol};
use mvbc_bsb::{run_king_batch, BsbConfig, NoopBsbHooks};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the Fitzi-Hirt-style protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitziHirtConfig {
    /// Number of processors.
    pub n: usize,
    /// Fault tolerance (`t < n/3` with our error-free binary consensus;
    /// the original tolerates more with authentication).
    pub t: usize,
    /// Value length in bytes.
    pub value_bytes: usize,
    /// Hash width in GF(2^16) symbols (`κ = 16 * kappa_symbols` bits).
    pub kappa_symbols: usize,
    /// Seed of the common hash key (stands in for the interactive key
    /// agreement of the original protocol).
    pub key_seed: u64,
}

impl FitziHirtConfig {
    /// Convenience constructor with `κ = 64` bits.
    ///
    /// # Panics
    ///
    /// Panics when `t >= n/3` or `value_bytes == 0`.
    pub fn new(n: usize, t: usize, value_bytes: usize) -> Self {
        assert!(3 * t < n, "requires t < n/3");
        assert!(value_bytes > 0, "value must be non-empty");
        FitziHirtConfig {
            n,
            t,
            value_bytes,
            kappa_symbols: 4,
            key_seed: 0x5eed,
        }
    }

    /// The hash keys derived from the seed (common knowledge).
    pub fn keys(&self) -> Vec<Gf65536> {
        let mut rng = StdRng::seed_from_u64(self.key_seed);
        (0..self.kappa_symbols)
            .map(|_| Gf65536::new(rng.random_range(1..=u16::MAX)))
            .collect()
    }
}

/// The ε-universal polynomial hash: interpret `value` as GF(2^16)
/// coefficients `m_0..m_{s-1}` and evaluate
/// `h_j = Σ_i m_i · x_j^i  (+ x_j^s)` at each key `x_j`.
///
/// Collision probability for two distinct values is at most
/// `(s / 2^16)^keys.len()` over a random key choice.
pub fn universal_hash(value: &[u8], keys: &[Gf65536]) -> Vec<Gf65536> {
    let mut coeffs: Vec<Gf65536> = value
        .chunks(2)
        .map(|c| {
            let b0 = c[0];
            let b1 = c.get(1).copied().unwrap_or(0);
            Gf65536::new(u16::from_be_bytes([b0, b1]))
        })
        .collect();
    // Length strengthening: append a constant so values of different
    // lengths (after padding) cannot trivially collide.
    coeffs.push(Gf65536::ONE);
    let poly = Poly::from_coeffs(coeffs);
    keys.iter().map(|&x| poly.eval(x)).collect()
}

/// Constructs a value distinct from `value` with an identical hash under
/// `keys` — the attack a full-information adversary mounts against the
/// protocol (it knows the key; no secrecy assumption protects it).
///
/// Returns `None` if `value` is too short to embed the collision
/// (needs at least `2 * (keys.len() + 1)` bytes).
pub fn find_collision(value: &[u8], keys: &[Gf65536]) -> Option<Vec<u8>> {
    // h(v') = h(v) iff (v' - v) as a polynomial vanishes at every key.
    // Take delta(x) = Π_j (x - key_j), degree |keys|; add it into the
    // low-order coefficients.
    let needed = 2 * (keys.len() + 1);
    if value.len() < needed {
        return None;
    }
    let mut delta = Poly::constant(Gf65536::ONE);
    for &key in keys {
        delta = delta.mul(&Poly::from_coeffs(vec![key, Gf65536::ONE]));
    }
    let mut out = value.to_vec();
    for (i, &c) in delta.coeffs().iter().enumerate() {
        let raw = c.to_u64() as u16;
        let [hi, lo] = raw.to_be_bytes();
        out[2 * i] ^= hi;
        if 2 * i + 1 < out.len() {
            out[2 * i + 1] ^= lo;
        } else if lo != 0 {
            return None; // cannot embed the low byte
        }
    }
    (out != *value).then_some(out)
}

/// Analytic cost model `O(nL + n³(n+κ))` with explicit constants matching
/// this implementation: two dispersal hops of `n²·L/(t+1)` bits plus
/// `κ` binary consensus instances at the Phase-King price.
pub fn model_bits(n: usize, t: usize, l_bits: u64, kappa_bits: u64) -> f64 {
    let nf = n as f64;
    let tf = t as f64;
    let dispersal = 2.0 * nf * nf * (l_bits as f64) / (tf + 1.0);
    let king_per_bit = (tf + 1.0) * (3.0 * nf * (nf - 1.0) + (nf - 1.0));
    dispersal + kappa_bits as f64 * king_per_bit
}

/// Per-processor outcome of a Fitzi-Hirt run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FhOutcome {
    /// Reconstructed a value matching the agreed hash.
    Delivered(Vec<u8>),
    /// Could not reconstruct a hash-matching value; default decision.
    Defaulted,
}

/// The split-world attack against Fitzi-Hirt (requires a hash collision,
/// which the full-information adversary computes via [`find_collision`]):
/// Byzantine processors pose as matchers and equivocate during dispersal
/// and exchange — treating low-id receivers as if the value were `v` and
/// high-id receivers as if it were `v2`. Combined with honest processors
/// whose inputs collide, receivers' majority votes split between the two
/// codewords and reconstruction diverges: some deliver while others
/// default, violating agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitWorldAttack {
    /// The value presented to low-id receivers.
    pub v: Vec<u8>,
    /// The colliding value presented to high-id receivers.
    pub v2: Vec<u8>,
}

impl SplitWorldAttack {
    fn low_world(&self, n: usize, receiver: usize) -> bool {
        receiver < n.div_ceil(2)
    }
}

/// Runs the protocol among fault-free processors (the adversary's power
/// against *this* baseline is exercised through colliding inputs — see
/// [`find_collision`] — rather than message corruption).
///
/// # Panics
///
/// Panics when `inputs.len() != cfg.n` or input lengths disagree with the
/// configuration.
pub fn simulate_fitzi_hirt(
    cfg: &FitziHirtConfig,
    inputs: Vec<Vec<u8>>,
    metrics: MetricsSink,
) -> Vec<FhOutcome> {
    simulate_fitzi_hirt_with_attack(cfg, inputs, Vec::new(), None, metrics)
}

/// As [`simulate_fitzi_hirt`], with the processors in `faulty` running
/// the [`SplitWorldAttack`] (when provided). Used by experiment E8 to
/// demonstrate the protocol's non-zero error probability.
///
/// # Panics
///
/// As [`simulate_fitzi_hirt`]; additionally when `faulty.len() > cfg.t`.
pub fn simulate_fitzi_hirt_with_attack(
    cfg: &FitziHirtConfig,
    inputs: Vec<Vec<u8>>,
    faulty: Vec<usize>,
    attack: Option<SplitWorldAttack>,
    metrics: MetricsSink,
) -> Vec<FhOutcome> {
    assert_eq!(inputs.len(), cfg.n, "one input per processor");
    assert!(faulty.len() <= cfg.t, "at most t Byzantine processors");
    for v in &inputs {
        assert_eq!(v.len(), cfg.value_bytes, "inputs must be L bytes");
    }
    let cfg = *cfg;

    let logics: Vec<NodeLogic<FhOutcome>> = inputs
        .into_iter()
        .enumerate()
        .map(|(id, value)| {
            let attack = faulty.contains(&id).then(|| attack.clone()).flatten();
            Box::new(move |ctx: &mut NodeCtx| run_fh_node(ctx, &cfg, &value, attack.as_ref()))
                as NodeLogic<FhOutcome>
        })
        .collect();
    run_simulation(SimConfig::new(cfg.n), metrics, logics).outputs
}

const TAG_DISPERSE: &str = "baseline.fh.disperse";
const TAG_EXCHANGE: &str = "baseline.fh.exchange";

fn run_fh_node(
    ctx: &mut NodeCtx,
    cfg: &FitziHirtConfig,
    value: &[u8],
    attack: Option<&SplitWorldAttack>,
) -> FhOutcome {
    let n = cfg.n;
    let t = cfg.t;
    let me = ctx.id();
    let keys = cfg.keys();

    // Phase 2: binary consensus on the hash bits.
    let my_hash = universal_hash(value, &keys);
    let hash_bytes: Vec<u8> = my_hash
        .iter()
        .flat_map(|h| (h.to_u64() as u16).to_be_bytes())
        .collect();
    let hash_bits = unpack_bits(&hash_bytes, cfg.kappa_symbols * 16).expect("exact length");
    let king_cfg = BsbConfig::new(t, "baseline.fh.hash", vec![true; n]);
    let agreed_bits = run_king_batch(ctx, &king_cfg, hash_bits, &mut NoopBsbHooks);
    let agreed_bytes = pack_bits(&agreed_bits);
    let agreed_hash: Vec<Gf65536> = agreed_bytes
        .chunks_exact(2)
        .map(|c| Gf65536::new(u16::from_be_bytes([c[0], c[1]])))
        .collect();

    // Phase 3a: matchers disperse coded symbols, one per recipient.
    let code = StripedCode::new(n, t + 1, cfg.value_bytes).expect("valid parameters");
    let i_match = my_hash == agreed_hash;
    if let Some(a) = attack {
        // Byzantine equivocation: pose as a matcher of `v` toward low-id
        // receivers and of `v2` toward high-id receivers.
        let sym_v = code.encode_value(&a.v).expect("v has L bytes");
        let sym_v2 = code.encode_value(&a.v2).expect("v2 has L bytes");
        for (j, (sv, sv2)) in sym_v.iter().zip(&sym_v2).enumerate() {
            if j == me {
                continue;
            }
            let sym = if a.low_world(n, j) { sv } else { sv2 };
            ctx.send(j, TAG_DISPERSE, sym.to_bytes(), code.symbol_bits());
        }
    } else if i_match {
        let symbols = code.encode_value(value).expect("value has L bytes");
        for (j, sym) in symbols.iter().enumerate() {
            if j != me {
                ctx.send(j, TAG_DISPERSE, sym.to_bytes(), code.symbol_bits());
            }
        }
    }
    let mut inbox = ctx.end_round();
    let stripes = code.layout().stripes;
    // Majority vote over the received copies of *my* symbol.
    let mut copies: Vec<Vec<u8>> = Vec::new();
    for j in 0..n {
        if j == me {
            if i_match {
                let symbols = code.encode_value(value).expect("value has L bytes");
                copies.push(symbols[me].to_bytes());
            }
            continue;
        }
        if let Some(b) = inbox.take(j, TAG_DISPERSE) {
            copies.push(b.to_vec());
        }
    }
    let my_symbol: Option<Symbol> = majority(&copies)
        .and_then(|bytes| Symbol::from_bytes(&bytes, stripes, code.symbol_bits()));

    // Phase 3b: exchange the voted symbols.
    if let Some(a) = attack {
        let sym_v = code.encode_value(&a.v).expect("v has L bytes");
        let sym_v2 = code.encode_value(&a.v2).expect("v2 has L bytes");
        for j in 0..n {
            if j == me {
                continue;
            }
            let sym = if a.low_world(n, j) { &sym_v[me] } else { &sym_v2[me] };
            ctx.send(j, TAG_EXCHANGE, sym.to_bytes(), code.symbol_bits());
        }
    } else if let Some(sym) = &my_symbol {
        for j in 0..n {
            if j != me {
                ctx.send(j, TAG_EXCHANGE, sym.to_bytes(), code.symbol_bits());
            }
        }
    }
    let mut inbox = ctx.end_round();
    let mut pairs: Vec<(usize, Symbol)> = Vec::new();
    if let Some(sym) = my_symbol {
        pairs.push((me, sym));
    }
    for j in 0..n {
        if j == me {
            continue;
        }
        if let Some(b) = inbox.take(j, TAG_EXCHANGE) {
            if let Some(sym) = Symbol::from_bytes(&b, stripes, code.symbol_bits()) {
                pairs.push((j, sym));
            }
        }
    }

    // Phase 4: error-correcting reconstruction + hash verification.
    match code.decode_value_correcting(&pairs) {
        Ok(candidate) if universal_hash(&candidate, &keys) == agreed_hash => {
            FhOutcome::Delivered(candidate)
        }
        _ => FhOutcome::Defaulted,
    }
}

/// Majority element of a list of byte strings (`None` when the list is
/// empty or no string reaches a strict majority).
fn majority(items: &[Vec<u8>]) -> Option<Vec<u8>> {
    for candidate in items {
        let count = items.iter().filter(|i| *i == candidate).count();
        if 2 * count > items.len() {
            return Some(candidate.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(11).wrapping_add(seed)).collect()
    }

    #[test]
    fn hash_is_deterministic_and_key_sensitive() {
        let cfg = FitziHirtConfig::new(4, 1, 64);
        let keys = cfg.keys();
        let v = value(64, 1);
        assert_eq!(universal_hash(&v, &keys), universal_hash(&v, &keys));
        let other_keys = FitziHirtConfig { key_seed: 9, ..cfg }.keys();
        assert_ne!(universal_hash(&v, &keys), universal_hash(&v, &other_keys));
    }

    #[test]
    fn distinct_values_rarely_collide() {
        let cfg = FitziHirtConfig::new(4, 1, 64);
        let keys = cfg.keys();
        let h1 = universal_hash(&value(64, 1), &keys);
        let h2 = universal_hash(&value(64, 2), &keys);
        assert_ne!(h1, h2);
    }

    #[test]
    fn collision_construction_works() {
        let cfg = FitziHirtConfig::new(4, 1, 64);
        let keys = cfg.keys();
        let v = value(64, 5);
        let v2 = find_collision(&v, &keys).expect("long enough");
        assert_ne!(v, v2);
        assert_eq!(universal_hash(&v, &keys), universal_hash(&v2, &keys));
    }

    #[test]
    fn collision_needs_enough_space() {
        let cfg = FitziHirtConfig::new(4, 1, 4);
        let keys = cfg.keys();
        assert!(find_collision(&value(4, 0), &keys).is_none());
    }

    #[test]
    fn unanimous_inputs_delivered() {
        let cfg = FitziHirtConfig::new(4, 1, 128);
        let v = value(128, 7);
        let outs = simulate_fitzi_hirt(&cfg, vec![v.clone(); 4], MetricsSink::new());
        for o in outs {
            assert_eq!(o, FhOutcome::Delivered(v.clone()));
        }
    }

    #[test]
    fn n7_unanimous() {
        let cfg = FitziHirtConfig::new(7, 2, 64);
        let v = value(64, 8);
        let outs = simulate_fitzi_hirt(&cfg, vec![v.clone(); 7], MetricsSink::new());
        assert!(outs.iter().all(|o| *o == FhOutcome::Delivered(v.clone())));
    }

    #[test]
    fn collision_plus_equivocation_breaks_agreement() {
        // THE error case (experiment E8): honest processors 0, 1, 2 hold
        // v and honest processors 3, 4 hold the colliding v2 (computable
        // because the adversary knows the hash key — no secrecy protects
        // it). Byzantine 5 and 6 run the split-world equivocation. The
        // hash consensus settles (both values share the hash), but the
        // receivers' majority votes split between the two codewords and
        // reconstruction diverges: agreement among fault-free processors
        // is violated. The Liang-Vaidya algorithm is immune by
        // construction (no hashing anywhere).
        let cfg = FitziHirtConfig::new(7, 2, 64);
        let keys = cfg.keys();
        let v = value(64, 9);
        let v2 = find_collision(&v, &keys).unwrap();
        let mut inputs = vec![v.clone(); 7];
        inputs[3].clone_from(&v2);
        inputs[4].clone_from(&v2);
        let outs = simulate_fitzi_hirt_with_attack(
            &cfg,
            inputs,
            vec![5, 6],
            Some(SplitWorldAttack { v: v.clone(), v2: v2.clone() }),
            MetricsSink::new(),
        );
        let honest = [0usize, 1, 2, 3, 4];
        let error_free = honest.windows(2).all(|w| outs[w[0]] == outs[w[1]]);
        assert!(
            !error_free,
            "collision + equivocation should break agreement: {outs:?}"
        );
    }

    #[test]
    fn attack_without_collision_is_harmless() {
        // The same equivocation with unanimous honest inputs and *no*
        // collision cannot break agreement: error correction absorbs the
        // t Byzantine symbols.
        let cfg = FitziHirtConfig::new(7, 2, 64);
        let v = value(64, 4);
        let junk = value(64, 200);
        let outs = simulate_fitzi_hirt_with_attack(
            &cfg,
            vec![v.clone(); 7],
            vec![5, 6],
            Some(SplitWorldAttack { v: v.clone(), v2: junk }),
            MetricsSink::new(),
        );
        for (id, out) in outs.iter().enumerate().take(5) {
            assert_eq!(*out, FhOutcome::Delivered(v.clone()), "node {id}");
        }
    }

    #[test]
    fn measured_cost_matches_model_shape() {
        let (n, t, l) = (4usize, 1usize, 2048usize);
        let cfg = FitziHirtConfig::new(n, t, l);
        let metrics = MetricsSink::new();
        let v = value(l, 2);
        let _ = simulate_fitzi_hirt(&cfg, vec![v; n], metrics.clone());
        let measured = metrics.snapshot().total_logical_bits() as f64;
        let model = model_bits(n, t, (l * 8) as u64, (cfg.kappa_symbols * 16) as u64);
        let ratio = measured / model;
        assert!((0.3..3.0).contains(&ratio), "measured {measured} vs model {model}");
    }

    #[test]
    fn majority_votes() {
        assert_eq!(majority(&[]), None);
        assert_eq!(majority(&[vec![1], vec![2]]), None);
        assert_eq!(majority(&[vec![1], vec![1], vec![2]]), Some(vec![1]));
    }
}
