//! Baseline multi-valued Byzantine consensus algorithms.
//!
//! The Liang-Vaidya paper positions its algorithm against two baselines
//! (§1), both of which this crate implements for the comparison
//! experiments (E3/E8):
//!
//! 1. **Bitwise consensus** ([`bitwise`]): run one error-free 1-bit
//!    consensus per bit of the `L`-bit value. With any `Ω(n²)`-bit binary
//!    consensus this costs `Ω(n² L)` — the complexity floor the paper's
//!    `O(nL)` result beats by a factor of `n`. (Our Phase-King binary
//!    consensus costs `Θ(n²(t+1))` per bit, so the measured baseline is
//!    even steeper; the harness plots both measured and `Θ(n² L)` model
//!    curves.)
//! 2. **Fitzi-Hirt-style probabilistic consensus** ([`fitzi_hirt`],
//!    PODC 2006): agree on a `κ`-bit universal hash of the value, then let
//!    the processors whose value matches the agreed hash deliver it with
//!    an error-*correcting* Reed-Solomon dispersal. Complexity
//!    `O(nL + n³(n + κ))`... but correctness is only probabilistic: a
//!    hash collision breaks it, which [`fitzi_hirt::find_collision`]
//!    demonstrates constructively (experiment E8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitwise;
pub mod fitzi_hirt;
