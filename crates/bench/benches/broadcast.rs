//! Criterion wall-clock benches of the multi-valued broadcast (§4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvbc_bench::workload_value;
use mvbc_broadcast::{simulate_broadcast, BroadcastConfig, NoopBroadcastHooks};
use mvbc_metrics::MetricsSink;
use std::hint::black_box;

fn broadcast_failure_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_failure_free");
    group.sample_size(10);
    for (n, t, l) in [(4usize, 1usize, 1024usize), (4, 1, 4096), (7, 2, 1024)] {
        group.throughput(Throughput::Bytes(l as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}_l{l}")),
            &(n, t, l),
            |b, &(n, t, l)| {
                let cfg = BroadcastConfig::new(n, t, 0, l).unwrap();
                let v = workload_value(l, 9);
                b.iter(|| {
                    let hooks = (0..n).map(|_| NoopBroadcastHooks::boxed()).collect();
                    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
                    black_box(run.outputs)
                });
            },
        );
    }
    group.finish();
}

fn broadcast_with_equivocating_source(c: &mut Criterion) {
    use mvbc_broadcast::attacks::EquivocatingSource;
    use mvbc_broadcast::BroadcastHooks;
    let mut group = c.benchmark_group("broadcast_equivocating_source");
    group.sample_size(10);
    let (n, t, l) = (4usize, 1usize, 1024usize);
    group.throughput(Throughput::Bytes(l as u64));
    group.bench_function("n4_t1_l1024", |b| {
        let cfg = BroadcastConfig::with_gen_bytes(n, t, 0, l, 128).unwrap();
        let v = workload_value(l, 10);
        b.iter(|| {
            let mut hooks: Vec<Box<dyn BroadcastHooks>> =
                (0..n).map(|_| NoopBroadcastHooks::boxed()).collect();
            hooks[0] = Box::new(EquivocatingSource);
            let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
            black_box(run.outputs)
        });
    });
    group.finish();
}

criterion_group!(benches, broadcast_failure_free, broadcast_with_equivocating_source);
criterion_main!(benches);
