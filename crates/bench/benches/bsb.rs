//! Criterion benches of the Broadcast_Single_Bit primitive: per-instance
//! and batched throughput across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvbc_bsb::{run_bsb_batch, BsbConfig, BsbInstance, NoopBsbHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};
use std::hint::black_box;

fn run_batch(n: usize, t: usize, instances: usize) -> Vec<Vec<bool>> {
    let logics: Vec<NodeLogic<Vec<bool>>> = (0..n)
        .map(|id| {
            Box::new(move |ctx: &mut NodeCtx| {
                let cfg = BsbConfig::new(t, "bench", vec![true; ctx.n()]);
                let insts: Vec<BsbInstance> = (0..instances)
                    .map(|i| BsbInstance {
                        source: i % ctx.n(),
                        input: (id == i % ctx.n()).then_some(i % 3 == 0),
                    })
                    .collect();
                run_bsb_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
            }) as NodeLogic<Vec<bool>>
        })
        .collect();
    run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs
}

fn bsb_single_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsb_single_instance");
    group.sample_size(10);
    for (n, t) in [(4usize, 1usize), (7, 2), (13, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| b.iter(|| black_box(run_batch(n, t, 1))),
        );
    }
    group.finish();
}

fn bsb_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsb_batched");
    group.sample_size(10);
    for instances in [16usize, 256, 4096] {
        group.throughput(Throughput::Elements(instances as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(instances),
            &instances,
            |b, &instances| b.iter(|| black_box(run_batch(4, 1, instances))),
        );
    }
    group.finish();
}

criterion_group!(benches, bsb_single_instance, bsb_batched);
criterion_main!(benches);
