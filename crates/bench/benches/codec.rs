//! Criterion benches of the Reed-Solomon codec: encode, consistency
//! check, erasure decode, Berlekamp-Welch correction, and the batched
//! slice kernels against their scalar reference (`exp_codec` is the
//! JSON-emitting wall-clock companion of the same comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvbc_bench::workload_value;
use mvbc_gf::{kernels, Field, Gf256, Gf65536};
use mvbc_rscode::{berlekamp_welch, reference, ReedSolomon, StripedCode};
use std::hint::black_box;

fn striped_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("striped_encode");
    for len in [256usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let code = StripedCode::c2t(7, 2, len).unwrap();
            let v = workload_value(len, 1);
            b.iter(|| black_box(code.encode_value(&v).unwrap()));
        });
    }
    group.finish();
}

fn striped_decode_and_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("striped_decode");
    for len in [256usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(len as u64));
        let code = StripedCode::c2t(7, 2, len).unwrap();
        let v = workload_value(len, 2);
        let syms = code.encode_value(&v).unwrap();
        let pairs: Vec<_> = syms.iter().cloned().enumerate().take(3).collect();
        let all: Vec<_> = syms.iter().cloned().enumerate().collect();
        group.bench_with_input(BenchmarkId::new("erasure_decode", len), &len, |b, _| {
            b.iter(|| black_box(code.decode_value(&pairs).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("consistency_check", len), &len, |b, _| {
            b.iter(|| black_box(code.is_consistent(&all).unwrap()));
        });
    }
    group.finish();
}

fn berlekamp_welch_correction(c: &mut Criterion) {
    let mut group = c.benchmark_group("berlekamp_welch");
    for (n, k) in [(7usize, 3usize), (15, 5), (31, 11)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_k{k}")), &(n, k), |b, &(n, k)| {
            let rs: ReedSolomon<Gf256> = ReedSolomon::new(n, k).unwrap();
            let data: Vec<Gf256> = (0..k).map(|i| Gf256::new(i as u8 + 1)).collect();
            let mut cw = rs.encode(&data).unwrap();
            let e = (n - k) / 2;
            for (i, item) in cw.iter_mut().enumerate().take(e) {
                *item += Gf256::new(i as u8 + 1);
            }
            let pairs: Vec<_> = cw.into_iter().enumerate().collect();
            b.iter(|| black_box(berlekamp_welch::decode(&rs, &pairs).unwrap()));
        });
    }
    group.finish();
}

fn slice_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("slice_kernels");
    let len = 8192usize;
    let src: Vec<Gf65536> = (0..len).map(|i| Gf65536::from_u64(i as u64 * 31 + 7)).collect();
    let coeff = Gf65536::new(0x1d2c);
    group.throughput(Throughput::Bytes((len * 2) as u64));
    group.bench_function("addmul_batched", |b| {
        let mut dst = vec![Gf65536::ZERO; len];
        b.iter(|| kernels::addmul_slice(black_box(coeff), black_box(&src), &mut dst));
    });
    group.bench_function("addmul_scalar", |b| {
        let mut dst = vec![Gf65536::ZERO; len];
        b.iter(|| kernels::addmul_slice_scalar(black_box(coeff), black_box(&src), &mut dst));
    });
    group.finish();
}

fn scalar_reference_striped(c: &mut Criterion) {
    let mut group = c.benchmark_group("striped_scalar_reference");
    let len = 4096usize;
    group.throughput(Throughput::Bytes(len as u64));
    let code = StripedCode::c2t(7, 2, len).unwrap();
    let v = workload_value(len, 3);
    let syms = code.encode_value(&v).unwrap();
    let pairs: Vec<_> = syms.iter().cloned().enumerate().skip(4).collect();
    group.bench_function("encode", |b| {
        b.iter(|| black_box(reference::encode_value(&code, &v).unwrap()));
    });
    group.bench_function("erasure_decode", |b| {
        b.iter(|| black_box(reference::decode_value(&code, &pairs).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    striped_encode,
    striped_decode_and_check,
    berlekamp_welch_correction,
    slice_kernels,
    scalar_reference_striped
);
criterion_main!(benches);
