//! Criterion wall-clock benches of the full consensus protocol
//! (complements the bit-count experiments, which are the paper's metric).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvbc_bench::workload_value;
use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;
use std::hint::black_box;

fn consensus_failure_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_failure_free");
    group.sample_size(10);
    for (n, t, l) in [(4usize, 1usize, 1024usize), (4, 1, 4096), (7, 2, 1024)] {
        group.throughput(Throughput::Bytes(l as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}_l{l}")),
            &(n, t, l),
            |b, &(n, t, l)| {
                let cfg = ConsensusConfig::new(n, t, l).unwrap();
                let v = workload_value(l, 7);
                b.iter(|| {
                    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
                    let run = simulate_consensus(
                        &cfg,
                        vec![v.clone(); n],
                        hooks,
                        MetricsSink::new(),
                    );
                    black_box(run.outputs)
                });
            },
        );
    }
    group.finish();
}

fn consensus_under_attack(c: &mut Criterion) {
    use mvbc_adversary::WorstCaseDiagnosis;
    use mvbc_core::ProtocolHooks;
    let mut group = c.benchmark_group("consensus_worst_case_adversary");
    group.sample_size(10);
    let (n, t, l) = (4usize, 1usize, 1024usize);
    group.throughput(Throughput::Bytes(l as u64));
    group.bench_function("n4_t1_l1024", |b| {
        let cfg = ConsensusConfig::with_gen_bytes(n, t, l, 64).unwrap();
        let v = workload_value(l, 8);
        b.iter(|| {
            let mut hooks: Vec<Box<dyn ProtocolHooks>> =
                (0..n).map(|_| NoopHooks::boxed()).collect();
            hooks[0] = Box::new(WorstCaseDiagnosis::new(vec![0]));
            let run = simulate_consensus(&cfg, vec![v.clone(); n], hooks, MetricsSink::new());
            black_box(run.outputs)
        });
    });
    group.finish();
}

criterion_group!(benches, consensus_failure_free, consensus_under_attack);
criterion_main!(benches);
