//! Criterion benches of the `Broadcast_Single_Bit` substrates (paper
//! §4's substitution seam): wall-clock cost of one batched broadcast and
//! of one full consensus under Phase-King, EIG and Dolev-Strong.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvbc_bsb::{BsbConfig, BsbDriver, BsbInstance, DolevStrongDriver, EigDriver, NoopBsbHooks, PhaseKingDriver};
use mvbc_core::{simulate_consensus_with, ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};
use std::hint::black_box;

const SUBSTRATES: &[&str] = &["phase-king", "eig", "dolev-strong"];

fn fleet(name: &str, n: usize) -> Vec<Box<dyn BsbDriver>> {
    match name {
        "phase-king" => (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect(),
        "eig" => (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect(),
        "dolev-strong" => DolevStrongDriver::fleet(n)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn BsbDriver>)
            .collect(),
        other => panic!("unknown substrate {other}"),
    }
}

fn run_primitive(name: &str, n: usize, t: usize, instances: usize) -> Vec<Vec<bool>> {
    let logics: Vec<NodeLogic<Vec<bool>>> = fleet(name, n)
        .into_iter()
        .enumerate()
        .map(|(id, mut driver)| {
            Box::new(move |ctx: &mut NodeCtx| {
                let cfg = BsbConfig::new(t, "bench", vec![true; ctx.n()]);
                let insts: Vec<BsbInstance> = (0..instances)
                    .map(|i| BsbInstance {
                        source: i % ctx.n(),
                        input: (id == i % ctx.n()).then_some(i % 3 == 0),
                    })
                    .collect();
                driver.run_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
            }) as NodeLogic<Vec<bool>>
        })
        .collect();
    run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs
}

fn run_consensus(name: &str, n: usize, t: usize, value_bytes: usize) -> Vec<Vec<u8>> {
    let cfg = ConsensusConfig::new(n, t, value_bytes).expect("valid parameters");
    let v = vec![0xA5u8; value_bytes];
    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
    simulate_consensus_with(&cfg, vec![v; n], hooks, fleet(name, n), MetricsSink::new()).outputs
}

fn substrate_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_primitive_batch64");
    group.sample_size(10);
    group.throughput(Throughput::Elements(64));
    for name in SUBSTRATES {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| black_box(run_primitive(name, 4, 1, 64)))
        });
    }
    group.finish();
}

fn substrate_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_consensus_4k");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(4096));
    for name in SUBSTRATES {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| black_box(run_consensus(name, 4, 1, 4096)))
        });
    }
    group.finish();
}

criterion_group!(benches, substrate_primitive, substrate_consensus);
criterion_main!(benches);
