//! E9 (ablation) — what "memory across generations" (§2) buys.
//!
//! Runs the same worst-case adversary against (a) the paper's algorithm
//! and (b) an ablated variant whose diagnosis graph is reset before every
//! generation. Without memory, Theorem 1's `t(t+1)` cap disappears: the
//! adversary forces a diagnosis stage in essentially every generation and
//! the diagnosis term of Eq. (1) becomes `Θ(L/D · D · B) = Θ(L·B)` —
//! destroying the `O(nL)` headline. This regenerates the paper's §2
//! design argument as a measured ablation.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_ablation
//! ```

use mvbc_adversary::WorstCaseDiagnosis;
use mvbc_bench::{measure_consensus, Table};
use mvbc_core::{ConsensusConfig, NoopHooks, ProtocolHooks};

fn attacked(cfg: &ConsensusConfig) -> mvbc_bench::MeasuredRun {
    let mut hooks: Vec<Box<dyn ProtocolHooks>> =
        (0..cfg.n).map(|_| NoopHooks::boxed()).collect();
    hooks[0] = Box::new(WorstCaseDiagnosis::new(vec![0]));
    measure_consensus(cfg, hooks, &[0], 5)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, t) = (4usize, 1usize);
    let gen_bytes = 16usize;
    let l_list: &[usize] = if quick { &[512, 2048] } else { &[512, 2048, 8192, 32768] };

    let mut table = Table::new(&[
        "L (bits)", "generations", "with memory: diagnoses", "bits",
        "ablated: diagnoses", "bits", "ablation cost",
    ]);

    for &l_bytes in l_list {
        let cfg = ConsensusConfig::with_gen_bytes(n, t, l_bytes, gen_bytes).expect("valid");
        let with_memory = attacked(&cfg);

        let mut ablated_cfg = cfg.clone();
        ablated_cfg.ablation_reset_diag = true;
        let ablated = attacked(&ablated_cfg);

        assert!(
            with_memory.diagnosis_invocations <= (t * (t + 1)) as u64,
            "Theorem 1 must hold with memory"
        );
        table.row(vec![
            (l_bytes * 8).to_string(),
            cfg.generations().to_string(),
            with_memory.diagnosis_invocations.to_string(),
            with_memory.total_bits.to_string(),
            ablated.diagnosis_invocations.to_string(),
            ablated.total_bits.to_string(),
            format!(
                "{:.2}x",
                ablated.total_bits as f64 / with_memory.total_bits as f64
            ),
        ]);
    }

    println!("# E9 (ablation): removing 'memory across generations' (§2)\n");
    println!("{}", table.to_markdown());
    println!("paper §2: the diagnosis graph carried across generations caps misbehaviour");
    println!("at t(t+1) diagnoses; the ablated variant pays a diagnosis in (almost) every");
    println!("generation and its cost grows without bound relative to the original.");
    table.write_csv("e9_ablation").expect("write results/e9_ablation.csv");
}
