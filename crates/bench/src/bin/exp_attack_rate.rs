//! E14 — bounded instances of misbehaviour (§2): attack *persistence*
//! buys the adversary nothing beyond the `t(t+1)` diagnosis budget.
//!
//! §2's third design bullet: "the `t` (or fewer) faulty processors can
//! collectively misbehave in at most `t(t+1)` generations, before all
//! the faulty processors are exactly identified". This experiment sweeps
//! how many generations the adversary *tries* to attack (1, 2, 4, ...,
//! all) and measures diagnoses actually achieved and total bits: both
//! must plateau after the budget is spent, so the marginal cost of a
//! *persistent* adversary over a brief one is zero — the amortisation
//! argument behind the paper's low failure-free complexity.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_attack_rate
//! ```

use mvbc_adversary::{Deadline, WorstCaseDiagnosis};
use mvbc_bench::{fmt_bits, measure_consensus, Table};
use mvbc_core::{ConsensusConfig, NoopHooks, ProtocolHooks};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, t) = (4usize, 1usize);
    let gens = if quick { 16usize } else { 64 };
    let gen_bytes = 16usize;
    let cfg = ConsensusConfig::with_gen_bytes(n, t, gens * gen_bytes, gen_bytes)
        .expect("valid parameters");

    let mut table = Table::new(&[
        "attacked generations", "diagnoses", "budget t(t+1)", "total bits", "vs failure-free",
    ]);

    // Failure-free baseline.
    let hooks: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
    let base = measure_consensus(&cfg, hooks, &[], 5);
    table.row(vec![
        "0".into(),
        base.diagnosis_invocations.to_string(),
        (t * (t + 1)).to_string(),
        fmt_bits(base.total_bits as f64),
        "1.00x".into(),
    ]);

    let mut attacked = 1usize;
    while attacked <= gens {
        let mut hooks: Vec<Box<dyn ProtocolHooks>> =
            (0..n).map(|_| NoopHooks::boxed()).collect();
        // The full orchestrated worst-case adversary, deadline-bounded
        // to the first `attacked` generations: it spends as much of the
        // t(t+1) budget as its window allows.
        hooks[0] = Box::new(Deadline::new(attacked, WorstCaseDiagnosis::new(vec![0])));
        let m = measure_consensus(&cfg, hooks, &[0], 5);
        assert!(
            m.diagnosis_invocations <= (t * (t + 1)) as u64,
            "Theorem 1 bound violated"
        );
        table.row(vec![
            attacked.to_string(),
            m.diagnosis_invocations.to_string(),
            (t * (t + 1)).to_string(),
            fmt_bits(m.total_bits as f64),
            format!("{:.2}x", m.total_bits as f64 / base.total_bits as f64),
        ]);
        attacked *= 2;
    }

    println!("# E14: attack persistence vs the t(t+1) budget\n");
    println!("{}", table.to_markdown());
    println!("Diagnoses and total bits plateau once the budget is exhausted: attacking");
    println!("for all {gens} generations costs the adversary-free network no more than");
    println!("attacking for t(t+1) = {} — §2's 'bounded instances of misbehaviour',", t * (t + 1));
    println!("measured. (Costs can even fall below the early-attack rows: diagnosed");
    println!("edges silence the adversary's channels for the rest of the run.)");
    table.write_csv("e14_attack_rate").expect("write results/e14_attack_rate.csv");
}
