//! E3 — three-way comparison: Liang-Vaidya vs bitwise consensus vs
//! Fitzi-Hirt, sweeping `L` (the paper's §1 positioning).
//!
//! Expected shape: bitwise grows with slope `Θ(n²)` per bit and loses
//! quickly; ours and Fitzi-Hirt are both `O(nL)`-class for large `L`
//! ("similar complexity"), with crossovers at small `L` where fixed
//! control overheads dominate. Ours buys *error-freedom* at that price
//! (see E8).
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_baselines
//! ```

use mvbc_baselines::bitwise::{model_bits_theta_n2, simulate_bitwise};
use mvbc_baselines::fitzi_hirt::{simulate_fitzi_hirt, FhOutcome, FitziHirtConfig};
use mvbc_bench::{measure_consensus, workload_value, AsciiChart, Table};
use mvbc_core::{ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, t) = (7usize, 2usize);
    let l_exps: &[usize] = if quick { &[8, 11, 14] } else { &[6, 8, 10, 12, 14, 16, 17] };

    let mut table = Table::new(&[
        "L (bits)", "ours (bits)", "bitwise (bits)", "fitzi-hirt (bits)",
        "ours/L", "bitwise/L", "fh/L", "winner", "bitwise model 2n^2*L",
    ]);

    let mut ours_curve = Vec::new();
    let mut bitwise_curve = Vec::new();
    let mut fh_curve = Vec::new();
    for &l_exp in l_exps {
        let l_bytes = ((1usize << l_exp) / 8).max(8);
        let l_bits = (l_bytes * 8) as f64;
        let v = workload_value(l_bytes, l_exp as u64);

        let cfg = ConsensusConfig::new(n, t, l_bytes).expect("valid");
        let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
        let ours = measure_consensus(&cfg, hooks, &[], 3).total_bits as f64;

        let bw_metrics = MetricsSink::new();
        let outs = simulate_bitwise(n, t, vec![v.clone(); n], bw_metrics.clone());
        assert!(outs.iter().all(|o| *o == v));
        let bitwise = bw_metrics.snapshot().total_logical_bits() as f64;

        let fh_cfg = FitziHirtConfig::new(n, t, l_bytes);
        let fh_metrics = MetricsSink::new();
        let fh_outs = simulate_fitzi_hirt(&fh_cfg, vec![v.clone(); n], fh_metrics.clone());
        assert!(fh_outs.iter().all(|o| *o == FhOutcome::Delivered(v.clone())));
        let fh = fh_metrics.snapshot().total_logical_bits() as f64;

        ours_curve.push((l_exp as f64, (ours / l_bits).log2()));
        bitwise_curve.push((l_exp as f64, (bitwise / l_bits).log2()));
        fh_curve.push((l_exp as f64, (fh / l_bits).log2()));
        let winner = if ours <= bitwise && ours <= fh {
            "ours"
        } else if fh <= bitwise {
            "fitzi-hirt"
        } else {
            "bitwise"
        };
        table.row(vec![
            format!("{}", l_bytes * 8),
            format!("{ours:.0}"),
            format!("{bitwise:.0}"),
            format!("{fh:.0}"),
            format!("{:.1}", ours / l_bits),
            format!("{:.1}", bitwise / l_bits),
            format!("{:.1}", fh / l_bits),
            winner.to_string(),
            format!("{:.0}", model_bits_theta_n2(n, l_bits as u64)),
        ]);
    }

    println!("# E3: ours vs bitwise vs Fitzi-Hirt, n = {n}, t = {t}\n");
    println!("{}", table.to_markdown());

    // Figure: per-bit cost (log2) vs log2 L — bitwise stays flat and
    // high, ours falls through it (the crossover) toward FH.
    let mut chart = AsciiChart::new(56, 14);
    chart.series('o', "ours", ours_curve);
    chart.series('b', "bitwise", bitwise_curve);
    chart.series('f', "fitzi-hirt", fh_curve);
    println!("figure: log2(per-value-bit cost) vs log2(L)\n");
    println!("{}", chart.render());
    println!("paper: bitwise is Ω(n²L); ours and FH are both O(nL)-class for large L,");
    println!("with ours error-free (E8) — 'improvement over Fitzi-Hirt' is in guarantees.");
    table.write_csv("e3_baselines").expect("write results/e3_baselines.csv");
}
