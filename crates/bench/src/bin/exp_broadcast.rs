//! E6 — multi-valued broadcast (§4): measured `C_bro(L)` vs the
//! `(n-1)L` lower bound, the companion TR's `1.5(n-1)L` claim, and this
//! workspace's `≈ (n-t+1)/(n-2t)·(n-1)L` variant model (DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_broadcast
//! ```

use mvbc_bench::{workload_value, Table};
use mvbc_broadcast::{simulate_broadcast, BroadcastConfig, NoopBroadcastHooks};
use mvbc_metrics::MetricsSink;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: &[(usize, usize)] = if quick { &[(4, 1)] } else { &[(4, 1), (7, 2)] };
    let l_exps: &[usize] = if quick { &[12, 14] } else { &[12, 14, 16, 17, 18] };

    let mut table = Table::new(&[
        "n", "t", "L (bits)", "measured (bits)", "measured/(n-1)L",
        "variant model", "TR target 1.5", "rounds",
    ]);

    for &(n, t) in configs {
        for &l_exp in l_exps {
            let l_bytes = (1usize << l_exp) / 8;
            let cfg = BroadcastConfig::new(n, t, 0, l_bytes).expect("valid");
            let v = workload_value(l_bytes, l_exp as u64);
            let metrics = MetricsSink::new();
            let hooks = (0..n).map(|_| NoopBroadcastHooks::boxed()).collect();
            let run = simulate_broadcast(&cfg, v.clone(), hooks, metrics.clone());
            assert!(run.outputs.iter().all(|o| *o == v), "broadcast failed");
            let total = metrics.snapshot().total_logical_bits() as f64;
            let lower = ((n - 1) * l_bytes * 8) as f64;
            // Failure-free symbol-traffic coefficient of our variant:
            // (1 + (n-t)) echo+dispersal symbols of D/(n-2t) bits per
            // generation, i.e. (n-t+1)/(n-2t) per value bit per receiver.
            let variant = (n - t + 1) as f64 / (n - 2 * t) as f64;
            table.row(vec![
                n.to_string(),
                t.to_string(),
                (l_bytes * 8).to_string(),
                format!("{total:.0}"),
                format!("{:.2}", total / lower),
                format!("{variant:.2}"),
                "1.50".into(),
                metrics.snapshot().rounds().to_string(),
            ]);
        }
    }

    println!("# E6: error-free multi-valued broadcast cost vs the (n-1)L lower bound\n");
    println!("{}", table.to_markdown());
    println!("paper §4 / TR: 1.5(n-1)L + Θ(n^4 sqrt(L)); our documented variant");
    println!("converges to the 'variant model' column as L grows (BSB overhead fades).");
    table.write_csv("e6_broadcast").expect("write results/e6_broadcast.csv");
}
