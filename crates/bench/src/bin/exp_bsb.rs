//! E7 — the `Broadcast_Single_Bit` cost `B(n)`: measured bits per 1-bit
//! broadcast vs the paper's assumed `Θ(n²)` and this workspace's
//! Phase-King model `Θ(n²(t+1))` (the documented substitution of
//! DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_bsb
//! ```

use mvbc_bench::Table;
use mvbc_bsb::{run_bsb_batch, BsbConfig, BsbInstance, NoopBsbHooks};
use mvbc_core::dsel;
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};

fn measure_bsb(n: usize, t: usize, instances: usize) -> f64 {
    let metrics = MetricsSink::new();
    let logics: Vec<NodeLogic<Vec<bool>>> = (0..n)
        .map(|id| {
            Box::new(move |ctx: &mut NodeCtx| {
                let cfg = BsbConfig::new(t, "e7", vec![true; ctx.n()]);
                let insts: Vec<BsbInstance> = (0..instances)
                    .map(|i| BsbInstance {
                        source: i % ctx.n(),
                        input: (id == i % ctx.n()).then_some(i % 2 == 0),
                    })
                    .collect();
                run_bsb_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
            }) as NodeLogic<Vec<bool>>
        })
        .collect();
    let out = run_simulation(SimConfig::new(n), metrics.clone(), logics);
    // Cross-check agreement while we're here.
    for o in &out.outputs {
        assert_eq!(*o, out.outputs[0], "BSB instances must agree");
    }
    metrics.snapshot().total_logical_bits() as f64 / instances as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: &[(usize, usize)] = if quick {
        &[(4, 1), (7, 2), (10, 3)]
    } else {
        &[(4, 1), (7, 2), (10, 3), (13, 4), (16, 5), (19, 6)]
    };
    let instances = 64; // amortise fixed effects

    let mut table = Table::new(&[
        "n", "t", "B measured (bits/instance)", "PK model", "paper 2n^2", "measured/n^2", "measured/n^3",
    ]);
    for &(n, t) in configs {
        let b = measure_bsb(n, t, instances);
        table.row(vec![
            n.to_string(),
            t.to_string(),
            format!("{b:.1}"),
            format!("{:.1}", dsel::model_b_phase_king(n, t)),
            format!("{:.1}", dsel::model_b_theta_n2(n)),
            format!("{:.3}", b / (n * n) as f64),
            format!("{:.4}", b / (n * n * n) as f64),
        ]);
    }

    println!("# E7: Broadcast_Single_Bit cost B(n)\n");
    println!("{}", table.to_markdown());
    println!("paper assumes B = Θ(n²) (bit-optimal BGP/Coan-Welch); our Phase-King");
    println!("construction measures Θ(n²(t+1)) ≈ Θ(n³) — the documented substitution.");
    println!("The measured/n^3 column stabilising confirms the model; B multiplies only");
    println!("the sub-linear terms of Eq. (1), so the O(nL) headline is unaffected.");
    table.write_csv("e7_bsb").expect("write results/e7_bsb.csv");
}
