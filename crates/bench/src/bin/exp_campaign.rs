//! Adversary-campaign throughput experiment: how many machine-checked
//! campaign scenarios per second the harness sustains, and what the
//! randomized gauntlet costs in the worst case.
//!
//! Draws a fixed batch of bounded-random, model-preserving scenarios
//! from the seeded campaign generator (`mvbc_adversary::campaign`),
//! executes each through the replicated-log engine under the
//! event-driven netsim, and machine-checks agreement, validity, prefix
//! consistency, sequential equivalence, isolation safety and the
//! `t(t+2)` dispute budget on every draw. Reports scenarios/second, the
//! drawn behaviour mix, and the worst per-slot commit virtual time seen
//! anywhere in the campaign.
//!
//! Writes `results/BENCH_campaign.json` (schema `mvbc.campaign.v1`) and
//! fails loudly on any invariant violation — a failing scenario's JSON
//! is emitted under `results/` for one-command replay via
//! `mvbc smr soak --scenario <file>`.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_campaign [-- --fast]
//! ```
//!
//! `--fast` (the CI perf-smoke mode) trims the scenario count; the JSON
//! schema is identical.

use std::time::Instant;

use mvbc_adversary::campaign::{CampaignReport, CampaignRunner};
use mvbc_bench::{manifest_json, Table};

/// Campaign seed: the whole batch is a pure function of it.
const SEED: u64 = 47;

// Bench harness: wall-clock timing is the deliverable, exempt from the
// determinism mirror in clippy.toml.
#[allow(clippy::disallowed_methods)]
fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "--quick");
    let runs = if fast { 12 } else { 96 };

    let mut runner = CampaignRunner::new(SEED);
    let mut report = CampaignReport::new();
    let mut artifacts: Vec<String> = Vec::new();
    let started = Instant::now();
    for _ in 0..runs {
        let run = runner.next_run();
        report.absorb(&run);
        if !run.outcome.violations.is_empty() {
            for v in &run.outcome.violations {
                eprintln!("{}: VIOLATION [{}] {}", run.scenario.name, v.check, v.detail);
            }
            std::fs::create_dir_all("results").expect("create results/");
            let path = format!("results/{}.json", run.scenario.name);
            std::fs::write(&path, run.scenario.to_json() + "\n")
                .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
            artifacts.push(path);
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let scenarios_per_sec = runs as f64 / elapsed;

    let mut table = Table::new(&["behavior", "corruptions drawn"]);
    for (kind, count) in &report.behavior_mix {
        table.row(vec![kind.clone(), count.to_string()]);
    }
    println!(
        "# E23: adversary-campaign gauntlet throughput (seed {SEED}){}\n",
        if fast { " (--fast)" } else { "" }
    );
    println!("{}", table.to_markdown());
    println!(
        "{} scenario(s) in {:.2}s ({:.1} scenarios/s): {} slot(s), {} command(s) committed, \
         {} diagnosis invocation(s), worst commit vtime {} tick(s)",
        report.scenarios,
        elapsed,
        scenarios_per_sec,
        report.total_slots,
        report.total_commands,
        report.total_diagnosis,
        report.worst_commit_vtime,
    );

    let mix_json: Vec<String> = report
        .behavior_mix
        .iter()
        .map(|(kind, count)| format!("\"{kind}\": {count}"))
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"campaign\",\n  \"schema\": \"mvbc.campaign.v1\",\n  \
         \"fast\": {fast},\n  \"manifest\": {},\n  \"campaign_seed\": \"{SEED}\",\n  \
         \"runs\": {runs},\n  \"scenarios_per_sec\": {scenarios_per_sec:.2},\n  \
         \"behavior_mix\": {{ {} }},\n  \"total_slots\": {},\n  \"total_commands\": {},\n  \
         \"total_diagnosis\": {},\n  \"worst_commit_vtime\": {},\n  \"violations\": {}\n}}\n",
        // The campaign mixes system sizes, so the manifest's n/t carry 0
        // ("mixed"); the real sizes live in each drawn scenario.
        manifest_json(0, 0, SEED, "event-driven"),
        mix_json.join(", "),
        report.total_slots,
        report.total_commands,
        report.total_diagnosis,
        report.worst_commit_vtime,
        report.violations,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_campaign.json", json)
        .expect("write results/BENCH_campaign.json");
    println!("\nwrote results/BENCH_campaign.json");

    // Headline: the gauntlet is only worth its CI minutes if it is
    // clean on model-preserving draws and actually exercises the
    // behaviour catalogue.
    assert!(
        report.failed.is_empty(),
        "campaign found {} invariant violation(s); replay with: {}",
        report.violations,
        artifacts
            .iter()
            .map(|p| format!("mvbc smr soak --scenario {p}"))
            .collect::<Vec<_>>()
            .join("; "),
    );
    if !fast {
        assert_eq!(
            report.behavior_mix.len(),
            6,
            "a full campaign should draw all six behaviours, got {:?}",
            report.behavior_mix,
        );
    }
    assert!(report.total_commands > 0, "campaign committed nothing");
}
