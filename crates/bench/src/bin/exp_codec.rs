//! Codec wall-clock experiment: batched slice-kernel codec vs the
//! scalar reference, plus the end-to-end pipelined SMR wall-time the
//! codec sits under.
//!
//! Every `BENCH_*` artifact so far recorded rounds and logical bits —
//! the paper's measure — but nothing recorded *time*. This experiment
//! establishes the wall-clock baseline: for each geometry
//! (n = 7, t = 2 and n = 16, t = 5) and value size (1 KiB – 64 KiB) it
//! measures encode, erasure-decode, and full-codeword consistency
//! throughput of the production batched paths
//! ([`StripedCode`]) against the scalar reference
//! ([`mvbc_rscode::reference`], the pre-kernel Poly/Lagrange code), and
//! verifies the two produce byte-identical symbols and values. It then
//! times one pipelined replicated-log run end to end.
//!
//! Writes `results/BENCH_codec.json` and fails loudly unless the
//! headline case (n = 7, t = 2, 64 KiB) shows at least a 5x
//! encode+decode speedup.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_codec [-- --fast]
//! ```
//!
//! `--fast` (the CI perf-smoke mode) trims iteration counts and the SMR
//! slot count; the JSON schema is identical.

use std::time::Instant;

use mvbc_bench::{manifest_json, workload_value, Table};
use mvbc_metrics::MetricsSink;
use mvbc_rscode::{reference, StripedCode, Symbol};
use mvbc_smr::{simulate_smr, synthetic_workloads, HonestReplica, SmrConfig, SmrHooks};

const GEOMETRIES: [(usize, usize); 2] = [(7, 2), (16, 5)];
const SIZES: [usize; 5] = [1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 20];
const SIZES_FAST: [usize; 2] = [1 << 10, 64 << 10];
/// Large-committee geometry: batched-only (the scalar reference is too
/// slow to sweep at this scale; equality is still pinned at 4 KiB).
const BIG_N: (usize, usize) = (32, 10);
const BIG_SIZES: [usize; 2] = [64 << 10, 1 << 20];
const BIG_SIZES_FAST: [usize; 1] = [64 << 10];
const SEED: u64 = 41;

/// Headline acceptance case: n = 7, t = 2, 64 KiB values.
const HEADLINE: (usize, usize, usize) = (7, 2, 64 << 10);
const HEADLINE_MIN_SPEEDUP: f64 = 5.0;

struct OpMeasure {
    scalar_mbps: f64,
    batched_mbps: f64,
}

impl OpMeasure {
    fn speedup(&self) -> f64 {
        self.batched_mbps / self.scalar_mbps
    }
}

struct CaseMeasure {
    n: usize,
    t: usize,
    value_bytes: usize,
    encode: OpMeasure,
    decode: OpMeasure,
    consistency: OpMeasure,
}

impl CaseMeasure {
    /// Combined encode+decode speedup: ratio of summed per-byte times.
    fn encode_decode_speedup(&self) -> f64 {
        let scalar = 1.0 / self.encode.scalar_mbps + 1.0 / self.decode.scalar_mbps;
        let batched = 1.0 / self.encode.batched_mbps + 1.0 / self.decode.batched_mbps;
        scalar / batched
    }
}

/// Times `iters` runs of `f`, returning MB/s of `bytes`-sized values.
// Bench harness: wall-clock timing is the deliverable, exempt from the
// determinism mirror in clippy.toml.
#[allow(clippy::disallowed_methods)]
fn throughput_mbps(bytes: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (bytes as f64 * iters as f64) / secs / 1e6
}

fn measure_case(n: usize, t: usize, value_bytes: usize, fast: bool) -> CaseMeasure {
    let code = StripedCode::c2t(n, t, value_bytes).expect("valid geometry");
    let k = code.layout().k;
    let value = workload_value(value_bytes, SEED ^ (n as u64) << 32 ^ value_bytes as u64);

    // Correctness pins before timing: batched == scalar, byte for byte.
    let symbols = code.encode_value(&value).expect("encode");
    let symbols_ref = reference::encode_value(&code, &value).expect("reference encode");
    assert_eq!(symbols, symbols_ref, "batched and scalar codewords must be identical");
    // Decode from the *last* k symbols (parity positions exercise real
    // interpolation, not the identity).
    let picks: Vec<(usize, Symbol)> = symbols.iter().cloned().enumerate().skip(n - k).collect();
    let all: Vec<(usize, Symbol)> = symbols.iter().cloned().enumerate().collect();
    let decoded = code.decode_value(&picks).expect("decode");
    let decoded_ref = reference::decode_value(&code, &picks).expect("reference decode");
    assert_eq!(decoded, value, "batched decode must invert encode");
    assert_eq!(decoded_ref, value, "scalar decode must invert encode");
    assert!(code.is_consistent(&all).expect("consistency"));
    assert!(reference::is_consistent_value(&code, &all).expect("reference consistency"));

    // The scalar reference is 1–2 orders of magnitude slower; give it
    // proportionally fewer iterations (throughput normalizes).
    let batched_iters = (32 * (1 << 20) / value_bytes).clamp(8, if fast { 64 } else { 2048 });
    let scalar_iters = (batched_iters / 8).max(if fast { 2 } else { 4 });

    let encode = OpMeasure {
        scalar_mbps: throughput_mbps(value_bytes, scalar_iters, || {
            std::hint::black_box(reference::encode_value(&code, &value).unwrap());
        }),
        batched_mbps: throughput_mbps(value_bytes, batched_iters, || {
            std::hint::black_box(code.encode_value(&value).unwrap());
        }),
    };
    let decode = OpMeasure {
        scalar_mbps: throughput_mbps(value_bytes, scalar_iters, || {
            std::hint::black_box(reference::decode_value(&code, &picks).unwrap());
        }),
        batched_mbps: throughput_mbps(value_bytes, batched_iters, || {
            std::hint::black_box(code.decode_value(&picks).unwrap());
        }),
    };
    let consistency = OpMeasure {
        scalar_mbps: throughput_mbps(value_bytes, scalar_iters, || {
            std::hint::black_box(reference::is_consistent_value(&code, &all).unwrap());
        }),
        batched_mbps: throughput_mbps(value_bytes, batched_iters, || {
            std::hint::black_box(code.is_consistent(&all).unwrap());
        }),
    };

    CaseMeasure {
        n,
        t,
        value_bytes,
        encode,
        decode,
        consistency,
    }
}

struct BigCase {
    n: usize,
    t: usize,
    value_bytes: usize,
    encode_mbps: f64,
    decode_mbps: f64,
    consistency_mbps: f64,
}

/// Batched-only measurement for the large-committee geometry. The
/// scalar reference would take minutes per row here, so batched ==
/// scalar is pinned once at 4 KiB and the sweep times only the
/// production path.
fn measure_big_case(n: usize, t: usize, value_bytes: usize, fast: bool) -> BigCase {
    let pin_bytes = 4 << 10;
    let pin_code = StripedCode::c2t(n, t, pin_bytes).expect("valid geometry");
    let pin_value = workload_value(pin_bytes, SEED ^ (n as u64) << 32 ^ pin_bytes as u64);
    let pin_symbols = pin_code.encode_value(&pin_value).expect("encode");
    let pin_ref = reference::encode_value(&pin_code, &pin_value).expect("reference encode");
    assert_eq!(pin_symbols, pin_ref, "batched and scalar codewords must be identical");

    let code = StripedCode::c2t(n, t, value_bytes).expect("valid geometry");
    let k = code.layout().k;
    let value = workload_value(value_bytes, SEED ^ (n as u64) << 32 ^ value_bytes as u64);
    let symbols = code.encode_value(&value).expect("encode");
    let picks: Vec<(usize, Symbol)> = symbols.iter().cloned().enumerate().skip(n - k).collect();
    let all: Vec<(usize, Symbol)> = symbols.iter().cloned().enumerate().collect();
    assert_eq!(code.decode_value(&picks).expect("decode"), value, "decode must invert encode");
    assert!(code.is_consistent(&all).expect("consistency"));

    let iters = (16 * (1 << 20) / value_bytes).clamp(4, if fast { 16 } else { 256 });
    BigCase {
        n,
        t,
        value_bytes,
        encode_mbps: throughput_mbps(value_bytes, iters, || {
            std::hint::black_box(code.encode_value(&value).unwrap());
        }),
        decode_mbps: throughput_mbps(value_bytes, iters, || {
            std::hint::black_box(code.decode_value(&picks).unwrap());
        }),
        consistency_mbps: throughput_mbps(value_bytes, iters, || {
            std::hint::black_box(code.is_consistent(&all).unwrap());
        }),
    }
}

struct SmrMeasure {
    n: usize,
    t: usize,
    slots: usize,
    batch: usize,
    depth: usize,
    wall_ms: f64,
    rounds: u64,
    commands: u64,
}

/// End-to-end wall-time of a pipelined replicated-log run — the system
/// the codec hot path actually serves.
// Bench harness: wall-clock timing is the deliverable, exempt from the
// determinism mirror in clippy.toml.
#[allow(clippy::disallowed_methods)]
fn measure_smr(fast: bool) -> SmrMeasure {
    let (n, t, slots, batch, depth) = (7usize, 2usize, if fast { 12 } else { 60 }, 16usize, 4usize);
    let cfg = SmrConfig::new(n, t, slots, batch)
        .expect("valid parameters")
        .with_pipeline(depth);
    let workloads = synthetic_workloads(n, slots.div_ceil(n) * batch, SEED);
    let hooks: Vec<Box<dyn SmrHooks>> = (0..n).map(|_| HonestReplica::boxed()).collect();
    let start = Instant::now();
    let run = simulate_smr(&cfg, workloads, hooks, MetricsSink::new());
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    for w in run.reports.windows(2) {
        assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "harness: replicas diverged");
    }
    SmrMeasure {
        n,
        t,
        slots,
        batch,
        depth,
        wall_ms,
        rounds: run.rounds,
        commands: run.reports[0].committed_commands,
    }
}

fn main() {
    // `--quick` is the flag `run_all` forwards to every experiment.
    let fast = std::env::args().any(|a| a == "--fast" || a == "--quick");
    let sizes: &[usize] = if fast { &SIZES_FAST } else { &SIZES };

    let big_sizes: &[usize] = if fast { &BIG_SIZES_FAST } else { &BIG_SIZES };
    let threads = mvbc_rscode::codec_threads();

    let mut cases = Vec::new();
    for &(n, t) in &GEOMETRIES {
        for &len in sizes {
            cases.push(measure_case(n, t, len, fast));
        }
    }
    let big_cases: Vec<BigCase> = big_sizes
        .iter()
        .map(|&len| measure_big_case(BIG_N.0, BIG_N.1, len, fast))
        .collect();
    let smr = measure_smr(fast);

    let mut table = Table::new(&[
        "n",
        "t",
        "value KiB",
        "enc scalar MB/s",
        "enc batched MB/s",
        "dec scalar MB/s",
        "dec batched MB/s",
        "chk scalar MB/s",
        "chk batched MB/s",
        "enc+dec speedup",
    ]);
    for c in &cases {
        table.row(vec![
            c.n.to_string(),
            c.t.to_string(),
            (c.value_bytes / 1024).to_string(),
            format!("{:.1}", c.encode.scalar_mbps),
            format!("{:.1}", c.encode.batched_mbps),
            format!("{:.1}", c.decode.scalar_mbps),
            format!("{:.1}", c.decode.batched_mbps),
            format!("{:.1}", c.consistency.scalar_mbps),
            format!("{:.1}", c.consistency.batched_mbps),
            format!("{:.1}x", c.encode_decode_speedup()),
        ]);
    }
    println!("# E18: codec wall-clock — batched slice kernels vs scalar reference{}\n", if fast { " (--fast)" } else { "" });
    println!("{}", table.to_markdown());
    let mut big_table = Table::new(&[
        "n",
        "t",
        "value KiB",
        "enc MB/s",
        "dec MB/s",
        "chk MB/s",
    ]);
    for c in &big_cases {
        big_table.row(vec![
            c.n.to_string(),
            c.t.to_string(),
            (c.value_bytes / 1024).to_string(),
            format!("{:.1}", c.encode_mbps),
            format!("{:.1}", c.decode_mbps),
            format!("{:.1}", c.consistency_mbps),
        ]);
    }
    println!("large committee (batched only, {threads} codec worker(s)):\n");
    println!("{}", big_table.to_markdown());
    println!(
        "smr --pipeline end-to-end: n = {}, t = {}, {} slots x {} commands at depth {} in {:.0} ms ({} rounds, {} commands)",
        smr.n, smr.t, smr.slots, smr.batch, smr.depth, smr.wall_ms, smr.rounds, smr.commands
    );

    let headline = cases
        .iter()
        .find(|c| (c.n, c.t, c.value_bytes) == HEADLINE)
        .expect("headline case measured");
    let headline_speedup = headline.encode_decode_speedup();

    let case_json: Vec<String> = cases
        .iter()
        .map(|c| {
            let op = |label: &str, m: &OpMeasure| {
                format!(
                    "\"{label}\": {{ \"scalar_mbps\": {:.2}, \"batched_mbps\": {:.2}, \"speedup\": {:.2} }}",
                    m.scalar_mbps, m.batched_mbps, m.speedup()
                )
            };
            format!(
                "    {{ \"n\": {}, \"t\": {}, \"value_bytes\": {}, {}, {}, {}, \"encode_decode_speedup\": {:.2}, \"identical\": true }}",
                c.n,
                c.t,
                c.value_bytes,
                op("encode", &c.encode),
                op("decode", &c.decode),
                op("consistency", &c.consistency),
                c.encode_decode_speedup(),
            )
        })
        .collect();
    let big_json: Vec<String> = big_cases
        .iter()
        .map(|c| {
            format!(
                "    {{ \"n\": {}, \"t\": {}, \"value_bytes\": {}, \"encode_mbps\": {:.2}, \"decode_mbps\": {:.2}, \"consistency_mbps\": {:.2}, \"identical\": true }}",
                c.n, c.t, c.value_bytes, c.encode_mbps, c.decode_mbps, c.consistency_mbps,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"codec\",\n  \"fast\": {fast},\n  \"threads\": {threads},\n  \"manifest\": {},\n  \"cases\": [\n{}\n  ],\n  \"big_n_cases\": [\n{}\n  ],\n  \"headline\": {{ \"n\": {}, \"t\": {}, \"value_bytes\": {}, \"encode_decode_speedup\": {:.2}, \"required_min\": {HEADLINE_MIN_SPEEDUP} }},\n  \"smr_pipeline\": {{ \"n\": {}, \"t\": {}, \"slots\": {}, \"batch_commands\": {}, \"depth\": {}, \"wall_ms\": {:.1}, \"rounds\": {}, \"commands\": {} }}\n}}\n",
        manifest_json(HEADLINE.0, HEADLINE.1, SEED, "round-barrier"),
        case_json.join(",\n"),
        big_json.join(",\n"),
        HEADLINE.0,
        HEADLINE.1,
        HEADLINE.2,
        headline_speedup,
        smr.n,
        smr.t,
        smr.slots,
        smr.batch,
        smr.depth,
        smr.wall_ms,
        smr.rounds,
        smr.commands,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_codec.json", json).expect("write results/BENCH_codec.json");
    println!("\nwrote results/BENCH_codec.json");

    assert!(
        headline_speedup >= HEADLINE_MIN_SPEEDUP,
        "codec perf regression: encode+decode at n=7, t=2, 64KiB only {headline_speedup:.2}x \
         over the scalar reference (expected >= {HEADLINE_MIN_SPEEDUP}x)"
    );
    println!(
        "headline: encode+decode {headline_speedup:.1}x over scalar reference at n=7, t=2, 64KiB"
    );
}
