//! E5 — the Eq. (2) generation-size optimum: sweep `D` around `D*` and
//! verify the measured total is minimised near `D*`, both failure-free
//! and under the worst-case adversary (whose diagnosis cost is what the
//! `D`-tradeoff balances against the per-generation BSB overhead).
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_d_sweep
//! ```

use mvbc_adversary::WorstCaseDiagnosis;
use mvbc_bench::{measure_consensus, Table};
use mvbc_core::{dsel, ConsensusConfig, NoopHooks, ProtocolHooks};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, t) = (4usize, 1usize);
    let l_bytes = if quick { 4 * 1024 } else { 16 * 1024 };
    let d_star_bits = dsel::optimal_d_bits(n, t, (l_bytes * 8) as u64);
    let d_star_bytes = (d_star_bits / 8).max(1) as usize;

    let mut table = Table::new(&[
        "D (bytes)", "D/D*", "generations", "clean bits", "attacked bits", "diagnoses",
    ]);

    let mut best: Option<(usize, f64)> = None;
    for factor_num in [1usize, 2, 4, 8, 16, 32, 64] {
        // Sweep D from D*/8 to 8*D* on a geometric grid.
        let d = (d_star_bytes * factor_num / 8).max(1);
        let cfg = ConsensusConfig::with_gen_bytes(n, t, l_bytes, d).expect("valid");

        let honest: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
        let clean = measure_consensus(&cfg, honest, &[], 1).total_bits as f64;

        let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
        hooks[0] = Box::new(WorstCaseDiagnosis::new(vec![0]));
        let attacked = measure_consensus(&cfg, hooks, &[0], 2);
        let total = attacked.total_bits as f64;
        if best.is_none_or(|(_, b)| total < b) {
            best = Some((d, total));
        }

        table.row(vec![
            d.to_string(),
            format!("{:.2}", d as f64 / d_star_bytes as f64),
            cfg.generations().to_string(),
            format!("{clean:.0}"),
            format!("{total:.0}"),
            attacked.diagnosis_invocations.to_string(),
        ]);
    }

    println!("# E5: generation-size sweep around Eq. (2)'s D* = {d_star_bytes} bytes (n = {n}, t = {t}, L = {} bits)\n", l_bytes * 8);
    println!("{}", table.to_markdown());
    let (best_d, _) = best.expect("swept at least one D");
    println!(
        "measured optimum at D = {best_d} bytes; Eq. (2) predicts D* = {d_star_bytes} bytes \
         (agreement within the grid step is expected)."
    );
    table.write_csv("e5_d_sweep").expect("write results/e5_d_sweep.csv");
}
