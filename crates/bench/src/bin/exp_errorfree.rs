//! E8 — the error-freedom separation: the same colliding-input +
//! equivocation scenario breaks Fitzi-Hirt's agreement while Liang-Vaidya
//! (which hashes nothing) decides correctly. This regenerates the
//! paper's abstract claim "in contrast to Fitzi and Hirt, our algorithm
//! is guaranteed to be always error-free".
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_errorfree
//! ```

use mvbc_adversary::RandomAdversary;
use mvbc_baselines::fitzi_hirt::{
    find_collision, simulate_fitzi_hirt_with_attack, FhOutcome, FitziHirtConfig, SplitWorldAttack,
};
use mvbc_bench::{workload_value, Table};
use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;

fn main() {
    let (n, t, l) = (7usize, 2usize, 64usize);
    let mut table = Table::new(&["scenario", "algorithm", "honest agreement", "note"]);

    let fh_cfg = FitziHirtConfig::new(n, t, l);
    let keys = fh_cfg.keys();
    let v = workload_value(l, 1);
    let v2 = find_collision(&v, &keys).expect("value long enough to embed a collision");
    assert_ne!(v, v2);

    let mut inputs = vec![v.clone(); n];
    inputs[3].clone_from(&v2);
    inputs[4].clone_from(&v2);

    // Fitzi-Hirt under collision + split-world equivocation.
    let fh_out = simulate_fitzi_hirt_with_attack(
        &fh_cfg,
        inputs.clone(),
        vec![5, 6],
        Some(SplitWorldAttack { v: v.clone(), v2: v2.clone() }),
        MetricsSink::new(),
    );
    let fh_agree = (0..5).all(|i| fh_out[i] == fh_out[0]);
    table.row(vec![
        "collision + equivocation".into(),
        "fitzi-hirt".into(),
        if fh_agree { "PRESERVED (unexpected)" } else { "VIOLATED" }.into(),
        format!(
            "outcomes: {}",
            fh_out
                .iter()
                .take(5)
                .map(|o| match o {
                    FhOutcome::Delivered(x) if *x == v => "v",
                    FhOutcome::Delivered(x) if *x == v2 => "v2",
                    FhOutcome::Delivered(_) => "other",
                    FhOutcome::Defaulted => "default",
                })
                .collect::<Vec<_>>()
                .join(",")
        ),
    ]);

    // Liang-Vaidya on the same inputs, Byzantine 5 and 6 randomized.
    let cfg = ConsensusConfig::new(n, t, l).expect("valid");
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
    hooks[5] = Box::new(RandomAdversary::new(11, 0.4));
    hooks[6] = Box::new(RandomAdversary::new(12, 0.4));
    let run = simulate_consensus(&cfg, inputs, hooks, MetricsSink::new());
    let lv_agree = (0..5).all(|i| run.outputs[i] == run.outputs[0]);
    let decided = &run.outputs[0];
    let legal = *decided == v || *decided == v2 || *decided == cfg.default_value();
    table.row(vec![
        "collision + equivocation".into(),
        "liang-vaidya".into(),
        if lv_agree && legal { "PRESERVED" } else { "VIOLATED (bug!)" }.into(),
        format!(
            "decision = {}",
            if *decided == v { "v" } else if *decided == v2 { "v2" } else { "default" }
        ),
    ]);
    assert!(lv_agree && legal, "Liang-Vaidya must be error-free");
    assert!(!fh_agree, "the collision scenario should break Fitzi-Hirt");

    println!("# E8: error-freedom separation (abstract's claim vs Fitzi-Hirt)\n");
    println!("{}", table.to_markdown());
    println!("paper: FH's error probability is lower-bounded by the hash collision");
    println!("probability; Liang-Vaidya is deterministic and error-free in all runs.");
    table.write_csv("e8_errorfree").expect("write results/e8_errorfree.csv");
}
