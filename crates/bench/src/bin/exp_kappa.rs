//! E15 — the Fitzi-Hirt cost/error dial vs error-freedom.
//!
//! Fitzi-Hirt's complexity `O(nL + n³(n + κ))` contains the security
//! parameter κ: more hash bits cost more communication and buy a smaller
//! (but never zero) collision probability. The paper's contribution is
//! removing that dial entirely — deterministic correctness at a fixed
//! price. This experiment sweeps κ and prints both sides: FH's measured
//! bits and collision-probability bound against Liang-Vaidya's fixed
//! cost and zero error.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_kappa
//! ```

use mvbc_baselines::fitzi_hirt::{simulate_fitzi_hirt, FhOutcome, FitziHirtConfig};
use mvbc_bench::{fmt_bits, measure_consensus, workload_value, Table};
use mvbc_core::{ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;

/// Upper bound on the ε-universal polynomial hash's collision
/// probability: per 16-bit key, two distinct degree-`m` polynomials
/// agree on at most `m - 1` of the 2^16 evaluation points; κ_symbols
/// independent keys multiply.
fn collision_bound(value_bytes: usize, kappa_symbols: usize) -> f64 {
    let symbols = value_bytes.div_ceil(2).max(2) as f64;
    ((symbols - 1.0) / 65536.0).powi(kappa_symbols as i32)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, t) = (7usize, 2usize);
    let l = if quick { 1 << 12 } else { 1 << 14 }; // bytes

    // The error-free reference point (one measurement; κ-independent).
    let cfg = ConsensusConfig::new(n, t, l).expect("valid parameters");
    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
    let ours = measure_consensus(&cfg, hooks, &[], 21);

    let mut table = Table::new(&[
        "kappa (bits)", "FH bits", "FH collision bound", "LV bits (error-free)", "FH/LV bits",
    ]);
    for kappa_symbols in [1usize, 2, 3, 4, 6, 8] {
        let mut fh_cfg = FitziHirtConfig::new(n, t, l);
        fh_cfg.kappa_symbols = kappa_symbols;
        let value = workload_value(l, 21);
        let metrics = MetricsSink::new();
        let outputs = simulate_fitzi_hirt(&fh_cfg, vec![value.clone(); n], metrics.clone());
        for out in &outputs {
            assert_eq!(out, &FhOutcome::Delivered(value.clone()), "FH honest run must deliver");
        }
        let fh_bits = metrics.snapshot().total_logical_bits();
        table.row(vec![
            (16 * kappa_symbols).to_string(),
            fmt_bits(fh_bits as f64),
            format!("{:.2e}", collision_bound(l, kappa_symbols)),
            fmt_bits(ours.total_bits as f64),
            format!("{:.3}", fh_bits as f64 / ours.total_bits as f64),
        ]);
    }

    println!("# E15: the Fitzi-Hirt κ dial vs error-freedom\n");
    println!("{}", table.to_markdown());
    println!("FH buys a smaller error probability with more κ bits but never reaches");
    println!("zero — and E8 constructs an actual collision for any fixed κ, since the");
    println!("full-information adversary knows the hash key. Liang-Vaidya's row is");
    println!("constant: deterministic correctness is not priced per-κ. (FH stays");
    println!("cheaper in raw bits at these sizes — the paper's claim is error-freedom");
    println!("at *similar* asymptotic cost, not fewer bits than FH.)");
    table.write_csv("e15_kappa").expect("write results/e15_kappa.csv");
}
