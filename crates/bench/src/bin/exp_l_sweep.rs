//! E1 — `C_con(L)` vs `L` (the paper's Eq. (1)/(3) as a measured curve).
//!
//! For each `n` and a sweep of `L`, runs failure-free consensus and
//! reports measured total bits, the per-bit cost, the Eq. (1) model with
//! the measured Phase-King `B` and with the paper's `Θ(n²)` `B`, and the
//! asymptotic target `n(n-1)/(n-2t)·L`. The paper's claim: the per-bit
//! cost approaches the linear coefficient as `L` grows.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_l_sweep
//! ```

use mvbc_bench::{fmt_bits, measure_consensus, AsciiChart, ChartSeries, Table};
use mvbc_core::{dsel, ConsensusConfig, NoopHooks};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: &[(usize, usize)] = if quick { &[(4, 1)] } else { &[(4, 1), (7, 2)] };
    let l_exp_max = if quick { 14 } else { 17 };

    let mut table = Table::new(&[
        "n", "t", "L (bits)", "D* (bits)", "measured (bits)", "per-bit",
        "Eq1 (B=PK)", "Eq1 (B=2n^2)", "n(n-1)/(n-2t)*L", "rounds",
    ]);

    let mut curves: Vec<ChartSeries> = Vec::new();
    for &(n, t) in configs {
        let mut measured_curve: Vec<(f64, f64)> = Vec::new();
        let mut target_curve: Vec<(f64, f64)> = Vec::new();
        for l_exp in (10..=l_exp_max).step_by(2).chain([l_exp_max + 1]) {
            let l_bytes = (1usize << l_exp) / 8;
            let cfg = ConsensusConfig::new(n, t, l_bytes).expect("valid parameters");
            let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
            let m = measure_consensus(&cfg, hooks, &[], l_exp as u64);

            let l_bits = (l_bytes * 8) as u64;
            let d_bits = cfg.resolved_gen_bytes() as u64 * 8;
            let model_pk = dsel::model_ccon_failure_free_bits(
                n, t, l_bits, d_bits, dsel::model_b_phase_king(n, t),
            );
            let model_n2 = dsel::model_ccon_failure_free_bits(
                n, t, l_bits, d_bits, dsel::model_b_theta_n2(n),
            );
            let linear = dsel::linear_coefficient(n, t) * l_bits as f64;
            measured_curve.push((l_exp as f64, m.total_bits as f64 / l_bits as f64));
            target_curve.push((l_exp as f64, dsel::linear_coefficient(n, t)));
            table.row(vec![
                n.to_string(),
                t.to_string(),
                l_bits.to_string(),
                d_bits.to_string(),
                m.total_bits.to_string(),
                format!("{:.2}", m.total_bits as f64 / l_bits as f64),
                fmt_bits(model_pk),
                fmt_bits(model_n2),
                fmt_bits(linear),
                m.rounds.to_string(),
            ]);
        }
        let glyph = char::from_digit(n as u32 % 10, 10).unwrap_or('*');
        curves.push((glyph, format!("measured per-bit, n={n}"), measured_curve));
        curves.push(('-', format!("coefficient target, n={n}"), target_curve));
    }

    println!("# E1: communication complexity vs L (failure-free)\n");
    println!("{}", table.to_markdown());

    // The paper's Figure-equivalent: per-bit cost falling toward the
    // linear coefficient as L grows (x axis: log2 L; y: bits per bit).
    let mut chart = AsciiChart::new(56, 14);
    for (glyph, label, points) in curves.drain(..) {
        chart.series(glyph, &label, points);
    }
    println!("figure: per-value-bit cost vs log2(L)\n");
    println!("{}", chart.render());
    println!("paper: Eq. (3) — per-bit cost approaches n(n-1)/(n-2t) for large L");
    table.write_csv("e1_l_sweep").expect("write results/e1_l_sweep.csv");
}
