//! Virtual-time latency experiment: commit latency of the pipelined
//! replicated log under the event-driven scheduler, clique vs WAN.
//!
//! Every `BENCH_*` artifact so far recorded rounds, bits, or wall-clock
//! time — none recorded *network* time. This experiment runs the same
//! replicated log (n = 9, t = 2) under two network models — a flat
//! clique with 100-tick links and a 3-cluster WAN (100-tick intra,
//! 3000-tick inter, 200-tick jitter) — at pipeline depths 1 and 4, and
//! reports the virtual-time cost per committed slot. It then re-runs
//! the WAN log with cluster 2 cut off mid-run (crossing messages
//! delayed until the cut heals) and checks the log still commits every
//! slot with full agreement.
//!
//! Writes `results/BENCH_latency.json` and fails loudly unless the WAN
//! runs are slower than the clique runs and depth-4 pipelining beats
//! depth 1 on virtual time.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_latency [-- --fast]
//! ```
//!
//! `--fast` (the CI perf-smoke mode) trims the slot counts; the JSON
//! schema is identical.

use mvbc_bench::{manifest_json, Table};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{
    LinkModel, NetModel, Partition, PartitionBehavior, SchedulingPolicy, Topology, VirtualTime,
};
use mvbc_smr::{
    simulate_smr, synthetic_workloads, HonestReplica, SmrConfig, SmrHooks, SmrRun,
    COMMIT_GAP_TAG,
};

const N: usize = 9;
const T: usize = 2;
const BATCH: usize = 4;
const CLUSTERS: [usize; 3] = [3, 3, 3];
const INTRA_TICKS: VirtualTime = 100;
const INTER_TICKS: VirtualTime = 3000;
const JITTER_TICKS: VirtualTime = 200;
const SEED: u64 = 43;

fn clique_model() -> NetModel {
    NetModel::new(LinkModel::Fixed(INTRA_TICKS), Topology::Clique).with_seed(SEED)
}

fn wan_model() -> NetModel {
    NetModel::new(
        LinkModel::Wan { intra: INTRA_TICKS, inter: INTER_TICKS, jitter: JITTER_TICKS },
        Topology::Clusters(CLUSTERS.to_vec()),
    )
    .with_seed(SEED)
}

struct CaseMeasure {
    topology: &'static str,
    depth: usize,
    slots: usize,
    rounds: u64,
    final_vtime: VirtualTime,
    vtime_per_slot: f64,
    mean_commit_gap: f64,
    commit_gap_p50: u64,
    commit_gap_p99: u64,
    commands: u64,
}

/// Inter-commit-gap percentiles (in ticks) from the run's telemetry
/// histograms, merged across replicas.
fn gap_percentiles(metrics: &MetricsSink) -> (u64, u64) {
    let snap = metrics.telemetry().expect("bench sinks carry telemetry").snapshot();
    let hist = snap.histogram_for_tag(COMMIT_GAP_TAG);
    (hist.percentile(50.0), hist.percentile(99.0))
}

fn run_log(model: NetModel, depth: usize, slots: usize) -> (SmrRun, MetricsSink) {
    let cfg = SmrConfig::new(N, T, slots, BATCH)
        .expect("valid parameters")
        .with_pipeline(depth)
        .with_policy(SchedulingPolicy::EventDriven(model));
    let workloads = synthetic_workloads(N, slots.div_ceil(N) * BATCH, SEED);
    let hooks: Vec<Box<dyn SmrHooks>> = (0..N).map(|_| HonestReplica::boxed()).collect();
    let metrics = MetricsSink::with_telemetry();
    let run = simulate_smr(&cfg, workloads, hooks, metrics.clone());
    for w in run.reports.windows(2) {
        assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "harness: replicas diverged");
    }
    (run, metrics)
}

fn measure_case(topology: &'static str, model: NetModel, depth: usize, slots: usize) -> CaseMeasure {
    let (run, metrics) = run_log(model, depth, slots);
    let (commit_gap_p50, commit_gap_p99) = gap_percentiles(&metrics);
    let report = &run.reports[0];
    assert_eq!(report.slots.len(), slots, "harness: {topology} log committed too few slots");
    // Mean virtual-time gap between successive commits at replica 0 —
    // the steady-state commit latency the pipeline hides.
    let vtimes: Vec<VirtualTime> = report.slots.iter().map(|s| s.commit_vtime).collect();
    let mean_commit_gap = if vtimes.len() > 1 {
        (vtimes[vtimes.len() - 1] - vtimes[0]) as f64 / (vtimes.len() - 1) as f64
    } else {
        vtimes.first().copied().unwrap_or(0) as f64
    };
    CaseMeasure {
        topology,
        depth,
        slots,
        rounds: run.rounds,
        final_vtime: run.vtime,
        vtime_per_slot: run.vtime as f64 / slots as f64,
        mean_commit_gap,
        commit_gap_p50,
        commit_gap_p99,
        commands: report.committed_commands,
    }
}

struct PartitionMeasure {
    start: VirtualTime,
    heal: VirtualTime,
    slots: usize,
    final_vtime: VirtualTime,
    rounds: u64,
    commands: u64,
    fallback_slots: u64,
    commit_gap_p50: u64,
    commit_gap_p99: u64,
}

/// The acceptance scenario: a 3-cluster WAN log with cluster 2 cut off
/// from virtual time `start` until `heal` (crossings delayed, not
/// dropped). The synchronous protocol stretches the affected rounds
/// across the cut, so every slot still commits with full agreement.
fn measure_partition(depth: usize, slots: usize, start: VirtualTime, heal: VirtualTime) -> PartitionMeasure {
    let model = wan_model().with_partition(Partition::of_cluster(
        &Topology::Clusters(CLUSTERS.to_vec()),
        2,
        start,
        heal,
        PartitionBehavior::Delay,
    ));
    let (run, metrics) = run_log(model, depth, slots);
    let (commit_gap_p50, commit_gap_p99) = gap_percentiles(&metrics);
    let report = &run.reports[0];
    assert_eq!(report.slots.len(), slots, "partition run committed too few slots");
    assert!(
        report.slots.iter().all(|s| !s.committed.is_empty()),
        "partition run fell back on a slot despite delay-only crossings"
    );
    assert!(
        run.vtime >= heal,
        "partition run finished at virtual time {} before the cut healed at {heal}",
        run.vtime
    );
    PartitionMeasure {
        start,
        heal,
        slots,
        final_vtime: run.vtime,
        rounds: run.rounds,
        commands: report.committed_commands,
        fallback_slots: report.fallback_slots,
        commit_gap_p50,
        commit_gap_p99,
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast" || a == "--quick");
    let slots = if fast { 8 } else { 40 };

    let mut cases = Vec::new();
    for depth in [1usize, 4] {
        cases.push(measure_case("clique", clique_model(), depth, slots));
        cases.push(measure_case("wan-3x3", wan_model(), depth, slots));
    }

    // Place the cut strictly inside the run: the depth-1 WAN case just
    // measured tells us how long the log takes, so a window from 25% to
    // 50% of that span is guaranteed to form and heal mid-run.
    let wan_d1 = cases.iter().find(|c| c.topology == "wan-3x3" && c.depth == 1).unwrap();
    let (start, heal) = (wan_d1.final_vtime / 4, wan_d1.final_vtime / 2);
    let partition = measure_partition(if fast { 1 } else { 4 }, slots, start, heal);

    let mut table = Table::new(&[
        "topology",
        "depth",
        "slots",
        "rounds",
        "final vtime",
        "vtime/slot",
        "commit gap",
        "gap p50",
        "gap p99",
    ]);
    for c in &cases {
        table.row(vec![
            c.topology.to_string(),
            c.depth.to_string(),
            c.slots.to_string(),
            c.rounds.to_string(),
            c.final_vtime.to_string(),
            format!("{:.0}", c.vtime_per_slot),
            format!("{:.0}", c.mean_commit_gap),
            c.commit_gap_p50.to_string(),
            c.commit_gap_p99.to_string(),
        ]);
    }
    println!(
        "# E22: virtual-time commit latency — clique vs 3-cluster WAN (n = {N}, t = {T}){}\n",
        if fast { " (--fast)" } else { "" }
    );
    println!("{}", table.to_markdown());
    println!(
        "partition: cluster 2 cut (delay) over [{}, {}) at depth {}: {} slot(s) committed, final vtime {}",
        partition.start,
        partition.heal,
        if fast { 1 } else { 4 },
        partition.slots,
        partition.final_vtime,
    );

    let case_json: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{ \"topology\": \"{}\", \"depth\": {}, \"n\": {N}, \"t\": {T}, \"slots\": {}, \"rounds\": {}, \"final_vtime\": {}, \"vtime_per_slot\": {:.1}, \"mean_commit_gap\": {:.1}, \"commit_gap_p50\": {}, \"commit_gap_p99\": {}, \"commands\": {} }}",
                c.topology, c.depth, c.slots, c.rounds, c.final_vtime, c.vtime_per_slot, c.mean_commit_gap, c.commit_gap_p50, c.commit_gap_p99, c.commands,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"latency\",\n  \"fast\": {fast},\n  \"manifest\": {},\n  \"cases\": [\n{}\n  ],\n  \"partition\": {{ \"topology\": \"wan-3x3\", \"island\": \"c2\", \"behavior\": \"delay\", \"start\": {}, \"heal\": {}, \"slots\": {}, \"final_vtime\": {}, \"rounds\": {}, \"commands\": {}, \"fallback_slots\": {}, \"commit_gap_p50\": {}, \"commit_gap_p99\": {} }}\n}}\n",
        manifest_json(N, T, SEED, "event-driven"),
        case_json.join(",\n"),
        partition.start,
        partition.heal,
        partition.slots,
        partition.final_vtime,
        partition.rounds,
        partition.commands,
        partition.fallback_slots,
        partition.commit_gap_p50,
        partition.commit_gap_p99,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_latency.json", json).expect("write results/BENCH_latency.json");
    println!("\nwrote results/BENCH_latency.json");

    // Headline sanity: inter-cluster links dominate the WAN clock, and
    // pipelining hides latency (depth 4 beats depth 1 on virtual time).
    for depth in [1usize, 4] {
        let clique = cases.iter().find(|c| c.topology == "clique" && c.depth == depth).unwrap();
        let wan = cases.iter().find(|c| c.topology == "wan-3x3" && c.depth == depth).unwrap();
        assert!(
            wan.final_vtime > clique.final_vtime,
            "latency model inverted: WAN ({}) not slower than clique ({}) at depth {depth}",
            wan.final_vtime,
            clique.final_vtime
        );
    }
    for topology in ["clique", "wan-3x3"] {
        let d1 = cases.iter().find(|c| c.topology == topology && c.depth == 1).unwrap();
        let d4 = cases.iter().find(|c| c.topology == topology && c.depth == 4).unwrap();
        assert!(
            d4.final_vtime < d1.final_vtime,
            "pipelining regression: depth 4 ({}) not faster than depth 1 ({}) on {topology}",
            d4.final_vtime,
            d1.final_vtime
        );
        println!(
            "{topology}: depth 4 commits the log in {:.2}x less virtual time than depth 1",
            d1.final_vtime as f64 / d4.final_vtime as f64
        );
    }
}
