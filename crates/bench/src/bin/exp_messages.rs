//! E13 — message complexity vs the Dolev-Reischuk bound.
//!
//! §1 of the paper invokes the Ω(n²) lower bound on *messages* for
//! error-free consensus (Dolev & Reischuk 1985, Ω(nt) messages — Ω(n²)
//! at `t = Θ(n)`) to derive the Ω(n²) bit bound for 1-bit consensus, the
//! baseline the `O(nL)` headline is measured against. This experiment
//! counts the messages our implementation actually exchanges:
//!
//! - per 1-bit broadcast instance (`Broadcast_Single_Bit`), and
//! - per minimal consensus (1-byte value, one generation),
//!
//! confirming measured message counts sit above the Ω(nt) bound and
//! grow as the Θ(n²·t) the Phase-King substrate predicts — i.e. our
//! implementation is message-lower-bound-respecting, as every correct
//! protocol must be, and within the expected polynomial envelope.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_messages
//! ```

use mvbc_bench::Table;
use mvbc_bsb::{run_bsb_batch, BsbConfig, BsbInstance, NoopBsbHooks};
use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};

/// Messages per 1-bit broadcast instance (amortised over a batch).
fn bsb_messages(n: usize, t: usize, instances: usize) -> f64 {
    let metrics = MetricsSink::new();
    let logics: Vec<NodeLogic<Vec<bool>>> = (0..n)
        .map(|id| {
            Box::new(move |ctx: &mut NodeCtx| {
                let cfg = BsbConfig::new(t, "e13", vec![true; ctx.n()]);
                let insts: Vec<BsbInstance> = (0..instances)
                    .map(|i| BsbInstance {
                        source: i % ctx.n(),
                        input: (id == i % ctx.n()).then_some(i % 2 == 0),
                    })
                    .collect();
                run_bsb_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
            }) as NodeLogic<Vec<bool>>
        })
        .collect();
    let _ = run_simulation(SimConfig::new(n), metrics.clone(), logics);
    // Batched instances share physical messages; scale to per-instance by
    // the batch size for the amortised count, and also report the raw
    // (unamortised) count of one whole batch via instances = 1 below.
    metrics.snapshot().total_messages() as f64 / instances as f64
}

/// Messages for one full (minimal, 1-byte) consensus.
fn consensus_messages(n: usize, t: usize) -> u64 {
    let cfg = ConsensusConfig::new(n, t, 1).expect("valid parameters");
    let v = vec![0x42u8];
    let metrics = MetricsSink::new();
    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
    let run = simulate_consensus(&cfg, vec![v.clone(); n], hooks, metrics.clone());
    for out in &run.outputs {
        assert_eq!(out, &v);
    }
    metrics.snapshot().total_messages()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: &[(usize, usize)] = if quick {
        &[(4, 1), (7, 2)]
    } else {
        &[(4, 1), (7, 2), (10, 3), (13, 4), (16, 5)]
    };

    let mut table = Table::new(&[
        "n", "t", "msgs / BSB batch (unamortised)", "msgs / BSB instance (batch 64)",
        "msgs / 1-byte consensus", "DR bound n·t", "n²",
    ]);
    for &(n, t) in configs {
        let unamortised = bsb_messages(n, t, 1);
        let amortised = bsb_messages(n, t, 64);
        let consensus = consensus_messages(n, t);
        table.row(vec![
            n.to_string(),
            t.to_string(),
            format!("{unamortised:.0}"),
            format!("{amortised:.2}"),
            consensus.to_string(),
            (n * t).to_string(),
            (n * n).to_string(),
        ]);
    }

    println!("# E13: message complexity vs the Dolev-Reischuk bound\n");
    println!("{}", table.to_markdown());
    println!("One unbatched Broadcast_Single_Bit already exchanges ≥ n·t messages");
    println!("(the Ω(nt) Dolev-Reischuk bound; Ω(n²) at t = Θ(n)), growing as the");
    println!("Θ(n²·t) of the Phase-King substrate. A full 1-byte consensus runs");
    println!("Θ(n) batched broadcasts, so its message count is what makes 1-bit-at-");
    println!("a-time consensus cost Ω(n²) bits per bit — the baseline the paper's");
    println!("O(nL) result beats for large L (E3).");
    table.write_csv("e13_messages").expect("write results/e13_messages.csv");
}
