//! E2 — scaling in `n` at fixed large `L`: the paper's headline is that
//! total communication is `O(nL)`, i.e. *linear* in the network size.
//!
//! The dominant symbol traffic per processor stays ~constant
//! (`(n-1)/(n-2t)·L ≈ 3L`) while the total grows like the linear
//! coefficient `n(n-1)/(n-2t) ≈ 3(n-1)`; the BSB control overhead grows
//! faster but is sub-linear in `L` and fades for large values.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_n_sweep
//! ```

use mvbc_bench::{fmt_bits, measure_consensus, Table};
use mvbc_core::{dsel, ConsensusConfig, NoopHooks};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let l_bytes = if quick { 2 * 1024 } else { 8 * 1024 };
    let configs: &[(usize, usize)] = if quick {
        &[(4, 1), (7, 2)]
    } else {
        &[(4, 1), (7, 2), (10, 3), (13, 4)]
    };

    let mut table = Table::new(&[
        "n", "t", "L (bits)", "measured (bits)", "symbol traffic", "control (BSB)",
        "coeff n(n-1)/(n-2t)", "measured/L", "sym-traffic/L",
    ]);

    for &(n, t) in configs {
        let cfg = ConsensusConfig::new(n, t, l_bytes).expect("valid parameters");
        let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
        let m = measure_consensus(&cfg, hooks, &[], n as u64);
        let l_bits = (l_bytes * 8) as f64;
        let sym = m.snapshot.logical_bits_with_prefix("consensus.matching.symbol") as f64;
        let control = m.total_bits as f64 - sym;
        table.row(vec![
            n.to_string(),
            t.to_string(),
            ((l_bytes * 8) as u64).to_string(),
            m.total_bits.to_string(),
            fmt_bits(sym),
            fmt_bits(control),
            format!("{:.2}", dsel::linear_coefficient(n, t)),
            format!("{:.2}", m.total_bits as f64 / l_bits),
            format!("{:.2}", sym / l_bits),
        ]);
    }

    println!("# E2: scaling in n at fixed L (failure-free)\n");
    println!("{}", table.to_markdown());
    println!("paper: the L-proportional term scales as n(n-1)/(n-2t) = Θ(n); the");
    println!("sym-traffic/L column must track the coeff column row by row.");
    table.write_csv("e2_n_sweep").expect("write results/e2_n_sweep.csv");
}
