//! E12 — round complexity: synchronous rounds consumed by the full
//! consensus, failure-free vs worst-case, per substrate.
//!
//! The paper measures communication bits only, but its structure fixes
//! the round profile: per generation one symbol-dispersal round plus one
//! batched `Broadcast_Single_Bit` for `M`, one for `Detected`, and — in
//! diagnosed generations — two more (`R#`, `Trust`). With the Phase-King
//! substrate each batch costs `1 + 3(t+1)` rounds, with EIG `1 + (t+1)`,
//! with Dolev-Strong `t + 1`. This experiment measures the profile and
//! checks it against the model.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_rounds
//! ```

use mvbc_adversary::WorstCaseDiagnosis;
use mvbc_bench::{workload_value, Table};
use mvbc_bsb::{BsbDriver, DolevStrongDriver, EigDriver, PhaseKingDriver};
use mvbc_core::{simulate_consensus_with, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_metrics::MetricsSink;

fn fleet(name: &str, n: usize) -> Vec<Box<dyn BsbDriver>> {
    match name {
        "phase-king" => (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect(),
        "eig" => (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect(),
        "dolev-strong" => DolevStrongDriver::fleet(n)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn BsbDriver>)
            .collect(),
        other => panic!("unknown substrate {other}"),
    }
}

/// Model: rounds per batched BSB under each substrate.
fn model_bsb_rounds(name: &str, t: usize) -> u64 {
    match name {
        "phase-king" => 1 + 3 * (t as u64 + 1),
        "eig" => 1 + (t as u64 + 1),
        "dolev-strong" => t as u64 + 1,
        _ => unreachable!(),
    }
}

/// Model: rounds for a failure-free run (per generation: 1 dispersal +
/// 2 BSB batches), plus 2 extra BSB batches per diagnosed generation.
fn model_rounds(name: &str, t: usize, generations: u64, diagnosed: u64) -> u64 {
    let b = model_bsb_rounds(name, t);
    generations * (1 + 2 * b) + diagnosed * 2 * b
}

fn measure(
    name: &'static str,
    cfg: &ConsensusConfig,
    hooks: Vec<Box<dyn ProtocolHooks>>,
    faulty: &[usize],
) -> (u64, u64) {
    let v = workload_value(cfg.value_bytes, 3);
    let metrics = MetricsSink::new();
    let run =
        simulate_consensus_with(cfg, vec![v.clone(); cfg.n], hooks, fleet(name, cfg.n), metrics.clone());
    for id in 0..cfg.n {
        if !faulty.contains(&id) {
            assert_eq!(run.outputs[id], v, "substrate {name}: node {id} wrong");
        }
    }
    let honest = (0..cfg.n).find(|i| !faulty.contains(i)).expect("some honest");
    (metrics.snapshot().rounds(), run.reports[honest].diagnosis_invocations)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: &[(usize, usize)] = if quick { &[(4, 1)] } else { &[(4, 1), (7, 2)] };
    let gens = 8usize;

    let mut table = Table::new(&[
        "substrate", "n", "t", "adversary", "generations", "diagnosed", "rounds measured", "rounds model",
    ]);
    for &(n, t) in configs {
        // Keep D fixed so the generation count is known exactly.
        let gen_bytes = 4 * (n - 2 * t);
        let cfg = ConsensusConfig::with_gen_bytes(n, t, gens * gen_bytes, gen_bytes)
            .expect("valid parameters");
        for name in ["phase-king", "eig", "dolev-strong"] {
            // Failure-free.
            let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
            let (rounds, diagnosed) = measure(name, &cfg, hooks, &[]);
            assert_eq!(diagnosed, 0);
            table.row(vec![
                name.into(),
                n.to_string(),
                t.to_string(),
                "none".into(),
                gens.to_string(),
                "0".into(),
                rounds.to_string(),
                model_rounds(name, t, gens as u64, 0).to_string(),
            ]);

            // Worst-case diagnosis-forcing adversary on processor 0.
            let mut hooks: Vec<Box<dyn ProtocolHooks>> =
                (0..n).map(|_| NoopHooks::boxed()).collect();
            hooks[0] = Box::new(WorstCaseDiagnosis::new(vec![0]));
            let (rounds, diagnosed) = measure(name, &cfg, hooks, &[0]);
            table.row(vec![
                name.into(),
                n.to_string(),
                t.to_string(),
                "worst-case".into(),
                gens.to_string(),
                diagnosed.to_string(),
                rounds.to_string(),
                model_rounds(name, t, gens as u64, diagnosed).to_string(),
            ]);
        }
    }

    println!("# E12: round complexity per substrate\n");
    println!("{}", table.to_markdown());
    println!("Measured rounds match the structural model exactly: the paper's");
    println!("algorithm adds a fixed number of BSB batches per generation, so total");
    println!("rounds are Θ(L/D · t) with the constant set by the substrate.");
    table.write_csv("e12_rounds").expect("write results/e12_rounds.csv");
}
