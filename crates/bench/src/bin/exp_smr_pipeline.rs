//! SMR pipelining experiment: simulation rounds and wall-clock of the
//! replicated log vs pipeline depth.
//!
//! The same 1600 commands are committed in the same 100 batches
//! (n = 7, t = 2, fault-free) at depths W ∈ {1, 2, 4, 8}. The pipelined
//! scheduler interleaves up to `W` broadcast slots per synchronous round
//! (one simulation lane per slot), so total rounds divide by ≈ W while —
//! by construction — the committed log and the final `KvStore` digest are
//! identical at every depth (asserted here).
//!
//! A separate large-committee row then times one pipelined run at
//! n = 64, t = 21 with a warm lane pool sized to the slot window
//! (`big_n` in the JSON, with its own manifest): the regime the pooled
//! lane executor and stripe-sharded codec kernels exist for.
//!
//! Writes `results/BENCH_pipeline.json` and fails loudly unless depth 4
//! cuts total rounds at least 3x vs sequential with identical digests.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_smr_pipeline [-- --fast]
//! ```
//!
//! `--fast` (the CI perf-smoke mode) trims the slot counts; the JSON
//! schema is identical.

use std::time::Instant;

use mvbc_bench::{manifest_json, Table};
use mvbc_metrics::MetricsSink;
use mvbc_smr::{
    simulate_smr, synthetic_workloads, Command, HonestReplica, SmrConfig, SmrHooks,
    COMMIT_GAP_TAG,
};

const N: usize = 7;
const T: usize = 2;
const SLOTS: usize = 100;
const SLOTS_FAST: usize = 24;
const BATCH: usize = 16;
const SEED: u64 = 11;
const DEPTHS: [usize; 4] = [1, 2, 4, 8];

/// Large-committee row: the paper's regime of interest for pooled lanes
/// and sharded codec kernels (n >= 64 keeps 3t + 1 <= n with t = 21).
const BIG_N: usize = 64;
const BIG_T: usize = 21;
const BIG_SLOTS: usize = 16;
const BIG_SLOTS_FAST: usize = 8;
const BIG_DEPTH: usize = 4;

struct Measured {
    depth: usize,
    rounds: u64,
    wall_ms: f64,
    bits: u64,
    commands: u64,
    digest: u64,
    restarts: u64,
    commit_gap_p50: u64,
    commit_gap_p99: u64,
}

// Bench harness: wall-clock timing is the deliverable, exempt from the
// determinism mirror in clippy.toml.
#[allow(clippy::disallowed_methods)]
fn run_at_depth(depth: usize, slots: usize) -> Measured {
    let cfg = SmrConfig::new(N, T, slots, BATCH)
        .expect("valid parameters")
        .with_pipeline(depth);
    let workloads = synthetic_workloads(N, slots.div_ceil(N) * BATCH, SEED);
    let hooks: Vec<Box<dyn SmrHooks>> = (0..N).map(|_| HonestReplica::boxed()).collect();
    let metrics = MetricsSink::with_telemetry();
    let start = Instant::now();
    let run = simulate_smr(&cfg, workloads, hooks, metrics.clone());
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    for w in run.reports.windows(2) {
        assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "harness: replicas diverged");
    }
    let r = &run.reports[0];
    assert_eq!(r.fallback_slots, 0, "harness: fault-free run fell back");
    let gaps = metrics
        .telemetry()
        .expect("bench sinks carry telemetry")
        .snapshot()
        .histogram_for_tag(COMMIT_GAP_TAG);
    Measured {
        depth,
        rounds: run.rounds,
        wall_ms,
        bits: metrics.snapshot().total_logical_bits(),
        commands: r.committed_commands,
        digest: r.digest,
        restarts: r.restarts,
        commit_gap_p50: gaps.percentile(50.0),
        commit_gap_p99: gaps.percentile(99.0),
    }
}

struct BigMeasured {
    slots: usize,
    rounds: u64,
    wall_ms: f64,
    commands: u64,
    digest: u64,
    lanes_pool: usize,
    lane_workers_spawned: usize,
}

/// One pipelined large-committee run. The lane pool is sized to the
/// full slot window (`n * depth` concurrent lanes) so finished slots'
/// workers stay warm for the next slots instead of being respawned.
// Bench harness: wall-clock timing is the deliverable, exempt from the
// determinism mirror in clippy.toml.
#[allow(clippy::disallowed_methods)]
fn run_big(slots: usize) -> BigMeasured {
    let lanes_pool = BIG_N * BIG_DEPTH;
    let mut cfg = SmrConfig::new(BIG_N, BIG_T, slots, BATCH)
        .expect("valid parameters")
        .with_pipeline(BIG_DEPTH)
        .with_lanes_pool(lanes_pool);
    // 64 replicas on few cores take far longer per round than the
    // coordinator's default wedge-detection window expects.
    cfg.round_timeout = Some(std::time::Duration::from_secs(600));
    let workloads = synthetic_workloads(BIG_N, slots.div_ceil(BIG_N) * BATCH, SEED);
    let hooks: Vec<Box<dyn SmrHooks>> = (0..BIG_N).map(|_| HonestReplica::boxed()).collect();
    let spawned_before = mvbc_netsim::lanepool::lane_pool_spawned();
    let start = Instant::now();
    let run = simulate_smr(&cfg, workloads, hooks, MetricsSink::new());
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    for w in run.reports.windows(2) {
        assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "harness: replicas diverged");
    }
    let r = &run.reports[0];
    assert_eq!(r.fallback_slots, 0, "harness: fault-free run fell back");
    BigMeasured {
        slots,
        rounds: run.rounds,
        wall_ms,
        commands: r.committed_commands,
        digest: r.digest,
        lanes_pool,
        lane_workers_spawned: mvbc_netsim::lanepool::lane_pool_spawned() - spawned_before,
    }
}

fn main() {
    // `--quick` is the flag `run_all` forwards to every experiment.
    let fast = std::env::args().any(|a| a == "--fast" || a == "--quick");
    let slots = if fast { SLOTS_FAST } else { SLOTS };
    let runs: Vec<Measured> = DEPTHS.iter().map(|&w| run_at_depth(w, slots)).collect();
    let big = run_big(if fast { BIG_SLOTS_FAST } else { BIG_SLOTS });
    let seq = &runs[0];
    for m in &runs[1..] {
        assert_eq!(m.digest, seq.digest, "depth {} changed the final state", m.depth);
        assert_eq!(m.commands, seq.commands, "depth {} changed the committed commands", m.depth);
        assert_eq!(m.bits, seq.bits, "depth {} changed the traffic (honest runs never discard)", m.depth);
    }

    let mut table = Table::new(&[
        "depth W",
        "rounds",
        "speedup",
        "wall ms",
        "restarts",
        "commands",
        "digest",
    ]);
    for m in &runs {
        table.row(vec![
            m.depth.to_string(),
            m.rounds.to_string(),
            format!("{:.2}x", seq.rounds as f64 / m.rounds as f64),
            format!("{:.0}", m.wall_ms),
            m.restarts.to_string(),
            m.commands.to_string(),
            format!("{:016x}", m.digest),
        ]);
    }
    println!(
        "# E17: SMR concurrent-slot pipelining (n = {N}, t = {T}, {slots} slots x {BATCH} commands of {} bytes){}\n",
        Command::WIRE_BYTES,
        if fast { " (--fast)" } else { "" }
    );
    println!("{}", table.to_markdown());
    println!(
        "large committee: n = {BIG_N}, t = {BIG_T}, {} slots at depth {BIG_DEPTH} in {:.0} ms \
         ({} rounds, {} commands, digest {:016x}; lane pool {} kept {} spawned workers warm)",
        big.slots,
        big.wall_ms,
        big.rounds,
        big.commands,
        big.digest,
        big.lanes_pool,
        big.lane_workers_spawned,
    );
    let w4 = runs.iter().find(|m| m.depth == 4).expect("depth 4 measured");
    let speedup4 = seq.rounds as f64 / w4.rounds as f64;
    println!(
        "pipelining: depth 4 runs the log in {} rounds vs {} sequential ({speedup4:.2}x) with identical digests",
        w4.rounds, seq.rounds
    );

    let per_depth: Vec<String> = runs
        .iter()
        .map(|m| {
            format!(
                "    {{ \"depth\": {}, \"rounds\": {}, \"wall_ms\": {:.1}, \"logical_bits\": {}, \"restarts\": {}, \"commit_gap_p50\": {}, \"commit_gap_p99\": {}, \"digest\": \"{:016x}\" }}",
                m.depth, m.rounds, m.wall_ms, m.bits, m.restarts, m.commit_gap_p50, m.commit_gap_p99, m.digest
            )
        })
        .collect();
    let big_json = format!(
        "{{\n    \"manifest\": {},\n    \"n\": {BIG_N}, \"t\": {BIG_T}, \"slots\": {}, \"batch_commands\": {BATCH}, \"depth\": {BIG_DEPTH},\n    \"rounds\": {}, \"wall_ms\": {:.1}, \"commands\": {}, \"digest\": \"{:016x}\",\n    \"lanes_pool\": {}, \"lane_workers_spawned\": {}\n  }}",
        manifest_json(BIG_N, BIG_T, SEED, "round-barrier"),
        big.slots,
        big.rounds,
        big.wall_ms,
        big.commands,
        big.digest,
        big.lanes_pool,
        big.lane_workers_spawned,
    );
    let json = format!(
        "{{\n  \"experiment\": \"smr_pipeline\",\n  \"fast\": {fast},\n  \"manifest\": {},\n  \"config\": {{ \"n\": {N}, \"t\": {T}, \"slots\": {slots}, \"batch_commands\": {BATCH}, \"total_commands\": {} }},\n  \"runs\": [\n{}\n  ],\n  \"big_n\": {big_json},\n  \"round_speedup_depth4\": {speedup4:.2},\n  \"digests_identical\": true\n}}\n",
        manifest_json(N, T, SEED, "round-barrier"),
        seq.commands,
        per_depth.join(",\n"),
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_pipeline.json", json).expect("write results/BENCH_pipeline.json");
    println!("\nwrote results/BENCH_pipeline.json");

    assert!(
        speedup4 >= 3.0,
        "pipelining regression: depth 4 only {speedup4:.2}x fewer rounds (expected >= 3x)"
    );
}
