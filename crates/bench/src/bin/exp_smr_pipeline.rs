//! SMR pipelining experiment: simulation rounds and wall-clock of the
//! replicated log vs pipeline depth.
//!
//! The same 1600 commands are committed in the same 100 batches
//! (n = 7, t = 2, fault-free) at depths W ∈ {1, 2, 4, 8}. The pipelined
//! scheduler interleaves up to `W` broadcast slots per synchronous round
//! (one simulation lane per slot), so total rounds divide by ≈ W while —
//! by construction — the committed log and the final `KvStore` digest are
//! identical at every depth (asserted here).
//!
//! Writes `results/BENCH_pipeline.json` and fails loudly unless depth 4
//! cuts total rounds at least 3x vs sequential with identical digests.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_smr_pipeline
//! ```

use std::time::Instant;

use mvbc_bench::{manifest_json, Table};
use mvbc_metrics::MetricsSink;
use mvbc_smr::{
    simulate_smr, synthetic_workloads, Command, HonestReplica, SmrConfig, SmrHooks,
    COMMIT_GAP_TAG,
};

const N: usize = 7;
const T: usize = 2;
const SLOTS: usize = 100;
const BATCH: usize = 16;
const SEED: u64 = 11;
const DEPTHS: [usize; 4] = [1, 2, 4, 8];

struct Measured {
    depth: usize,
    rounds: u64,
    wall_ms: f64,
    bits: u64,
    commands: u64,
    digest: u64,
    restarts: u64,
    commit_gap_p50: u64,
    commit_gap_p99: u64,
}

// Bench harness: wall-clock timing is the deliverable, exempt from the
// determinism mirror in clippy.toml.
#[allow(clippy::disallowed_methods)]
fn run_at_depth(depth: usize) -> Measured {
    let cfg = SmrConfig::new(N, T, SLOTS, BATCH)
        .expect("valid parameters")
        .with_pipeline(depth);
    let workloads = synthetic_workloads(N, SLOTS.div_ceil(N) * BATCH, SEED);
    let hooks: Vec<Box<dyn SmrHooks>> = (0..N).map(|_| HonestReplica::boxed()).collect();
    let metrics = MetricsSink::with_telemetry();
    let start = Instant::now();
    let run = simulate_smr(&cfg, workloads, hooks, metrics.clone());
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    for w in run.reports.windows(2) {
        assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "harness: replicas diverged");
    }
    let r = &run.reports[0];
    assert_eq!(r.fallback_slots, 0, "harness: fault-free run fell back");
    let gaps = metrics
        .telemetry()
        .expect("bench sinks carry telemetry")
        .snapshot()
        .histogram_for_tag(COMMIT_GAP_TAG);
    Measured {
        depth,
        rounds: run.rounds,
        wall_ms,
        bits: metrics.snapshot().total_logical_bits(),
        commands: r.committed_commands,
        digest: r.digest,
        restarts: r.restarts,
        commit_gap_p50: gaps.percentile(50.0),
        commit_gap_p99: gaps.percentile(99.0),
    }
}

fn main() {
    let runs: Vec<Measured> = DEPTHS.iter().map(|&w| run_at_depth(w)).collect();
    let seq = &runs[0];
    for m in &runs[1..] {
        assert_eq!(m.digest, seq.digest, "depth {} changed the final state", m.depth);
        assert_eq!(m.commands, seq.commands, "depth {} changed the committed commands", m.depth);
        assert_eq!(m.bits, seq.bits, "depth {} changed the traffic (honest runs never discard)", m.depth);
    }

    let mut table = Table::new(&[
        "depth W",
        "rounds",
        "speedup",
        "wall ms",
        "restarts",
        "commands",
        "digest",
    ]);
    for m in &runs {
        table.row(vec![
            m.depth.to_string(),
            m.rounds.to_string(),
            format!("{:.2}x", seq.rounds as f64 / m.rounds as f64),
            format!("{:.0}", m.wall_ms),
            m.restarts.to_string(),
            m.commands.to_string(),
            format!("{:016x}", m.digest),
        ]);
    }
    println!(
        "# E17: SMR concurrent-slot pipelining (n = {N}, t = {T}, {SLOTS} slots x {BATCH} commands of {} bytes)\n",
        Command::WIRE_BYTES
    );
    println!("{}", table.to_markdown());
    let w4 = runs.iter().find(|m| m.depth == 4).expect("depth 4 measured");
    let speedup4 = seq.rounds as f64 / w4.rounds as f64;
    println!(
        "pipelining: depth 4 runs the log in {} rounds vs {} sequential ({speedup4:.2}x) with identical digests",
        w4.rounds, seq.rounds
    );

    let per_depth: Vec<String> = runs
        .iter()
        .map(|m| {
            format!(
                "    {{ \"depth\": {}, \"rounds\": {}, \"wall_ms\": {:.1}, \"logical_bits\": {}, \"restarts\": {}, \"commit_gap_p50\": {}, \"commit_gap_p99\": {}, \"digest\": \"{:016x}\" }}",
                m.depth, m.rounds, m.wall_ms, m.bits, m.restarts, m.commit_gap_p50, m.commit_gap_p99, m.digest
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"smr_pipeline\",\n  \"manifest\": {},\n  \"config\": {{ \"n\": {N}, \"t\": {T}, \"slots\": {SLOTS}, \"batch_commands\": {BATCH}, \"total_commands\": {} }},\n  \"runs\": [\n{}\n  ],\n  \"round_speedup_depth4\": {speedup4:.2},\n  \"digests_identical\": true\n}}\n",
        manifest_json(N, T, SEED, "round-barrier"),
        seq.commands,
        per_depth.join(",\n"),
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_pipeline.json", json).expect("write results/BENCH_pipeline.json");
    println!("\nwrote results/BENCH_pipeline.json");

    assert!(
        speedup4 >= 3.0,
        "pipelining regression: depth 4 only {speedup4:.2}x fewer rounds (expected >= 3x)"
    );
}
