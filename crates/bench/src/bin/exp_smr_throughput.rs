//! SMR amortization experiment: bytes/command of a batched replicated
//! log vs. independent single-shot broadcasts of the same total payload.
//!
//! Both sides deliver the *same* 1600 commands in the *same* 100 batches
//! of 96 bytes (n = 7, t = 2, fault-free). The difference is purely
//! structural:
//!
//! - **batched log** — one simulation, slots run back-to-back through
//!   [`mvbc_smr::simulate_smr`]; the persistent dispute budget lets the
//!   log size broadcast generations against the aggregate payload
//!   (`100 × 96` bytes), so the fixed per-generation
//!   `Broadcast_Single_Bit` overhead is paid ~`sqrt(slots)`× less often;
//! - **single-shot** — 100 independent
//!   [`mvbc_broadcast::simulate_broadcast`] runs, each a fresh protocol
//!   instance with per-run (Eq. (2)) generation sizing.
//!
//! Writes `results/BENCH_smr.json` and fails loudly unless the batched
//! log is at least 2× cheaper per command.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_smr_throughput
//! ```

use mvbc_bench::{fmt_bits, manifest_json, Table};
use mvbc_broadcast::{simulate_broadcast, BroadcastConfig, BroadcastHooks, NoopBroadcastHooks};
use mvbc_metrics::MetricsSink;
use mvbc_smr::{
    encode_batch, simulate_smr, synthetic_workloads, Command, HonestReplica, SmrConfig, SmrHooks,
};

const N: usize = 7;
const T: usize = 2;
const SLOTS: usize = 100;
const BATCH: usize = 16;
const SEED: u64 = 11;

/// The command stream: replica `i` proposes keys from its own range, the
/// same stream both strategies commit.
fn workloads() -> Vec<Vec<Command>> {
    synthetic_workloads(N, SLOTS.div_ceil(N) * BATCH, SEED)
}

struct Measured {
    bits: u64,
    rounds: u64,
    commands: u64,
    gen_bytes: usize,
}

impl Measured {
    fn bytes_per_command(&self) -> f64 {
        self.bits as f64 / 8.0 / self.commands as f64
    }
}

fn run_batched(cfg: &SmrConfig) -> Measured {
    let hooks: Vec<Box<dyn SmrHooks>> = (0..N).map(|_| HonestReplica::boxed()).collect();
    let metrics = MetricsSink::new();
    let run = simulate_smr(cfg, workloads(), hooks, metrics.clone());
    for w in run.reports.windows(2) {
        assert_eq!(w[0].agreed_log(), w[1].agreed_log(), "harness: replicas diverged");
    }
    assert_eq!(run.reports[0].fallback_slots, 0, "harness: fault-free run fell back");
    let snap = metrics.snapshot();
    Measured {
        bits: snap.total_logical_bits(),
        rounds: snap.rounds(),
        commands: run.reports[0].committed_commands,
        gen_bytes: cfg.resolved_gen_bytes(),
    }
}

fn run_single_shot(cfg: &SmrConfig) -> Measured {
    // The same batches the log commits, but each slot is an independent
    // protocol instance: fresh simulation, fresh diagnosis state, per-run
    // generation sizing.
    let mut queues = workloads();
    let metrics = MetricsSink::new();
    let mut commands = 0u64;
    let mut rounds = 0u64;
    let mut gen_bytes = 0usize;
    for slot in 0..SLOTS {
        let primary = slot % N;
        let batch: Vec<Command> = {
            let q = &mut queues[primary];
            let take = q.len().min(BATCH);
            q.drain(..take).collect()
        };
        let bcfg = BroadcastConfig::new(N, T, primary, cfg.slot_bytes())
            .expect("valid single-shot parameters");
        gen_bytes = bcfg.resolved_gen_bytes();
        let value = encode_batch(&batch, cfg.batch_capacity());
        let hooks: Vec<Box<dyn BroadcastHooks>> =
            (0..N).map(|_| NoopBroadcastHooks::boxed()).collect();
        let run = simulate_broadcast(&bcfg, value.clone(), hooks, metrics.clone());
        for out in &run.outputs {
            assert_eq!(*out, value, "harness: single-shot broadcast diverged");
        }
        commands += batch.len() as u64;
        rounds += run.rounds;
    }
    let snap = metrics.snapshot();
    Measured {
        bits: snap.total_logical_bits(),
        rounds,
        commands,
        gen_bytes,
    }
}

fn main() {
    let cfg = SmrConfig::new(N, T, SLOTS, BATCH).expect("valid parameters");
    let payload_bytes = SLOTS * cfg.slot_bytes();

    let batched = run_batched(&cfg);
    let single = run_single_shot(&cfg);
    assert_eq!(batched.commands, single.commands, "both strategies serve the same commands");
    let ratio = single.bytes_per_command() / batched.bytes_per_command();

    let mut table = Table::new(&[
        "strategy",
        "slots",
        "D (bytes)",
        "total bits",
        "rounds",
        "commands",
        "bytes/command",
    ]);
    for (name, m) in [("batched log", &batched), ("single-shot x100", &single)] {
        table.row(vec![
            name.into(),
            SLOTS.to_string(),
            m.gen_bytes.to_string(),
            fmt_bits(m.bits as f64),
            m.rounds.to_string(),
            m.commands.to_string(),
            format!("{:.1}", m.bytes_per_command()),
        ]);
    }
    println!(
        "# E16: SMR batching amortization (n = {N}, t = {T}, {SLOTS} slots x {BATCH} commands, {payload_bytes} payload bytes)\n"
    );
    println!("{}", table.to_markdown());
    println!("amortization: batched log is {ratio:.2}x cheaper per command");

    let manifest = manifest_json(N, T, SEED, "round-barrier");
    let json = format!(
        "{{\n  \"experiment\": \"smr_throughput\",\n  \"manifest\": {manifest},\n  \"config\": {{ \"n\": {N}, \"t\": {T}, \"slots\": {SLOTS}, \"batch_commands\": {BATCH}, \"command_bytes\": {}, \"total_commands\": {}, \"total_payload_bytes\": {payload_bytes} }},\n  \"batched_log\": {{ \"gen_bytes\": {}, \"logical_bits\": {}, \"rounds\": {}, \"bytes_per_command\": {:.2} }},\n  \"single_shot\": {{ \"gen_bytes\": {}, \"logical_bits\": {}, \"rounds\": {}, \"bytes_per_command\": {:.2} }},\n  \"amortization_ratio\": {ratio:.2}\n}}\n",
        Command::WIRE_BYTES,
        batched.commands,
        batched.gen_bytes,
        batched.bits,
        batched.rounds,
        batched.bytes_per_command(),
        single.gen_bytes,
        single.bits,
        single.rounds,
        single.bytes_per_command(),
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_smr.json", json).expect("write results/BENCH_smr.json");
    println!("\nwrote results/BENCH_smr.json");

    assert!(
        ratio >= 2.0,
        "amortization regression: batched log only {ratio:.2}x cheaper (expected >= 2x)"
    );
}
