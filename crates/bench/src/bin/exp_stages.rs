//! E10 — the §3.4 per-stage cost itemisation, measured.
//!
//! The paper's complexity analysis prices each stage separately:
//!
//! - matching: `n(n-1)/(n-2t)·D` symbol bits plus `n(n-1)·B` for the `M`
//!   vectors, per generation;
//! - checking: `t·B` for the `Detected` flags, per generation;
//! - diagnosis: `(n-t)/(n-2t)·D·B + n(n-t)·B`, at most `t(t+1)` times.
//!
//! This binary reproduces that table from the metered tags, failure-free
//! and under the worst-case adversary.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_stages
//! ```

use mvbc_adversary::WorstCaseDiagnosis;
use mvbc_bench::{fmt_bits, measure_consensus, Table};
use mvbc_core::{dsel, ConsensusConfig, NoopHooks, ProtocolHooks};

fn main() {
    let (n, t, l_bytes, d_bytes) = (7usize, 2usize, 8 * 1024usize, 256usize);
    let cfg = ConsensusConfig::with_gen_bytes(n, t, l_bytes, d_bytes).expect("valid");
    let gens = cfg.generations() as f64;
    let b = dsel::model_b_phase_king(n, t);
    let d_bits = (d_bytes * 8) as f64;
    let k = (n - 2 * t) as f64;

    let honest: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
    let clean = measure_consensus(&cfg, honest, &[], 1);

    let mut attacked_hooks: Vec<Box<dyn ProtocolHooks>> =
        (0..n).map(|_| NoopHooks::boxed()).collect();
    attacked_hooks[0] = Box::new(WorstCaseDiagnosis::new(vec![0]));
    let attacked = measure_consensus(&cfg, attacked_hooks, &[0], 2);

    let stage = |snap: &mvbc_metrics::Snapshot, prefix: &str| snap.logical_bits_with_prefix(prefix);

    let rows: &[(&str, &str, f64)] = &[
        (
            "matching: symbols",
            "consensus.matching.symbol",
            (n * (n - 1)) as f64 / k * d_bits * gens,
        ),
        (
            "matching: M vectors (BSB)",
            "consensus.matching.m",
            (n * n) as f64 * b * gens, // n sources x n bits each
        ),
        (
            "checking: Detected (BSB)",
            "consensus.checking.detected",
            t as f64 * b * gens,
        ),
        (
            "diagnosis: R# + Trust (BSB)",
            "consensus.diagnosis",
            // Worst case per Eq. (1): only in attacked runs.
            (t * (t + 1)) as f64 * ((n - t) as f64 / k * d_bits + (n * (n - t)) as f64) * b,
        ),
    ];

    let mut table = Table::new(&["stage", "model (Eq. 1 terms)", "failure-free", "worst-case attack"]);
    for &(name, prefix, model) in rows {
        table.row(vec![
            name.to_string(),
            fmt_bits(model),
            fmt_bits(stage(&clean.snapshot, prefix) as f64),
            fmt_bits(stage(&attacked.snapshot, prefix) as f64),
        ]);
    }
    table.row(vec![
        "total".into(),
        "—".into(),
        fmt_bits(clean.total_bits as f64),
        fmt_bits(attacked.total_bits as f64),
    ]);

    println!(
        "# E10: per-stage cost itemisation (§3.4), n = {n}, t = {t}, L = {} bits, D = {} bits\n",
        l_bytes * 8,
        d_bytes * 8
    );
    println!("{}", table.to_markdown());
    println!("notes: the M-vector model row uses n bits per source (the implementation");
    println!("broadcasts fixed-width vectors; the paper books n-1). The diagnosis row's");
    println!("model is the Eq. (1) worst case; measured diagnosis appears only under attack.");
    table.write_csv("e10_stages").expect("write results/e10_stages.csv");
}
