//! E11 — the `Broadcast_Single_Bit` substitution (§4): cost and
//! resilience profile of the three substrates (Phase-King, EIG,
//! Dolev-Strong) at the primitive level and inside the full consensus.
//!
//! The paper parameterises Eq. (1) by the black-box broadcast cost `B`
//! and §4 proposes swapping the substrate to trade error-freedom for
//! resilience. This experiment measures exactly that trade: per-instance
//! `B`, rounds per batch, tolerated `t`, and the end-to-end consensus
//! cost under each substrate (identical symbol traffic, different
//! control traffic).
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_substrates
//! ```

use mvbc_bench::{fmt_bits, workload_value, Table};
use mvbc_bsb::{BsbConfig, BsbDriver, BsbInstance, DolevStrongDriver, EigDriver, NoopBsbHooks, PhaseKingDriver};
use mvbc_core::{simulate_consensus_with, ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};

/// One fleet of drivers per substrate name.
fn fleet(name: &str, n: usize) -> Vec<Box<dyn BsbDriver>> {
    match name {
        "phase-king" => (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect(),
        "eig" => (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect(),
        "dolev-strong" => DolevStrongDriver::fleet(n)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn BsbDriver>)
            .collect(),
        other => panic!("unknown substrate {other}"),
    }
}

const SUBSTRATES: &[&str] = &["phase-king", "eig", "dolev-strong"];

/// Measures per-instance B and rounds for one batched broadcast.
fn measure_primitive(name: &'static str, n: usize, t: usize, instances: usize) -> (f64, u64) {
    let metrics = MetricsSink::new();
    let logics: Vec<NodeLogic<Vec<bool>>> = fleet(name, n)
        .into_iter()
        .enumerate()
        .map(|(id, mut driver)| {
            Box::new(move |ctx: &mut NodeCtx| {
                let cfg = BsbConfig::new(t, "e11", vec![true; ctx.n()]);
                let insts: Vec<BsbInstance> = (0..instances)
                    .map(|i| BsbInstance {
                        source: i % ctx.n(),
                        input: (id == i % ctx.n()).then_some(i % 2 == 0),
                    })
                    .collect();
                driver.run_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
            }) as NodeLogic<Vec<bool>>
        })
        .collect();
    let out = run_simulation(SimConfig::new(n), metrics.clone(), logics);
    for o in &out.outputs {
        assert_eq!(*o, out.outputs[0], "substrate {name} instances must agree");
    }
    let snap = metrics.snapshot();
    (snap.total_logical_bits() as f64 / instances as f64, snap.rounds())
}

/// Measures the full consensus under one substrate.
fn measure_consensus(name: &'static str, n: usize, t: usize, value_bytes: usize) -> (u64, u64) {
    let cfg = ConsensusConfig::new(n, t, value_bytes).expect("valid parameters");
    let v = workload_value(value_bytes, 11);
    let metrics = MetricsSink::new();
    let hooks = (0..n).map(|_| NoopHooks::boxed()).collect();
    let run = simulate_consensus_with(&cfg, vec![v.clone(); n], hooks, fleet(name, n), metrics.clone());
    for out in &run.outputs {
        assert_eq!(out, &v, "substrate {name}: consensus must be valid");
    }
    let snap = metrics.snapshot();
    (snap.total_logical_bits(), snap.rounds())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // ---- primitive-level profile ----
    let configs: &[(usize, usize)] = if quick { &[(4, 1)] } else { &[(4, 1), (7, 2)] };
    let instances = 64;
    let mut prim = Table::new(&[
        "substrate", "n", "t", "max t", "error-free", "B (bits/instance)", "rounds/batch",
    ]);
    for &(n, t) in configs {
        for name in SUBSTRATES {
            let (b, rounds) = measure_primitive(name, n, t, instances);
            let (max_t, errorfree) = match *name {
                "phase-king" | "eig" => ((n - 1) / 3, "yes"),
                _ => (n - 1, "signature-assumption"),
            };
            prim.row(vec![
                name.to_string(),
                n.to_string(),
                t.to_string(),
                max_t.to_string(),
                errorfree.to_string(),
                format!("{b:.1}"),
                rounds.to_string(),
            ]);
        }
    }
    println!("# E11a: Broadcast_Single_Bit substrate profile\n");
    println!("{}", prim.to_markdown());
    prim.write_csv("e11_substrates_primitive").expect("write results CSV");

    // ---- consensus-level profile ----
    let l_bytes = if quick { 1 << 10 } else { 1 << 12 };
    let mut cons = Table::new(&[
        "substrate", "n", "t", "L (bits)", "total bits", "per value bit", "rounds",
    ]);
    for &(n, t) in configs {
        for name in SUBSTRATES {
            let (bits, rounds) = measure_consensus(name, n, t, l_bytes);
            cons.row(vec![
                name.to_string(),
                n.to_string(),
                t.to_string(),
                (l_bytes * 8).to_string(),
                fmt_bits(bits as f64),
                format!("{:.2}", bits as f64 / (l_bytes * 8) as f64),
                rounds.to_string(),
            ]);
        }
    }
    println!("# E11b: consensus cost under each substrate\n");
    println!("{}", cons.to_markdown());
    println!("The L-linear symbol traffic is substrate-independent; only the B-priced");
    println!("control traffic moves. Dolev-Strong trades error-freedom for resilience");
    println!("(t < n with idealised signatures) exactly as §4 prescribes — the");
    println!("consensus layer's own lemmas still need t < n/3 (DESIGN.md §2).");
    cons.write_csv("e11_substrates_consensus").expect("write results CSV");
}
