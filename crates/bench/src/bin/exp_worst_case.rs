//! E4 — Theorem 1's diagnosis bound under the orchestrated worst-case
//! adversary: the `t` colluders force diagnosis stages until isolated;
//! the count must reach (and never exceed) `t(t+1)`.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin exp_worst_case
//! ```

use mvbc_adversary::WorstCaseDiagnosis;
use mvbc_bench::{measure_consensus, Table};
use mvbc_core::{ConsensusConfig, NoopHooks, ProtocolHooks};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: &[(usize, usize)] = if quick {
        &[(4, 1), (7, 2)]
    } else {
        &[(4, 1), (7, 2), (10, 3), (13, 4)]
    };

    let mut table = Table::new(&[
        "n", "t", "bound t(t+1)", "diagnoses (measured)", "isolated",
        "clean bits", "attacked bits", "overhead",
    ]);

    for &(n, t) in configs {
        // Enough small generations for every colluder to act t+1 times.
        let gen_bytes = 8usize;
        let generations_needed = t * (t + 2) + 4;
        let l_bytes = gen_bytes * generations_needed.max(8);
        let cfg = ConsensusConfig::with_gen_bytes(n, t, l_bytes, gen_bytes).expect("valid");

        let honest: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
        let clean = measure_consensus(&cfg, honest, &[], 1).total_bits as f64;

        let faulty: Vec<usize> = (0..t).collect();
        let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
        for &f in &faulty {
            hooks[f] = Box::new(WorstCaseDiagnosis::new(faulty.clone()));
        }
        let m = measure_consensus(&cfg, hooks, &faulty, 2);
        let bound = (t * (t + 1)) as u64;
        assert!(
            m.diagnosis_invocations <= bound,
            "Theorem 1 violated: {} > {bound}",
            m.diagnosis_invocations
        );
        table.row(vec![
            n.to_string(),
            t.to_string(),
            bound.to_string(),
            m.diagnosis_invocations.to_string(),
            format!("{:?}", m.isolated),
            format!("{clean:.0}"),
            format!("{:.0}", m.total_bits),
            format!("{:+.1}%", (m.total_bits as f64 / clean - 1.0) * 100.0),
        ]);
    }

    println!("# E4: worst-case diagnosis adversary vs Theorem 1's t(t+1) bound\n");
    println!("{}", table.to_markdown());
    println!("paper: at most t(t+1) diagnosis stages in any execution; all faulty");
    println!("processors end up identified and isolated. Negative overhead is real:");
    println!("isolated processors stop costing traffic in later generations.");
    table.write_csv("e4_worst_case").expect("write results/e4_worst_case.csv");
}
