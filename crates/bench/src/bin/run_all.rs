//! Runs every experiment (E1-E18) in sequence, writing all CSVs into
//! `results/`. Pass `--quick` to use the reduced parameter grids.
//!
//! ```sh
//! cargo run --release -p mvbc-bench --bin run_all -- --quick
//! ```

use std::io::Write as _;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_l_sweep",
    "exp_n_sweep",
    "exp_baselines",
    "exp_worst_case",
    "exp_d_sweep",
    "exp_broadcast",
    "exp_bsb",
    "exp_errorfree",
    "exp_ablation",
    "exp_stages",
    "exp_substrates",
    "exp_rounds",
    "exp_messages",
    "exp_attack_rate",
    "exp_kappa",
    "exp_smr_throughput",
    "exp_smr_pipeline",
    "exp_codec",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("bin directory");

    std::fs::create_dir_all("results").expect("create results/");
    let mut log = std::fs::File::create("results/run_all_output.txt")
        .expect("create results/run_all_output.txt");

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let banner = format!("\n================ {name} ================\n");
        println!("{banner}");
        let _ = writeln!(log, "{banner}");
        let output = Command::new(bin_dir.join(name))
            .args(&args)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        print!("{}", String::from_utf8_lossy(&output.stdout));
        let _ = log.write_all(&output.stdout);
        if !output.stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(&output.stderr));
            let _ = log.write_all(&output.stderr);
        }
        if !output.status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        let done = format!(
            "\nall {} experiments completed; CSVs + full log in results/",
            EXPERIMENTS.len()
        );
        println!("{done}");
        let _ = writeln!(log, "{done}");
    } else {
        panic!("experiments failed: {failures:?}");
    }
}
