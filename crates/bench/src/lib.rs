//! Shared harness for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Each binary regenerates one analytic table/figure of the paper — see
//! DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured results. Binaries print a markdown table to stdout
//! and write a CSV into `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

use mvbc_core::{simulate_consensus, ConsensusConfig, ProtocolHooks};
use mvbc_metrics::json;
use mvbc_metrics::{MetricsSink, Snapshot};

/// Deterministic pseudo-random value for workloads.
pub fn workload_value(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// Outcome of one measured consensus run.
#[derive(Debug)]
pub struct MeasuredRun {
    /// Total logical bits transmitted by all processors.
    pub total_bits: u64,
    /// Synchronous rounds.
    pub rounds: u64,
    /// Full metric snapshot (per-stage queries).
    pub snapshot: Snapshot,
    /// Diagnosis-stage executions (as seen by processor reports, max).
    pub diagnosis_invocations: u64,
    /// Processors isolated by the end.
    pub isolated: Vec<usize>,
}

/// Runs one unanimous-input consensus and measures it.
///
/// # Panics
///
/// Panics when honest processors disagree or miss validity — the
/// harness refuses to report numbers from an incorrect run.
pub fn measure_consensus(
    cfg: &ConsensusConfig,
    hooks: Vec<Box<dyn ProtocolHooks>>,
    faulty: &[usize],
    seed: u64,
) -> MeasuredRun {
    let v = workload_value(cfg.value_bytes, seed);
    let metrics = MetricsSink::new();
    let run = simulate_consensus(&cfg.clone(), vec![v.clone(); cfg.n], hooks, metrics.clone());
    for id in 0..cfg.n {
        if !faulty.contains(&id) {
            assert_eq!(run.outputs[id], v, "harness: processor {id} decided wrongly");
        }
    }
    let honest = (0..cfg.n).find(|id| !faulty.contains(id)).expect("some honest");
    let snapshot = metrics.snapshot();
    MeasuredRun {
        total_bits: snapshot.total_logical_bits(),
        rounds: snapshot.rounds(),
        diagnosis_invocations: run.reports[honest].diagnosis_invocations,
        isolated: run.reports[honest].isolated.clone(),
        snapshot,
    }
}

/// A simple markdown/CSV table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV into `results/<name>.csv` (creating the directory).
    pub fn write_csv(&self, name: &str) -> std::io::Result<()> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// One plotted series: glyph, legend label, (x, y) points.
pub type ChartSeries = (char, String, Vec<(f64, f64)>);

/// A terminal line chart: the "figure" renderer for experiments whose
/// paper counterpart is a curve rather than a table.
///
/// Plots one glyph per series on a fixed character grid; callers pass
/// already-transformed coordinates (e.g. `log2` for the `L` axis) so
/// the chart itself stays a dumb, well-tested scaler.
#[derive(Debug)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<ChartSeries>,
}

impl AsciiChart {
    /// Creates an empty chart grid of `width` x `height` characters.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is smaller than 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart needs at least a 2x2 grid");
        AsciiChart {
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a series rendered with `glyph` and described by `label`.
    pub fn series(&mut self, glyph: char, label: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((glyph, label.to_string(), points));
        self
    }

    /// Renders the chart with a y-axis gutter and a legend line.
    ///
    /// Returns a plain string; empty charts render as an empty grid.
    pub fn render(&self) -> String {
        let points: Vec<(f64, f64)> =
            self.series.iter().flat_map(|(_, _, p)| p.iter().copied()).collect();
        let (x_min, x_max) =
            points.iter().map(|p| p.0).fold(None, min_max_fold).unwrap_or((0.0, 1.0));
        let (y_min, y_max) =
            points.iter().map(|p| p.1).fold(None, min_max_fold).unwrap_or((0.0, 1.0));
        let x_span = (x_max - x_min).max(f64::EPSILON);
        let y_span = (y_max - y_min).max(f64::EPSILON);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, _, pts) in &self.series {
            for &(x, y) in pts {
                let col = (((x - x_min) / x_span) * (self.width - 1) as f64).round() as usize;
                let row = (((y - y_min) / y_span) * (self.height - 1) as f64).round() as usize;
                grid[self.height - 1 - row][col.min(self.width - 1)] = *glyph;
            }
        }

        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let y_val = y_max - y_span * i as f64 / (self.height - 1) as f64;
            let gutter = if i == 0 || i == self.height - 1 || i == (self.height - 1) / 2 {
                format!("{y_val:>9.1} |")
            } else {
                format!("{:>9} |", "")
            };
            let _ = writeln!(out, "{gutter}{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>10}{}", "+", "-".repeat(self.width));
        let _ = writeln!(out, "{:>10}{x_min:<12.1}{:>width$.1}", "", x_max, width = self.width.saturating_sub(12));
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|(g, label, _)| format!("{g} = {label}"))
            .collect();
        let _ = writeln!(out, "{:>10}{}", "", legend.join("   "));
        out
    }
}

fn min_max_fold(acc: Option<(f64, f64)>, v: f64) -> Option<(f64, f64)> {
    Some(match acc {
        None => (v, v),
        Some((lo, hi)) => (lo.min(v), hi.max(v)),
    })
}

/// Renders the provenance manifest block every `results/BENCH_*.json`
/// artifact embeds under a `"manifest"` key: the run's core parameters
/// plus the git commit and a unix timestamp. Unlike the measurements,
/// the manifest is deliberately environment-dependent — it records *when
/// and from what source* a number was produced, so two artifacts can be
/// told apart after the fact.
pub fn manifest_json(n: usize, t: usize, seed: u64, policy: &str) -> String {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    let timestamp = wall_clock_timestamp();
    format!(
        "{{ \"n\": {n}, \"t\": {t}, \"seed\": {seed}, \"policy\": \"{}\", \
         \"git_commit\": \"{}\", \"timestamp\": {timestamp} }}",
        json::escape(policy),
        json::escape(&commit),
    )
}

/// Seconds since the unix epoch — the manifest's provenance stamp. The
/// one sanctioned wall-clock read in this crate's library (the exp_*
/// binaries measure wall time on top of it); protocol crates must stay
/// on the virtual clock, which `mvbc-lint` and the clippy
/// `disallowed-methods` list both enforce.
#[allow(clippy::disallowed_methods)]
fn wall_clock_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Formats a bit count with engineering suffixes for table readability.
pub fn fmt_bits(bits: f64) -> String {
    if bits >= 1e9 {
        format!("{:.2}G", bits / 1e9)
    } else if bits >= 1e6 {
        format!("{:.2}M", bits / 1e6)
    } else if bits >= 1e3 {
        format!("{:.1}k", bits / 1e3)
    } else {
        format!("{bits:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvbc_core::NoopHooks;

    #[test]
    fn measure_consensus_smoke() {
        let cfg = ConsensusConfig::new(4, 1, 64).unwrap();
        let hooks = (0..4).map(|_| NoopHooks::boxed()).collect();
        let m = measure_consensus(&cfg, hooks, &[], 1);
        assert!(m.total_bits > 0);
        assert_eq!(m.diagnosis_invocations, 0);
        assert!(m.isolated.is_empty());
    }

    #[test]
    fn table_render() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert!(t.to_markdown().contains("| 1 | 2 |"));
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ascii_chart_places_extremes() {
        let mut chart = AsciiChart::new(20, 5);
        chart.series('o', "demo", vec![(0.0, 0.0), (10.0, 100.0)]);
        let render = chart.render();
        let rows: Vec<&str> = render.lines().collect();
        // Max lands top-right, min bottom-left (after the 11-char gutter).
        assert_eq!(rows[0].chars().last(), Some('o'));
        assert_eq!(rows[4].chars().nth(11), Some('o'));
        assert!(render.contains("o = demo"));
    }

    #[test]
    fn ascii_chart_multiple_series_glyphs() {
        let mut chart = AsciiChart::new(10, 4);
        chart.series('a', "first", vec![(0.0, 0.0)]);
        chart.series('b', "second", vec![(1.0, 1.0)]);
        let render = chart.render();
        assert!(render.contains('a') && render.contains('b'));
        assert!(render.contains("a = first   b = second"));
    }

    #[test]
    fn ascii_chart_empty_is_blank_grid() {
        let chart = AsciiChart::new(8, 3);
        let render = chart.render();
        assert_eq!(render.lines().count(), 3 + 3); // grid + axis + labels + legend
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn ascii_chart_rejects_tiny_grid() {
        let _ = AsciiChart::new(1, 5);
    }

    #[test]
    fn manifest_embeds_parameters_and_provenance() {
        let m = manifest_json(7, 2, 11, "round-barrier");
        assert!(m.contains("\"n\": 7"));
        assert!(m.contains("\"t\": 2"));
        assert!(m.contains("\"seed\": 11"));
        assert!(m.contains("\"policy\": \"round-barrier\""));
        assert!(m.contains("\"git_commit\": \""));
        assert!(m.contains("\"timestamp\": "));
    }

    #[test]
    fn manifest_is_valid_json_via_shared_parser() {
        // The same hand-rolled parser the RunReport and lint artifacts
        // use must read the manifest back — no schema drift between the
        // workspace's JSON producers.
        let doc = json::parse_json(&manifest_json(7, 2, 11, "event\"driven")).unwrap();
        assert_eq!(doc.get("n").and_then(json::JsonValue::as_u64), Some(7));
        assert_eq!(doc.get("seed").and_then(json::JsonValue::as_u64), Some(11));
        // Escaping routes through the shared helper.
        assert_eq!(
            doc.get("policy").and_then(json::JsonValue::as_str),
            Some("event\"driven")
        );
        assert!(doc.get("timestamp").and_then(json::JsonValue::as_u64).is_some());
    }

    #[test]
    fn fmt_bits_suffixes() {
        assert_eq!(fmt_bits(10.0), "10");
        assert_eq!(fmt_bits(1500.0), "1.5k");
        assert_eq!(fmt_bits(2_500_000.0), "2.50M");
        assert_eq!(fmt_bits(3_000_000_000.0), "3.00G");
    }
}
