//! Byzantine strategies against the broadcast protocol.
//!
//! The consensus-side attack library lives in `mvbc-adversary`; these
//! strategies target the broadcast-specific hook points (equivocating
//! source, lying echoes, false detectors).

use mvbc_bsb::BsbHooks;
use mvbc_netsim::NodeId;

use crate::hooks::BroadcastHooks;

fn flip(payload: &mut [u8]) {
    for b in payload {
        *b ^= 0xFF;
    }
}

/// A source that equivocates during dispersal: odd-id processors receive
/// corrupted symbols. Receivers detect the inconsistency, the diagnosis
/// stage forces the source to commit to one value via
/// `Broadcast_Single_Bit`, and everyone delivers that commitment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquivocatingSource;

impl BsbHooks for EquivocatingSource {}

impl BroadcastHooks for EquivocatingSource {
    fn dispersal_symbol(&mut self, _g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        if to % 2 == 1 {
            flip(payload);
        }
        true
    }
}

/// A source that stays completely silent during dispersal (but still
/// participates in the diagnosis broadcasts, where `Broadcast_Single_Bit`
/// extracts a common default from its silence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SilentSource;

impl BsbHooks for SilentSource {}

impl BroadcastHooks for SilentSource {
    fn dispersal_symbol(&mut self, _g: usize, _to: NodeId, _payload: &mut Vec<u8>) -> bool {
        false
    }
}

/// A source whose diagnosis-stage data broadcast lies about the value it
/// dispersed. Honest echoes' claims then contradict the claimed codeword
/// and the source burns its own edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LyingDiagnosisSource;

impl BsbHooks for LyingDiagnosisSource {}

impl BroadcastHooks for LyingDiagnosisSource {
    fn data_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        for b in bits.iter_mut() {
            *b = !*b;
        }
    }
}

/// An echo-set member that corrupts the symbols it relays to the listed
/// targets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LyingEcho {
    targets: Vec<NodeId>,
}

impl LyingEcho {
    /// Corrupt relays toward each processor in `targets`.
    pub fn new(targets: Vec<NodeId>) -> Self {
        LyingEcho { targets }
    }
}

impl BsbHooks for LyingEcho {}

impl BroadcastHooks for LyingEcho {
    fn echo_symbol(&mut self, _g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        if self.targets.contains(&to) {
            flip(payload);
        }
        true
    }
}

/// An echo-set member that never relays (silent echo). Receivers miss its
/// symbol; when that pushes them under the `k`-symbol floor they detect,
/// the diagnosis compares the echo's "present" claim against reality, and
/// an edge adjacent to the liar goes away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SilentEcho;

impl BsbHooks for SilentEcho {}

impl BroadcastHooks for SilentEcho {
    fn echo_symbol(&mut self, _g: usize, _to: NodeId, _payload: &mut Vec<u8>) -> bool {
        false
    }
}

/// An echo that claims, in the diagnosis stage, to have received nothing
/// from the source (flips its presence bit to "missing" and zeroes the
/// symbol bits) — trying to frame the source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FramingEcho;

impl BsbHooks for FramingEcho {}

impl BroadcastHooks for FramingEcho {
    fn echo_claim_bits(&mut self, _g: usize, bits: &mut Vec<bool>) {
        for b in bits.iter_mut() {
            *b = false;
        }
    }

    // Force the diagnosis stage so the frame-up is actually broadcast.
    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        *flag = true;
    }
}

/// Announces `Detected = true` with perfectly consistent symbols; the
/// no-removal rule isolates it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FalseDetector;

impl BsbHooks for FalseDetector {}

impl BroadcastHooks for FalseDetector {
    fn detected_flag(&mut self, _g: usize, flag: &mut bool) {
        *flag = true;
    }
}

/// A false accuser that *frames the source*: it forces the diagnosis
/// stage (`Detected = true`) and then lies in its trust vector, claiming
/// the source's dispersal did not match its claimed data. The diagnosis
/// removes the edge (accuser, source) — which only proves one endpoint
/// faulty, so a log-level rotation that evicts primaries on any incident
/// edge loss (see `mvbc-smr`) evicts the fault-free source. Each frame
/// burns one of the accuser's `t + 1` disposable edges, and its
/// `(t + 1)`-th accusation isolates it, so `t` colluders frame at most
/// `t²` fault-free primaries over a whole log.
///
/// The frame fires only on generation 0 of an execution: re-accusing a
/// source whose edge is already gone removes nothing, and a diagnosis
/// that removes nothing isolates every claimed detector (the no-removal
/// rule) — a smart adversary accuses exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FramingAccuser;

impl BsbHooks for FramingAccuser {}

impl BroadcastHooks for FramingAccuser {
    fn detected_flag(&mut self, g: usize, flag: &mut bool) {
        if g == 0 {
            *flag = true;
        }
    }

    fn trust_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        // bits[0] is "I trust the source"; the frame-up is the lie.
        if g == 0 {
            if let Some(first) = bits.first_mut() {
                *first = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivocating_source_corrupts_odd_targets() {
        let mut a = EquivocatingSource;
        let mut even = vec![0xAA];
        assert!(a.dispersal_symbol(0, 2, &mut even));
        assert_eq!(even, vec![0xAA]);
        let mut odd = vec![0xAA];
        assert!(a.dispersal_symbol(0, 3, &mut odd));
        assert_eq!(odd, vec![0x55]);
    }

    #[test]
    fn silent_source_suppresses() {
        let mut a = SilentSource;
        let mut p = vec![1u8];
        assert!(!a.dispersal_symbol(0, 1, &mut p));
    }

    #[test]
    fn lying_echo_targets_only() {
        let mut a = LyingEcho::new(vec![2]);
        let mut p = vec![0x0F];
        assert!(a.echo_symbol(0, 2, &mut p));
        assert_eq!(p, vec![0xF0]);
        let mut q = vec![0x0F];
        assert!(a.echo_symbol(0, 1, &mut q));
        assert_eq!(q, vec![0x0F]);
    }

    #[test]
    fn false_detector_flags() {
        let mut a = FalseDetector;
        let mut f = false;
        a.detected_flag(0, &mut f);
        assert!(f);
    }

    #[test]
    fn framing_accuser_forces_diagnosis_and_accuses_source() {
        let mut a = FramingAccuser;
        let mut f = false;
        a.detected_flag(0, &mut f);
        assert!(f);
        let mut trust = vec![true, true, true];
        a.trust_bits(0, &mut trust);
        assert_eq!(trust, vec![false, true, true], "only the source is framed");
        // Later generations stay honest: a repeat accusation would remove
        // nothing and trip the no-removal isolation rule.
        let mut f2 = false;
        a.detected_flag(1, &mut f2);
        assert!(!f2);
        let mut trust2 = vec![true, true];
        a.trust_bits(1, &mut trust2);
        assert_eq!(trust2, vec![true, true]);
    }

    #[test]
    fn lying_source_flips_data() {
        let mut a = LyingDiagnosisSource;
        let mut bits = vec![true, false];
        a.data_bits(0, &mut bits);
        assert_eq!(bits, vec![false, true]);
    }
}
