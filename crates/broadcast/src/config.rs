//! Broadcast parameters and generation sizing.

use std::fmt;

/// Error for invalid broadcast parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastConfigError {
    /// `t >= n/3`.
    TooManyFaults {
        /// Number of processors.
        n: usize,
        /// Requested tolerance.
        t: usize,
    },
    /// `source >= n`.
    BadSource {
        /// The offending source id.
        source: usize,
    },
    /// Zero-length value.
    EmptyValue,
    /// Explicit zero generation size.
    ZeroGenerationSize,
}

impl fmt::Display for BroadcastConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BroadcastConfigError::TooManyFaults { n, t } => {
                write!(f, "error-free broadcast requires t < n/3 (n = {n}, t = {t})")
            }
            BroadcastConfigError::BadSource { source } => {
                write!(f, "source id {source} is out of range")
            }
            BroadcastConfigError::EmptyValue => write!(f, "broadcast value must be at least one byte"),
            BroadcastConfigError::ZeroGenerationSize => {
                write!(f, "generation size must be at least one byte")
            }
        }
    }
}

impl std::error::Error for BroadcastConfigError {}

/// The sizing analogue of the consensus Eq. (2) for the broadcast
/// variant: balances the per-generation `Broadcast_Single_Bit` overhead
/// (`≈ n·B` bits for the `Detected` flags) against the worst-case
/// diagnosis cost (`≈ t(t+2)` stages, each re-broadcasting `O(D)` bits).
pub fn broadcast_optimal_d_bits(n: usize, t: usize, l_bits: u64) -> u64 {
    if t == 0 {
        return l_bits.max(1);
    }
    let nf = n as f64;
    let tf = t as f64;
    let l = l_bits as f64;
    let bound = tf * (tf + 2.0);
    // Per-diagnosis D-proportional factor: the source's data broadcast
    // (1 per bit) plus the echoes' symbol broadcasts ((n-t)/(n-2t)).
    let c = 1.0 + (nf - tf) / (nf - 2.0 * tf);
    let d = (nf * l / (bound * c)).sqrt();
    (d.round() as u64).clamp(1, l_bits.max(1))
}

/// Parameters of one broadcast execution.
///
/// # Examples
///
/// ```
/// use mvbc_broadcast::BroadcastConfig;
///
/// let cfg = BroadcastConfig::new(7, 2, 3, 1024)?;
/// assert_eq!(cfg.source, 3);
/// assert!(cfg.generations() >= 1);
/// # Ok::<(), mvbc_broadcast::BroadcastConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastConfig {
    /// Number of processors.
    pub n: usize,
    /// Fault tolerance (`t < n/3`).
    pub t: usize,
    /// The broadcasting processor.
    pub source: usize,
    /// Value length in bytes.
    pub value_bytes: usize,
    /// Generation size in bytes (`None` = automatic).
    pub gen_bytes: Option<usize>,
    /// Default byte for padding and default decisions.
    pub default_byte: u8,
}

impl BroadcastConfig {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns a [`BroadcastConfigError`] for invalid parameters.
    pub fn new(n: usize, t: usize, source: usize, value_bytes: usize) -> Result<Self, BroadcastConfigError> {
        if 3 * t >= n {
            return Err(BroadcastConfigError::TooManyFaults { n, t });
        }
        if source >= n {
            return Err(BroadcastConfigError::BadSource { source });
        }
        if value_bytes == 0 {
            return Err(BroadcastConfigError::EmptyValue);
        }
        Ok(BroadcastConfig {
            n,
            t,
            source,
            value_bytes,
            gen_bytes: None,
            default_byte: 0,
        })
    }

    /// As [`BroadcastConfig::new`] with an explicit generation size.
    ///
    /// # Errors
    ///
    /// As [`BroadcastConfig::new`], plus
    /// [`BroadcastConfigError::ZeroGenerationSize`].
    pub fn with_gen_bytes(
        n: usize,
        t: usize,
        source: usize,
        value_bytes: usize,
        gen_bytes: usize,
    ) -> Result<Self, BroadcastConfigError> {
        if gen_bytes == 0 {
            return Err(BroadcastConfigError::ZeroGenerationSize);
        }
        let mut cfg = Self::new(n, t, source, value_bytes)?;
        cfg.gen_bytes = Some(gen_bytes);
        Ok(cfg)
    }

    /// Code dimension `k = n - 2t`.
    pub fn k(&self) -> usize {
        self.n - 2 * self.t
    }

    /// Effective generation size in bytes.
    pub fn resolved_gen_bytes(&self) -> usize {
        match self.gen_bytes {
            Some(d) => d.min(self.value_bytes).max(1),
            None => {
                let d_bits = broadcast_optimal_d_bits(self.n, self.t, self.value_bytes as u64 * 8);
                (d_bits.div_ceil(8) as usize).clamp(1, self.value_bytes)
            }
        }
    }

    /// Number of generations.
    pub fn generations(&self) -> usize {
        self.value_bytes.div_ceil(self.resolved_gen_bytes())
    }

    /// The default decision value.
    pub fn default_value(&self) -> Vec<u8> {
        vec![self.default_byte; self.value_bytes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(BroadcastConfig::new(4, 1, 0, 10).is_ok());
        assert_eq!(
            BroadcastConfig::new(3, 1, 0, 10),
            Err(BroadcastConfigError::TooManyFaults { n: 3, t: 1 })
        );
        assert_eq!(
            BroadcastConfig::new(4, 1, 4, 10),
            Err(BroadcastConfigError::BadSource { source: 4 })
        );
        assert_eq!(BroadcastConfig::new(4, 1, 0, 0), Err(BroadcastConfigError::EmptyValue));
        assert_eq!(
            BroadcastConfig::with_gen_bytes(4, 1, 0, 10, 0),
            Err(BroadcastConfigError::ZeroGenerationSize)
        );
    }

    #[test]
    fn d_scales_with_sqrt_l() {
        let d1 = broadcast_optimal_d_bits(7, 2, 1 << 16) as f64;
        let d2 = broadcast_optimal_d_bits(7, 2, 1 << 20) as f64;
        assert!((d2 / d1 - 4.0).abs() < 0.2);
    }

    #[test]
    fn t_zero_one_generation() {
        let cfg = BroadcastConfig::new(4, 0, 1, 100).unwrap();
        assert_eq!(cfg.generations(), 1);
    }

    #[test]
    fn generations_cover_value() {
        let cfg = BroadcastConfig::with_gen_bytes(4, 1, 0, 100, 7).unwrap();
        assert_eq!(cfg.generations(), 15);
        assert!(cfg.generations() * cfg.resolved_gen_bytes() >= 100);
    }

    #[test]
    fn error_display() {
        assert!(BroadcastConfigError::EmptyValue.to_string().contains("byte"));
        assert!(BroadcastConfigError::BadSource { source: 9 }
            .to_string()
            .contains('9'));
    }
}
