//! Multi-generation broadcast engine.

use mvbc_bsb::{BsbDriver, PhaseKingDriver};
use mvbc_core::DiagGraph;
use mvbc_netsim::NodeCtx;
use mvbc_rscode::StripedCode;

use crate::config::BroadcastConfig;
use crate::generation::{run_broadcast_generation, BroadcastGenerationOutcome, SlotTags};
use crate::hooks::BroadcastHooks;

/// Tag scope of a stand-alone broadcast execution (see
/// [`run_broadcast_slot`] for scoped executions).
const STANDALONE_SCOPE: &str = "broadcast";

/// Per-node summary of one broadcast execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastReport {
    /// The delivered `L`-byte value (equals the source's input when the
    /// source is fault-free; common across fault-free processors always).
    pub output: Vec<u8>,
    /// Number of generations whose diagnosis stage ran.
    pub diagnosis_invocations: u64,
    /// Whether the run fell back to the default value because the source
    /// became unusable (isolated or unable to sustain an echo set).
    pub defaulted: bool,
    /// Processors identified as faulty and isolated.
    pub isolated: Vec<usize>,
    /// Total diagnosis-graph edges removed.
    pub edges_removed: usize,
}

/// Runs the full multi-valued broadcast for one processor.
///
/// The source passes `Some(value)` (of `cfg.value_bytes` bytes); all other
/// processors pass `None`.
///
/// # Panics
///
/// Panics when the input presence/length disagrees with the
/// configuration.
pub fn run_broadcast(
    ctx: &mut NodeCtx,
    cfg: &BroadcastConfig,
    input: Option<&[u8]>,
    hooks: &mut dyn BroadcastHooks,
) -> BroadcastReport {
    run_broadcast_with(ctx, cfg, input, hooks, &mut PhaseKingDriver)
}

/// As [`run_broadcast`] with an explicit `Broadcast_Single_Bit`
/// substrate (the §4 substitution seam, as in
/// [`run_consensus_with`](mvbc_core::run_consensus_with)). All
/// fault-free processors must supply the same kind of driver.
///
/// # Panics
///
/// As [`run_broadcast`].
pub fn run_broadcast_with(
    ctx: &mut NodeCtx,
    cfg: &BroadcastConfig,
    input: Option<&[u8]>,
    hooks: &mut dyn BroadcastHooks,
    bsb: &mut dyn BsbDriver,
) -> BroadcastReport {
    let mut diag = DiagGraph::new(cfg.n, cfg.t);
    run_broadcast_slot(ctx, cfg, input, STANDALONE_SCOPE, &mut diag, hooks, bsb)
}

/// Runs one broadcast execution *mid-simulation*, against caller-owned
/// diagnosis state and a caller-chosen tag scope.
///
/// This is the re-entrant core of [`run_broadcast_with`], the seam that
/// lets a slot-indexed protocol (the `mvbc-smr` replicated log) run many
/// consecutive broadcasts inside one simulation:
///
/// - `diag` persists across calls, so dispute-control memory carries over
///   from slot to slot — a processor caught equivocating in one slot has
///   already burnt edges (or is isolated) when the next slot starts. All
///   fault-free callers must pass identical graphs (they stay identical
///   because every update is driven by `Broadcast_Single_Bit` outputs).
/// - `scope` prefixes every message tag and `Broadcast_Single_Bit`
///   session of this execution (e.g. `"smr.slot17"`), so messages from
///   adjacent slots cannot cross-deliver.
///
/// The returned report's `isolated` / `edges_removed` fields describe the
/// *cumulative* state of `diag`, not just this call's changes; callers
/// interested in per-slot changes should diff the graph around the call.
///
/// # Panics
///
/// As [`run_broadcast`]; additionally `diag` must have `cfg.n` vertices.
pub fn run_broadcast_slot(
    ctx: &mut NodeCtx,
    cfg: &BroadcastConfig,
    input: Option<&[u8]>,
    scope: &str,
    diag: &mut DiagGraph,
    hooks: &mut dyn BroadcastHooks,
    bsb: &mut dyn BsbDriver,
) -> BroadcastReport {
    assert_eq!(
        input.is_some(),
        ctx.id() == cfg.source,
        "exactly the source supplies the value"
    );
    if let Some(v) = input {
        assert_eq!(v.len(), cfg.value_bytes, "value must be L bytes");
    }
    assert_eq!(diag.n(), cfg.n, "diagnosis graph size must match n");
    let d = cfg.resolved_gen_bytes();
    let generations = cfg.generations();
    let code = StripedCode::c2t(cfg.n, cfg.t, d).expect("validated parameters");
    let tags = SlotTags::new(scope);

    let mut output: Vec<u8> = Vec::with_capacity(cfg.value_bytes);
    let mut diagnosis_invocations = 0u64;
    let mut defaulted = false;

    for g in 0..generations {
        if hooks.crash_before_generation(g) || diag.is_isolated(ctx.id()) {
            output.resize(cfg.value_bytes, cfg.default_byte);
            break;
        }
        hooks.observe_generation_start(g, ctx.id(), diag);

        let part: Option<Vec<u8>> = input.map(|v| {
            let start = g * d;
            let end = ((g + 1) * d).min(cfg.value_bytes);
            let mut p = v[start..end].to_vec();
            p.resize(d, cfg.default_byte);
            hooks.input_override(g, &mut p);
            p
        });

        let report =
            run_broadcast_generation(ctx, cfg, &code, diag, tags, g, part.as_deref(), hooks, bsb);
        if report.diagnosis_ran {
            diagnosis_invocations += 1;
        }
        match report.outcome {
            BroadcastGenerationOutcome::Decided(v) => {
                debug_assert_eq!(v.len(), d);
                output.extend_from_slice(&v);
            }
            BroadcastGenerationOutcome::SourceUnusable => {
                defaulted = true;
                output.resize(cfg.value_bytes, cfg.default_byte);
                break;
            }
        }
    }
    output.truncate(cfg.value_bytes);
    output.resize(cfg.value_bytes, cfg.default_byte);

    let isolated: Vec<usize> = (0..cfg.n).filter(|&v| diag.is_isolated(v)).collect();
    BroadcastReport {
        output,
        diagnosis_invocations,
        defaulted,
        isolated,
        edges_removed: diag.total_removed(),
    }
}
