//! One generation of the broadcast protocol: dispersal, echo/checking,
//! and diagnosis.

use mvbc_bsb::{BsbConfig, BsbDriver, BsbInstance, BsbValueSpec, SessionTags};
use mvbc_core::DiagGraph;
use mvbc_netsim::bits::{pack_bits, unpack_bits};
use mvbc_netsim::{scoped_tag, NodeCtx};
use mvbc_rscode::{StripedCode, Symbol};

use crate::config::BroadcastConfig;
use crate::hooks::BroadcastHooks;

/// Message tags and `Broadcast_Single_Bit` session names of one broadcast
/// execution, derived from a caller-chosen scope. A stand-alone broadcast
/// uses the scope `"broadcast"`; slot-indexed callers (the `mvbc-smr`
/// replicated log) scope per slot (`"smr.slot17"`, …) so a Byzantine
/// processor cannot replay one slot's messages into another.
///
/// The BSB-derived tags of each session are interned here too — **once
/// per slot execution** — so the per-generation [`BsbConfig`]s are built
/// with [`BsbConfig::with_tags`] and steady-state sends never touch the
/// global interning table (no formatting, no locking on the hot path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotTags {
    /// The raw scope itself (`"broadcast"`, `"smr.slot17"`, …), used to
    /// label telemetry phase spans with their slot/lane identity.
    pub scope: &'static str,
    pub dispersal: &'static str,
    pub echo: &'static str,
    pub detected: &'static str,
    pub data: &'static str,
    pub claims: &'static str,
    pub trust: &'static str,
    pub detected_session: SessionTags,
    pub data_session: SessionTags,
    pub claims_session: SessionTags,
    pub trust_session: SessionTags,
}

impl SlotTags {
    pub(crate) fn new(scope: &str) -> Self {
        let detected = scoped_tag(scope, "checking.detected");
        let data = scoped_tag(scope, "diagnosis.data");
        let claims = scoped_tag(scope, "diagnosis.claims");
        let trust = scoped_tag(scope, "diagnosis.trust");
        SlotTags {
            scope: mvbc_metrics::intern_tag(scope),
            dispersal: scoped_tag(scope, "dispersal.symbol"),
            echo: scoped_tag(scope, "echo.symbol"),
            detected,
            data,
            claims,
            trust,
            detected_session: SessionTags::derive(detected),
            data_session: SessionTags::derive(data),
            claims_session: SessionTags::derive(claims),
            trust_session: SessionTags::derive(trust),
        }
    }
}

/// Decision of one broadcast generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastGenerationOutcome {
    /// The generation value was delivered.
    Decided(Vec<u8>),
    /// The source is isolated or provably faulty (cannot assemble an echo
    /// set); all fault-free processors decide the default value.
    SourceUnusable,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BroadcastGenReport {
    pub outcome: BroadcastGenerationOutcome,
    pub diagnosis_ran: bool,
    pub edges_removed: Vec<(usize, usize)>,
    pub newly_isolated: Vec<usize>,
}

/// Computes the common-knowledge echo set: the source plus the
/// `n - t - 1` lowest-id active processors that still trust the source.
/// Returns `None` when fewer than `n - t - 1` such processors exist
/// (possible only for a faulty source, since fault-free processors never
/// lose edges to a fault-free source).
pub(crate) fn echo_set(cfg: &BroadcastConfig, diag: &DiagGraph) -> Option<Vec<usize>> {
    let non_src: Vec<usize> = diag
        .active_ids()
        .into_iter()
        .filter(|&v| v != cfg.source && diag.trusts(v, cfg.source))
        .take(cfg.n - cfg.t - 1)
        .collect();
    if non_src.len() < cfg.n - cfg.t - 1 {
        return None;
    }
    let mut e_set = non_src;
    e_set.push(cfg.source);
    e_set.sort_unstable();
    Some(e_set)
}

#[allow(clippy::too_many_arguments)] // one call site; mirrors the paper's per-generation state
pub(crate) fn run_broadcast_generation(
    ctx: &mut NodeCtx,
    cfg: &BroadcastConfig,
    code: &StripedCode,
    diag: &mut DiagGraph,
    tags: SlotTags,
    g: usize,
    my_part: Option<&[u8]>,
    hooks: &mut dyn BroadcastHooks,
    bsb: &mut dyn BsbDriver,
) -> BroadcastGenReport {
    let t = cfg.t;
    let k = cfg.k();
    let src = cfg.source;
    let me = ctx.id();
    let active = diag.active_ids();
    let participants = diag.participants();
    let stripes = code.layout().stripes;
    let sym_wire_bits = stripes * 16;
    let no_report = |outcome| BroadcastGenReport {
        outcome,
        diagnosis_ran: false,
        edges_removed: Vec::new(),
        newly_isolated: Vec::new(),
    };

    // Optional phase spans (dispersal / echo / vote / diagnosis), keyed
    // by the slot scope. `None` unless the caller's sink was built with
    // `MetricsSink::with_telemetry` — the default records nothing.
    let telemetry = ctx.metrics().telemetry();

    // The echo set is common knowledge (derived from the shared graph).
    let Some(e_set) = echo_set(cfg, diag) else {
        return no_report(BroadcastGenerationOutcome::SourceUnusable);
    };
    let i_am_echo = e_set.contains(&me);

    // ------------------------------------------------------------------
    // Round 1: dispersal — the source sends coded symbol j to processor j.
    // ------------------------------------------------------------------
    let span = telemetry.as_ref().map(|t| t.span(me, tags.scope, "dispersal", ctx.vtime()));
    let my_symbols: Option<Vec<Symbol>> = my_part.map(|part| {
        code.encode_value(part)
            .expect("generation part has the configured size")
    });
    if me == src && participants[me] {
        let symbols = my_symbols.as_ref().expect("source holds the value");
        for (j, sym) in symbols.iter().enumerate() {
            if j == src || !diag.trusts(src, j) {
                continue;
            }
            let mut payload = sym.to_bytes();
            if hooks.dispersal_symbol(g, j, &mut payload) {
                ctx.send(j, tags.dispersal, payload, code.symbol_bits());
            }
        }
    }
    let mut inbox = ctx.end_round();
    let own: Option<Symbol> = if me == src {
        my_symbols.as_ref().map(|s| s[src].clone())
    } else if diag.trusts(me, src) {
        inbox
            .take(src, tags.dispersal)
            .and_then(|b| Symbol::from_bytes(&b, stripes, code.symbol_bits()))
    } else {
        None
    };
    if let Some(span) = span {
        span.finish(ctx.vtime());
    }

    // ------------------------------------------------------------------
    // Round 2: echo — echo-set members relay their symbols to everyone.
    // ------------------------------------------------------------------
    let span = telemetry.as_ref().map(|t| t.span(me, tags.scope, "echo", ctx.vtime()));
    if i_am_echo && participants[me] {
        if let Some(sym) = &own {
            for j in &active {
                let j = *j;
                if j == me || !diag.trusts(me, j) {
                    continue;
                }
                let mut payload = sym.to_bytes();
                if hooks.echo_symbol(g, j, &mut payload) {
                    ctx.send(j, tags.echo, payload, code.symbol_bits());
                }
            }
        }
    }
    let mut inbox = ctx.end_round();
    let echo_rx: Vec<Option<Symbol>> = e_set
        .iter()
        .map(|&e| {
            if e == me {
                own.clone().filter(|_| i_am_echo)
            } else if diag.trusts(me, e) {
                inbox
                    .take(e, tags.echo)
                    .and_then(|b| Symbol::from_bytes(&b, stripes, code.symbol_bits()))
            } else {
                None
            }
        })
        .collect();
    if let Some(span) = span {
        span.finish(ctx.vtime());
    }

    // ------------------------------------------------------------------
    // Checking: consistency of everything this processor holds.
    // ------------------------------------------------------------------
    let mut pairs: Vec<(usize, Symbol)> = e_set
        .iter()
        .zip(&echo_rx)
        .filter_map(|(&e, s)| s.clone().map(|s| (e, s)))
        .collect();
    if !i_am_echo {
        if let Some(own_sym) = &own {
            pairs.push((me, own_sym.clone()));
        }
    }
    let echo_present = e_set
        .iter()
        .zip(&echo_rx)
        .filter(|(_, s)| s.is_some())
        .count();
    let consistent = code.is_consistent(&pairs).expect("positions are valid");
    let mut detected = if me == src {
        false
    } else {
        let missing_own = diag.trusts(me, src) && own.is_none();
        !consistent || echo_present < k || missing_own
    };
    if me != src {
        hooks.detected_flag(g, &mut detected);
    }
    let det_sources: Vec<usize> = active.iter().copied().filter(|&v| v != src).collect();
    let bsb_det = BsbConfig::with_tags(t, tags.detected, tags.detected_session, participants.clone());
    let det_instances: Vec<BsbInstance> = det_sources
        .iter()
        .map(|&v| BsbInstance {
            source: v,
            input: (v == me).then_some(detected),
        })
        .collect();
    let span = telemetry.as_ref().map(|t| t.span(me, tags.scope, "vote", ctx.vtime()));
    let det_flags = bsb.run_batch(ctx, &bsb_det, &det_instances, &mut *hooks);
    let any_detected = det_flags.iter().any(|&d| d);
    if let Some(span) = span {
        span.finish(ctx.vtime());
    }

    if !any_detected {
        let value = if me == src {
            my_part.expect("source holds the value").to_vec()
        } else {
            code.decode_value(&pairs)
                .unwrap_or_else(|_| vec![cfg.default_byte; code.layout().value_bytes])
        };
        return no_report(BroadcastGenerationOutcome::Decided(value));
    }

    // ------------------------------------------------------------------
    // Diagnosis stage.
    // ------------------------------------------------------------------
    let span = telemetry.as_ref().map(|t| t.span(me, tags.scope, "diagnosis", ctx.vtime()));

    // (d1) The source broadcasts the full generation data.
    let data_bits_len = code.layout().value_bytes * 8;
    let mut my_data_bits: Vec<bool> = if me == src {
        unpack_bits(my_part.expect("source holds the value"), data_bits_len)
            .expect("length matches by construction")
    } else {
        vec![false; data_bits_len]
    };
    if me == src {
        hooks.data_bits(g, &mut my_data_bits);
    }
    let bsb_data = BsbConfig::with_tags(t, tags.data, tags.data_session, participants.clone());
    let data_spec = [BsbValueSpec {
        source: src,
        bits: data_bits_len,
        input: (me == src).then(|| my_data_bits.clone()),
    }];
    let data_bits = bsb.run_values(ctx, &bsb_data, &data_spec, &mut *hooks).remove(0);
    let data_bytes = pack_bits(&data_bits);
    let claimed_codeword = code
        .encode_value(&data_bytes)
        .expect("claimed data has the generation size");

    // (d2) Echo-set members broadcast their claims: 1 presence bit plus
    // the symbol bits.
    let claim_len = 1 + sym_wire_bits;
    let mut my_claim: Vec<bool> = if i_am_echo {
        let mut bits = vec![own.is_some()];
        match &own {
            Some(sym) => {
                bits.extend(unpack_bits(&sym.to_bytes(), sym_wire_bits).expect("fixed width"))
            }
            None => bits.extend(std::iter::repeat_n(false, sym_wire_bits)),
        }
        bits
    } else {
        vec![false; claim_len]
    };
    if i_am_echo {
        hooks.echo_claim_bits(g, &mut my_claim);
    }
    let bsb_claims = BsbConfig::with_tags(t, tags.claims, tags.claims_session, participants.clone());
    let claim_specs: Vec<BsbValueSpec> = e_set
        .iter()
        .map(|&e| BsbValueSpec {
            source: e,
            bits: claim_len,
            input: (e == me).then(|| my_claim.clone()),
        })
        .collect();
    let claim_bits = bsb.run_values(ctx, &bsb_claims, &claim_specs, &mut *hooks);
    let claims: Vec<Option<Symbol>> = claim_bits
        .iter()
        .map(|bits| {
            bits[0].then(|| {
                Symbol::from_bytes(&pack_bits(&bits[1..]), stripes, code.symbol_bits())
                    .expect("fixed-width broadcast yields a well-formed symbol")
            })
        })
        .collect();

    // (d3) Trust vectors: [trust-source, trust-echo(e) for e in E].
    let mut trust: Vec<bool> = Vec::with_capacity(claim_len);
    trust.push(if me == src || !diag.trusts(me, src) {
        true // nothing to accuse (or no edge left to remove)
    } else {
        own.as_ref() == Some(&claimed_codeword[me])
    });
    for (idx, &e) in e_set.iter().enumerate() {
        trust.push(if e == me || !diag.trusts(me, e) {
            true
        } else {
            echo_rx[idx] == claims[idx]
        });
    }
    hooks.trust_bits(g, &mut trust);
    let bsb_trust = BsbConfig::with_tags(t, tags.trust, tags.trust_session, participants.clone());
    let trust_specs: Vec<BsbValueSpec> = active
        .iter()
        .map(|&v| BsbValueSpec {
            source: v,
            bits: 1 + e_set.len(),
            input: (v == me).then(|| trust.clone()),
        })
        .collect();
    let trust_all = bsb.run_values(ctx, &bsb_trust, &trust_specs, &mut *hooks);

    // Edge removals: accusations (i -> source), (i -> echo), and
    // source-vs-echo claim mismatches. Every removed edge is adjacent to
    // at least one faulty processor (see crate docs).
    let mut edges_removed: Vec<(usize, usize)> = Vec::new();
    let remove = |diag: &mut DiagGraph, a: usize, b: usize, out: &mut Vec<(usize, usize)>| {
        if a != b && diag.trusts(a, b) {
            diag.remove_edge(a, b);
            out.push((a.min(b), a.max(b)));
        }
    };
    for (ai, &i) in active.iter().enumerate() {
        let tv = &trust_all[ai];
        if !tv[0] {
            remove(diag, i, src, &mut edges_removed);
        }
        for (idx, &e) in e_set.iter().enumerate() {
            if !tv[1 + idx] {
                remove(diag, i, e, &mut edges_removed);
            }
        }
    }
    let mut newly_isolated: Vec<usize> = Vec::new();
    for (idx, &e) in e_set.iter().enumerate() {
        let expected = Some(&claimed_codeword[e]);
        let claim_matches = claims[idx].as_ref() == expected;
        if claim_matches {
            continue;
        }
        if e == src {
            // The source contradicted itself across two broadcasts: its
            // claimed echo symbol does not lie on its claimed codeword.
            if !diag.is_isolated(src) {
                diag.isolate(src);
                newly_isolated.push(src);
            }
        } else {
            remove(diag, src, e, &mut edges_removed);
        }
    }

    // False-accuser isolation: when a diagnosis removes nothing at all, a
    // fault-free processor cannot have detected anything (every honest
    // detection implies a removable edge), so all claimed detections were
    // lies.
    if edges_removed.is_empty() && newly_isolated.is_empty() {
        for (di, &v) in det_sources.iter().enumerate() {
            if det_flags[di] && !diag.is_isolated(v) {
                diag.isolate(v);
                newly_isolated.push(v);
            }
        }
    }
    newly_isolated.extend(diag.enforce_isolation());
    newly_isolated.sort_unstable();
    newly_isolated.dedup();

    if let Some(span) = span {
        span.finish(ctx.vtime());
    }

    // Decide on the source's (common) claim.
    let mut value = data_bytes;
    value.truncate(code.layout().value_bytes);
    BroadcastGenReport {
        outcome: BroadcastGenerationOutcome::Decided(value),
        diagnosis_ran: true,
        edges_removed,
        newly_isolated,
    }
}
