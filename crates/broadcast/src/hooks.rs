//! Byzantine behaviour hooks for the broadcast protocol.

use mvbc_bsb::BsbHooks;
use mvbc_core::DiagGraph;
use mvbc_netsim::NodeId;

/// Mutation points of the broadcast protocol (dispersal / echo /
/// diagnosis), mirroring [`mvbc_core::ProtocolHooks`] for consensus.
pub trait BroadcastHooks: BsbHooks {
    /// Called at the start of each generation with the shared diagnosis
    /// graph (the paper's full-information adversary).
    fn observe_generation_start(&mut self, g: usize, me: NodeId, diag: &DiagGraph) {
        let _ = (g, me, diag);
    }

    /// Source only: replace the generation data before encoding.
    fn input_override(&mut self, g: usize, value: &mut Vec<u8>) {
        let _ = (g, value);
    }

    /// Source only: mutate the coded symbol sent to processor `to` in the
    /// dispersal round; return `false` to suppress the send.
    fn dispersal_symbol(&mut self, g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        let _ = (g, to, payload);
        true
    }

    /// Echo-set members: mutate the relayed symbol sent to `to`; return
    /// `false` to suppress.
    fn echo_symbol(&mut self, g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        let _ = (g, to, payload);
        true
    }

    /// Flip the 1-bit `Detected` verdict before broadcast.
    fn detected_flag(&mut self, g: usize, flag: &mut bool) {
        let _ = (g, flag);
    }

    /// Source only, diagnosis stage: mutate the full generation data bits
    /// before the `Broadcast_Single_Bit` re-broadcast.
    fn data_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        let _ = (g, bits);
    }

    /// Echo-set members, diagnosis stage: mutate the claimed
    /// presence+symbol bits.
    fn echo_claim_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        let _ = (g, bits);
    }

    /// Mutate the trust vector (`[trust-source, trust-echo...]`) before
    /// broadcast.
    fn trust_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        let _ = (g, bits);
    }

    /// Crash (stop participating) before generation `g`.
    fn crash_before_generation(&mut self, g: usize) -> bool {
        let _ = g;
        false
    }
}

/// The honest broadcast behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopBroadcastHooks;

impl BsbHooks for NoopBroadcastHooks {}
impl BroadcastHooks for NoopBroadcastHooks {}

impl NoopBroadcastHooks {
    /// Boxed honest hooks.
    pub fn boxed() -> Box<dyn BroadcastHooks> {
        Box::new(NoopBroadcastHooks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_defaults_do_nothing() {
        let mut h = NoopBroadcastHooks;
        let mut v = vec![1u8];
        h.input_override(0, &mut v);
        assert_eq!(v, vec![1]);
        let mut p = vec![2u8];
        assert!(h.dispersal_symbol(0, 1, &mut p));
        assert!(h.echo_symbol(0, 1, &mut p));
        assert_eq!(p, vec![2]);
        let mut flag = true;
        h.detected_flag(0, &mut flag);
        assert!(flag);
        assert!(!h.crash_before_generation(0));
    }
}
