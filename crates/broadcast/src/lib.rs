//! Error-free multi-valued Byzantine **broadcast** for `t < n/3`.
//!
//! §4 of Liang & Vaidya (PODC 2011) observes that the techniques of their
//! consensus algorithm — Reed-Solomon dispersal, consistency detection,
//! and diagnosis-graph dispute control — also yield an error-free
//! multi-valued *broadcast* (Byzantine Generals) protocol with
//! communication complexity `< 1.5 (n-1) L + Θ(n⁴ L^0.5)` bits for large
//! `L` (the 1.5-factor construction is in their companion technical
//! report, arXiv:1006.2422).
//!
//! This crate builds the variant described in DESIGN.md §2 with the same
//! building blocks and guarantees (error-free, `Θ((n-1)L)` with a small
//! constant), at a failure-free rate of about `2(n-1)L` for `t ≈ n/3`:
//!
//! 1. **Dispersal** — the source Reed-Solomon-encodes each `D`-bit
//!    generation of its value with the `(n, n-2t)` code and sends coded
//!    symbol `j` to processor `j`.
//! 2. **Echo** — a common-knowledge echo set `E` (the source plus the
//!    `n-t-1` lowest-id processors that still trust the source) relays
//!    its symbols to everyone; every processor checks the symbols it
//!    holds for consistency with one codeword and broadcasts a 1-bit
//!    `Detected` verdict via [`Broadcast_Single_Bit`](mvbc_bsb).
//! 3. **Diagnosis** — on detection, the source broadcasts the whole
//!    generation data and the echoes their claimed symbols (all via
//!    `Broadcast_Single_Bit`); every mismatch removes a diagnosis-graph
//!    edge adjacent to a faulty processor, false accusers are isolated,
//!    and everyone decides the source's (now common) claim.
//!
//! The diagnosis graph is shared machinery with
//! [`mvbc_core`](mvbc_core::DiagGraph); the per-execution dispute budget
//! bounds diagnosis stages by `t(t+2)`.
//!
//! # Examples
//!
//! ```
//! use mvbc_broadcast::{simulate_broadcast, BroadcastConfig, NoopBroadcastHooks};
//! use mvbc_metrics::MetricsSink;
//!
//! let cfg = BroadcastConfig::new(4, 1, 0, 512)?; // source = processor 0
//! let value = vec![0x42u8; 512];
//! let hooks = (0..4).map(|_| NoopBroadcastHooks::boxed()).collect();
//! let run = simulate_broadcast(&cfg, value.clone(), hooks, MetricsSink::new());
//! assert!(run.outputs.iter().all(|o| *o == value));
//! # Ok::<(), mvbc_broadcast::BroadcastConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
mod config;
mod engine;
mod generation;
mod hooks;
mod runner;

pub use config::{broadcast_optimal_d_bits, BroadcastConfig, BroadcastConfigError};
pub use engine::{run_broadcast, run_broadcast_slot, run_broadcast_with, BroadcastReport};
pub use generation::BroadcastGenerationOutcome;
pub use hooks::{BroadcastHooks, NoopBroadcastHooks};
pub use runner::{simulate_broadcast, simulate_broadcast_with, BroadcastRun};
