//! One-call broadcast simulation runner.

use mvbc_bsb::{BsbDriver, PhaseKingDriver};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};

use crate::config::BroadcastConfig;
use crate::engine::{run_broadcast_with, BroadcastReport};
use crate::hooks::BroadcastHooks;

/// Result of a simulated broadcast.
#[derive(Debug)]
pub struct BroadcastRun {
    /// Delivered values by processor id (the source's entry is its input).
    pub outputs: Vec<Vec<u8>>,
    /// Per-processor reports.
    pub reports: Vec<BroadcastReport>,
    /// Synchronous rounds executed.
    pub rounds: u64,
}

/// Runs one broadcast of `value` from `cfg.source` over the in-process
/// simulator.
///
/// # Panics
///
/// Panics when `hooks.len() != cfg.n` or `value.len() != cfg.value_bytes`.
pub fn simulate_broadcast(
    cfg: &BroadcastConfig,
    value: Vec<u8>,
    hooks: Vec<Box<dyn BroadcastHooks>>,
    metrics: MetricsSink,
) -> BroadcastRun {
    let drivers = (0..cfg.n)
        .map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>)
        .collect();
    simulate_broadcast_with(cfg, value, hooks, drivers, metrics)
}

/// As [`simulate_broadcast`] with one explicit
/// [`BsbDriver`] per processor (the §4 substitution
/// seam; see [`mvbc_core::simulate_consensus_with`] for the driver-fleet
/// convention).
///
/// # Panics
///
/// As [`simulate_broadcast`], plus when `drivers.len() != cfg.n`.
pub fn simulate_broadcast_with(
    cfg: &BroadcastConfig,
    value: Vec<u8>,
    hooks: Vec<Box<dyn BroadcastHooks>>,
    drivers: Vec<Box<dyn BsbDriver>>,
    metrics: MetricsSink,
) -> BroadcastRun {
    assert_eq!(hooks.len(), cfg.n, "one hooks object per processor");
    assert_eq!(value.len(), cfg.value_bytes, "value must be L bytes");
    assert_eq!(drivers.len(), cfg.n, "one BSB driver per processor");

    let logics: Vec<NodeLogic<BroadcastReport>> = hooks
        .into_iter()
        .zip(drivers)
        .enumerate()
        .map(|(id, (mut hook, mut driver))| {
            let cfg = cfg.clone();
            let input = (id == cfg.source).then(|| value.clone());
            Box::new(move |ctx: &mut NodeCtx| {
                run_broadcast_with(ctx, &cfg, input.as_deref(), hook.as_mut(), driver.as_mut())
            }) as NodeLogic<BroadcastReport>
        })
        .collect();

    let result = run_simulation(SimConfig::new(cfg.n), metrics, logics);
    let outputs = result.outputs.iter().map(|r| r.output.clone()).collect();
    BroadcastRun {
        outputs,
        reports: result.outputs,
        rounds: result.rounds,
    }
}
