//! End-to-end broadcast tests: fault-free and adversarial executions.

use mvbc_broadcast::attacks::{
    EquivocatingSource, FalseDetector, LyingDiagnosisSource, LyingEcho, SilentSource,
};
use mvbc_broadcast::{
    simulate_broadcast, BroadcastConfig, BroadcastHooks, BroadcastRun, NoopBroadcastHooks,
};
use mvbc_metrics::MetricsSink;

fn value(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed)).collect()
}

fn honest(n: usize) -> Vec<Box<dyn BroadcastHooks>> {
    (0..n).map(|_| NoopBroadcastHooks::boxed()).collect()
}

/// Byzantine-broadcast safety: all fault-free outputs equal; when the
/// source is fault-free they equal its input (validity).
fn assert_bcast_safety(run: &BroadcastRun, faulty: &[usize], source_input: Option<&[u8]>) {
    let n = run.outputs.len();
    let honest_ids: Vec<usize> = (0..n).filter(|id| !faulty.contains(id)).collect();
    for w in honest_ids.windows(2) {
        assert_eq!(
            run.outputs[w[0]], run.outputs[w[1]],
            "consistency violated between honest {} and {}",
            w[0], w[1]
        );
    }
    if let Some(v) = source_input {
        for &id in &honest_ids {
            assert_eq!(run.outputs[id], v, "validity violated at {id}");
        }
    }
    for &id in &honest_ids {
        for iso in &run.reports[id].isolated {
            assert!(faulty.contains(iso), "honest processor {iso} isolated");
        }
    }
}

#[test]
fn honest_broadcast_various_sizes() {
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
        for src in [0, n - 1] {
            let cfg = BroadcastConfig::new(n, t, src, 256).unwrap();
            let v = value(256, src as u8);
            let run = simulate_broadcast(&cfg, v.clone(), honest(n), MetricsSink::new());
            assert_bcast_safety(&run, &[], Some(&v));
            assert_eq!(run.reports[0].diagnosis_invocations, 0);
        }
    }
}

#[test]
fn multi_generation_broadcast() {
    let cfg = BroadcastConfig::with_gen_bytes(4, 1, 0, 100, 8).unwrap();
    let v = value(100, 9);
    let run = simulate_broadcast(&cfg, v.clone(), honest(4), MetricsSink::new());
    assert_bcast_safety(&run, &[], Some(&v));
}

#[test]
fn t_zero_broadcast() {
    let cfg = BroadcastConfig::new(4, 0, 2, 64).unwrap();
    let v = value(64, 5);
    let run = simulate_broadcast(&cfg, v.clone(), honest(4), MetricsSink::new());
    assert_bcast_safety(&run, &[], Some(&v));
}

#[test]
fn equivocating_source_still_delivers_consistently() {
    let n = 4;
    let cfg = BroadcastConfig::with_gen_bytes(n, 1, 0, 64, 16).unwrap();
    let v = value(64, 1);
    let mut hooks = honest(n);
    hooks[0] = Box::new(EquivocatingSource);
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    // Source faulty: consistency only (no validity requirement).
    assert_bcast_safety(&run, &[0], None);
    assert!(run.reports[1].diagnosis_invocations >= 1);
}

#[test]
fn silent_source_defaults_consistently() {
    let n = 4;
    let cfg = BroadcastConfig::with_gen_bytes(n, 1, 0, 32, 8).unwrap();
    let v = value(32, 2);
    let mut hooks = honest(n);
    hooks[0] = Box::new(SilentSource);
    let run = simulate_broadcast(&cfg, v, hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[0], None);
}

#[test]
fn lying_diagnosis_source_commits_to_lie_consistently() {
    // The source disperses the truth but lies in the diagnosis broadcast:
    // honest processors must deliver a *common* value (the lie), and the
    // source loses edges.
    let n = 4;
    let cfg = BroadcastConfig::with_gen_bytes(n, 1, 0, 32, 8).unwrap();
    let v = value(32, 3);
    let mut hooks = honest(n);
    hooks[0] = Box::new(CombinedSourceAttack);
    let run = simulate_broadcast(&cfg, v, hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[0], None);
}

/// Equivocate in dispersal (to force a diagnosis) *and* lie in the
/// diagnosis data broadcast.
#[derive(Debug, Clone, Copy, Default)]
struct CombinedSourceAttack;

impl mvbc_bsb::BsbHooks for CombinedSourceAttack {}

impl BroadcastHooks for CombinedSourceAttack {
    fn dispersal_symbol(&mut self, g: usize, to: usize, payload: &mut Vec<u8>) -> bool {
        let mut inner = EquivocatingSource;
        inner.dispersal_symbol(g, to, payload)
    }

    fn data_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        let mut inner = LyingDiagnosisSource;
        inner.data_bits(g, bits);
    }
}

#[test]
fn lying_echo_caught_and_value_delivered() {
    let n = 4;
    let cfg = BroadcastConfig::with_gen_bytes(n, 1, 0, 64, 16).unwrap();
    let v = value(64, 4);
    let mut hooks = honest(n);
    hooks[2] = Box::new(LyingEcho::new(vec![3]));
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[2], Some(&v));
    assert!(run.reports[0].diagnosis_invocations >= 1);
    // The liar's edges shrink; check at least one edge was removed.
    assert!(run.reports[0].edges_removed >= 1);
}

#[test]
fn false_detector_isolated() {
    let n = 4;
    let cfg = BroadcastConfig::with_gen_bytes(n, 1, 0, 64, 8).unwrap();
    let v = value(64, 6);
    let mut hooks = honest(n);
    hooks[3] = Box::new(FalseDetector);
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[3], Some(&v));
    assert_eq!(run.reports[0].isolated, vec![3]);
}

#[test]
fn diagnosis_count_bounded() {
    // t(t+2) bound from the crate docs, under a persistent attacker.
    let n = 7;
    let t = 2;
    let cfg = BroadcastConfig::with_gen_bytes(n, t, 0, 256, 8).unwrap();
    let v = value(256, 7);
    let mut hooks = honest(n);
    hooks[5] = Box::new(LyingEcho::new(vec![1, 2]));
    hooks[6] = Box::new(FalseDetector);
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[5, 6], Some(&v));
    assert!(
        run.reports[0].diagnosis_invocations <= (t * (t + 2)) as u64,
        "diagnosis bound exceeded: {}",
        run.reports[0].diagnosis_invocations
    );
}

#[test]
fn failure_free_cost_near_two_nl() {
    // DESIGN.md §2: failure-free cost ≈ (n-t)(n-1)/(n-2t) · L plus
    // sub-linear terms; for n = 7, t = 2 the coefficient is 10(n-1)/3 ≈
    // 3.33(n-1)... measured against (n-1)L directly.
    let n = 7;
    let t = 2;
    let l = 8192usize;
    let cfg = BroadcastConfig::new(n, t, 0, l).unwrap();
    let v = value(l, 8);
    let metrics = MetricsSink::new();
    let run = simulate_broadcast(&cfg, v.clone(), honest(n), metrics.clone());
    assert_bcast_safety(&run, &[], Some(&v));
    let total = metrics.snapshot().total_logical_bits() as f64;
    let lower = ((n - 1) * l * 8) as f64;
    let ratio = total / lower;
    // (n-t+1)/(n-2t) = 6/3 = 2 for the symbol traffic; BSB overhead adds
    // more at this moderate L. Must stay well below the bitwise baseline.
    assert!(ratio > 1.0, "cannot beat the (n-1)L lower bound: {ratio}");
    assert!(ratio < 8.0, "ratio {ratio} too far from the model");
}

#[test]
fn silent_echo_tolerated() {
    use mvbc_broadcast::attacks::SilentEcho;
    let n = 7;
    let cfg = BroadcastConfig::with_gen_bytes(n, 2, 0, 96, 16).unwrap();
    let v = value(96, 10);
    let mut hooks = honest(n);
    hooks[2] = Box::new(SilentEcho); // node 2 is in the echo set
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[2], Some(&v));
}

#[test]
fn framing_echo_burns_its_own_edges() {
    use mvbc_broadcast::attacks::FramingEcho;
    let n = 7;
    let cfg = BroadcastConfig::with_gen_bytes(n, 2, 0, 96, 16).unwrap();
    let v = value(96, 11);
    let mut hooks = honest(n);
    hooks[3] = Box::new(FramingEcho);
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[3], Some(&v));
    // The frame-up claims "source sent me nothing" while the source's
    // data broadcast says otherwise: the (source, echo) edge is removed,
    // and since the source is honest, the removal bill lands on node 3.
    assert!(run.reports[0].diagnosis_invocations >= 1);
    assert!(run.reports[0].edges_removed >= 1);
}

#[test]
fn two_byzantine_echoes_n7() {
    use mvbc_broadcast::attacks::{LyingEcho, SilentEcho};
    let n = 7;
    let cfg = BroadcastConfig::with_gen_bytes(n, 2, 0, 128, 16).unwrap();
    let v = value(128, 12);
    let mut hooks = honest(n);
    hooks[1] = Box::new(SilentEcho);
    hooks[4] = Box::new(LyingEcho::new(vec![5, 6]));
    let run = simulate_broadcast(&cfg, v.clone(), hooks, MetricsSink::new());
    assert_bcast_safety(&run, &[1, 4], Some(&v));
}

#[test]
fn source_at_every_position() {
    for src in 0..4 {
        let cfg = BroadcastConfig::with_gen_bytes(4, 1, src, 40, 8).unwrap();
        let v = value(40, src as u8);
        let run = simulate_broadcast(&cfg, v.clone(), honest(4), MetricsSink::new());
        assert_bcast_safety(&run, &[], Some(&v));
    }
}

#[test]
fn one_byte_broadcast() {
    let cfg = BroadcastConfig::new(4, 1, 0, 1).unwrap();
    let run = simulate_broadcast(&cfg, vec![0x7F], honest(4), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == vec![0x7F]));
}
