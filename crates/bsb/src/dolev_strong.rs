//! Authenticated 1-bit Byzantine broadcast (Dolev-Strong, 1983).
//!
//! §4 of Liang-Vaidya notes that the `t < n/3` requirement of their
//! consensus algorithm comes *only* from the error-free
//! `Broadcast_Single_Bit`; substituting "any probabilistically correct
//! 1-bit broadcast algorithm that tolerates the desired number of
//! failures (ones with authentication from [Pfitzmann-Waidner 96,
//! Dolev-Strong 83] for example)" trades error-freedom for higher
//! resilience. This module provides that substitute: the classic
//! Dolev-Strong protocol, tolerating **any** number `t < n` of Byzantine
//! processors in `t + 1` rounds using signatures.
//!
//! Since the paper's headline algorithm makes *no cryptographic
//! assumptions*, real signatures would be out of scope; instead a
//! [`SignatureOracle`] simulates an idealised unforgeable signature
//! scheme (the standard modelling device): signing is only possible
//! through a per-processor [`SignerHandle`], so a Byzantine processor can
//! sign anything *as itself* but can never forge another processor's
//! signature. This preserves exactly the behaviour the protocol relies
//! on, with forgery probability 0 instead of cryptographically
//! negligible.
//!
//! # Protocol
//!
//! - Round 0: the source signs its bit and sends `(bit, {sig_src})` to
//!   everyone.
//! - Round `r`: a processor that *newly* accepted a bit with `r` distinct
//!   valid signatures (the source's first) adds its own signature and
//!   relays.
//! - After round `t`: a processor that accepted exactly one bit outputs
//!   it; otherwise (silent or provably equivocating source) it outputs
//!   the default `false`.
//!
//! Consistency: if an honest processor accepts bit `b` at round `r <= t`
//! it relays `b` with `r + 1` signatures, so every honest processor
//! accepts `b` by round `r + 1 <= t`... and a bit accepted first at round
//! `t + 1`-equivalent carries `t + 1` signatures, one of which is honest
//! and already relayed it earlier. Hence all honest processors accept the
//! same *set* of bits and decide identically.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::BsbConfig;
use mvbc_netsim::{NodeCtx, NodeId};

/// The oracle's ledger of (signer, message) pairs. Ordered so no
/// iteration-order nondeterminism can ever leak out of the oracle
/// (membership is all the protocol uses, but the determinism rules keep
/// unordered containers out of protocol state altogether).
type SignedSet = BTreeSet<(NodeId, Vec<u8>)>;

/// An idealised signature scheme: unforgeable by construction.
///
/// One oracle is shared by all processors of a simulation; each processor
/// holds a [`SignerHandle`] bound to its identity.
#[derive(Debug, Default, Clone)]
pub struct SignatureOracle {
    signed: Arc<Mutex<SignedSet>>,
}

impl SignatureOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues the signing handle for processor `id`. Call once per
    /// processor and move the handle into its node logic; whoever holds
    /// the handle can sign as `id` (a Byzantine processor misuses *its
    /// own* handle only).
    pub fn handle(&self, id: NodeId) -> SignerHandle {
        SignerHandle {
            id,
            oracle: self.clone(),
        }
    }

    /// Verifies that `signer` really signed `message`.
    pub fn verify(&self, signer: NodeId, message: &[u8]) -> bool {
        self.signed.lock().contains(&(signer, message.to_vec()))
    }
}

/// The capability to sign messages as one particular processor.
#[derive(Debug, Clone)]
pub struct SignerHandle {
    id: NodeId,
    oracle: SignatureOracle,
}

impl SignerHandle {
    /// The identity this handle signs as.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Signs `message`; the resulting (signer, message) pair verifies
    /// against the oracle forever after.
    pub fn sign(&self, message: &[u8]) {
        self.oracle.signed.lock().insert((self.id, message.to_vec()));
    }
}

/// The message a signature covers: the broadcast bit in this session.
/// (Session is included so concurrent broadcasts cannot cross-replay.)
fn signed_payload(session: &str, source: NodeId, bit: bool) -> Vec<u8> {
    let mut m = session.as_bytes().to_vec();
    m.push(0);
    m.extend_from_slice(&source.to_be_bytes());
    m.push(bit as u8);
    m
}

/// Serialises `(bit, signer-set)` for the wire.
fn encode_chain(bit: bool, signers: &[NodeId]) -> Vec<u8> {
    let mut out = vec![bit as u8, signers.len() as u8];
    for &s in signers {
        out.extend_from_slice(&(s as u16).to_be_bytes());
    }
    out
}

fn decode_chain(payload: &[u8]) -> Option<(bool, Vec<NodeId>)> {
    if payload.len() < 2 {
        return None;
    }
    let bit = match payload[0] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let count = payload[1] as usize;
    if payload.len() != 2 + 2 * count {
        return None;
    }
    let signers = payload[2..]
        .chunks_exact(2)
        .map(|c| u16::from_be_bytes([c[0], c[1]]) as NodeId)
        .collect();
    Some((bit, signers))
}

/// Runs one Dolev-Strong broadcast.
///
/// Unlike [`run_bsb_batch`](crate::run_bsb_batch) this tolerates any
/// `config.t < n` (at the cost of the signature assumption). All
/// participants must call it in the same round; `input` is `Some` exactly
/// at `source`. Returns the broadcast bit (default `false` when the
/// source is silent or equivocates).
///
/// # Panics
///
/// Panics when `config.t >= n` or the participants mask is malformed.
pub fn run_dolev_strong(
    ctx: &mut NodeCtx,
    config: &BsbConfig,
    source: NodeId,
    input: Option<bool>,
    signer: &SignerHandle,
    oracle: &SignatureOracle,
) -> bool {
    let n = ctx.n();
    let t = config.t;
    assert!(t < n, "Dolev-Strong needs t < n");
    assert_eq!(config.participants.len(), n, "participants mask length");
    debug_assert_eq!(input.is_some(), ctx.id() == source);
    let me = ctx.id();
    let tag = config.tags.ds;

    // Rounds are counted relative to this sub-protocol's start so the
    // broadcast composes correctly after earlier protocol phases.
    let start_round = ctx.round();
    // accepted[bit] = Some(signer set we accepted it with)
    let mut accepted: [Option<Vec<NodeId>>; 2] = [None, None];
    // Bits that we newly accepted and must relay this round.
    let mut relay: Vec<bool> = Vec::new();

    if me == source {
        let bit = input.unwrap_or(false);
        signer.sign(&signed_payload(config.session, source, bit));
        accepted[bit as usize] = Some(vec![source]);
        relay.push(bit);
    }

    // Rounds 0..=t: relay newly-accepted bits with our signature added.
    for _round in 0..=t {
        for &bit in &relay {
            let mut signers = accepted[bit as usize].clone().expect("accepted before relay");
            if !signers.contains(&me) {
                signer.sign(&signed_payload(config.session, source, bit));
                signers.push(me);
                accepted[bit as usize] = Some(signers.clone());
            }
            let payload = encode_chain(bit, &signers);
            // 1 logical bit of value + the signature chain (counted at 16
            // bits per signature, a modelling constant).
            let logical = 1 + 16 * signers.len() as u64;
            for to in 0..n {
                if to != me && config.participants[to] {
                    ctx.send(to, tag, payload.clone(), logical);
                }
            }
        }
        relay.clear();
        let inbox = ctx.end_round();

        for from in 0..n {
            if from == me || !config.participants[from] {
                continue;
            }
            for msg in inbox.from_sender(from) {
                if msg.tag != tag {
                    continue;
                }
                let Some((bit, signers)) = decode_chain(&msg.payload) else {
                    continue;
                };
                if accepted[bit as usize].is_some() {
                    continue; // already accepted
                }
                // Chain validity: enough distinct signatures, source
                // first, every signature verifies. A chain arriving at
                // the end of (relative) round r must carry >= r + 1
                // signatures.
                let round = ctx.round() - start_round; // completed DS rounds
                let distinct: BTreeSet<NodeId> = signers.iter().copied().collect();
                let valid = signers.first() == Some(&source)
                    && distinct.len() == signers.len()
                    && signers.len() as u64 >= round.min(t as u64 + 1)
                    && signers.iter().all(|&s| {
                        oracle.verify(s, &signed_payload(config.session, source, bit))
                    });
                if valid {
                    accepted[bit as usize] = Some(signers);
                    relay.push(bit);
                }
            }
        }
    }

    // Decide: exactly one accepted bit wins; zero or two -> default.
    match (&accepted[0], &accepted[1]) {
        (Some(_), None) => false,
        (None, Some(_)) => true,
        _ => false,
    }
}

/// The message a signature covers in the *batched* protocol: session,
/// instance index, source and bit — instances must not cross-replay.
fn signed_payload_batch(session: &str, instance: usize, source: NodeId, bit: bool) -> Vec<u8> {
    let mut m = session.as_bytes().to_vec();
    m.push(1);
    m.extend_from_slice(&(instance as u32).to_be_bytes());
    m.extend_from_slice(&source.to_be_bytes());
    m.push(bit as u8);
    m
}

/// Serialises a round's relays: `count`, then per entry
/// `(instance: u16, bit: u8, signer-count: u8, signers: u16 each)`.
fn encode_batch(entries: &[(usize, bool, Vec<NodeId>)]) -> Vec<u8> {
    let mut out = (entries.len() as u16).to_be_bytes().to_vec();
    for (instance, bit, signers) in entries {
        out.extend_from_slice(&(*instance as u16).to_be_bytes());
        out.push(*bit as u8);
        out.push(signers.len() as u8);
        for &s in signers {
            out.extend_from_slice(&(s as u16).to_be_bytes());
        }
    }
    out
}

fn decode_batch(payload: &[u8]) -> Option<Vec<(usize, bool, Vec<NodeId>)>> {
    let mut rest = payload;
    let count = u16::from_be_bytes([*rest.first()?, *rest.get(1)?]) as usize;
    rest = &rest[2..];
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        if rest.len() < 4 {
            return None;
        }
        let instance = u16::from_be_bytes([rest[0], rest[1]]) as usize;
        let bit = match rest[2] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let sig_count = rest[3] as usize;
        rest = &rest[4..];
        if rest.len() < 2 * sig_count {
            return None;
        }
        let signers = rest[..2 * sig_count]
            .chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]) as NodeId)
            .collect();
        rest = &rest[2 * sig_count..];
        entries.push((instance, bit, signers));
    }
    rest.is_empty().then_some(entries)
}

/// Runs a batch of Dolev-Strong broadcasts concurrently, one per
/// instance, in `t + 1` synchronous rounds total.
///
/// The [`BsbDriver`](crate::BsbDriver) substitution entry point (§4 of
/// the paper): same calling convention as
/// [`run_bsb_batch`](crate::run_bsb_batch), but tolerating any
/// `config.t < n` under the idealised-signature assumption. The
/// adversary surface is [`BsbHooks::ds_relay`] (withholding) plus
/// arbitrary misuse of the node's own [`SignerHandle`]; forging other
/// processors' signatures is impossible by construction.
///
/// # Panics
///
/// Panics when `config.t >= n`, the participants mask is malformed, or
/// an instance is sourced at a non-participant.
pub fn run_ds_batch(
    ctx: &mut NodeCtx,
    config: &BsbConfig,
    instances: &[crate::BsbInstance],
    signer: &SignerHandle,
    oracle: &SignatureOracle,
    hooks: &mut dyn crate::BsbHooks,
) -> Vec<bool> {
    let n = ctx.n();
    let t = config.t;
    assert!(t < n, "Dolev-Strong needs t < n");
    assert_eq!(config.participants.len(), n, "participants mask length");
    let me = ctx.id();
    let participating = config.participants[me];
    let tag = config.tags.dsb;
    let start_round = ctx.round();

    // accepted[inst][bit] = Some(signers we accepted it with)
    let mut accepted: Vec<[Option<Vec<NodeId>>; 2]> = vec![[None, None]; instances.len()];
    let mut relay: Vec<(usize, bool)> = Vec::new();

    for (i, inst) in instances.iter().enumerate() {
        assert!(
            config.participants[inst.source],
            "instance sourced at isolated processor {}",
            inst.source
        );
        debug_assert_eq!(inst.input.is_some(), inst.source == me);
        if inst.source == me && participating {
            let bit = inst.input.unwrap_or(false);
            signer.sign(&signed_payload_batch(config.session, i, me, bit));
            accepted[i][bit as usize] = Some(vec![me]);
            relay.push((i, bit));
        }
    }

    for round in 0..=t {
        let mut entries: Vec<(usize, bool, Vec<NodeId>)> = Vec::new();
        if participating {
            for &(i, bit) in &relay {
                if !hooks.ds_relay(config.session, round, i, bit) {
                    continue;
                }
                let mut signers = accepted[i][bit as usize].clone().expect("accepted before relay");
                if !signers.contains(&me) {
                    signer.sign(&signed_payload_batch(config.session, i, instances[i].source, bit));
                    signers.push(me);
                    accepted[i][bit as usize] = Some(signers.clone());
                }
                entries.push((i, bit, signers));
            }
        }
        relay.clear();
        if !entries.is_empty() {
            let payload = encode_batch(&entries);
            let logical: u64 = entries.iter().map(|(_, _, s)| 1 + 16 * s.len() as u64).sum();
            for to in 0..n {
                if to != me && config.participants[to] {
                    ctx.send(to, tag, payload.clone(), logical);
                }
            }
        }
        let inbox = ctx.end_round();

        for from in 0..n {
            if from == me || !config.participants[from] {
                continue;
            }
            for msg in inbox.from_sender(from) {
                if msg.tag != tag {
                    continue;
                }
                let Some(decoded) = decode_batch(&msg.payload) else {
                    continue;
                };
                for (i, bit, signers) in decoded {
                    if i >= instances.len() || accepted[i][bit as usize].is_some() {
                        continue;
                    }
                    let source = instances[i].source;
                    let completed = ctx.round() - start_round;
                    let distinct: BTreeSet<NodeId> = signers.iter().copied().collect();
                    let valid = signers.first() == Some(&source)
                        && distinct.len() == signers.len()
                        && signers.len() as u64 >= completed.min(t as u64 + 1)
                        && signers.iter().all(|&s| {
                            oracle.verify(
                                s,
                                &signed_payload_batch(config.session, i, source, bit),
                            )
                        });
                    if valid {
                        accepted[i][bit as usize] = Some(signers);
                        relay.push((i, bit));
                    }
                }
            }
        }
    }

    accepted
        .iter()
        .map(|acc| match (&acc[0], &acc[1]) {
            (Some(_), None) => false,
            (None, Some(_)) => true,
            _ => false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BsbConfig;
    use mvbc_metrics::MetricsSink;
    use mvbc_netsim::{run_simulation, NodeLogic, SimConfig};

    fn honest_run(n: usize, t: usize, source: NodeId, bit: bool) -> Vec<bool> {
        let oracle = SignatureOracle::new();
        let logics: Vec<NodeLogic<bool>> = (0..n)
            .map(|id| {
                let oracle = oracle.clone();
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "ds", vec![true; ctx.n()]);
                    let handle = oracle.handle(id);
                    run_dolev_strong(ctx, &cfg, source, (id == source).then_some(bit), &handle, &oracle)
                }) as NodeLogic<bool>
            })
            .collect();
        run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs
    }

    #[test]
    fn honest_source_validity() {
        for bit in [false, true] {
            for (n, t) in [(4usize, 1usize), (4, 2), (4, 3), (7, 4)] {
                let outs = honest_run(n, t, 0, bit);
                assert_eq!(outs, vec![bit; n], "n={n} t={t} bit={bit}");
            }
        }
    }

    #[test]
    fn tolerates_t_at_least_n_over_3() {
        // The whole point of the substitution: t = 2 of n = 4 (t >= n/3).
        let outs = honest_run(4, 2, 3, true);
        assert_eq!(outs, vec![true; 4]);
    }

    #[test]
    fn silent_source_defaults() {
        let n = 4;
        let oracle = SignatureOracle::new();
        let logics: Vec<NodeLogic<Option<bool>>> = (0..n)
            .map(|id| {
                let oracle = oracle.clone();
                Box::new(move |ctx: &mut NodeCtx| {
                    if id == 0 {
                        return None; // crash
                    }
                    let cfg = BsbConfig::new(2, "ds-silent", vec![true; ctx.n()]);
                    let handle = oracle.handle(id);
                    Some(run_dolev_strong(ctx, &cfg, 0, None, &handle, &oracle))
                }) as NodeLogic<Option<bool>>
            })
            .collect();
        let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
        assert_eq!(outs[1], Some(false));
        assert_eq!(outs[1], outs[2]);
        assert_eq!(outs[2], outs[3]);
    }

    #[test]
    fn equivocating_source_detected_consistently() {
        // Byzantine source signs BOTH bits and sends 0 to half, 1 to the
        // other half: honest relays spread both chains, everyone accepts
        // both bits, and all honest processors default identically.
        let n = 4;
        let t = 2;
        let oracle = SignatureOracle::new();
        let logics: Vec<NodeLogic<Option<bool>>> = (0..n)
            .map(|id| {
                let oracle = oracle.clone();
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "ds-equiv", vec![true; ctx.n()]);
                    let handle = oracle.handle(id);
                    if id == 0 {
                        // Byzantine source: hand-rolled equivocation.
                        for bit in [false, true] {
                            handle.sign(&signed_payload("ds-equiv", 0, bit));
                        }
                        for to in 1..ctx.n() {
                            let bit = to % 2 == 0;
                            ctx.send(to, "ds-equiv.ds", encode_chain(bit, &[0]), 17);
                        }
                        for _ in 0..=t {
                            ctx.end_round();
                        }
                        return None;
                    }
                    Some(run_dolev_strong(ctx, &cfg, 0, None, &handle, &oracle))
                }) as NodeLogic<Option<bool>>
            })
            .collect();
        let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
        let honest: Vec<bool> = (1..n).map(|i| outs[i].unwrap()).collect();
        assert!(honest.windows(2).all(|w| w[0] == w[1]), "honest diverged: {honest:?}");
    }

    #[test]
    fn forged_chains_are_rejected() {
        // A Byzantine relay claims the source signed `true` although the
        // source (honest, silent this session) never did: the oracle
        // rejects, nobody accepts, everyone defaults to false.
        let n = 4;
        let t = 2;
        let oracle = SignatureOracle::new();
        let logics: Vec<NodeLogic<Option<bool>>> = (0..n)
            .map(|id| {
                let oracle = oracle.clone();
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "ds-forge", vec![true; ctx.n()]);
                    let handle = oracle.handle(id);
                    if id == 3 {
                        // Forger: fabricates a chain [source=0, me] for
                        // `true`. It can sign as itself but NOT as 0.
                        handle.sign(&signed_payload("ds-forge", 0, true));
                        for to in 0..3 {
                            ctx.send(to, "ds-forge.ds", encode_chain(true, &[0, 3]), 33);
                        }
                        for _ in 0..=t {
                            ctx.end_round();
                        }
                        return None;
                    }
                    if id == 0 {
                        // Honest source broadcasting false.
                        return Some(run_dolev_strong(
                            ctx, &cfg, 0, Some(false), &handle, &oracle,
                        ));
                    }
                    Some(run_dolev_strong(ctx, &cfg, 0, None, &handle, &oracle))
                }) as NodeLogic<Option<bool>>
            })
            .collect();
        let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
        for (id, out) in outs.iter().enumerate().take(3) {
            assert_eq!(*out, Some(false), "node {id} accepted a forged chain");
        }
    }

    #[test]
    fn oracle_unforgeability() {
        let oracle = SignatureOracle::new();
        let h1 = oracle.handle(1);
        h1.sign(b"hello");
        assert!(oracle.verify(1, b"hello"));
        assert!(!oracle.verify(2, b"hello"), "nobody else signed this");
        assert!(!oracle.verify(1, b"other"));
        assert_eq!(h1.id(), 1);
    }

    #[test]
    fn chain_codec_roundtrip_and_rejection() {
        let payload = encode_chain(true, &[0, 3, 7]);
        assert_eq!(decode_chain(&payload), Some((true, vec![0, 3, 7])));
        assert_eq!(decode_chain(&[]), None);
        assert_eq!(decode_chain(&[2, 0]), None); // bad bit
        assert_eq!(decode_chain(&[1, 2, 0]), None); // truncated
    }
}
