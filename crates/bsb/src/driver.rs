//! Pluggable `Broadcast_Single_Bit` substrates.
//!
//! The paper treats the 1-bit broadcast primitive as a black box of cost
//! `B` (§3.4: Eq. (1) is parameterised by `B`) and §4 explicitly calls
//! for *substituting* it — e.g. with an authenticated broadcast — to
//! trade error-freedom for resilience. [`BsbDriver`] is that seam: the
//! consensus engine calls through a driver, and the workspace ships
//! three substrates with distinct cost/resilience profiles:
//!
//! | driver | rounds/batch | bits per instance | tolerates | error-free |
//! |---|---|---|---|---|
//! | [`PhaseKingDriver`] | `1 + 3(t+1)` | `Θ(n²·t)` | `t < n/3` | yes |
//! | [`EigDriver`] | `1 + (t+1)` | `Θ(n^{t+2})` | `t < n/3` | yes |
//! | [`DolevStrongDriver`] | `t + 1` | `Θ(n²·t)` worst case | `t < n` | under the signature assumption |
//!
//! All fault-free processors of one execution must use the *same* driver
//! (the lockstep round structure must match). A Byzantine processor may
//! deviate in message content but, like every processor in the
//! synchronous model, not in the round structure.

use mvbc_netsim::NodeCtx;

use crate::dolev_strong::{run_ds_batch, SignatureOracle, SignerHandle};
use crate::{eig, source_round_initial, BsbConfig, BsbHooks, BsbInstance, BsbValueSpec};

/// A substrate implementing batched `Broadcast_Single_Bit`.
///
/// Implementations must guarantee, for every batch: **consistency** (all
/// fault-free participants return identical vectors) and **validity**
/// (an instance with a fault-free source returns that source's input),
/// provided the number of faulty processors does not exceed
/// [`max_tolerated`](BsbDriver::max_tolerated).
///
/// # Examples
///
/// Swapping the substrate changes the wire profile, not the result:
///
/// ```
/// use mvbc_bsb::{BsbConfig, BsbDriver, BsbInstance, EigDriver, NoopBsbHooks};
/// use mvbc_metrics::MetricsSink;
/// use mvbc_netsim::{run_simulation, NodeCtx, SimConfig};
///
/// let n = 4;
/// let logics = (0..n)
///     .map(|id| {
///         Box::new(move |ctx: &mut NodeCtx| {
///             let mut driver = EigDriver; // or PhaseKingDriver, DolevStrongDriver
///             let cfg = BsbConfig::new(1, "doc", vec![true; 4]);
///             let inst = [BsbInstance { source: 2, input: (id == 2).then_some(true) }];
///             driver.run_batch(ctx, &cfg, &inst, &mut NoopBsbHooks)[0]
///         }) as Box<dyn FnOnce(&mut NodeCtx) -> bool + Send>
///     })
///     .collect();
/// let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics);
/// assert_eq!(out.outputs, vec![true; 4]);
/// ```
pub trait BsbDriver: Send {
    /// Short human-readable substrate name (used in reports).
    fn name(&self) -> &'static str;

    /// Largest `t` this substrate tolerates in an `n`-processor network.
    fn max_tolerated(&self, n: usize) -> usize;

    /// Runs one batch of 1-bit broadcasts; same calling convention as
    /// [`run_bsb_batch`](crate::run_bsb_batch).
    fn run_batch(
        &mut self,
        ctx: &mut NodeCtx,
        config: &BsbConfig,
        instances: &[BsbInstance],
        hooks: &mut dyn BsbHooks,
    ) -> Vec<bool>;

    /// Broadcasts one multi-bit value per spec (one 1-bit instance per
    /// bit, as the paper prescribes); same calling convention as
    /// [`run_bsb_values`](crate::run_bsb_values).
    fn run_values(
        &mut self,
        ctx: &mut NodeCtx,
        config: &BsbConfig,
        specs: &[BsbValueSpec],
        hooks: &mut dyn BsbHooks,
    ) -> Vec<Vec<bool>> {
        let mut instances = Vec::new();
        for spec in specs {
            if let Some(input) = &spec.input {
                assert_eq!(input.len(), spec.bits, "input length must equal bits");
            }
            for b in 0..spec.bits {
                instances.push(BsbInstance {
                    source: spec.source,
                    input: spec.input.as_ref().map(|v| v[b]),
                });
            }
        }
        let flat = self.run_batch(ctx, config, &instances, hooks);
        let mut out = Vec::with_capacity(specs.len());
        let mut off = 0;
        for spec in specs {
            out.push(flat[off..off + spec.bits].to_vec());
            off += spec.bits;
        }
        out
    }
}

/// The default substrate: source multicast + Phase-King binary
/// consensus (see the crate docs). Error-free for `t < n/3`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseKingDriver;

impl BsbDriver for PhaseKingDriver {
    fn name(&self) -> &'static str {
        "phase-king"
    }

    fn max_tolerated(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn run_batch(
        &mut self,
        ctx: &mut NodeCtx,
        config: &BsbConfig,
        instances: &[BsbInstance],
        hooks: &mut dyn BsbHooks,
    ) -> Vec<bool> {
        crate::run_bsb_batch(ctx, config, instances, hooks)
    }
}

/// Source multicast + EIG binary consensus
/// ([`run_eig_batch`](crate::run_eig_batch)): round-optimal but
/// exponential in `t`; practical for the small `t` regimes of the test
/// networks. Error-free for `t < n/3`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EigDriver;

impl BsbDriver for EigDriver {
    fn name(&self) -> &'static str {
        "eig"
    }

    fn max_tolerated(&self, n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    fn run_batch(
        &mut self,
        ctx: &mut NodeCtx,
        config: &BsbConfig,
        instances: &[BsbInstance],
        hooks: &mut dyn BsbHooks,
    ) -> Vec<bool> {
        config.assert_valid(ctx.n());
        let initial = source_round_initial(ctx, config, instances, hooks);
        eig::run_eig_batch(ctx, config, initial, hooks)
    }
}

/// The §4 substitution: authenticated Dolev-Strong broadcast under an
/// idealised [`SignatureOracle`]. Tolerates any `t < n`.
///
/// Note the paper-level caveat (documented in DESIGN.md): the *consensus*
/// algorithm's own lemmas still need `t < n/3` (`P_decide` of size
/// `n - 2t` must contain a fault-free processor), so plugging this driver
/// into `mvbc-core` raises the broadcast layer's resilience only. The
/// driver exists to measure the substitution's cost profile and to serve
/// protocols (or parameter ranges) where the broadcast layer is the
/// binding constraint.
#[derive(Debug, Clone)]
pub struct DolevStrongDriver {
    signer: SignerHandle,
    oracle: SignatureOracle,
}

impl DolevStrongDriver {
    /// Creates the driver for the processor owning `signer`.
    pub fn new(signer: SignerHandle, oracle: SignatureOracle) -> Self {
        DolevStrongDriver { signer, oracle }
    }

    /// Convenience: one driver per processor, all sharing a fresh oracle.
    pub fn fleet(n: usize) -> Vec<DolevStrongDriver> {
        let oracle = SignatureOracle::new();
        (0..n)
            .map(|id| DolevStrongDriver::new(oracle.handle(id), oracle.clone()))
            .collect()
    }
}

impl BsbDriver for DolevStrongDriver {
    fn name(&self) -> &'static str {
        "dolev-strong"
    }

    fn max_tolerated(&self, n: usize) -> usize {
        n.saturating_sub(1)
    }

    fn run_batch(
        &mut self,
        ctx: &mut NodeCtx,
        config: &BsbConfig,
        instances: &[BsbInstance],
        hooks: &mut dyn BsbHooks,
    ) -> Vec<bool> {
        run_ds_batch(ctx, config, instances, &self.signer, &self.oracle, hooks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoopBsbHooks;
    use mvbc_metrics::MetricsSink;
    use mvbc_netsim::{run_simulation, NodeLogic, SimConfig};

    /// Runs the same mixed batch (every node broadcasts `id % 2 == 0`)
    /// under `mk_driver` and returns the per-node outputs.
    fn run_mixed_batch(
        n: usize,
        t: usize,
        drivers: Vec<Box<dyn BsbDriver>>,
    ) -> Vec<Vec<bool>> {
        let logics: Vec<NodeLogic<Vec<bool>>> = drivers
            .into_iter()
            .enumerate()
            .map(|(id, mut driver)| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "driver", vec![true; ctx.n()]);
                    let instances: Vec<BsbInstance> = (0..ctx.n())
                        .map(|src| BsbInstance {
                            source: src,
                            input: (id == src).then_some(src % 2 == 0),
                        })
                        .collect();
                    driver.run_batch(ctx, &cfg, &instances, &mut NoopBsbHooks)
                }) as NodeLogic<Vec<bool>>
            })
            .collect();
        run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs
    }

    #[test]
    fn all_drivers_agree_on_honest_batches() {
        let n = 4;
        let expect: Vec<bool> = (0..n).map(|src| src % 2 == 0).collect();

        let king: Vec<Box<dyn BsbDriver>> =
            (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect();
        for out in run_mixed_batch(n, 1, king) {
            assert_eq!(out, expect, "phase-king");
        }

        let eig: Vec<Box<dyn BsbDriver>> =
            (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect();
        for out in run_mixed_batch(n, 1, eig) {
            assert_eq!(out, expect, "eig");
        }

        let ds: Vec<Box<dyn BsbDriver>> = DolevStrongDriver::fleet(n)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn BsbDriver>)
            .collect();
        for out in run_mixed_batch(n, 1, ds) {
            assert_eq!(out, expect, "dolev-strong");
        }
    }

    #[test]
    fn dolev_strong_tolerates_t_at_least_n_over_3() {
        let n = 4;
        let ds: Vec<Box<dyn BsbDriver>> = DolevStrongDriver::fleet(n)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn BsbDriver>)
            .collect();
        let expect: Vec<bool> = (0..n).map(|src| src % 2 == 0).collect();
        for out in run_mixed_batch(n, 2, ds) {
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn resilience_bounds() {
        assert_eq!(PhaseKingDriver.max_tolerated(4), 1);
        assert_eq!(PhaseKingDriver.max_tolerated(7), 2);
        assert_eq!(EigDriver.max_tolerated(10), 3);
        let ds = DolevStrongDriver::fleet(4).pop().unwrap();
        assert_eq!(ds.max_tolerated(4), 3);
    }

    #[test]
    fn names_are_distinct() {
        let ds = DolevStrongDriver::fleet(1).pop().unwrap();
        let names = [PhaseKingDriver.name(), EigDriver.name(), ds.name()];
        assert_eq!(names, ["phase-king", "eig", "dolev-strong"]);
    }

    #[test]
    fn values_api_works_through_driver() {
        let n = 4;
        let value = vec![true, false, true];
        let expect = value.clone();
        let logics: Vec<NodeLogic<Vec<Vec<bool>>>> = (0..n)
            .map(|id| {
                let value = value.clone();
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "driver-values", vec![true; ctx.n()]);
                    let specs = [BsbValueSpec {
                        source: 2,
                        bits: 3,
                        input: (id == 2).then_some(value.clone()),
                    }];
                    EigDriver.run_values(ctx, &cfg, &specs, &mut NoopBsbHooks)
                }) as NodeLogic<Vec<Vec<bool>>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics);
        for o in &out.outputs {
            assert_eq!(o[0], expect);
        }
    }
}
