//! Batched EIG (exponential information gathering) binary consensus.
//!
//! The classic deterministic Byzantine agreement algorithm of
//! Lamport-Shostak-Pease (1982), in the iterative tree formulation:
//! `t + 1` rounds of all-to-all relaying over a tree of "who said who
//! said ..." values, resolved bottom-up by recursive majority. Tolerates
//! `t < n/3` Byzantine processors and is error-free, like Phase-King, but
//! with a different cost profile:
//!
//! - **rounds**: `t + 1` (vs `3(t + 1)` for Phase-King) — the fewest any
//!   deterministic algorithm can take in the worst case;
//! - **bits**: `Θ(n^{t+2})` per instance (vs `Θ(n²·t)`) — exponential in
//!   `t`, the price of the round optimality.
//!
//! Within this workspace EIG serves two purposes: it is an alternative
//! [`BsbDriver`](crate::BsbDriver) substrate for the paper's
//! `Broadcast_Single_Bit` (the paper treats the 1-bit primitive as a
//! black box of cost `B`, so swapping substrates directly exhibits how
//! `B` enters Eq. (1)), and it is an independently-derived oracle against
//! which the Phase-King implementation is cross-checked.
//!
//! # The EIG tree
//!
//! Tree nodes are labelled by sequences of *distinct* processor ids;
//! level `r` holds the `n·(n-1)···(n-r+1)` labels of length `r`. The root
//! `ε` stores this processor's input. In round `r` every processor
//! relays the values of all level-`(r-1)` labels that do not contain its
//! own id; a value received from `j` for label `α` is stored at `α·j`
//! ("`j` said that `α`'s value is ..."). After round `t + 1` each label is
//! resolved bottom-up: leaves resolve to their stored value, inner labels
//! to the strict majority of their children (default `false`), and the
//! resolved root is the decision.

use mvbc_netsim::bits::{pack_bits, unpack_bits};
use mvbc_netsim::{NodeCtx, NodeId};

use crate::{BsbConfig, BsbHooks};

/// The EIG tree shape for `n` processors and `t` faults: label sets for
/// levels `0..=t+1` plus the child-index arithmetic shared by every
/// processor.
///
/// Level `r` labels are enumerated parent-major: the children of the
/// level-`r` label at index `p` are `α·j` for every `j ∉ α` in increasing
/// order of `j`, stored contiguously from `p * (n - r)`. This gives all
/// processors an identical numbering without transmitting labels.
#[derive(Debug, Clone)]
pub struct EigTree {
    n: usize,
    t: usize,
    /// `labels[r]` lists the level-`r` labels in enumeration order.
    labels: Vec<Vec<Vec<NodeId>>>,
}

impl EigTree {
    /// Builds the tree shape for `n` processors tolerating `t` faults.
    ///
    /// # Panics
    ///
    /// Panics when `t + 1 > n` (labels repeat ids) — callers enforce the
    /// stronger `t < n/3` before constructing the tree.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(t < n, "EIG tree depth t + 1 = {} exceeds n = {n}", t + 1);
        let mut labels: Vec<Vec<Vec<NodeId>>> = vec![vec![Vec::new()]];
        for r in 1..=t + 1 {
            let mut level = Vec::with_capacity(labels[r - 1].len() * (n - r + 1));
            for parent in &labels[r - 1] {
                for j in 0..n {
                    if !parent.contains(&j) {
                        let mut child = parent.clone();
                        child.push(j);
                        level.push(child);
                    }
                }
            }
            labels.push(level);
        }
        EigTree { n, t, labels }
    }

    /// Number of labels at level `r`.
    pub fn level_len(&self, r: usize) -> usize {
        self.labels[r].len()
    }

    /// The labels of level `r`, in the shared enumeration order.
    pub fn level(&self, r: usize) -> &[Vec<NodeId>] {
        &self.labels[r]
    }

    /// Index (within level `r + 1`) of the child `α·j` of the level-`r`
    /// label at index `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `j` occurs in `α` (no such child exists).
    pub fn child_index(&self, r: usize, parent: usize, j: NodeId) -> usize {
        let label = &self.labels[r][parent];
        let rank = (0..j).filter(|i| !label.contains(i)).count();
        assert!(!label.contains(&j), "label {label:?} already contains {j}");
        parent * (self.n - r) + rank
    }

    /// Indices of the level-`r` labels that do **not** contain `id` —
    /// exactly the values processor `id` relays in round `r + 1`.
    pub fn relay_indices(&self, r: usize, id: NodeId) -> Vec<usize> {
        (0..self.labels[r].len())
            .filter(|&idx| !self.labels[r][idx].contains(&id))
            .collect()
    }

    /// Total stored values across all levels (per batch instance).
    pub fn total_nodes(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Tree depth `t + 1`.
    pub fn depth(&self) -> usize {
        self.t + 1
    }
}

/// Runs batched EIG binary consensus.
///
/// Drop-in alternative to [`run_king_batch`](crate::run_king_batch): all
/// participants must call it in the same round with equal `config` and
/// equal batch size; `initial` holds this node's input per instance.
/// Returns the decided bit per instance — identical at every fault-free
/// participant, and equal to the common input when the fault-free
/// participants start unanimous.
///
/// Non-participants (isolated processors) return a locally-computed
/// vector without sending or receiving.
///
/// # Panics
///
/// Panics when `t >= n/3` or the participants mask length differs from
/// `n`.
pub fn run_eig_batch(
    ctx: &mut NodeCtx,
    config: &BsbConfig,
    initial: Vec<bool>,
    hooks: &mut dyn BsbHooks,
) -> Vec<bool> {
    let n = ctx.n();
    config.assert_valid(n);
    let me = ctx.id();
    let t = config.t;
    let count = initial.len();
    let participating = config.participants[me];
    let tag = config.tags.eig;

    let tree = EigTree::new(n, t);
    // tree_vals[r][label_idx * count + inst] = stored bit. Missing
    // information (silent or malformed senders) keeps the default false.
    let mut tree_vals: Vec<Vec<bool>> = (0..=t + 1)
        .map(|r| vec![false; tree.level_len(r) * count])
        .collect();
    tree_vals[0][..count].copy_from_slice(&initial);

    for round in 1..=t + 1 {
        let level = round - 1;
        let my_relay = tree.relay_indices(level, me);

        // Relay the previous level to every participant.
        if participating && count > 0 && !my_relay.is_empty() {
            let base: Vec<bool> = my_relay
                .iter()
                .flat_map(|&idx| {
                    tree_vals[level][idx * count..(idx + 1) * count].iter().copied()
                })
                .collect();
            for to in 0..n {
                if to == me || !config.participants[to] {
                    continue;
                }
                let mut bits = base.clone();
                hooks.eig_values(config.session, round, to, &mut bits);
                ctx.send(to, tag, pack_bits(&bits), bits.len() as u64);
            }
        }
        let mut inbox = ctx.end_round();

        // My own relayed values populate my α·me nodes directly.
        for &idx in &my_relay {
            let child = tree.child_index(level, idx, me);
            for inst in 0..count {
                tree_vals[level + 1][child * count + inst] = tree_vals[level][idx * count + inst];
            }
        }

        // Peers' relays populate α·j.
        for from in 0..n {
            if from == me || !config.participants[from] || count == 0 {
                continue;
            }
            let relay = tree.relay_indices(level, from);
            if relay.is_empty() {
                continue;
            }
            let Some(bits) = inbox
                .take(from, tag)
                .and_then(|payload| unpack_bits(&payload, relay.len() * count))
            else {
                continue; // silence / malformed: children stay false
            };
            for (pos, &idx) in relay.iter().enumerate() {
                let child = tree.child_index(level, idx, from);
                for inst in 0..count {
                    tree_vals[level + 1][child * count + inst] = bits[pos * count + inst];
                }
            }
        }
    }

    resolve_root(&tree, &tree_vals, count)
}

/// Bottom-up majority resolution; returns the resolved root per instance.
fn resolve_root(tree: &EigTree, tree_vals: &[Vec<bool>], count: usize) -> Vec<bool> {
    let n = tree.n;
    let t = tree.t;
    // Leaves resolve to their stored values.
    let mut resolved = tree_vals[t + 1].clone();
    for r in (0..=t).rev() {
        let kids = n - r; // children per level-r label
        let mut level_resolved = vec![false; tree.level_len(r) * count];
        for p in 0..tree.level_len(r) {
            for inst in 0..count {
                let mut trues = 0usize;
                for c in 0..kids {
                    if resolved[(p * kids + c) * count + inst] {
                        trues += 1;
                    }
                }
                // Strict majority of children; ties and no-majority
                // default to false at every processor alike.
                level_resolved[p * count + inst] = 2 * trues > kids;
            }
        }
        resolved = level_resolved;
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoopBsbHooks;
    use mvbc_metrics::MetricsSink;
    use mvbc_netsim::{run_simulation, SimConfig};

    type Logic<O> = Box<dyn FnOnce(&mut NodeCtx) -> O + Send>;

    #[test]
    fn tree_shape_matches_falling_factorial() {
        let tree = EigTree::new(7, 2);
        assert_eq!(tree.level_len(0), 1);
        assert_eq!(tree.level_len(1), 7);
        assert_eq!(tree.level_len(2), 42);
        assert_eq!(tree.level_len(3), 210);
        assert_eq!(tree.total_nodes(), 260);
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn tree_labels_are_distinct_ids() {
        let tree = EigTree::new(5, 2);
        for r in 0..=3 {
            for label in tree.level(r) {
                assert_eq!(label.len(), r);
                let mut sorted = label.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), r, "repeated id in {label:?}");
            }
        }
    }

    #[test]
    fn child_index_agrees_with_enumeration() {
        let tree = EigTree::new(5, 2);
        for r in 0..=2 {
            for (p, label) in tree.level(r).iter().enumerate() {
                for j in 0..5 {
                    if label.contains(&j) {
                        continue;
                    }
                    let idx = tree.child_index(r, p, j);
                    let mut expect = label.clone();
                    expect.push(j);
                    assert_eq!(tree.level(r + 1)[idx], expect);
                }
            }
        }
    }

    #[test]
    fn relay_indices_exclude_own_id() {
        let tree = EigTree::new(4, 1);
        let relay = tree.relay_indices(1, 2);
        for idx in relay {
            assert!(!tree.level(1)[idx].contains(&2));
        }
        // Level 1 has 4 labels, exactly one contains id 2.
        assert_eq!(tree.relay_indices(1, 2).len(), 3);
    }

    fn consensus_run(n: usize, t: usize, inputs: Vec<Vec<bool>>) -> Vec<Vec<bool>> {
        let logics: Vec<Logic<Vec<bool>>> = inputs
            .into_iter()
            .map(|init| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "eig", vec![true; ctx.n()]);
                    run_eig_batch(ctx, &cfg, init, &mut NoopBsbHooks)
                }) as Logic<Vec<bool>>
            })
            .collect();
        run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs
    }

    #[test]
    fn validity_unanimous_inputs() {
        for bit in [false, true] {
            let outs = consensus_run(4, 1, vec![vec![bit]; 4]);
            assert_eq!(outs, vec![vec![bit]; 4]);
        }
    }

    #[test]
    fn agreement_all_splits_n4() {
        for ones in 0..=4usize {
            let inputs: Vec<Vec<bool>> = (0..4).map(|i| vec![i < ones]).collect();
            let outs = consensus_run(4, 1, inputs);
            let first = outs[0][0];
            assert!(outs.iter().all(|o| o[0] == first), "ones={ones}");
            if ones == 4 {
                assert!(first);
            }
            if ones == 0 {
                assert!(!first);
            }
        }
    }

    #[test]
    fn agreement_all_splits_n7_t2() {
        for ones in 0..=7usize {
            let inputs: Vec<Vec<bool>> = (0..7).map(|i| vec![i < ones]).collect();
            let outs = consensus_run(7, 2, inputs);
            let first = outs[0][0];
            assert!(outs.iter().all(|o| o[0] == first), "ones={ones}");
        }
    }

    #[test]
    fn batch_instances_do_not_interfere() {
        let inputs: Vec<Vec<bool>> = (0..4).map(|i| vec![true, false, i % 2 == 0]).collect();
        let outs = consensus_run(4, 1, inputs);
        for o in &outs {
            assert!(o[0]);
            assert!(!o[1]);
            assert_eq!(o[2], outs[0][2]);
        }
    }

    #[test]
    fn round_count_is_t_plus_one() {
        let n = 4;
        let metrics = MetricsSink::new();
        let logics: Vec<Logic<Vec<bool>>> = (0..n)
            .map(|_| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "eig-rounds", vec![true; 4]);
                    run_eig_batch(ctx, &cfg, vec![true], &mut NoopBsbHooks)
                }) as Logic<Vec<bool>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), metrics, logics);
        assert_eq!(out.rounds, 2); // t + 1
    }

    #[test]
    fn silent_faulty_node_does_not_break_agreement() {
        let n = 4;
        let logics: Vec<Logic<Option<bool>>> = (0..n)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    if id == 3 {
                        return None; // crash from the start
                    }
                    let cfg = BsbConfig::new(1, "eig-silent", vec![true; 4]);
                    Some(run_eig_batch(ctx, &cfg, vec![id == 0], &mut NoopBsbHooks)[0])
                }) as Logic<Option<bool>>
            })
            .collect();
        let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn equivocating_adversary_cannot_split_honest() {
        // The faulty node sends different relays to different peers in
        // every round; honest processors must still agree.
        struct Equivocate;
        impl BsbHooks for Equivocate {
            fn eig_values(&mut self, _: &'static str, _round: usize, to: NodeId, values: &mut [bool]) {
                for (i, v) in values.iter_mut().enumerate() {
                    *v = (to + i).is_multiple_of(2);
                }
            }
        }
        for faulty in 0..4usize {
            let n = 4;
            let logics: Vec<Logic<bool>> = (0..n)
                .map(|id| {
                    Box::new(move |ctx: &mut NodeCtx| {
                        let cfg = BsbConfig::new(1, "eig-equiv", vec![true; 4]);
                        let init = vec![id % 2 == 0];
                        if id == faulty {
                            run_eig_batch(ctx, &cfg, init, &mut Equivocate)[0]
                        } else {
                            run_eig_batch(ctx, &cfg, init, &mut NoopBsbHooks)[0]
                        }
                    }) as Logic<bool>
                })
                .collect();
            let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
            let honest: Vec<bool> = (0..n).filter(|&i| i != faulty).map(|i| outs[i]).collect();
            assert!(
                honest.windows(2).all(|w| w[0] == w[1]),
                "faulty={faulty}: honest diverged {honest:?}"
            );
        }
    }

    #[test]
    fn equivocation_preserves_validity_of_unanimous_honest() {
        // All honest processors start with `true`; the adversary relays
        // garbage. Validity: honest must decide `true`.
        struct AllFalse;
        impl BsbHooks for AllFalse {
            fn eig_values(&mut self, _: &'static str, _: usize, _: NodeId, values: &mut [bool]) {
                values.iter_mut().for_each(|v| *v = false);
            }
        }
        for faulty in 0..4usize {
            let n = 4;
            let logics: Vec<Logic<bool>> = (0..n)
                .map(|id| {
                    Box::new(move |ctx: &mut NodeCtx| {
                        let cfg = BsbConfig::new(1, "eig-valid", vec![true; 4]);
                        if id == faulty {
                            run_eig_batch(ctx, &cfg, vec![false], &mut AllFalse)[0]
                        } else {
                            run_eig_batch(ctx, &cfg, vec![true], &mut NoopBsbHooks)[0]
                        }
                    }) as Logic<bool>
                })
                .collect();
            let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
            for (id, out) in outs.iter().enumerate() {
                if id != faulty {
                    assert!(*out, "faulty={faulty}: node {id} decided false");
                }
            }
        }
    }

    #[test]
    fn isolated_node_excluded() {
        let n = 4;
        let logics: Vec<Logic<Option<bool>>> = (0..n)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    if id == 3 {
                        return None;
                    }
                    let mut participants = vec![true; 4];
                    participants[3] = false;
                    let cfg = BsbConfig::new(1, "eig-iso", participants);
                    Some(run_eig_batch(ctx, &cfg, vec![true], &mut NoopBsbHooks)[0])
                }) as Logic<Option<bool>>
            })
            .collect();
        let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
        assert_eq!(&outs[..3], &[Some(true), Some(true), Some(true)]);
    }

    #[test]
    fn empty_batch_still_synchronises_rounds() {
        let outs = consensus_run(4, 1, vec![Vec::new(); 4]);
        assert_eq!(outs, vec![Vec::<bool>::new(); 4]);
    }

    #[test]
    fn bits_grow_exponentially_with_t() {
        // n = 3t + 1: measured bits for t = 1 vs t = 2 should grow by
        // far more than the n² ratio (EIG is Θ(n^{t+2})).
        let mut costs = Vec::new();
        for (n, t) in [(4usize, 1usize), (7, 2)] {
            let metrics = MetricsSink::new();
            let logics: Vec<Logic<Vec<bool>>> = (0..n)
                .map(|_| {
                    Box::new(move |ctx: &mut NodeCtx| {
                        let cfg = BsbConfig::new(t, "eig-cost", vec![true; ctx.n()]);
                        run_eig_batch(ctx, &cfg, vec![true], &mut NoopBsbHooks)
                    }) as Logic<Vec<bool>>
                })
                .collect();
            let _ = run_simulation(SimConfig::new(n), metrics.clone(), logics);
            costs.push(metrics.snapshot().total_logical_bits());
        }
        let ratio = costs[1] as f64 / costs[0] as f64;
        assert!(ratio > 10.0, "expected superquadratic growth, got {ratio}");
    }

    #[test]
    #[should_panic(expected = "t < n/3")]
    fn rejects_too_many_faults() {
        let logics: Vec<Logic<()>> = (0..3)
            .map(|_| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "eig-bad", vec![true; 3]);
                    let _ = run_eig_batch(ctx, &cfg, vec![true], &mut NoopBsbHooks);
                }) as Logic<()>
            })
            .collect();
        let _ = run_simulation(SimConfig::new(3), MetricsSink::new(), logics);
    }
}
