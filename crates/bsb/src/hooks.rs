//! Adversary hook points inside the broadcast/consensus primitive.
//!
//! A Byzantine processor in this workspace *runs the honest code* but may
//! mutate every outgoing message through a [`BsbHooks`] implementation.
//! This keeps Byzantine nodes in lockstep with the round structure (the
//! adversary is "full-information": it sees its own state and may deviate
//! arbitrarily in message *content*, including equivocating per recipient)
//! while making attacks composable and testable.

use mvbc_netsim::NodeId;

/// Mutation points for the `Broadcast_Single_Bit` / Phase-King machinery.
///
/// Every method receives the outgoing data for one specific recipient and
/// may mutate it in place; the default implementations leave messages
/// untouched (honest behaviour). `values`/`proposals` slices are indexed
/// by batch instance.
pub trait BsbHooks: Send {
    /// Bits this node, as a broadcast source, is about to send to `to`
    /// (round 0 of `Broadcast_Single_Bit`). Equivocation = different
    /// mutations per `to`.
    fn source_bits(&mut self, session: &'static str, to: NodeId, bits: &mut [bool]) {
        let _ = (session, to, bits);
    }

    /// Value bits for the first round of Phase-King phase `phase`, about
    /// to be sent to `to`.
    fn king_values(&mut self, session: &'static str, phase: usize, to: NodeId, values: &mut [bool]) {
        let _ = (session, phase, to, values);
    }

    /// Proposal crumbs (0 = no proposal, 1 = propose `false`,
    /// 2 = propose `true`) for the second round of phase `phase`, about to
    /// be sent to `to`.
    fn king_proposals(&mut self, session: &'static str, phase: usize, to: NodeId, proposals: &mut [u8]) {
        let _ = (session, phase, to, proposals);
    }

    /// King bits for the third round of phase `phase` (called only when
    /// this node is the king), about to be sent to `to`.
    fn king_bits(&mut self, session: &'static str, phase: usize, to: NodeId, bits: &mut [bool]) {
        let _ = (session, phase, to, bits);
    }

    /// EIG relay bits for round `round` (1-based), about to be sent to
    /// `to`. The slice is the concatenation, in tree-enumeration order,
    /// of this node's relayed level-`(round-1)` values for every batch
    /// instance (see [`run_eig_batch`](crate::run_eig_batch)).
    fn eig_values(&mut self, session: &'static str, round: usize, to: NodeId, values: &mut [bool]) {
        let _ = (session, round, to, values);
    }

    /// Dolev-Strong relay control (called once per instance per round
    /// when this node is about to relay an accepted bit): returning
    /// `false` suppresses the relay (a Byzantine node withholding its
    /// signature chain). Content attacks on Dolev-Strong go through the
    /// signing discipline instead — a faulty node can sign anything *as
    /// itself* via its oracle handle but cannot forge other signatures.
    fn ds_relay(&mut self, session: &'static str, round: usize, instance: usize, bit: bool) -> bool {
        let _ = (session, round, instance, bit);
        true
    }
}

/// The honest (no-op) hook implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopBsbHooks;

impl BsbHooks for NoopBsbHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hooks_leave_data_unchanged() {
        let mut h = NoopBsbHooks;
        let mut bits = vec![true, false];
        h.source_bits("s", 1, &mut bits);
        h.king_values("s", 0, 1, &mut bits);
        h.king_bits("s", 0, 1, &mut bits);
        assert_eq!(bits, vec![true, false]);
        let mut props = vec![0u8, 2];
        h.king_proposals("s", 0, 1, &mut props);
        assert_eq!(props, vec![0, 2]);
    }

    #[test]
    fn custom_hooks_can_flip() {
        struct Flip;
        impl BsbHooks for Flip {
            fn source_bits(&mut self, _: &'static str, _: NodeId, bits: &mut [bool]) {
                for b in bits {
                    *b = !*b;
                }
            }
        }
        let mut h = Flip;
        let mut bits = vec![true, false];
        h.source_bits("s", 0, &mut bits);
        assert_eq!(bits, vec![false, true]);
    }
}
