//! Batched Phase-King binary consensus (the "King algorithm").
//!
//! Tolerates `t < n/3` Byzantine processors using `t + 1` phases of three
//! rounds each, with processor `p` acting as king of phase `p`. Since at
//! most `t` processors are faulty, at least one of the `t + 1` kings is
//! fault-free, and a fault-free king's phase establishes agreement, which
//! later phases preserve.
//!
//! Per phase and instance, each processor sends:
//! - round 1: its current value (1 bit) to all,
//! - round 2: a proposal (2 bits: none / propose-0 / propose-1) to all,
//! - round 3: the king alone sends its value (1 bit) to all.
//!
//! Total: `Θ(n² · (t+1))` bits per instance — the workspace's measured
//! `B` (see the crate docs for how this relates to the paper's `Θ(n²)`).

use mvbc_netsim::bits::{pack_bits, pack_crumbs, unpack_bits, unpack_crumbs};
use mvbc_netsim::{Inbox, NodeCtx, NodeId};

use crate::{BsbConfig, BsbHooks};

const NO_PROPOSAL: u8 = 0;
const PROPOSE_FALSE: u8 = 1;
const PROPOSE_TRUE: u8 = 2;

/// Runs batched Phase-King binary consensus.
///
/// `initial` holds this node's input for every instance in the batch. All
/// participants must call this in the same round with equal `config` and
/// equal batch size. Returns the decided bit per instance; decisions are
/// identical at all fault-free participants, and equal to the common input
/// when all fault-free participants start unanimous (validity).
///
/// Non-participants (isolated processors) still return a vector, computed
/// without sending or receiving.
///
/// # Panics
///
/// Panics when `t >= n/3` or the participants mask length differs from
/// `n`.
pub fn run_king_batch(
    ctx: &mut NodeCtx,
    config: &BsbConfig,
    initial: Vec<bool>,
    hooks: &mut dyn BsbHooks,
) -> Vec<bool> {
    let n = ctx.n();
    config.assert_valid(n);
    let me = ctx.id();
    let t = config.t;
    let count = initial.len();
    let participating = config.participants[me];

    let val_tag = config.tags.value;
    let prop_tag = config.tags.propose;
    let king_tag = config.tags.king;

    let mut values = initial;

    for phase in 0..=t {
        let king: NodeId = phase; // kings 0..=t: at least one is fault-free

        // --- Round 1: universal exchange of current values. ---
        if participating && count > 0 {
            for to in 0..n {
                if to == me || !config.participants[to] {
                    continue;
                }
                let mut bits = values.clone();
                hooks.king_values(config.session, phase, to, &mut bits);
                ctx.send(to, val_tag, pack_bits(&bits), count as u64);
            }
        }
        let mut inbox = ctx.end_round();
        let peer_values = gather_bits(&mut inbox, config, me, val_tag, count);

        // Count supporters of true/false per instance (own value included).
        let mut count_true = vec![0usize; count];
        let mut count_false = vec![0usize; count];
        for (i, &v) in values.iter().enumerate() {
            if v {
                count_true[i] += 1;
            } else {
                count_false[i] += 1;
            }
        }
        for bits in peer_values.iter().flatten() {
            for (i, &v) in bits.iter().enumerate() {
                if v {
                    count_true[i] += 1;
                } else {
                    count_false[i] += 1;
                }
            }
        }

        // --- Round 2: proposals. ---
        // Propose z when at least n - t processors reported z. At most one
        // value can clear the threshold (2(n-t) > n).
        let my_proposals: Vec<u8> = (0..count)
            .map(|i| {
                if count_true[i] >= n - t {
                    PROPOSE_TRUE
                } else if count_false[i] >= n - t {
                    PROPOSE_FALSE
                } else {
                    NO_PROPOSAL
                }
            })
            .collect();
        if participating && count > 0 {
            for to in 0..n {
                if to == me || !config.participants[to] {
                    continue;
                }
                let mut crumbs = my_proposals.clone();
                hooks.king_proposals(config.session, phase, to, &mut crumbs);
                ctx.send(to, prop_tag, pack_crumbs(&crumbs), 2 * count as u64);
            }
        }
        let mut inbox = ctx.end_round();
        let peer_props = gather_crumbs(&mut inbox, config, me, prop_tag, count);

        let mut props_true = vec![0usize; count];
        let mut props_false = vec![0usize; count];
        for (i, &p) in my_proposals.iter().enumerate() {
            match p {
                PROPOSE_TRUE => props_true[i] += 1,
                PROPOSE_FALSE => props_false[i] += 1,
                _ => {}
            }
        }
        for crumbs in peer_props.iter().flatten() {
            for (i, &p) in crumbs.iter().enumerate() {
                match p {
                    PROPOSE_TRUE => props_true[i] += 1,
                    PROPOSE_FALSE => props_false[i] += 1,
                    _ => {}
                }
            }
        }

        // Adopt a proposal supported by at least t + 1 processors (at
        // least one of them fault-free). At most one value can have t + 1
        // supporters that include a fault-free processor; break the
        // impossible-for-honest tie deterministically toward `true`.
        let mut confident = vec![false; count];
        for i in 0..count {
            if props_true[i] > t && props_true[i] >= props_false[i] {
                values[i] = true;
                confident[i] = props_true[i] >= n - t;
            } else if props_false[i] > t {
                values[i] = false;
                confident[i] = props_false[i] >= n - t;
            }
        }

        // --- Round 3: the king's tie-break. ---
        if participating && me == king && count > 0 {
            for to in 0..n {
                if to == me || !config.participants[to] {
                    continue;
                }
                let mut bits = values.clone();
                hooks.king_bits(config.session, phase, to, &mut bits);
                ctx.send(to, king_tag, pack_bits(&bits), count as u64);
            }
        }
        let mut inbox = ctx.end_round();
        let king_bits: Option<Vec<bool>> = if me == king {
            Some(values.clone())
        } else if config.participants[king] {
            inbox
                .take(king, king_tag)
                .and_then(|payload| unpack_bits(&payload, count))
        } else {
            None
        };
        for i in 0..count {
            if !confident[i] {
                // Follow the king; a silent or isolated king defaults to
                // false (all fault-free processors apply the same default).
                values[i] = king_bits.as_ref().map(|b| b[i]).unwrap_or(false);
            }
        }
    }

    values
}

/// Pulls one packed-bits message per participating peer out of the inbox;
/// malformed or missing payloads become `None` (treated as silence).
fn gather_bits(
    inbox: &mut Inbox,
    config: &BsbConfig,
    me: NodeId,
    tag: &'static str,
    count: usize,
) -> Vec<Option<Vec<bool>>> {
    let n = config.participants.len();
    (0..n)
        .map(|from| {
            if from == me || !config.participants[from] || count == 0 {
                return None;
            }
            inbox
                .take(from, tag)
                .and_then(|payload| unpack_bits(&payload, count))
        })
        .collect()
}

/// As [`gather_bits`] for 2-bit proposal crumbs; crumb values outside
/// `{0, 1, 2}` are coerced to "no proposal".
fn gather_crumbs(
    inbox: &mut Inbox,
    config: &BsbConfig,
    me: NodeId,
    tag: &'static str,
    count: usize,
) -> Vec<Option<Vec<u8>>> {
    let n = config.participants.len();
    (0..n)
        .map(|from| {
            if from == me || !config.participants[from] || count == 0 {
                return None;
            }
            inbox.take(from, tag).and_then(|payload| {
                unpack_crumbs(&payload, count).map(|mut crumbs| {
                    for c in &mut crumbs {
                        if *c > PROPOSE_TRUE {
                            *c = NO_PROPOSAL;
                        }
                    }
                    crumbs
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoopBsbHooks;
    use mvbc_metrics::MetricsSink;
    use mvbc_netsim::{run_simulation, SimConfig};

    type Logic<O> = Box<dyn FnOnce(&mut NodeCtx) -> O + Send>;

    fn consensus_run(n: usize, t: usize, inputs: Vec<Vec<bool>>) -> Vec<Vec<bool>> {
        let logics: Vec<Logic<Vec<bool>>> = inputs
            .into_iter()
            .map(|init| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "king", vec![true; ctx.n()]);
                    run_king_batch(ctx, &cfg, init, &mut NoopBsbHooks)
                }) as Logic<Vec<bool>>
            })
            .collect();
        run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs
    }

    #[test]
    fn validity_unanimous_inputs() {
        for bit in [false, true] {
            let outs = consensus_run(4, 1, vec![vec![bit]; 4]);
            assert_eq!(outs, vec![vec![bit]; 4]);
        }
    }

    #[test]
    fn agreement_mixed_inputs() {
        // 2 vs 2 split: some common decision must emerge.
        let inputs = vec![vec![true], vec![true], vec![false], vec![false]];
        let outs = consensus_run(4, 1, inputs);
        let first = outs[0][0];
        assert!(outs.iter().all(|o| o[0] == first));
    }

    #[test]
    fn agreement_all_splits_n7() {
        // Every number of initial `true` holders, n = 7, t = 2.
        for ones in 0..=7usize {
            let inputs: Vec<Vec<bool>> = (0..7).map(|i| vec![i < ones]).collect();
            let outs = consensus_run(7, 2, inputs);
            let first = outs[0][0];
            assert!(outs.iter().all(|o| o[0] == first), "ones={ones}");
            if ones == 7 {
                assert!(first);
            }
            if ones == 0 {
                assert!(!first);
            }
        }
    }

    #[test]
    fn batch_instances_do_not_interfere() {
        // Instance 0 unanimous true, instance 1 unanimous false,
        // instance 2 split.
        let inputs: Vec<Vec<bool>> = (0..4).map(|i| vec![true, false, i % 2 == 0]).collect();
        let outs = consensus_run(4, 1, inputs);
        for o in &outs {
            assert!(o[0]);
            assert!(!o[1]);
            assert_eq!(o[2], outs[0][2]);
        }
    }

    #[test]
    fn round_count_is_three_per_phase() {
        let n = 4;
        let metrics = MetricsSink::new();
        let logics: Vec<Logic<Vec<bool>>> = (0..n)
            .map(|_| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "rounds", vec![true; 4]);
                    run_king_batch(ctx, &cfg, vec![true], &mut NoopBsbHooks)
                }) as Logic<Vec<bool>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), metrics, logics);
        assert_eq!(out.rounds, 6); // (t + 1) phases * 3 rounds
    }

    #[test]
    fn empty_batch_still_synchronises_rounds() {
        let outs = consensus_run(4, 1, vec![Vec::new(); 4]);
        assert_eq!(outs, vec![Vec::<bool>::new(); 4]);
    }
}
