//! `Broadcast_Single_Bit`: error-free 1-bit Byzantine broadcast for
//! `t < n/3`.
//!
//! Liang & Vaidya's consensus algorithm (PODC 2011) distributes all its
//! control information — the `M` match vectors, the `Detected` flags, the
//! diagnosis symbols `R#` and the `Trust` vectors — with an error-free
//! 1-bit Byzantine broadcast primitive the paper calls
//! `Broadcast_Single_Bit` (citing Berman-Garay-Perry and Coan-Welch). The
//! broadcast guarantees that all fault-free processors receive the *same*
//! bit, even when the source is faulty, which is what keeps the diagnosis
//! graph consistent across processors.
//!
//! This crate implements the primitive as:
//!
//! 1. the source sends its bit to every processor, then
//! 2. all processors run **Phase-King binary consensus** (the King
//!    algorithm: `t + 1` phases of 3 rounds, rotating king) on the received
//!    bits.
//!
//! Consistency follows from consensus agreement; validity from consensus
//! validity (an honest source gives every honest processor the same input).
//!
//! **Substitution note (see DESIGN.md §2):** the paper assumes a
//! bit-optimal primitive with `B = Θ(n²)` total bits; the simple Phase-King
//! construction used here costs `B = Θ(n²·t)` bits. `B` only multiplies the
//! sub-linear terms of the paper's Eq. (1), so the headline `O(nL)` result
//! is unaffected; the benchmark harness reports both the measured `B` and
//! the paper's `Θ(n²)` model.
//!
//! Many broadcast instances that start in the same round are **batched**:
//! they share the phase/round structure and pack their bits into a single
//! message per (sender, receiver) pair per round. Batching changes only
//! wall-clock time, not the per-instance bit count.
//!
//! # Examples
//!
//! ```
//! use mvbc_bsb::{run_bsb_batch, BsbConfig, BsbInstance, NoopBsbHooks};
//! use mvbc_metrics::MetricsSink;
//! use mvbc_netsim::{run_simulation, NodeCtx, SimConfig};
//!
//! // n = 4, t = 1: node 0 broadcasts `true`; everyone agrees.
//! let n = 4;
//! let logics = (0..n)
//!     .map(|id| {
//!         Box::new(move |ctx: &mut NodeCtx| {
//!             let cfg = BsbConfig::new(1, "demo", vec![true; 4]);
//!             let inst = [BsbInstance {
//!                 source: 0,
//!                 input: (id == 0).then_some(true),
//!             }];
//!             run_bsb_batch(ctx, &cfg, &inst, &mut NoopBsbHooks)[0]
//!         }) as Box<dyn FnOnce(&mut NodeCtx) -> bool + Send>
//!     })
//!     .collect();
//! let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics);
//! assert_eq!(out.outputs, vec![true; 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dolev_strong;
mod driver;
mod eig;
mod hooks;
mod king;

pub use driver::{BsbDriver, DolevStrongDriver, EigDriver, PhaseKingDriver};
pub use eig::{run_eig_batch, EigTree};
pub use hooks::{BsbHooks, NoopBsbHooks};
pub use king::run_king_batch;

use mvbc_metrics::intern_tag;
use mvbc_netsim::bits::{pack_bits, unpack_bits};
use mvbc_netsim::{NodeCtx, NodeId};

/// The interned message tags of one `Broadcast_Single_Bit` session, one
/// per substrate wire stage, derived from the session name **once**.
///
/// Interning goes through a global table (a mutex plus an allocation per
/// formatted lookup), which must stay off the send path: a multi-slot
/// protocol like the `mvbc-smr` replicated log runs thousands of BSB
/// batches, and re-deriving tags per batch made every steady-state send
/// pay for formatting and locking. Deriving a `SessionTags` when the
/// session is named — and carrying it inside [`BsbConfig`] — makes every
/// subsequent send a plain `&'static str` load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTags {
    /// Round-0 source multicast (`<session>.bsb.src`).
    pub src: &'static str,
    /// Phase-King value round (`<session>.bsb.value`).
    pub value: &'static str,
    /// Phase-King proposal round (`<session>.bsb.propose`).
    pub propose: &'static str,
    /// Phase-King king round (`<session>.bsb.king`).
    pub king: &'static str,
    /// EIG relay rounds (`<session>.bsb.eig`).
    pub eig: &'static str,
    /// Dolev-Strong single-instance relays (`<session>.ds`).
    pub ds: &'static str,
    /// Dolev-Strong batched relays (`<session>.dsb`).
    pub dsb: &'static str,
}

impl SessionTags {
    /// Interns every derived tag of `session` (the only point where this
    /// session's tags pay the interning cost).
    pub fn derive(session: &str) -> Self {
        SessionTags {
            src: intern_tag(&format!("{session}.bsb.src")),
            value: intern_tag(&format!("{session}.bsb.value")),
            propose: intern_tag(&format!("{session}.bsb.propose")),
            king: intern_tag(&format!("{session}.bsb.king")),
            eig: intern_tag(&format!("{session}.bsb.eig")),
            ds: intern_tag(&format!("{session}.ds")),
            dsb: intern_tag(&format!("{session}.dsb")),
        }
    }
}

/// Static parameters of a batch of broadcast instances.
#[derive(Debug, Clone)]
pub struct BsbConfig {
    /// Maximum number of Byzantine processors tolerated (`t < n/3`).
    pub t: usize,
    /// Session tag; metric tags and message tags derive from it, so two
    /// batches in flight must use distinct sessions.
    pub session: &'static str,
    /// The session's pre-interned wire tags (see [`SessionTags`]).
    pub tags: SessionTags,
    /// `participants[i]` is false when processor `i` has been isolated by
    /// the diagnosis graph: no messages are sent to it and its messages
    /// are ignored. Fault-free processors are always participants.
    pub participants: Vec<bool>,
}

impl BsbConfig {
    /// Convenience constructor; derives (and interns) the session's wire
    /// tags. Callers that run many batches under the same session should
    /// derive a [`SessionTags`] once and use [`BsbConfig::with_tags`].
    pub fn new(t: usize, session: &'static str, participants: Vec<bool>) -> Self {
        Self::with_tags(t, session, SessionTags::derive(session), participants)
    }

    /// As [`BsbConfig::new`] with pre-derived tags: no interning, no
    /// formatting, no locking — the hot-path constructor for per-slot /
    /// per-generation protocols.
    pub fn with_tags(
        t: usize,
        session: &'static str,
        tags: SessionTags,
        participants: Vec<bool>,
    ) -> Self {
        BsbConfig {
            t,
            session,
            tags,
            participants,
        }
    }

    pub(crate) fn assert_valid(&self, n: usize) {
        assert_eq!(self.participants.len(), n, "participants mask length");
        assert!(3 * self.t < n, "Phase-King requires t < n/3 (t = {}, n = {n})", self.t);
    }
}

/// One broadcast instance within a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsbInstance {
    /// The broadcasting processor.
    pub source: NodeId,
    /// The bit to broadcast; `Some` exactly when the local processor is
    /// the source.
    pub input: Option<bool>,
}

/// Runs a batch of `Broadcast_Single_Bit` instances to completion.
///
/// Every participant must call this in the same round with the same
/// `config` and the same instance list (sources and order); only the
/// `input` fields differ per node. Returns the broadcast bit of each
/// instance, identical at every fault-free participant.
///
/// # Panics
///
/// Panics when `t >= n/3`, when the participants mask has the wrong
/// length, or when an instance's source is not a participant (callers
/// must drop instances sourced at isolated processors — the paper's
/// processors "do not communicate with identified faulty processors").
pub fn run_bsb_batch(
    ctx: &mut NodeCtx,
    config: &BsbConfig,
    instances: &[BsbInstance],
    hooks: &mut dyn BsbHooks,
) -> Vec<bool> {
    config.assert_valid(ctx.n());
    let initial = source_round_initial(ctx, config, instances, hooks);
    // Phase-King consensus over the received bits.
    king::run_king_batch(ctx, config, initial, hooks)
}

/// Round 0 of the source-multicast construction shared by the Phase-King
/// and EIG substrates: every source sends its instances' bits to every
/// participant, and each node assembles its initial consensus inputs
/// (own bit for self-sourced instances; received bit, defaulting to
/// `false` on silence, otherwise).
pub(crate) fn source_round_initial(
    ctx: &mut NodeCtx,
    config: &BsbConfig,
    instances: &[BsbInstance],
    hooks: &mut dyn BsbHooks,
) -> Vec<bool> {
    for inst in instances {
        assert!(
            config.participants[inst.source],
            "instance sourced at isolated processor {}",
            inst.source
        );
        debug_assert_eq!(
            inst.input.is_some(),
            inst.source == ctx.id(),
            "input must be set exactly at the source"
        );
    }

    let me = ctx.id();
    let n = ctx.n();
    let participating = config.participants[me];
    let src_tag = config.tags.src;

    // Round 0: each source sends its instances' bits to every participant.
    let my_sourced: Vec<usize> = (0..instances.len())
        .filter(|&i| instances[i].source == me)
        .collect();
    if participating && !my_sourced.is_empty() {
        let base: Vec<bool> = my_sourced
            .iter()
            .map(|&i| instances[i].input.unwrap_or(false))
            .collect();
        for to in 0..n {
            if to == me || !config.participants[to] {
                continue;
            }
            let mut bits = base.clone();
            hooks.source_bits(config.session, to, &mut bits);
            ctx.send(to, src_tag, pack_bits(&bits), bits.len() as u64);
        }
    }
    let mut inbox = ctx.end_round();

    // Collect initial consensus inputs: the bit received from each source
    // (own bit for self-sourced instances; false when silent/malformed).
    let mut per_source_count: Vec<usize> = vec![0; n];
    let mut initial = vec![false; instances.len()];
    let mut received: Vec<Option<Vec<bool>>> = vec![None; n];
    for (i, inst) in instances.iter().enumerate() {
        per_source_count[inst.source] += 1;
        let _ = i;
    }
    for source in 0..n {
        if source == me || per_source_count[source] == 0 || !config.participants[source] {
            continue;
        }
        received[source] = inbox
            .take(source, src_tag)
            .and_then(|payload| unpack_bits(&payload, per_source_count[source]));
    }
    let mut seen_per_source: Vec<usize> = vec![0; n];
    for (i, inst) in instances.iter().enumerate() {
        let idx = seen_per_source[inst.source];
        seen_per_source[inst.source] += 1;
        initial[i] = if inst.source == me {
            inst.input.unwrap_or(false)
        } else {
            received[inst.source]
                .as_ref()
                .map(|bits| bits[idx])
                .unwrap_or(false)
        };
    }
    initial
}

/// A multi-bit broadcast request: `source` broadcasts `bits` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsbValueSpec {
    /// The broadcasting processor.
    pub source: NodeId,
    /// Number of bits the source will broadcast (common knowledge).
    pub bits: usize,
    /// The value, present exactly at the source.
    pub input: Option<Vec<bool>>,
}

/// Broadcasts one multi-bit value per spec, using one 1-bit instance per
/// bit (the paper: "one instance of Broadcast_Single_Bit is needed for
/// each bit"). Returns the received values aligned with `specs`.
///
/// # Panics
///
/// As [`run_bsb_batch`]; additionally panics when a source's `input`
/// length disagrees with `bits`.
pub fn run_bsb_values(
    ctx: &mut NodeCtx,
    config: &BsbConfig,
    specs: &[BsbValueSpec],
    hooks: &mut dyn BsbHooks,
) -> Vec<Vec<bool>> {
    let mut instances = Vec::new();
    for spec in specs {
        if let Some(input) = &spec.input {
            assert_eq!(input.len(), spec.bits, "input length must equal bits");
        }
        for b in 0..spec.bits {
            instances.push(BsbInstance {
                source: spec.source,
                input: spec.input.as_ref().map(|v| v[b]),
            });
        }
    }
    let flat = run_bsb_batch(ctx, config, &instances, hooks);
    let mut out = Vec::with_capacity(specs.len());
    let mut off = 0;
    for spec in specs {
        out.push(flat[off..off + spec.bits].to_vec());
        off += spec.bits;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvbc_metrics::MetricsSink;
    use mvbc_netsim::{run_simulation, SimConfig};

    type Logic<O> = Box<dyn FnOnce(&mut NodeCtx) -> O + Send>;

    fn all_participants(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    /// Runs one broadcast of `bit` from `source` among `n` honest nodes.
    fn broadcast_honest(n: usize, t: usize, source: NodeId, bit: bool) -> (Vec<bool>, MetricsSink) {
        let metrics = MetricsSink::new();
        let logics: Vec<Logic<bool>> = (0..n)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "t", all_participants(n));
                    let inst = [BsbInstance {
                        source,
                        input: (id == source).then_some(bit),
                    }];
                    run_bsb_batch(ctx, &cfg, &inst, &mut NoopBsbHooks)[0]
                }) as Logic<bool>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), metrics.clone(), logics);
        (out.outputs, metrics)
    }

    #[test]
    fn honest_source_true_and_false() {
        for bit in [false, true] {
            let (outs, _) = broadcast_honest(4, 1, 2, bit);
            assert_eq!(outs, vec![bit; 4], "bit={bit}");
        }
    }

    #[test]
    fn various_network_sizes() {
        for (n, t) in [(4, 1), (7, 2), (10, 3), (13, 4)] {
            let (outs, _) = broadcast_honest(n, t, n - 1, true);
            assert_eq!(outs, vec![true; n], "n={n} t={t}");
        }
    }

    #[test]
    fn t_zero_single_phase() {
        let (outs, metrics) = broadcast_honest(4, 0, 0, true);
        assert_eq!(outs, vec![true; 4]);
        // t = 0: one phase of 3 rounds plus the source round.
        assert_eq!(metrics.snapshot().rounds(), 4);
    }

    #[test]
    fn batch_of_independent_instances() {
        let n = 4;
        let metrics = MetricsSink::new();
        let logics: Vec<Logic<Vec<bool>>> = (0..n)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "batch", all_participants(n));
                    // Every node broadcasts two bits: (id is even, id >= 2).
                    let instances: Vec<BsbInstance> = (0..n)
                        .flat_map(|src| {
                            [
                                BsbInstance {
                                    source: src,
                                    input: (id == src).then_some(src % 2 == 0),
                                },
                                BsbInstance {
                                    source: src,
                                    input: (id == src).then_some(src >= 2),
                                },
                            ]
                        })
                        .collect();
                    run_bsb_batch(ctx, &cfg, &instances, &mut NoopBsbHooks)
                }) as Logic<Vec<bool>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), metrics, logics);
        let expect: Vec<bool> = (0..n).flat_map(|src| [src % 2 == 0, src >= 2]).collect();
        for o in &out.outputs {
            assert_eq!(*o, expect);
        }
    }

    #[test]
    fn values_api_roundtrip() {
        let n = 4;
        let value = vec![true, false, true, true, false];
        let expect = value.clone();
        let logics: Vec<Logic<Vec<Vec<bool>>>> = (0..n)
            .map(|id| {
                let value = value.clone();
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "values", all_participants(n));
                    let specs = [BsbValueSpec {
                        source: 1,
                        bits: 5,
                        input: (id == 1).then_some(value.clone()),
                    }];
                    run_bsb_values(ctx, &cfg, &specs, &mut NoopBsbHooks)
                }) as Logic<Vec<Vec<bool>>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics);
        for o in &out.outputs {
            assert_eq!(o[0], expect);
        }
    }

    #[test]
    fn silent_source_yields_consistent_default() {
        // Source is a participant but crashes before sending: all honest
        // nodes must still agree (on false).
        let n = 4;
        let logics: Vec<Logic<Option<bool>>> = (0..n)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    if id == 0 {
                        return None; // crash immediately
                    }
                    let cfg = BsbConfig::new(1, "silent", all_participants(n));
                    let inst = [BsbInstance {
                        source: 0,
                        input: None,
                    }];
                    Some(run_bsb_batch(ctx, &cfg, &inst, &mut NoopBsbHooks)[0])
                }) as Logic<Option<bool>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics);
        assert_eq!(out.outputs[1], Some(false));
        assert_eq!(out.outputs[1], out.outputs[2]);
        assert_eq!(out.outputs[2], out.outputs[3]);
    }

    #[test]
    fn isolated_node_excluded_from_traffic() {
        // Node 3 is isolated: no participant sends to it; broadcast still
        // completes among the rest.
        let n = 4;
        let metrics = MetricsSink::new();
        let logics: Vec<Logic<Option<bool>>> = (0..n)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    if id == 3 {
                        return None; // isolated node does nothing
                    }
                    let mut participants = all_participants(n);
                    participants[3] = false;
                    let cfg = BsbConfig::new(1, "iso", participants);
                    let inst = [BsbInstance {
                        source: 1,
                        input: (id == 1).then_some(true),
                    }];
                    Some(run_bsb_batch(ctx, &cfg, &inst, &mut NoopBsbHooks)[0])
                }) as Logic<Option<bool>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), metrics, logics);
        assert_eq!(out.outputs, vec![Some(true), Some(true), Some(true), None]);
    }

    #[test]
    fn measured_bits_scale_with_n() {
        // B(n) grows superlinearly (Θ(n^2 (t+1)) for the Phase-King
        // construction).
        let mut costs = Vec::new();
        for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
            let (_, metrics) = broadcast_honest(n, t, 0, true);
            costs.push(metrics.snapshot().total_logical_bits());
        }
        assert!(costs[0] < costs[1] && costs[1] < costs[2]);
        // Sanity: n = 4 cost is at least the analytic floor
        // n-1 source bits + (t+1) * n(n-1) value bits.
        assert!(costs[0] >= 3 + 2 * 12);
    }

    #[test]
    #[should_panic(expected = "t < n/3")]
    fn rejects_too_many_faults() {
        let logics: Vec<Logic<()>> = (0..3)
            .map(|_| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "bad", vec![true; 3]);
                    let inst = [BsbInstance {
                        source: 0,
                        input: (ctx.id() == 0).then_some(true),
                    }];
                    let _ = run_bsb_batch(ctx, &cfg, &inst, &mut NoopBsbHooks);
                }) as Logic<()>
            })
            .collect();
        let _ = run_simulation(SimConfig::new(3), MetricsSink::new(), logics);
    }

    #[test]
    fn empty_batch_is_noop() {
        let n = 4;
        let logics: Vec<Logic<usize>> = (0..n)
            .map(|_| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(1, "empty", all_participants(n));
                    run_bsb_batch(ctx, &cfg, &[], &mut NoopBsbHooks).len()
                }) as Logic<usize>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics);
        assert_eq!(out.outputs, vec![0; 4]);
    }
}
