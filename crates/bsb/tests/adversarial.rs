//! Adversarial tests of the Phase-King / Broadcast_Single_Bit layer in
//! isolation: Byzantine participants attack the primitive directly and
//! agreement + validity must survive for every fault placement.

use mvbc_bsb::{run_bsb_batch, BsbConfig, BsbHooks, BsbInstance, NoopBsbHooks};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeId, SimConfig};

type Logic<O> = Box<dyn FnOnce(&mut NodeCtx) -> O + Send>;

/// Flips every outgoing bit at every hook point, equivocating by
/// recipient parity.
#[derive(Debug, Clone, Copy)]
struct Chaos;

impl BsbHooks for Chaos {
    fn source_bits(&mut self, _s: &'static str, to: NodeId, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            *b = to.is_multiple_of(2);
        }
    }
    fn king_values(&mut self, _s: &'static str, _p: usize, to: NodeId, values: &mut [bool]) {
        for v in values.iter_mut() {
            *v = to % 2 == 1;
        }
    }
    fn king_proposals(&mut self, _s: &'static str, p: usize, to: NodeId, proposals: &mut [u8]) {
        for q in proposals.iter_mut() {
            *q = ((to + p) % 3) as u8;
        }
    }
    fn king_bits(&mut self, _s: &'static str, _p: usize, to: NodeId, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            *b = to.is_multiple_of(2);
        }
    }
}

/// Runs one broadcast with `byzantine` applying `Chaos`, returns honest
/// outputs.
fn broadcast_with_chaos(n: usize, t: usize, source: usize, bit: bool, byzantine: usize) -> Vec<bool> {
    let logics: Vec<Logic<bool>> = (0..n)
        .map(|id| {
            Box::new(move |ctx: &mut NodeCtx| {
                let cfg = BsbConfig::new(t, "adv", vec![true; ctx.n()]);
                let inst = [BsbInstance {
                    source,
                    input: (id == source).then_some(bit),
                }];
                if id == byzantine {
                    run_bsb_batch(ctx, &cfg, &inst, &mut Chaos)[0]
                } else {
                    run_bsb_batch(ctx, &cfg, &inst, &mut NoopBsbHooks)[0]
                }
            }) as Logic<bool>
        })
        .collect();
    run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs
}

#[test]
fn byzantine_non_source_cannot_break_validity() {
    // Honest source: every honest participant must output the source bit,
    // for every placement of the Byzantine node and both bit values.
    for n_t in [(4usize, 1usize), (7, 2)] {
        let (n, t) = n_t;
        for bit in [false, true] {
            for byz in 1..n {
                let outs = broadcast_with_chaos(n, t, 0, bit, byz);
                for (id, &o) in outs.iter().enumerate() {
                    if id != byz {
                        assert_eq!(o, bit, "n={n} byz={byz} bit={bit} node={id}");
                    }
                }
            }
        }
    }
}

#[test]
fn byzantine_source_cannot_break_consistency() {
    // Byzantine source equivocates in round 0 and throughout Phase-King:
    // honest outputs must still be identical (some common bit).
    for n_t in [(4usize, 1usize), (7, 2)] {
        let (n, t) = n_t;
        let outs = broadcast_with_chaos(n, t, 0, true, 0);
        let first = outs[1];
        for (id, &o) in outs.iter().enumerate().skip(1) {
            assert_eq!(o, first, "n={n} node={id} diverged");
        }
    }
}

#[test]
fn byzantine_king_phase_recovered_by_honest_king() {
    // The Byzantine node is king of phase equal to its id; even as king 0
    // (first phase) its split is repaired by the later honest kings.
    let outs = broadcast_with_chaos(4, 1, 2, true, 0);
    for (id, &o) in outs.iter().enumerate() {
        if id != 0 {
            assert!(o, "node {id}");
        }
    }
}

#[test]
fn batch_with_byzantine_all_instances_agree() {
    // 8 instances, mixed sources, one chaotic node: per-instance
    // agreement among honest nodes, validity for honest sources.
    let n = 4;
    let t = 1;
    let byz = 3;
    let logics: Vec<Logic<Vec<bool>>> = (0..n)
        .map(|id| {
            Box::new(move |ctx: &mut NodeCtx| {
                let cfg = BsbConfig::new(t, "advb", vec![true; ctx.n()]);
                let insts: Vec<BsbInstance> = (0..8)
                    .map(|i| BsbInstance {
                        source: i % 4,
                        input: (id == i % 4).then_some(i % 3 == 0),
                    })
                    .collect();
                if id == byz {
                    run_bsb_batch(ctx, &cfg, &insts, &mut Chaos)
                } else {
                    run_bsb_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
                }
            }) as Logic<Vec<bool>>
        })
        .collect();
    let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
    #[allow(clippy::needless_range_loop)] // indexes three parallel vectors
    for i in 0..8 {
        // Agreement among honest nodes.
        assert_eq!(outs[0][i], outs[1][i], "instance {i}");
        assert_eq!(outs[1][i], outs[2][i], "instance {i}");
        // Validity for honest sources.
        if i % 4 != byz {
            assert_eq!(outs[0][i], i % 3 == 0, "instance {i} validity");
        }
    }
}

#[test]
fn exhaustive_small_space_n4() {
    // All 16 initial value assignments of a 4-node King consensus with
    // one chaotic node at every position: agreement must always hold,
    // and unanimity among the 3 honest nodes must be preserved.
    use mvbc_bsb::run_king_batch;
    for byz in 0..4usize {
        for assignment in 0..16u32 {
            let logics: Vec<Logic<bool>> = (0..4)
                .map(|id| {
                    let my = assignment & (1 << id) != 0;
                    Box::new(move |ctx: &mut NodeCtx| {
                        let cfg = BsbConfig::new(1, "exh", vec![true; 4]);
                        if id == byz {
                            run_king_batch(ctx, &cfg, vec![my], &mut Chaos)[0]
                        } else {
                            run_king_batch(ctx, &cfg, vec![my], &mut NoopBsbHooks)[0]
                        }
                    }) as Logic<bool>
                })
                .collect();
            let outs = run_simulation(SimConfig::new(4), MetricsSink::new(), logics).outputs;
            let honest: Vec<usize> = (0..4).filter(|&i| i != byz).collect();
            let first = outs[honest[0]];
            for &h in &honest {
                assert_eq!(outs[h], first, "byz={byz} assignment={assignment:04b}");
            }
            let honest_bits: Vec<bool> =
                honest.iter().map(|&h| assignment & (1 << h) != 0).collect();
            if honest_bits.iter().all(|&b| b) {
                assert!(first, "byz={byz} assignment={assignment:04b}: validity(1)");
            }
            if honest_bits.iter().all(|&b| !b) {
                assert!(!first, "byz={byz} assignment={assignment:04b}: validity(0)");
            }
        }
    }
}

#[test]
fn dolev_strong_composes_after_other_phases() {
    // Regression: the chain-length check must use protocol-relative
    // rounds, or a broadcast started after earlier phases rejects the
    // source's 1-signature chain.
    use mvbc_bsb::dolev_strong::{run_dolev_strong, SignatureOracle};
    let n = 4;
    let t = 2;
    let oracle = SignatureOracle::new();
    let logics: Vec<Logic<bool>> = (0..n)
        .map(|id| {
            let oracle = oracle.clone();
            Box::new(move |ctx: &mut NodeCtx| {
                // Burn a few unrelated rounds first.
                for _ in 0..5 {
                    ctx.end_round();
                }
                let cfg = BsbConfig::new(t, "ds-late", vec![true; ctx.n()]);
                let handle = oracle.handle(id);
                run_dolev_strong(ctx, &cfg, 1, (id == 1).then_some(true), &handle, &oracle)
            }) as Logic<bool>
        })
        .collect();
    let outs = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
    assert_eq!(outs, vec![true; n]);
}
