//! Property-based tests for the BSB substrates: EIG tree structure,
//! substrate agreement under randomized inputs, and Dolev-Strong batch
//! behaviour.

use mvbc_bsb::{
    BsbConfig, BsbDriver, BsbInstance, DolevStrongDriver, EigDriver, EigTree, NoopBsbHooks,
    PhaseKingDriver,
};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every level-r label is reachable as a child of exactly one parent,
    /// and `child_index` is the inverse of label extension.
    #[test]
    fn eig_tree_child_index_is_a_bijection(n in 4usize..9, t in 0usize..3) {
        prop_assume!(3 * t < n);
        let tree = EigTree::new(n, t);
        for r in 0..tree.depth() {
            let mut seen = vec![false; tree.level_len(r + 1)];
            for p in 0..tree.level_len(r) {
                let label = &tree.level(r)[p];
                for j in 0..n {
                    if label.contains(&j) {
                        continue;
                    }
                    let c = tree.child_index(r, p, j);
                    prop_assert!(!seen[c], "child index {c} hit twice");
                    seen[c] = true;
                    let mut want = label.clone();
                    want.push(j);
                    prop_assert_eq!(&tree.level(r + 1)[c], &want);
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "some level-{} label unreachable", r + 1);
        }
    }

    /// The relay sets of all processors cover each level exactly
    /// `n - r` times (each label is relayed by everyone not in it).
    #[test]
    fn eig_tree_relay_sets_partition(n in 4usize..9, t in 0usize..3) {
        prop_assume!(3 * t < n);
        let tree = EigTree::new(n, t);
        for r in 0..=t {
            let mut counts = vec![0usize; tree.level_len(r)];
            for id in 0..n {
                for idx in tree.relay_indices(r, id) {
                    counts[idx] += 1;
                }
            }
            for (idx, &c) in counts.iter().enumerate() {
                prop_assert_eq!(c, n - r, "label {} relayed {} times", idx, c);
            }
        }
    }

    /// All three substrates agree with each other on arbitrary honest
    /// input patterns (fault-free cross-validation: three independently
    /// implemented protocols must compute the same function).
    #[test]
    fn substrates_cross_validate_honest(inputs in proptest::collection::vec(any::<bool>(), 4)) {
        let n = 4;
        let fleets: Vec<Vec<Box<dyn BsbDriver>>> = vec![
            (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect(),
            (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect(),
            DolevStrongDriver::fleet(n)
                .into_iter()
                .map(|d| Box::new(d) as Box<dyn BsbDriver>)
                .collect(),
        ];
        for (which, fleet) in fleets.into_iter().enumerate() {
            let logics: Vec<NodeLogic<Vec<bool>>> = fleet
                .into_iter()
                .enumerate()
                .map(|(id, mut driver)| {
                    let inputs = inputs.clone();
                    Box::new(move |ctx: &mut NodeCtx| {
                        let cfg = BsbConfig::new(1, "xval", vec![true; ctx.n()]);
                        let insts: Vec<BsbInstance> = (0..ctx.n())
                            .map(|src| BsbInstance {
                                source: src,
                                input: (id == src).then_some(inputs[src]),
                            })
                            .collect();
                        driver.run_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
                    }) as NodeLogic<Vec<bool>>
                })
                .collect();
            let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
            for o in &out {
                prop_assert_eq!(o, &out[0], "substrate {} internal disagreement", which);
            }
            // Honest sources: deliver the inputs verbatim (validity).
            prop_assert_eq!(&out[0], &inputs, "substrate {} broke validity", which);
        }
    }

    /// Dolev-Strong batch: arbitrary mixed-source batches deliver
    /// verbatim with honest processors, for any tolerated t.
    #[test]
    fn dolev_strong_batch_validity(
        bits in proptest::collection::vec(any::<bool>(), 1..24),
        t in 1usize..4,
    ) {
        let n = 4;
        let fleet = DolevStrongDriver::fleet(n);
        let expect = bits.clone();
        let logics: Vec<NodeLogic<Vec<bool>>> = fleet
            .into_iter()
            .enumerate()
            .map(|(id, mut driver)| {
                let bits = bits.clone();
                Box::new(move |ctx: &mut NodeCtx| {
                    let cfg = BsbConfig::new(t, "ds-prop", vec![true; ctx.n()]);
                    let insts: Vec<BsbInstance> = bits
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| BsbInstance {
                            source: i % ctx.n(),
                            input: (id == i % ctx.n()).then_some(b),
                        })
                        .collect();
                    driver.run_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
                }) as NodeLogic<Vec<bool>>
            })
            .collect();
        let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
        for o in &out {
            prop_assert_eq!(o, &expect);
        }
    }
}

/// Deterministic (non-proptest) cross-validation of the Dolev-Strong
/// fleet against Phase-King over all 16 input patterns at n = 4.
#[test]
fn dolev_strong_matches_phase_king_all_patterns() {
    let n = 4;
    for pattern in 0..16u32 {
        let inputs: Vec<bool> = (0..n).map(|i| pattern & (1 << i) != 0).collect();
        let mut all = Vec::new();
        for which in 0..2 {
            let fleet: Vec<Box<dyn BsbDriver>> = if which == 0 {
                (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect()
            } else {
                DolevStrongDriver::fleet(n)
                    .into_iter()
                    .map(|d| Box::new(d) as Box<dyn BsbDriver>)
                    .collect()
            };
            let logics: Vec<NodeLogic<Vec<bool>>> = fleet
                .into_iter()
                .enumerate()
                .map(|(id, mut driver)| {
                    let inputs = inputs.clone();
                    Box::new(move |ctx: &mut NodeCtx| {
                        let cfg = BsbConfig::new(1, "xval2", vec![true; ctx.n()]);
                        let insts: Vec<BsbInstance> = (0..ctx.n())
                            .map(|src| BsbInstance {
                                source: src,
                                input: (id == src).then_some(inputs[src]),
                            })
                            .collect();
                        driver.run_batch(ctx, &cfg, &insts, &mut NoopBsbHooks)
                    }) as NodeLogic<Vec<bool>>
                })
                .collect();
            let out = run_simulation(SimConfig::new(n), MetricsSink::new(), logics).outputs;
            all.push(out[0].clone());
        }
        assert_eq!(all[0], all[1], "pattern {pattern:04b}: substrates disagree");
        assert_eq!(all[0], inputs, "pattern {pattern:04b}: validity broken");
    }
}
