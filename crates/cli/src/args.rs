//! Minimal dependency-free argument parsing for the `mvbc` binary.

use std::fmt;

/// Usage text printed on parse errors.
pub const USAGE: &str = "\
usage:
  mvbc consensus --n <N> --t <T> --l <BYTES> [--d <BYTES>] [--seed <N>]
                 [--attack none|silent|corrupt|random|worst-case] [--differing]
                 [--bsb phase-king|eig|dolev-strong] [--trace <FILE>]
  mvbc broadcast --n <N> --t <T> --l <BYTES> [--d <BYTES>] [--source <ID>]
                 [--attack none|equivocate|silent-source|lying-echo]
  mvbc smr       --n <N> --t <T> --slots <S> [--batch <CMDS>] [--batch-bytes <B>]
                 [--attack none|equivocate|silent] [--byz <ID>] [--seed <N>]
                 [--pipeline <W>] [--round-timeout-secs <SECS>]
                 [--codec-threads <N>] [--lanes-pool <N>]
                 [--latency-model fixed:<T>|jitter:<BASE>:<JIT>|wan:<INTRA>:<INTER>[:<JIT>]]
                 [--topology clique|clusters:<A,B,...>] [--net-seed <N>]
                 [--partition <START>:<HEAL>:<ISLAND>[:drop|delay]] [--max-vtime <T>]
                 [--report <FILE>]
  mvbc smr soak  [--runs <N>] [--seed <N>] [--scenario <FILE>]
                 [--emit-failures <DIR>]
  mvbc inspect   <FILE>
  mvbc info      --n <N> --t <T> --l <BYTES>
  mvbc soak      [--runs <N>] [--seed <N>]

flags:
  --n        number of processors (t < n/3)
  --t        Byzantine fault tolerance
  --l        value length in bytes
  --d        generation size in bytes (default: the paper's Eq. (2) optimum)
  --seed     workload seed (default 1)
  --source   broadcasting processor (broadcast only, default 0)
  --attack   Byzantine behaviour to inject (default none)
  --differing  give every processor a different input (consensus only)
  --bsb      Broadcast_Single_Bit substrate (default phase-king; consensus only)
  --trace    write the full network trace as CSV to FILE (consensus only)
  --runs     number of randomized soak iterations (default 50; smr soak
             defaults to 64 campaign scenarios)
  --scenario replay one scenario JSON instead of generating (smr soak only;
             a failure artifact emitted by an earlier campaign replays the
             violation exactly)
  --emit-failures  directory that receives the offending scenario JSON when
             a campaign run violates an invariant (smr soak only, default
             results)
  --slots    number of replicated-log slots (smr only)
  --batch    max commands per slot batch (smr only, default 8)
  --batch-bytes  byte budget per slot batch (smr only, default unbounded)
  --byz      Byzantine replica id (smr only, default n-1)
  --pipeline number of log slots in flight concurrently (smr only, default 1;
             committed log is identical at every depth)
  --round-timeout-secs  coordinator wedge-detection timeout (smr only,
             default 60; raise for long logs on slow machines)
  --codec-threads  worker threads for stripe-sharded codec kernels (smr
             only, default: available parallelism; committed bytes are
             identical at every count, 1 is fully serial)
  --lanes-pool  idle lane worker threads kept warm for reuse (smr only,
             default: available parallelism; pure wall-clock knob)
  --latency-model  per-link latency in virtual ticks (smr only); selecting one
             switches the run to the event-driven scheduling policy
  --topology clique (default) or clusters:<A,B,...> with sizes summing to n
             (smr only; wan latency needs a clusters topology)
  --partition  cut the network from virtual time START until HEAL; ISLAND is
             c<K> (cluster K) or a comma-separated node list; crossing
             messages are dropped (default) or delayed until HEAL (smr only;
             drop violates the synchronous model — expect degraded slots,
             delay preserves agreement by stretching rounds across the cut)
  --net-seed seed for latency jitter sampling (smr only, default 1)
  --max-vtime  abort if the virtual clock exceeds this tick budget (smr only)
  --report   write a structured RunReport JSON (latency percentiles, phase
             shares, hot nodes/links, outage windows, per-slot timeline) to
             FILE; enables telemetry for the run (smr only)

inspect takes a RunReport JSON (from smr --report) or a network trace CSV
(from consensus --trace) and prints per-slot timelines, per-node activity
and hot-link rankings.";

/// `Broadcast_Single_Bit` substrate selection (paper §4's seam).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BsbChoice {
    /// Source multicast + Phase-King (the default, error-free, t < n/3).
    PhaseKing,
    /// Source multicast + EIG (round-optimal, exponential bits).
    Eig,
    /// Authenticated Dolev-Strong under an idealised signature oracle.
    DolevStrong,
}

/// Consensus-side attack selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusAttack {
    /// All processors honest.
    None,
    /// One silent (crashed) processor.
    Silent,
    /// One processor corrupting symbols toward the highest-id processor.
    Corrupt,
    /// One randomized Byzantine processor.
    Random,
    /// The orchestrated worst-case diagnosis adversary (`t` colluders).
    WorstCase,
}

/// Replicated-log attack selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmrAttack {
    /// All replicas honest.
    None,
    /// One replica equivocates whenever it is primary.
    Equivocate,
    /// One replica never disperses when primary.
    Silent,
}

/// Broadcast-side attack selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastAttack {
    /// Honest run.
    None,
    /// The source equivocates during dispersal.
    Equivocate,
    /// The source never disperses.
    SilentSource,
    /// One echo-set member corrupts its relays.
    LyingEcho,
}

/// Parsed `--latency-model` value: per-link latency in virtual ticks
/// (the CLI-side mirror of [`mvbc_netsim::LinkModel`]; converted — and
/// validated against `n` — in `commands::smr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencySpec {
    /// `fixed:<t>`: every link takes exactly `t` ticks.
    Fixed(u64),
    /// `jitter:<base>:<jitter>`: `base` plus uniform jitter in `[0, jitter]`.
    Jitter {
        /// Base latency in ticks.
        base: u64,
        /// Uniform jitter bound in ticks.
        jitter: u64,
    },
    /// `wan:<intra>:<inter>[:<jitter>]`: cluster-dependent base latency
    /// (requires a `clusters` topology).
    Wan {
        /// Base latency inside a cluster.
        intra: u64,
        /// Base latency across clusters.
        inter: u64,
        /// Uniform jitter bound added to either base.
        jitter: u64,
    },
}

/// Parsed `--topology` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// `clique`: one flat site, every link equivalent.
    Clique,
    /// `clusters:<a,b,...>`: consecutive node ranges of the given sizes
    /// (they must sum to `n`; checked in `commands::smr`).
    Clusters(Vec<usize>),
}

/// The island selector of a `--partition` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IslandSpec {
    /// `c<k>`: every node of cluster `k` (requires a `clusters` topology).
    Cluster(usize),
    /// A comma-separated node-id list, e.g. `0,1,5`.
    Nodes(Vec<usize>),
}

/// Parsed `--partition <start>:<heal>:<island>[:drop|delay]`: the island
/// is cut off from the rest of the network for virtual times in
/// `[start, heal)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Virtual time at which the cut forms.
    pub start: u64,
    /// Virtual time at which the cut heals.
    pub heal: u64,
    /// Which nodes are cut off.
    pub island: IslandSpec,
    /// `true`: crossing messages are silently lost (`drop`, the default);
    /// `false`: they are delayed until `heal` (`delay`).
    pub drop: bool,
}

/// The event-driven network flags of an `smr` run, grouped. All `None`
/// (the default) keeps the legacy round-barrier scheduling policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSpec {
    /// `--latency-model`.
    pub latency: Option<LatencySpec>,
    /// `--topology`.
    pub topology: Option<TopologySpec>,
    /// `--partition`.
    pub partition: Option<PartitionSpec>,
    /// `--net-seed` (defaults to 1 when event-driven).
    pub net_seed: Option<u64>,
    /// `--max-vtime`.
    pub max_vtime: Option<u64>,
}

impl NetSpec {
    /// Whether any flag selecting event-driven scheduling was given.
    /// (`--max-vtime` alone also counts: a virtual-time budget under the
    /// round-barrier policy caps the round count.)
    pub fn is_event_driven(&self) -> bool {
        self.latency.is_some()
            || self.topology.is_some()
            || self.partition.is_some()
            || self.net_seed.is_some()
    }
}

fn parse_latency(s: &str) -> Result<LatencySpec, ParseError> {
    let num = |v: &str| {
        v.parse::<u64>()
            .map_err(|_| err(format!("--latency-model expects tick counts, got '{v}'")))
    };
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["fixed", t] => Ok(LatencySpec::Fixed(num(t)?)),
        ["jitter", b, j] => Ok(LatencySpec::Jitter { base: num(b)?, jitter: num(j)? }),
        ["wan", a, e] => Ok(LatencySpec::Wan { intra: num(a)?, inter: num(e)?, jitter: 0 }),
        ["wan", a, e, j] => Ok(LatencySpec::Wan { intra: num(a)?, inter: num(e)?, jitter: num(j)? }),
        _ => Err(err(format!(
            "--latency-model expects fixed:<t>, jitter:<base>:<jitter> or \
             wan:<intra>:<inter>[:<jitter>], got '{s}'"
        ))),
    }
}

fn parse_topology(s: &str) -> Result<TopologySpec, ParseError> {
    if s == "clique" {
        return Ok(TopologySpec::Clique);
    }
    let Some(sizes) = s.strip_prefix("clusters:") else {
        return Err(err(format!("--topology expects clique or clusters:<a,b,...>, got '{s}'")));
    };
    let sizes: Vec<usize> = sizes
        .split(',')
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| err(format!("--topology expects cluster sizes, got '{v}'")))
        })
        .collect::<Result<_, _>>()?;
    if sizes.is_empty() || sizes.contains(&0) {
        return Err(err("--topology clusters need at least one node each"));
    }
    Ok(TopologySpec::Clusters(sizes))
}

fn parse_partition(s: &str) -> Result<PartitionSpec, ParseError> {
    let bad = || {
        err(format!(
            "--partition expects <start>:<heal>:<island>[:drop|delay] with start < heal, got '{s}'"
        ))
    };
    let parts: Vec<&str> = s.split(':').collect();
    let (start, heal, island, mode) = match parts.as_slice() {
        [a, b, i] => (a, b, i, "drop"),
        [a, b, i, m] => (a, b, i, *m),
        _ => return Err(bad()),
    };
    let start: u64 = start.parse().map_err(|_| bad())?;
    let heal: u64 = heal.parse().map_err(|_| bad())?;
    if start >= heal {
        return Err(bad());
    }
    let island = match island.strip_prefix('c') {
        Some(k) if k.chars().all(|c| c.is_ascii_digit()) && !k.is_empty() => {
            IslandSpec::Cluster(k.parse().map_err(|_| bad())?)
        }
        _ => IslandSpec::Nodes(
            island
                .split(',')
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| err(format!("--partition island expects c<k> or node ids, got '{v}'")))
                })
                .collect::<Result<_, _>>()?,
        ),
    };
    let drop = match mode {
        "drop" => true,
        "delay" => false,
        other => return Err(err(format!("--partition mode is drop or delay, got '{other}'"))),
    };
    Ok(PartitionSpec { start, heal, island, drop })
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)] // constructed once per invocation; boxing CLI args buys nothing
pub enum Command {
    /// Run one consensus simulation.
    Consensus {
        /// Processors / tolerance / value bytes / explicit D.
        n: usize,
        /// Byzantine tolerance.
        t: usize,
        /// Value bytes.
        l: usize,
        /// Explicit generation bytes.
        d: Option<usize>,
        /// Workload seed.
        seed: u64,
        /// Injected behaviour.
        attack: ConsensusAttack,
        /// Give every processor a distinct input.
        differing: bool,
        /// `Broadcast_Single_Bit` substrate.
        bsb: BsbChoice,
        /// Write the network trace as CSV to this path.
        trace: Option<String>,
    },
    /// Run one broadcast simulation.
    Broadcast {
        /// Processors.
        n: usize,
        /// Byzantine tolerance.
        t: usize,
        /// Value bytes.
        l: usize,
        /// Explicit generation bytes.
        d: Option<usize>,
        /// Broadcasting processor.
        source: usize,
        /// Workload seed.
        seed: u64,
        /// Injected behaviour.
        attack: BroadcastAttack,
    },
    /// Run a replicated-log (state-machine replication) simulation.
    Smr {
        /// Replicas.
        n: usize,
        /// Byzantine tolerance.
        t: usize,
        /// Log slots.
        slots: usize,
        /// Max commands per slot batch.
        batch: usize,
        /// Byte budget per slot batch.
        batch_bytes: Option<usize>,
        /// Workload seed.
        seed: u64,
        /// Injected behaviour.
        attack: SmrAttack,
        /// The Byzantine replica (when an attack is selected).
        byz: usize,
        /// Pipeline depth: log slots in flight concurrently.
        pipeline: usize,
        /// Codec worker count for stripe-sharded kernels (`None` =
        /// machine default).
        codec_threads: Option<usize>,
        /// Lane-pool size: idle lane workers kept warm (`None` =
        /// machine default).
        lanes_pool: Option<usize>,
        /// Coordinator wedge-detection timeout in seconds.
        round_timeout_secs: Option<u64>,
        /// Event-driven network flags (latency model, topology,
        /// partitions, jitter seed, virtual-time budget).
        net: NetSpec,
        /// Write a telemetry `RunReport` JSON to this path.
        report: Option<String>,
    },
    /// Pretty-print a RunReport JSON or a trace CSV.
    Inspect {
        /// The artifact to load.
        path: String,
    },
    /// Adversary campaign soak over the replicated log: bounded-random
    /// scenarios drawn from a seeded generator (or one scenario replayed
    /// from JSON), each machine-checked against the paper's guarantees,
    /// with failing scenarios emitted as replayable JSON artifacts.
    SmrSoak {
        /// Number of generated scenarios.
        runs: usize,
        /// Campaign seed.
        seed: u64,
        /// Replay this scenario JSON instead of generating.
        scenario: Option<String>,
        /// Directory receiving failing-scenario artifacts.
        emit_failures: String,
    },
    /// Randomized soak: many consensus runs with random parameters,
    /// inputs and adversaries, asserting the paper's properties on each.
    Soak {
        /// Number of iterations.
        runs: usize,
        /// Base seed.
        seed: u64,
    },
    /// Print the analytic model for a parameter set.
    Info {
        /// Processors.
        n: usize,
        /// Byzantine tolerance.
        t: usize,
        /// Value bytes.
        l: usize,
    },
}

/// Parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

struct Flags<'a> {
    argv: &'a [String],
}

impl Flags<'_> {
    fn value_of(&self, flag: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    fn usize_of(&self, flag: &str) -> Result<Option<usize>, ParseError> {
        self.value_of(flag)
            .map(|v| v.parse::<usize>().map_err(|_| err(format!("{flag} expects a number, got '{v}'"))))
            .transpose()
    }

    fn required_usize(&self, flag: &str) -> Result<usize, ParseError> {
        self.usize_of(flag)?.ok_or_else(|| err(format!("missing required flag {flag}")))
    }

    fn has(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }
}

/// Parses the full argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = argv.first() else {
        return Err(err("missing subcommand"));
    };
    let flags = Flags { argv: &argv[1..] };
    if sub == "soak" {
        return Ok(Command::Soak {
            runs: flags.usize_of("--runs")?.unwrap_or(50),
            seed: flags.usize_of("--seed")?.unwrap_or(7) as u64,
        });
    }
    if sub == "smr" && argv.get(1).map(String::as_str) == Some("soak") {
        let flags = Flags { argv: &argv[2..] };
        return Ok(Command::SmrSoak {
            runs: flags.usize_of("--runs")?.unwrap_or(64),
            seed: flags.usize_of("--seed")?.unwrap_or(7) as u64,
            scenario: flags.value_of("--scenario").map(String::from),
            emit_failures: flags.value_of("--emit-failures").unwrap_or("results").to_owned(),
        });
    }
    if sub == "smr" {
        let n = flags.required_usize("--n")?;
        let pipeline = flags.usize_of("--pipeline")?.unwrap_or(1);
        if pipeline == 0 {
            return Err(err("--pipeline expects a depth of at least 1"));
        }
        let codec_threads = flags.usize_of("--codec-threads")?;
        if codec_threads == Some(0) {
            return Err(err("--codec-threads expects a worker count of at least 1"));
        }
        let lanes_pool = flags.usize_of("--lanes-pool")?;
        if lanes_pool == Some(0) {
            return Err(err("--lanes-pool expects a pool size of at least 1"));
        }
        return Ok(Command::Smr {
            n,
            t: flags.required_usize("--t")?,
            slots: flags.required_usize("--slots")?,
            batch: flags.usize_of("--batch")?.unwrap_or(8),
            batch_bytes: flags.usize_of("--batch-bytes")?,
            seed: flags.usize_of("--seed")?.unwrap_or(1) as u64,
            attack: match flags.value_of("--attack").unwrap_or("none") {
                "none" => SmrAttack::None,
                "equivocate" => SmrAttack::Equivocate,
                "silent" => SmrAttack::Silent,
                other => return Err(err(format!("unknown smr attack '{other}'"))),
            },
            byz: flags.usize_of("--byz")?.unwrap_or(n.saturating_sub(1)),
            pipeline,
            codec_threads,
            lanes_pool,
            round_timeout_secs: flags.usize_of("--round-timeout-secs")?.map(|s| s as u64),
            net: NetSpec {
                latency: flags.value_of("--latency-model").map(parse_latency).transpose()?,
                topology: flags.value_of("--topology").map(parse_topology).transpose()?,
                partition: flags.value_of("--partition").map(parse_partition).transpose()?,
                net_seed: flags.usize_of("--net-seed")?.map(|s| s as u64),
                max_vtime: flags.usize_of("--max-vtime")?.map(|v| v as u64),
            },
            report: flags.value_of("--report").map(String::from),
        });
    }
    if sub == "inspect" {
        let path = argv
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .ok_or_else(|| err("inspect expects a file path"))?;
        return Ok(Command::Inspect { path: path.clone() });
    }
    let n = flags.required_usize("--n")?;
    let t = flags.required_usize("--t")?;
    let l = flags.required_usize("--l")?;
    match sub.as_str() {
        "consensus" => Ok(Command::Consensus {
            n,
            t,
            l,
            d: flags.usize_of("--d")?,
            seed: flags.usize_of("--seed")?.unwrap_or(1) as u64,
            attack: match flags.value_of("--attack").unwrap_or("none") {
                "none" => ConsensusAttack::None,
                "silent" => ConsensusAttack::Silent,
                "corrupt" => ConsensusAttack::Corrupt,
                "random" => ConsensusAttack::Random,
                "worst-case" => ConsensusAttack::WorstCase,
                other => return Err(err(format!("unknown consensus attack '{other}'"))),
            },
            differing: flags.has("--differing"),
            bsb: match flags.value_of("--bsb").unwrap_or("phase-king") {
                "phase-king" | "king" => BsbChoice::PhaseKing,
                "eig" => BsbChoice::Eig,
                "dolev-strong" | "ds" => BsbChoice::DolevStrong,
                other => return Err(err(format!("unknown BSB substrate '{other}'"))),
            },
            trace: flags.value_of("--trace").map(String::from),
        }),
        "broadcast" => Ok(Command::Broadcast {
            n,
            t,
            l,
            d: flags.usize_of("--d")?,
            source: flags.usize_of("--source")?.unwrap_or(0),
            seed: flags.usize_of("--seed")?.unwrap_or(1) as u64,
            attack: match flags.value_of("--attack").unwrap_or("none") {
                "none" => BroadcastAttack::None,
                "equivocate" => BroadcastAttack::Equivocate,
                "silent-source" => BroadcastAttack::SilentSource,
                "lying-echo" => BroadcastAttack::LyingEcho,
                other => return Err(err(format!("unknown broadcast attack '{other}'"))),
            },
        }),
        "info" => Ok(Command::Info { n, t, l }),
        other => Err(err(format!("unknown subcommand '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_consensus_defaults() {
        let cmd = parse(&argv("consensus --n 4 --t 1 --l 64")).unwrap();
        assert_eq!(
            cmd,
            Command::Consensus {
                n: 4,
                t: 1,
                l: 64,
                d: None,
                seed: 1,
                attack: ConsensusAttack::None,
                differing: false,
                bsb: BsbChoice::PhaseKing,
                trace: None,
            }
        );
    }

    #[test]
    fn parses_all_consensus_flags() {
        let cmd = parse(&argv(
            "consensus --n 7 --t 2 --l 1024 --d 32 --seed 9 --attack worst-case --differing",
        ))
        .unwrap();
        match cmd {
            Command::Consensus { n, t, l, d, seed, attack, differing, bsb, trace } => {
                assert_eq!((n, t, l, d, seed), (7, 2, 1024, Some(32), 9));
                assert_eq!(trace, None);
                assert_eq!(attack, ConsensusAttack::WorstCase);
                assert!(differing);
                assert_eq!(bsb, BsbChoice::PhaseKing);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_broadcast() {
        let cmd = parse(&argv("broadcast --n 7 --t 2 --l 256 --source 3 --attack lying-echo")).unwrap();
        match cmd {
            Command::Broadcast { source, attack, .. } => {
                assert_eq!(source, 3);
                assert_eq!(attack, BroadcastAttack::LyingEcho);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_smr() {
        assert_eq!(
            parse(&argv("smr --n 4 --t 1 --slots 20")).unwrap(),
            Command::Smr {
                n: 4,
                t: 1,
                slots: 20,
                batch: 8,
                batch_bytes: None,
                seed: 1,
                attack: SmrAttack::None,
                byz: 3,
                pipeline: 1,
                codec_threads: None,
                lanes_pool: None,
                round_timeout_secs: None,
                net: NetSpec::default(),
                report: None,
            }
        );
        let cmd = parse(&argv(
            "smr --n 7 --t 2 --slots 100 --batch 16 --batch-bytes 90 --attack equivocate --byz 2 --seed 5",
        ))
        .unwrap();
        match cmd {
            Command::Smr { n, slots, batch, batch_bytes, attack, byz, seed, .. } => {
                assert_eq!((n, slots, batch, batch_bytes, seed), (7, 100, 16, Some(90), 5));
                assert_eq!(attack, SmrAttack::Equivocate);
                assert_eq!(byz, 2);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("smr --n 4 --t 1")).is_err()); // missing --slots
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --attack bogus")).is_err());
    }

    #[test]
    fn parses_smr_pipeline_and_timeout() {
        let cmd = parse(&argv(
            "smr --n 7 --t 2 --slots 100 --pipeline 4 --round-timeout-secs 300",
        ))
        .unwrap();
        match cmd {
            Command::Smr { pipeline, round_timeout_secs, .. } => {
                assert_eq!(pipeline, 4);
                assert_eq!(round_timeout_secs, Some(300));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --pipeline 0")).is_err());
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --pipeline x")).is_err());
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --round-timeout-secs x")).is_err());
    }

    #[test]
    fn parses_smr_perf_knobs() {
        let cmd = parse(&argv(
            "smr --n 7 --t 2 --slots 10 --codec-threads 4 --lanes-pool 8",
        ))
        .unwrap();
        match cmd {
            Command::Smr { codec_threads, lanes_pool, .. } => {
                assert_eq!(codec_threads, Some(4));
                assert_eq!(lanes_pool, Some(8));
            }
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            parse(&argv("smr --n 4 --t 1 --slots 5 --codec-threads 0")),
            Err(ParseError(
                "--codec-threads expects a worker count of at least 1".into()
            ))
        );
        assert_eq!(
            parse(&argv("smr --n 4 --t 1 --slots 5 --lanes-pool 0")),
            Err(ParseError(
                "--lanes-pool expects a pool size of at least 1".into()
            ))
        );
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --codec-threads x")).is_err());
    }

    #[test]
    fn parses_smr_net_flags() {
        let cmd = parse(&argv(
            "smr --n 9 --t 2 --slots 12 --latency-model wan:100:3000:200 \
             --topology clusters:3,3,3 --partition 5000:20000:c2:delay \
             --net-seed 11 --max-vtime 900000",
        ))
        .unwrap();
        match cmd {
            Command::Smr { net, .. } => {
                assert_eq!(net.latency, Some(LatencySpec::Wan { intra: 100, inter: 3000, jitter: 200 }));
                assert_eq!(net.topology, Some(TopologySpec::Clusters(vec![3, 3, 3])));
                assert_eq!(
                    net.partition,
                    Some(PartitionSpec {
                        start: 5000,
                        heal: 20000,
                        island: IslandSpec::Cluster(2),
                        drop: false,
                    })
                );
                assert_eq!(net.net_seed, Some(11));
                assert_eq!(net.max_vtime, Some(900_000));
                assert!(net.is_event_driven());
            }
            other => panic!("wrong command {other:?}"),
        }
        // The remaining latency forms, a node-list island, and the
        // default drop behaviour.
        assert_eq!(parse_latency("fixed:50"), Ok(LatencySpec::Fixed(50)));
        assert_eq!(parse_latency("jitter:10:5"), Ok(LatencySpec::Jitter { base: 10, jitter: 5 }));
        assert_eq!(parse_latency("wan:10:100"), Ok(LatencySpec::Wan { intra: 10, inter: 100, jitter: 0 }));
        assert_eq!(
            parse_partition("10:20:0,1,5"),
            Ok(PartitionSpec { start: 10, heal: 20, island: IslandSpec::Nodes(vec![0, 1, 5]), drop: true })
        );
        // --max-vtime alone keeps the round-barrier policy.
        match parse(&argv("smr --n 4 --t 1 --slots 5 --max-vtime 100")).unwrap() {
            Command::Smr { net, .. } => {
                assert!(!net.is_event_driven());
                assert_eq!(net.max_vtime, Some(100));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_net_flags() {
        assert!(parse_latency("fixed").is_err());
        assert!(parse_latency("warp:1:2").is_err());
        assert!(parse_latency("jitter:1:x").is_err());
        assert!(parse_topology("ring").is_err());
        assert!(parse_topology("clusters:").is_err());
        assert!(parse_topology("clusters:3,0,3").is_err());
        assert!(parse_partition("20:10:c0").is_err()); // start >= heal
        assert!(parse_partition("10:20:c0:teleport").is_err());
        assert!(parse_partition("10:20").is_err());
        assert!(parse_partition("10:20:cx").is_err());
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --latency-model bogus")).is_err());
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --topology bogus")).is_err());
        assert!(parse(&argv("smr --n 4 --t 1 --slots 5 --partition bogus")).is_err());
    }

    #[test]
    fn parses_smr_report_flag() {
        match parse(&argv("smr --n 4 --t 1 --slots 5 --report out.json")).unwrap() {
            Command::Smr { report, .. } => assert_eq!(report.as_deref(), Some("out.json")),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("smr --n 4 --t 1 --slots 5")).unwrap() {
            Command::Smr { report, .. } => assert_eq!(report, None),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_inspect() {
        assert_eq!(
            parse(&argv("inspect results/report.json")).unwrap(),
            Command::Inspect { path: "results/report.json".into() }
        );
        assert!(parse(&argv("inspect")).is_err());
        assert!(parse(&argv("inspect --n")).is_err());
    }

    #[test]
    fn parses_smr_soak() {
        assert_eq!(
            parse(&argv("smr soak")).unwrap(),
            Command::SmrSoak {
                runs: 64,
                seed: 7,
                scenario: None,
                emit_failures: "results".into(),
            }
        );
        assert_eq!(
            parse(&argv("smr soak --runs 8 --seed 3 --emit-failures /tmp/f")).unwrap(),
            Command::SmrSoak { runs: 8, seed: 3, scenario: None, emit_failures: "/tmp/f".into() }
        );
        match parse(&argv("smr soak --scenario bad.json")).unwrap() {
            Command::SmrSoak { scenario, .. } => assert_eq!(scenario.as_deref(), Some("bad.json")),
            other => panic!("wrong command {other:?}"),
        }
        // A regular smr run still parses (and still demands its flags).
        assert!(matches!(parse(&argv("smr --n 4 --t 1 --slots 5")).unwrap(), Command::Smr { .. }));
        assert!(parse(&argv("smr")).is_err());
    }

    #[test]
    fn parses_soak() {
        assert_eq!(parse(&argv("soak")).unwrap(), Command::Soak { runs: 50, seed: 7 });
        assert_eq!(
            parse(&argv("soak --runs 9 --seed 3")).unwrap(),
            Command::Soak { runs: 9, seed: 3 }
        );
    }

    #[test]
    fn parses_info() {
        assert_eq!(
            parse(&argv("info --n 4 --t 1 --l 8")).unwrap(),
            Command::Info { n: 4, t: 1, l: 8 }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("frobnicate --n 4 --t 1 --l 8")).is_err());
        assert!(parse(&argv("consensus --n 4 --t 1")).is_err()); // missing --l
        assert!(parse(&argv("consensus --n x --t 1 --l 8")).is_err());
        assert!(parse(&argv("consensus --n 4 --t 1 --l 8 --attack bogus")).is_err());
        assert!(parse(&argv("consensus --n 4 --t 1 --l 8 --bsb bogus")).is_err());
    }

    #[test]
    fn parses_trace_path() {
        let cmd = parse(&argv("consensus --n 4 --t 1 --l 8 --trace /tmp/t.csv")).unwrap();
        match cmd {
            Command::Consensus { trace, .. } => assert_eq!(trace.as_deref(), Some("/tmp/t.csv")),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_bsb_substrates() {
        for (flag, want) in [
            ("phase-king", BsbChoice::PhaseKing),
            ("king", BsbChoice::PhaseKing),
            ("eig", BsbChoice::Eig),
            ("dolev-strong", BsbChoice::DolevStrong),
            ("ds", BsbChoice::DolevStrong),
        ] {
            let cmd = parse(&argv(&format!("consensus --n 4 --t 1 --l 8 --bsb {flag}"))).unwrap();
            match cmd {
                Command::Consensus { bsb, .. } => assert_eq!(bsb, want, "{flag}"),
                other => panic!("wrong command {other:?}"),
            }
        }
    }
}
