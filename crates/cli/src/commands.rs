//! Command execution: run the simulations and print human-oriented
//! summaries.

use mvbc_adversary::campaign::{run_scenario, CampaignReport, CampaignRunner, Scenario};
use mvbc_adversary::{CorruptSymbolTo, RandomAdversary, Silent, WorstCaseDiagnosis};
use mvbc_bsb::{BsbDriver, DolevStrongDriver, EigDriver, PhaseKingDriver};
use mvbc_broadcast::attacks::{
    EquivocatingSource, FalseDetector, FramingEcho, LyingDiagnosisSource, LyingEcho, SilentEcho,
    SilentSource,
};
use mvbc_broadcast::{simulate_broadcast, BroadcastConfig, BroadcastHooks, NoopBroadcastHooks};
use mvbc_core::{dsel, simulate_consensus_traced, ConsensusConfig, NoopHooks, ProtocolHooks};
use mvbc_netsim::trace::TraceSink;
use mvbc_netsim::{LinkModel, NetModel, Partition, PartitionBehavior, SchedulingPolicy, Topology};
use mvbc_metrics::MetricsSink;
use mvbc_smr::{
    simulate_smr, synthetic_workloads, EquivocatingPrimary, HonestReplica, RunReport,
    SilentPrimary, SmrConfig, SmrHooks,
};

use crate::args::{
    BroadcastAttack, BsbChoice, Command, ConsensusAttack, IslandSpec, LatencySpec, NetSpec,
    SmrAttack, TopologySpec,
};

fn workload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// Executes a parsed command.
pub fn run(cmd: Command) {
    match cmd {
        Command::Consensus { n, t, l, d, seed, attack, differing, bsb, trace } => {
            consensus(n, t, l, d, seed, attack, differing, bsb, trace)
        }
        Command::Broadcast { n, t, l, d, source, seed, attack } => {
            broadcast(n, t, l, d, source, seed, attack)
        }
        Command::Smr {
            n,
            t,
            slots,
            batch,
            batch_bytes,
            seed,
            attack,
            byz,
            pipeline,
            codec_threads,
            lanes_pool,
            round_timeout_secs,
            net,
            report,
        } => smr(
            n, t, slots, batch, batch_bytes, seed, attack, byz, pipeline, codec_threads,
            lanes_pool, round_timeout_secs, net, report,
        ),
        Command::Inspect { path } => inspect(&path),
        Command::Info { n, t, l } => info(n, t, l),
        Command::Soak { runs, seed } => soak(runs, seed),
        Command::SmrSoak { runs, seed, scenario, emit_failures } => {
            smr_soak(runs, seed, scenario, &emit_failures)
        }
    }
}

/// Small deterministic PRNG for soak parameter draws (xorshift64*).
struct SoakRng(u64);

impl SoakRng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn soak(runs: usize, seed: u64) {
    use mvbc_adversary::{
        CorruptSymbolTo, EquivocateSymbol, FalseDetect, LieMVector, RandomAdversary,
        ShiftedInput, Silent, Sleeper,
    };

    let mut rng = SoakRng(seed | 1);
    let mut diagnosed_runs = 0usize;
    for run_idx in 0..runs {
        let (n, t) = [(4usize, 1usize), (7, 2), (10, 3)][rng.below(3)];
        let l = 8 + rng.below(120);
        let cfg = ConsensusConfig::new(n, t, l).expect("soak draws valid parameters");
        let value = workload(l, rng.next());
        let faulty = rng.below(n);
        let hooks: Vec<Box<dyn ProtocolHooks>> = (0..n)
            .map(|i| {
                if i != faulty {
                    return NoopHooks::boxed();
                }
                let strategy: Box<dyn ProtocolHooks> = match rng.below(8) {
                    0 => Box::new(Silent),
                    1 => Box::new(CorruptSymbolTo::new(vec![(faulty + 1) % n])),
                    2 => Box::new(EquivocateSymbol),
                    3 => Box::new(FalseDetect),
                    4 => Box::new(LieMVector { claim: true }),
                    5 => Box::new(ShiftedInput),
                    6 => Box::new(Sleeper::new(1 + rng.below(3), EquivocateSymbol)),
                    _ => Box::new(RandomAdversary::new(rng.next(), 0.35)),
                };
                strategy
            })
            .collect();
        let run = simulate_consensus_traced(
            &cfg,
            vec![value.clone(); n],
            hooks,
            bsb_fleet(BsbChoice::PhaseKing, n),
            MetricsSink::new(),
            TraceSink::new(),
        );
        let honest: Vec<usize> = (0..n).filter(|&i| i != faulty).collect();
        for &h in &honest {
            assert_eq!(
                run.outputs[h], value,
                "soak run {run_idx}: node {h} violated validity (n={n}, t={t}, l={l})"
            );
            assert!(run.reports[h].diagnosis_invocations <= (t * (t + 1)) as u64);
            assert!(run.reports[h].isolated.iter().all(|&i| i == faulty));
        }
        if run.reports[honest[0]].diagnosis_invocations > 0 {
            diagnosed_runs += 1;
        }

        // Paired broadcast draw: one single-shot broadcast execution under
        // a random broadcast-layer attack, asserting the per-execution
        // t(t+2) dispute budget alongside the consensus t(t+1) above.
        let bl = 8 + rng.below(64);
        let source = rng.below(n);
        let bfaulty = rng.below(n);
        let bcfg = mvbc_broadcast::BroadcastConfig::new(n, t, source, bl)
            .expect("soak draws valid broadcast parameters");
        let bvalue = workload(bl, rng.next());
        let bhooks: Vec<Box<dyn BroadcastHooks>> = (0..n)
            .map(|i| -> Box<dyn BroadcastHooks> {
                if i != bfaulty {
                    return NoopBroadcastHooks::boxed();
                }
                if i == source {
                    match rng.below(3) {
                        0 => Box::new(EquivocatingSource),
                        1 => Box::new(SilentSource),
                        _ => Box::new(LyingDiagnosisSource),
                    }
                } else {
                    match rng.below(4) {
                        0 => Box::new(LyingEcho::new(vec![(bfaulty + 1) % n])),
                        1 => Box::new(SilentEcho),
                        2 => Box::new(FramingEcho),
                        _ => Box::new(FalseDetector),
                    }
                }
            })
            .collect();
        let brun = simulate_broadcast(&bcfg, bvalue.clone(), bhooks, MetricsSink::new());
        let bhonest: Vec<usize> = (0..n).filter(|&i| i != bfaulty).collect();
        for w in bhonest.windows(2) {
            assert_eq!(
                brun.outputs[w[0]], brun.outputs[w[1]],
                "soak run {run_idx}: broadcast agreement violated (n={n}, t={t}, source={source})"
            );
        }
        if source != bfaulty {
            assert_eq!(
                brun.outputs[bhonest[0]], bvalue,
                "soak run {run_idx}: broadcast validity violated (n={n}, t={t}, source={source})"
            );
        }
        for &h in &bhonest {
            assert!(
                brun.reports[h].diagnosis_invocations <= (t * (t + 2)) as u64,
                "soak run {run_idx}: broadcast dispute budget t(t+2) exceeded \
                 ({} > {}, n={n}, t={t})",
                brun.reports[h].diagnosis_invocations,
                t * (t + 2),
            );
            assert!(brun.reports[h].isolated.iter().all(|&i| i == bfaulty));
        }
    }
    println!(
        "soak: {runs} randomized consensus+broadcast run pairs OK ({diagnosed_runs} reached the \
         diagnosis stage); validity, consistency, the consensus t(t+1) and broadcast t(t+2) \
         dispute budgets and isolation safety held on every run"
    );
}

/// The adversary-campaign soak: generated (or replayed) scenarios,
/// each machine-checked; failing scenarios are emitted as replayable
/// JSON artifacts and fail the process.
fn smr_soak(runs: usize, seed: u64, scenario_path: Option<String>, emit_failures: &str) {
    if let Some(path) = scenario_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("smr soak: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let scenario = Scenario::from_json(&text).unwrap_or_else(|e| {
            eprintln!("smr soak: {path} is not a valid scenario: {e}");
            std::process::exit(2);
        });
        let outcome = run_scenario(&scenario).unwrap_or_else(|e| {
            eprintln!("smr soak: scenario {path} failed to run: {e}");
            std::process::exit(2);
        });
        println!(
            "replay {}: n = {}, t = {}, {} slot(s), pipeline depth {}, {} corruption(s), {}",
            scenario.name,
            scenario.n,
            scenario.t,
            scenario.slots,
            scenario.pipeline,
            scenario.corruptions.len(),
            if scenario.net.is_some() { "event-driven" } else { "round-barrier" },
        );
        if !scenario.is_model_preserving() {
            println!(
                "note: the scenario leaves the error-free model (more than t corruptions \
                 or drop partitions) — violations are expected, not protocol bugs"
            );
        }
        println!(
            "log digest {:016x}, trace digest {:016x}; {} command(s) committed, \
             {} fallback slot(s), {} diagnosis invocation(s) (budget t(t+2) = {})",
            outcome.log_digest,
            outcome.trace_digest,
            outcome.committed_commands,
            outcome.fallback_slots,
            outcome.diagnosis_total,
            scenario.t * (scenario.t + 2),
        );
        if outcome.violations.is_empty() {
            println!("replay: every invariant held");
        } else {
            for v in &outcome.violations {
                println!("VIOLATION [{}] {}", v.check, v.detail);
            }
            std::process::exit(1);
        }
        return;
    }

    let mut runner = CampaignRunner::new(seed);
    let mut report = CampaignReport::new();
    let mut artifacts: Vec<String> = Vec::new();
    for _ in 0..runs {
        let run = runner.next_run();
        report.absorb(&run);
        if run.outcome.violations.is_empty() {
            continue;
        }
        for v in &run.outcome.violations {
            println!("{}: VIOLATION [{}] {}", run.scenario.name, v.check, v.detail);
        }
        if let Err(e) = std::fs::create_dir_all(emit_failures) {
            eprintln!("smr soak: cannot create {emit_failures}: {e}");
        }
        let path = format!("{emit_failures}/{}.json", run.scenario.name);
        match std::fs::write(&path, run.scenario.to_json() + "\n") {
            Ok(()) => artifacts.push(path),
            Err(e) => eprintln!("smr soak: cannot write {path}: {e}"),
        }
    }
    let mix: Vec<String> =
        report.behavior_mix.iter().map(|(k, v)| format!("{k} x{v}")).collect();
    println!(
        "smr soak: {} campaign scenario(s) from seed {seed}; {} slot(s), {} command(s) \
         committed, {} diagnosis invocation(s), worst commit vtime {} tick(s)",
        report.scenarios,
        report.total_slots,
        report.total_commands,
        report.total_diagnosis,
        report.worst_commit_vtime,
    );
    println!("behavior mix: {}", mix.join(", "));
    if report.failed.is_empty() {
        println!(
            "agreement, validity, prefix consistency, sequential equivalence, isolation \
             safety and the t(t+2) dispute budget held on every scenario"
        );
    } else {
        println!(
            "{} scenario(s) violated invariants ({} violation(s) total):",
            report.failed.len(),
            report.violations,
        );
        for path in &artifacts {
            println!("  replay with: mvbc smr soak --scenario {path}");
        }
        std::process::exit(1);
    }
}

fn bsb_fleet(choice: BsbChoice, n: usize) -> Vec<Box<dyn BsbDriver>> {
    match choice {
        BsbChoice::PhaseKing => {
            (0..n).map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>).collect()
        }
        BsbChoice::Eig => (0..n).map(|_| Box::new(EigDriver) as Box<dyn BsbDriver>).collect(),
        BsbChoice::DolevStrong => DolevStrongDriver::fleet(n)
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn BsbDriver>)
            .collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn consensus(
    n: usize,
    t: usize,
    l: usize,
    d: Option<usize>,
    seed: u64,
    attack: ConsensusAttack,
    differing: bool,
    bsb: BsbChoice,
    trace_path: Option<String>,
) {
    let cfg = match d {
        Some(d) => ConsensusConfig::with_gen_bytes(n, t, l, d),
        None => ConsensusConfig::new(n, t, l),
    }
    .unwrap_or_else(|e| {
        eprintln!("invalid parameters: {e}");
        std::process::exit(2);
    });

    let inputs: Vec<Vec<u8>> = (0..n)
        .map(|i| workload(l, seed.wrapping_add(if differing { i as u64 } else { 0 })))
        .collect();
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = (0..n).map(|_| NoopHooks::boxed()).collect();
    let mut faulty: Vec<usize> = Vec::new();
    match attack {
        ConsensusAttack::None => {}
        ConsensusAttack::Silent => {
            hooks[n - 1] = Box::new(Silent);
            faulty.push(n - 1);
        }
        ConsensusAttack::Corrupt => {
            hooks[0] = Box::new(CorruptSymbolTo::new(vec![n - 1]));
            faulty.push(0);
        }
        ConsensusAttack::Random => {
            hooks[n - 1] = Box::new(RandomAdversary::new(seed, 0.35));
            faulty.push(n - 1);
        }
        ConsensusAttack::WorstCase => {
            let team: Vec<usize> = (0..t.max(1)).collect();
            for &f in &team {
                hooks[f] = Box::new(WorstCaseDiagnosis::new(team.clone()));
            }
            faulty = team;
        }
    }

    let metrics = MetricsSink::new();
    let trace = TraceSink::new();
    let run = simulate_consensus_traced(
        &cfg,
        inputs.clone(),
        hooks,
        bsb_fleet(bsb, n),
        metrics.clone(),
        trace.clone(),
    );
    if let Some(path) = &trace_path {
        match std::fs::write(path, trace.to_csv()) {
            Ok(()) => println!("trace: {} deliveries written to {path}", trace.len()),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
    }

    println!(
        "consensus: n = {n}, t = {t}, L = {l} bytes, D = {} bytes, {} generation(s), BSB = {bsb:?}",
        cfg.resolved_gen_bytes(),
        cfg.generations()
    );
    println!("attack: {attack:?}; Byzantine processors: {faulty:?}");
    let honest: Vec<usize> = (0..n).filter(|i| !faulty.contains(i)).collect();
    let agreed = honest.windows(2).all(|w| run.outputs[w[0]] == run.outputs[w[1]]);
    println!("fault-free agreement: {}", if agreed { "YES" } else { "NO (BUG!)" });
    let decided = &run.outputs[honest[0]];
    if *decided == inputs[honest[0]] && !differing {
        println!("decision: the common input (validity holds)");
    } else if *decided == cfg.default_value() {
        println!("decision: the default value (inputs provably differed)");
    } else {
        println!("decision: {} bytes (first 8: {:02x?})", decided.len(), &decided[..decided.len().min(8)]);
    }
    let report = &run.reports[honest[0]];
    println!(
        "diagnosis stages: {} (Theorem 1 bound: {}); isolated: {:?}",
        report.diagnosis_invocations,
        t * (t + 1),
        report.isolated
    );
    let snap = metrics.snapshot();
    println!(
        "communication: {} bits over {} rounds ({:.2} bits per value bit; Eq. (3) coefficient {:.2})",
        snap.total_logical_bits(),
        snap.rounds(),
        snap.total_logical_bits() as f64 / (l * 8) as f64,
        dsel::linear_coefficient(n, t),
    );
    println!("\nper-stage breakdown:\n{}", snap.to_markdown());
}

fn broadcast(
    n: usize,
    t: usize,
    l: usize,
    d: Option<usize>,
    source: usize,
    seed: u64,
    attack: BroadcastAttack,
) {
    let cfg = match d {
        Some(d) => BroadcastConfig::with_gen_bytes(n, t, source, l, d),
        None => BroadcastConfig::new(n, t, source, l),
    }
    .unwrap_or_else(|e| {
        eprintln!("invalid parameters: {e}");
        std::process::exit(2);
    });

    let value = workload(l, seed);
    let mut hooks: Vec<Box<dyn BroadcastHooks>> =
        (0..n).map(|_| NoopBroadcastHooks::boxed()).collect();
    let mut faulty: Vec<usize> = Vec::new();
    match attack {
        BroadcastAttack::None => {}
        BroadcastAttack::Equivocate => {
            hooks[source] = Box::new(EquivocatingSource);
            faulty.push(source);
        }
        BroadcastAttack::SilentSource => {
            hooks[source] = Box::new(SilentSource);
            faulty.push(source);
        }
        BroadcastAttack::LyingEcho => {
            let echo = (source + 1) % n;
            hooks[echo] = Box::new(LyingEcho::new(vec![(source + 2) % n]));
            faulty.push(echo);
        }
    }

    let metrics = MetricsSink::new();
    let run = simulate_broadcast(&cfg, value.clone(), hooks, metrics.clone());

    println!(
        "broadcast: n = {n}, t = {t}, source = {source}, L = {l} bytes, {} generation(s)",
        cfg.generations()
    );
    println!("attack: {attack:?}; Byzantine processors: {faulty:?}");
    let honest: Vec<usize> = (0..n).filter(|i| !faulty.contains(i)).collect();
    let agreed = honest.windows(2).all(|w| run.outputs[w[0]] == run.outputs[w[1]]);
    println!("fault-free agreement: {}", if agreed { "YES" } else { "NO (BUG!)" });
    if !faulty.contains(&source) {
        println!(
            "validity (delivered == source input): {}",
            if run.outputs[honest[0]] == value { "YES" } else { "NO (BUG!)" }
        );
    }
    let snap = metrics.snapshot();
    println!(
        "communication: {} bits = {:.2} x (n-1)L over {} rounds; diagnosis stages: {}",
        snap.total_logical_bits(),
        snap.total_logical_bits() as f64 / ((n - 1) * l * 8) as f64,
        snap.rounds(),
        run.reports[honest[0]].diagnosis_invocations,
    );
}

/// Converts the CLI's [`NetSpec`] into a [`SchedulingPolicy`], exiting
/// with a friendly message when the flags are inconsistent with `n`
/// (cluster sizes that don't sum to `n`, a `c<k>` island without a
/// clusters topology, out-of-range partition node ids, or wan latency on
/// a clique).
fn build_policy(n: usize, net: &NetSpec) -> SchedulingPolicy {
    if !net.is_event_driven() {
        return SchedulingPolicy::RoundBarrier;
    }
    let invalid = |msg: String| -> ! {
        eprintln!("invalid network flags: {msg}");
        std::process::exit(2);
    };
    let topology = match &net.topology {
        None | Some(TopologySpec::Clique) => Topology::Clique,
        Some(TopologySpec::Clusters(sizes)) => {
            if sizes.iter().sum::<usize>() != n {
                invalid(format!("cluster sizes {sizes:?} must sum to n = {n}"));
            }
            Topology::Clusters(sizes.clone())
        }
    };
    let link = match net.latency.unwrap_or(LatencySpec::Fixed(1)) {
        LatencySpec::Fixed(t) => LinkModel::Fixed(t),
        LatencySpec::Jitter { base, jitter } => LinkModel::UniformJitter { base, jitter },
        LatencySpec::Wan { intra, inter, jitter } => {
            if matches!(topology, Topology::Clique) {
                invalid("the wan latency model needs --topology clusters:<a,b,...>".into());
            }
            LinkModel::Wan { intra, inter, jitter }
        }
    };
    let mut model = NetModel::new(link, topology).with_seed(net.net_seed.unwrap_or(1));
    if let Some(p) = &net.partition {
        let behavior = if p.drop { PartitionBehavior::Drop } else { PartitionBehavior::Delay };
        let partition = match &p.island {
            IslandSpec::Cluster(c) => {
                let Topology::Clusters(sizes) = &model.topology else {
                    invalid(format!("island c{c} needs --topology clusters:<a,b,...>"));
                };
                if *c >= sizes.len() {
                    invalid(format!("island c{c} is out of range ({} cluster(s))", sizes.len()));
                }
                Partition::of_cluster(&model.topology, *c, p.start, p.heal, behavior)
            }
            IslandSpec::Nodes(ids) => {
                if let Some(bad) = ids.iter().find(|id| **id >= n) {
                    invalid(format!("partition node id {bad} is out of range (n = {n})"));
                }
                Partition { start: p.start, heal: p.heal, island: ids.clone(), behavior }
            }
        };
        model = model.with_partition(partition);
    }
    SchedulingPolicy::EventDriven(model)
}

#[allow(clippy::too_many_arguments)]
fn smr(
    n: usize,
    t: usize,
    slots: usize,
    batch: usize,
    batch_bytes: Option<usize>,
    seed: u64,
    attack: SmrAttack,
    byz: usize,
    pipeline: usize,
    codec_threads: Option<usize>,
    lanes_pool: Option<usize>,
    round_timeout_secs: Option<u64>,
    net: NetSpec,
    report_path: Option<String>,
) {
    let policy = build_policy(n, &net);
    let mut cfg = match batch_bytes {
        Some(b) => SmrConfig::with_batch_bytes(n, t, slots, batch, b),
        None => SmrConfig::new(n, t, slots, batch),
    }
    .unwrap_or_else(|e| {
        eprintln!("invalid parameters: {e}");
        std::process::exit(2);
    })
    .with_pipeline(pipeline.max(1))
    .with_policy(policy.clone());
    if let Some(limit) = net.max_vtime {
        cfg = cfg.with_max_vtime(limit);
    }
    // Zero is rejected at the flag-parsing layer; these only pin
    // explicit overrides (None keeps the machine defaults).
    if let Some(threads) = codec_threads {
        cfg = cfg.with_codec_threads(threads);
    }
    if let Some(pool) = lanes_pool {
        cfg = cfg.with_lanes_pool(pool);
    }
    cfg.round_timeout = round_timeout_secs.map(std::time::Duration::from_secs);
    if byz >= n {
        eprintln!("invalid parameters: --byz {byz} is out of range");
        std::process::exit(2);
    }

    // Deterministic per-replica client streams: replica i proposes keys
    // from its own range on its primary turns.
    let per_replica = slots.div_ceil(n) * cfg.batch_capacity();
    let workloads = synthetic_workloads(n, per_replica, seed);

    let hooks: Vec<Box<dyn SmrHooks>> = (0..n)
        .map(|i| -> Box<dyn SmrHooks> {
            if i != byz {
                return HonestReplica::boxed();
            }
            match attack {
                SmrAttack::None => HonestReplica::boxed(),
                SmrAttack::Equivocate => Box::new(EquivocatingPrimary::default()),
                SmrAttack::Silent => Box::new(SilentPrimary),
            }
        })
        .collect();
    let faulty: Vec<usize> = match attack {
        SmrAttack::None => Vec::new(),
        _ => vec![byz],
    };

    // Telemetry (phase spans, latency histograms, link accounting) is
    // only worth recording when a report will be written.
    let metrics =
        if report_path.is_some() { MetricsSink::with_telemetry() } else { MetricsSink::new() };
    let run = simulate_smr(&cfg, workloads, hooks, metrics.clone());
    if let Some(path) = &report_path {
        let report = RunReport::build(&cfg, &run, &metrics);
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("report: run report written to {path}"),
            Err(e) => eprintln!("report: failed to write {path}: {e}"),
        }
    }

    println!(
        "smr: n = {n}, t = {t}, {slots} slot(s), batch = {} command(s) ({} bytes/slot, D = {} bytes), pipeline depth {}",
        cfg.batch_capacity(),
        cfg.slot_bytes(),
        cfg.resolved_gen_bytes(),
        cfg.pipeline,
    );
    println!("attack: {attack:?}; Byzantine replicas: {faulty:?}");
    if let SchedulingPolicy::EventDriven(model) = &policy {
        println!(
            "scheduling: event-driven ({:?} over {:?}, {} partition(s), jitter seed {})",
            model.link,
            model.topology,
            model.partitions.len(),
            model.seed,
        );
    }
    let honest: Vec<usize> = (0..n).filter(|i| !faulty.contains(i)).collect();
    let agreed = honest
        .windows(2)
        .all(|w| run.reports[w[0]].agreed_log() == run.reports[w[1]].agreed_log());
    println!("fault-free log agreement: {}", if agreed { "YES" } else { "NO (BUG!)" });
    let state_ok = honest.windows(2).all(|w| run.stores[w[0]] == run.stores[w[1]]);
    println!("fault-free state agreement: {}", if state_ok { "YES" } else { "NO (BUG!)" });
    let r = &run.reports[honest[0]];
    println!(
        "committed: {} command(s) over {} slot(s); fallback slots: {}; state digest: {:016x}",
        r.committed_commands,
        r.slots.len(),
        r.fallback_slots,
        r.digest,
    );
    println!("suspects (out of rotation): {:?}; isolated: {:?}", r.suspects, r.isolated);
    if cfg.pipeline > 1 {
        println!(
            "pipelining: {} slot attempt(s) discarded by dispute-state changes (committed log is identical to a sequential run)",
            r.restarts,
        );
    }
    let snap = metrics.snapshot();
    let bits = snap.total_logical_bits();
    println!(
        "communication: {} bits over {} rounds ({:.1} bits/command, {:.2} rounds/slot)",
        bits,
        snap.rounds(),
        bits as f64 / r.committed_commands.max(1) as f64,
        snap.rounds() as f64 / r.slots.len().max(1) as f64,
    );
    println!(
        "virtual time: {} tick(s) ({:.1} ticks/slot) under the {} policy",
        run.vtime,
        run.vtime as f64 / r.slots.len().max(1) as f64,
        policy.name(),
    );
    for s in r.slots.iter().take(8) {
        println!(
            "  slot {:>3}: primary {} -> {} command(s){}{}",
            s.slot,
            s.primary,
            s.committed.len(),
            if s.diagnosis_ran { ", diagnosis ran" } else { "" },
            if s.fallback { ", FELL BACK" } else { "" },
        );
    }
    if r.slots.len() > 8 {
        println!("  ... ({} more slots)", r.slots.len() - 8);
    }
}

/// Pretty-prints a `RunReport` JSON (from `smr --report`) or a network
/// trace CSV (from `consensus --trace`).
fn inspect(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("inspect: cannot read {path}: {e}");
        std::process::exit(2);
    });
    if text.trim_start().starts_with("round,from,to") {
        inspect_trace_csv(path, &text);
        return;
    }
    match RunReport::from_json(&text) {
        Ok(report) => inspect_report(path, &report),
        Err(e) => {
            eprintln!("inspect: {path} is neither a run report nor a trace CSV: {e}");
            std::process::exit(2);
        }
    }
}

fn inspect_report(path: &str, r: &RunReport) {
    println!(
        "run report {path}: n = {}, t = {}, {} slot(s), batch = {}, pipeline depth {}, {} policy",
        r.n, r.t, r.slots, r.batch_commands, r.pipeline, r.policy,
    );
    println!(
        "committed: {} command(s) over {} round(s), final virtual time {} ({} fallback slot(s))",
        r.committed_commands, r.rounds, r.final_vtime, r.fallback_slots,
    );
    println!(
        "commit vtime (ticks): p50 {} / p90 {} / p99 {} / max {} over {} commit(s)",
        r.commit_vtime.p50, r.commit_vtime.p90, r.commit_vtime.p99, r.commit_vtime.max,
        r.commit_vtime.count,
    );
    println!(
        "commit gap   (ticks): p50 {} / p90 {} / p99 {} / max {}",
        r.commit_gap.p50, r.commit_gap.p90, r.commit_gap.p99, r.commit_gap.max,
    );
    if !r.phases.is_empty() {
        println!("\nphase shares (virtual time):");
        for p in &r.phases {
            let bar = "#".repeat((p.share_pct / 2.0).round() as usize);
            println!("  {:>10}  {:>6.2}%  {:>12} tick(s)  {bar}", p.phase, p.share_pct, p.vtime);
        }
    }
    if !r.timeline.is_empty() {
        println!("\nper-slot timeline:");
        println!("  slot  primary  commit_vtime  commands  rounds");
        for s in &r.timeline {
            println!(
                "  {:>4}  {:>7}  {:>12}  {:>8}  {:>6}{}",
                s.slot, s.primary, s.commit_vtime, s.commands, s.rounds,
                if s.fallback { "  FELL BACK" } else { "" },
            );
        }
    }
    if !r.nodes.is_empty() {
        println!("\ntop nodes by logical bits sent:");
        println!("  node  messages  logical_bits  payload_bytes");
        for n in &r.nodes {
            println!(
                "  {:>4}  {:>8}  {:>12}  {:>13}",
                n.node, n.messages, n.logical_bits, n.payload_bytes
            );
        }
    }
    if !r.links.is_empty() {
        println!("\nhot links by cumulative delivery delay:");
        println!("  link     messages  payload_bytes  total_delay  mean_delay");
        for l in &r.links {
            println!(
                "  {:>2}->{:<2}   {:>8}  {:>13}  {:>11}  {:>10.2}",
                l.from, l.to, l.messages, l.payload_bytes, l.total_delay, l.mean_delay
            );
        }
    }
    if r.queue_high_water > 0 {
        println!("\ndelivery-queue high-water mark: {} message(s)", r.queue_high_water);
    }
    for o in &r.outages {
        println!(
            "outage [{}, {}): {} crossing message(s) {}",
            o.start,
            o.heal,
            o.dropped + o.delayed,
            if o.behavior == "drop" { "dropped" } else { "delayed until heal" },
        );
    }
}

fn inspect_trace_csv(path: &str, text: &str) {
    // Aggregate the delivery log (round,from,to,tag,logical_bits,
    // payload_bytes,vtime) by sender and by link.
    let mut by_node: std::collections::BTreeMap<usize, (u64, u64, u64)> = Default::default();
    let mut by_link: std::collections::BTreeMap<(usize, usize), (u64, u64)> = Default::default();
    let mut rounds = 0u64;
    let mut deliveries = 0u64;
    for line in text.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 6 {
            continue;
        }
        let (Ok(round), Ok(from), Ok(to), Ok(bits), Ok(bytes)) = (
            cells[0].parse::<u64>(),
            cells[1].parse::<usize>(),
            cells[2].parse::<usize>(),
            cells[4].parse::<u64>(),
            cells[5].parse::<u64>(),
        ) else {
            continue;
        };
        rounds = rounds.max(round + 1);
        deliveries += 1;
        let node = by_node.entry(from).or_default();
        node.0 += 1;
        node.1 += bits;
        node.2 += bytes;
        let link = by_link.entry((from, to)).or_default();
        link.0 += 1;
        link.1 += bytes;
    }
    println!("trace {path}: {deliveries} delivery(ies) over {rounds} round(s)");
    println!("\nper-node activity (by sender):");
    println!("  node  messages  logical_bits  payload_bytes");
    for (node, (msgs, bits, bytes)) in &by_node {
        println!("  {node:>4}  {msgs:>8}  {bits:>12}  {bytes:>13}");
    }
    let mut links: Vec<_> = by_link.into_iter().collect();
    links.sort_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
    println!("\nhot links by messages:");
    println!("  link     messages  payload_bytes");
    for ((from, to), (msgs, bytes)) in links.into_iter().take(8) {
        println!("  {from:>2}->{to:<2}   {msgs:>8}  {bytes:>13}");
    }
}

fn info(n: usize, t: usize, l: usize) {
    let Ok(cfg) = ConsensusConfig::new(n, t, l) else {
        eprintln!("invalid parameters (need t < n/3, n <= 65535, l >= 1)");
        std::process::exit(2);
    };
    let l_bits = (l * 8) as u64;
    let d_bits = cfg.resolved_gen_bytes() as u64 * 8;
    let b_pk = dsel::model_b_phase_king(n, t);
    let b_n2 = dsel::model_b_theta_n2(n);
    println!("parameters: n = {n}, t = {t}, L = {l_bits} bits");
    println!("code: (n, k) = ({n}, {}), distance {}", cfg.k(), 2 * t + 1);
    println!("Eq. (2) optimal D: {d_bits} bits ({} bytes, {} generations)", cfg.resolved_gen_bytes(), cfg.generations());
    println!("Eq. (3) linear coefficient n(n-1)/(n-2t): {:.2}", dsel::linear_coefficient(n, t));
    println!("Broadcast_Single_Bit cost B: {:.0} bits (Phase-King) / {:.0} (paper's 2n^2)", b_pk, b_n2);
    println!(
        "Eq. (1) failure-free model: {:.0} bits ({:.2} per value bit)",
        dsel::model_ccon_failure_free_bits(n, t, l_bits, d_bits, b_pk),
        dsel::model_ccon_failure_free_bits(n, t, l_bits, d_bits, b_pk) / l_bits as f64
    );
    println!(
        "Eq. (1) worst-case model:   {:.0} bits (includes t(t+1) = {} diagnosis stages)",
        dsel::model_ccon_bits(n, t, l_bits, d_bits, b_pk),
        t * (t + 1)
    );
    println!("\nBroadcast_Single_Bit substrates (--bsb; see §4):");
    println!("  phase-king    error-free, t < n/3, B = Θ(n²(t+1)), 1+3(t+1) rounds/batch");
    println!("  eig           error-free, t < n/3, B = Θ(n^(t+2)), 1+(t+1) rounds/batch");
    println!("  dolev-strong  idealised signatures, t < n at the broadcast layer, t+1 rounds/batch");
}
