//! `mvbc` — command-line runner for the Liang-Vaidya consensus and
//! broadcast simulations.
//!
//! ```sh
//! mvbc consensus --n 7 --t 2 --l 4096 --attack worst-case
//! mvbc broadcast --n 7 --t 2 --l 4096 --source 3 --attack equivocate
//! mvbc info --n 7 --t 2 --l 1048576
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => {
            commands::run(cmd);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
