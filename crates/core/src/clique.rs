//! Deterministic clique search for `P_match` and `P_decide`.
//!
//! Lines 1(e) and 3(h) of Algorithm 1 require every fault-free processor
//! to locate the *same* set: a clique of prescribed size in a graph that
//! all fault-free processors hold identical copies of (thanks to
//! `Broadcast_Single_Bit`). Determinism, not speed, is the requirement —
//! the paper measures communication, not local computation. The search is
//! a straightforward backtracking over vertices in increasing order with
//! counting and common-neighbourhood pruning, returning the first clique
//! found in that canonical order (hence the same clique everywhere).

/// Finds a clique of exactly `size` vertices among `candidates` under the
/// symmetric adjacency predicate `adj`, or `None` when no such clique
/// exists.
///
/// `candidates` must be sorted ascending and duplicate-free; `adj` is only
/// consulted on candidate pairs and must be symmetric. The returned
/// vertices are sorted ascending, and the choice is deterministic: two
/// callers with equal inputs get equal outputs.
///
/// # Examples
///
/// ```
/// use mvbc_core::find_clique_of_size;
///
/// // A 4-cycle has cliques of size 2 but not 3.
/// let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
/// let adj = |a: usize, b: usize| {
///     edges.contains(&(a, b)) || edges.contains(&(b, a))
/// };
/// assert_eq!(find_clique_of_size(&[0, 1, 2, 3], 2, adj), Some(vec![0, 1]));
/// assert_eq!(find_clique_of_size(&[0, 1, 2, 3], 3, adj), None);
/// ```
pub fn find_clique_of_size(
    candidates: &[usize],
    size: usize,
    adj: impl Fn(usize, usize) -> bool,
) -> Option<Vec<usize>> {
    if size == 0 {
        return Some(Vec::new());
    }
    if candidates.len() < size {
        return None;
    }
    debug_assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidates must be sorted and unique"
    );

    // Iteratively discard candidates with too few neighbours among the
    // remaining candidates; cheap and often collapses the search space.
    let mut cands: Vec<usize> = candidates.to_vec();
    loop {
        let before = cands.len();
        cands = {
            let keep: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&v| {
                    let deg = cands.iter().filter(|&&u| u != v && adj(u, v)).count();
                    deg >= size - 1
                })
                .collect();
            keep
        };
        if cands.len() == before {
            break;
        }
        if cands.len() < size {
            return None;
        }
    }

    let mut chosen: Vec<usize> = Vec::with_capacity(size);
    if search(&cands, size, &adj, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

fn search(
    cands: &[usize],
    size: usize,
    adj: &impl Fn(usize, usize) -> bool,
    chosen: &mut Vec<usize>,
) -> bool {
    if chosen.len() == size {
        return true;
    }
    let need = size - chosen.len();
    for (i, &v) in cands.iter().enumerate() {
        if cands.len() - i < need {
            return false; // not enough candidates left
        }
        chosen.push(v);
        // Restrict to later candidates adjacent to v (keeps order, keeps
        // the clique sorted, and explores lexicographically smallest
        // extensions first).
        let next: Vec<usize> = cands[i + 1..]
            .iter()
            .copied()
            .filter(|&u| adj(u, v))
            .collect();
        if next.len() >= need - 1 && search(&next, size, adj, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj_from_edges(edges: &[(usize, usize)]) -> impl Fn(usize, usize) -> bool + '_ {
        move |a, b| edges.iter().any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b))
    }

    #[test]
    fn complete_graph_returns_prefix() {
        let cands: Vec<usize> = (0..8).collect();
        let clique = find_clique_of_size(&cands, 5, |_, _| true).unwrap();
        assert_eq!(clique, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_size_trivially_found() {
        assert_eq!(find_clique_of_size(&[], 0, |_, _| true), Some(vec![]));
    }

    #[test]
    fn too_few_candidates() {
        assert_eq!(find_clique_of_size(&[1, 2], 3, |_, _| true), None);
    }

    #[test]
    fn no_edges_no_clique_beyond_one() {
        let cands: Vec<usize> = (0..5).collect();
        assert_eq!(find_clique_of_size(&cands, 2, |_, _| false), None);
        assert_eq!(find_clique_of_size(&cands, 1, |_, _| false), Some(vec![0]));
    }

    #[test]
    fn finds_embedded_clique() {
        // Clique {1, 3, 4} plus stray edges.
        let edges = [(1, 3), (3, 4), (1, 4), (0, 1), (0, 2), (2, 3)];
        let adj = adj_from_edges(&edges);
        let got = find_clique_of_size(&[0, 1, 2, 3, 4], 3, adj).unwrap();
        assert_eq!(got, vec![1, 3, 4]);
    }

    #[test]
    fn prefers_lexicographically_smallest() {
        // Two disjoint triangles {0,1,2} and {3,4,5}.
        let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        let got = find_clique_of_size(&[0, 1, 2, 3, 4, 5], 3, adj_from_edges(&edges)).unwrap();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn respects_candidate_restriction() {
        // Triangle {0,1,2} exists but 0 is not a candidate.
        let edges = [(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)];
        let got = find_clique_of_size(&[1, 2, 3], 3, adj_from_edges(&edges)).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_across_calls() {
        let edges = [(0, 2), (2, 4), (0, 4), (1, 3), (3, 5), (1, 5), (0, 1)];
        let cands: Vec<usize> = (0..6).collect();
        let a = find_clique_of_size(&cands, 3, adj_from_edges(&edges));
        let b = find_clique_of_size(&cands, 3, adj_from_edges(&edges));
        assert_eq!(a, b);
        assert_eq!(a, Some(vec![0, 2, 4]));
    }

    #[test]
    fn worst_case_moderate_n_terminates() {
        // Turán-style graph with no clique of the target size: complete
        // 4-partite graph K(4,4,4,4) has max clique 4; ask for 5.
        let part = |v: usize| v / 4;
        let cands: Vec<usize> = (0..16).collect();
        assert_eq!(
            find_clique_of_size(&cands, 5, |a, b| part(a) != part(b)),
            None
        );
        assert!(find_clique_of_size(&cands, 4, |a, b| part(a) != part(b)).is_some());
    }

    #[test]
    fn consensus_shape_n_minus_t() {
        // The matching-stage shape: n = 13, t = 4; the 9 "honest" nodes
        // form a clique, faulty nodes attach arbitrarily.
        let n = 13;
        let honest = |v: usize| v < 9;
        let adj = |a: usize, b: usize| {
            (honest(a) && honest(b)) || (a + b).is_multiple_of(3) // some noise edges
        };
        let cands: Vec<usize> = (0..n).collect();
        let clique = find_clique_of_size(&cands, 9, adj).unwrap();
        assert_eq!(clique.len(), 9);
        for w in clique.windows(2) {
            assert!(adj(w[0], w[1]));
        }
    }
}
