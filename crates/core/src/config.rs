//! Consensus parameters.

use std::fmt;

use crate::dsel;

/// Error returned for invalid consensus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The resilience bound `t < n/3` is violated.
    TooManyFaults {
        /// Number of processors.
        n: usize,
        /// Requested fault tolerance.
        t: usize,
    },
    /// `n` exceeds the coding field (GF(2^16) supports `n <= 65535`).
    TooManyProcessors {
        /// Number of processors.
        n: usize,
    },
    /// The value must be at least one byte.
    EmptyValue,
    /// An explicit generation size of zero bytes was requested.
    ZeroGenerationSize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooManyFaults { n, t } => {
                write!(f, "error-free consensus requires t < n/3 (n = {n}, t = {t})")
            }
            ConfigError::TooManyProcessors { n } => {
                write!(f, "GF(2^16) coding supports at most 65535 processors (n = {n})")
            }
            ConfigError::EmptyValue => write!(f, "consensus value must be at least one byte"),
            ConfigError::ZeroGenerationSize => {
                write!(f, "generation size must be at least one byte")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of one consensus execution.
///
/// # Examples
///
/// ```
/// use mvbc_core::ConsensusConfig;
///
/// let cfg = ConsensusConfig::new(7, 2, 4096)?;
/// assert_eq!(cfg.k(), 3);                   // n - 2t
/// assert!(cfg.resolved_gen_bytes() >= 1);   // Eq. (2) optimum
/// assert!(cfg.generations() >= 1);
/// # Ok::<(), mvbc_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusConfig {
    /// Number of processors.
    pub n: usize,
    /// Byzantine fault tolerance (`t < n/3`).
    pub t: usize,
    /// Length of the value agreed upon, in bytes (`L = 8 * value_bytes`).
    pub value_bytes: usize,
    /// Generation size `D` in bytes; `None` selects the paper's Eq. (2)
    /// optimum.
    pub gen_bytes: Option<usize>,
    /// Byte used to fill the default decision (taken when the matching
    /// stage proves the fault-free inputs differ) and to pad the final
    /// generation.
    pub default_byte: u8,
    /// **Ablation switch** (experiment E9): when set, the diagnosis graph
    /// is reset to the complete graph at the start of every generation,
    /// disabling the paper's "memory across generations" (§2). Safety is
    /// unaffected (each generation is still correct in isolation), but
    /// the `t(t+1)` bound of Theorem 1 no longer holds: a persistent
    /// adversary can force a diagnosis stage in *every* generation.
    pub ablation_reset_diag: bool,
}

impl ConsensusConfig {
    /// Validated constructor with automatic generation sizing.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `t >= n/3`, `n > 65535`, or
    /// `value_bytes == 0`.
    pub fn new(n: usize, t: usize, value_bytes: usize) -> Result<Self, ConfigError> {
        let cfg = ConsensusConfig {
            n,
            t,
            value_bytes,
            gen_bytes: None,
            default_byte: 0,
            ablation_reset_diag: false,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// As [`ConsensusConfig::new`] with an explicit generation size `D`
    /// (in bytes).
    ///
    /// # Errors
    ///
    /// As [`ConsensusConfig::new`], plus [`ConfigError::ZeroGenerationSize`].
    pub fn with_gen_bytes(
        n: usize,
        t: usize,
        value_bytes: usize,
        gen_bytes: usize,
    ) -> Result<Self, ConfigError> {
        if gen_bytes == 0 {
            return Err(ConfigError::ZeroGenerationSize);
        }
        let mut cfg = Self::new(n, t, value_bytes)?;
        cfg.gen_bytes = Some(gen_bytes);
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if 3 * self.t >= self.n {
            return Err(ConfigError::TooManyFaults { n: self.n, t: self.t });
        }
        if self.n > u16::MAX as usize {
            return Err(ConfigError::TooManyProcessors { n: self.n });
        }
        if self.value_bytes == 0 {
            return Err(ConfigError::EmptyValue);
        }
        Ok(())
    }

    /// Code dimension `k = n - 2t`.
    pub fn k(&self) -> usize {
        self.n - 2 * self.t
    }

    /// The effective generation size in bytes (explicit, or the Eq. (2)
    /// optimum clamped to `[1, value_bytes]`).
    pub fn resolved_gen_bytes(&self) -> usize {
        match self.gen_bytes {
            Some(d) => d.min(self.value_bytes).max(1),
            None => {
                let d_bits = dsel::optimal_d_bits(self.n, self.t, self.value_bytes as u64 * 8);
                let d_bytes = (d_bits.div_ceil(8) as usize).max(1);
                d_bytes.min(self.value_bytes)
            }
        }
    }

    /// Number of generations `ceil(L / D)`.
    pub fn generations(&self) -> usize {
        self.value_bytes.div_ceil(self.resolved_gen_bytes())
    }

    /// The default decision value (all `default_byte`).
    pub fn default_value(&self) -> Vec<u8> {
        vec![self.default_byte; self.value_bytes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_parameters() {
        for (n, t) in [(4, 1), (7, 2), (10, 3), (4, 0), (1, 0)] {
            assert!(ConsensusConfig::new(n, t, 100).is_ok(), "n={n} t={t}");
        }
    }

    #[test]
    fn rejects_t_at_or_above_third() {
        assert_eq!(
            ConsensusConfig::new(3, 1, 100),
            Err(ConfigError::TooManyFaults { n: 3, t: 1 })
        );
        assert_eq!(
            ConsensusConfig::new(6, 2, 100),
            Err(ConfigError::TooManyFaults { n: 6, t: 2 })
        );
        assert!(ConsensusConfig::new(7, 2, 100).is_ok());
    }

    #[test]
    fn rejects_empty_value_and_zero_generation() {
        assert_eq!(ConsensusConfig::new(4, 1, 0), Err(ConfigError::EmptyValue));
        assert_eq!(
            ConsensusConfig::with_gen_bytes(4, 1, 10, 0),
            Err(ConfigError::ZeroGenerationSize)
        );
    }

    #[test]
    fn rejects_oversized_network() {
        assert_eq!(
            ConsensusConfig::new(70_000, 1, 8),
            Err(ConfigError::TooManyProcessors { n: 70_000 })
        );
    }

    #[test]
    fn generation_count_covers_value() {
        let cfg = ConsensusConfig::with_gen_bytes(4, 1, 100, 30).unwrap();
        assert_eq!(cfg.resolved_gen_bytes(), 30);
        assert_eq!(cfg.generations(), 4); // 30+30+30+10(padded)
    }

    #[test]
    fn explicit_gen_clamped_to_value() {
        let cfg = ConsensusConfig::with_gen_bytes(4, 1, 10, 1000).unwrap();
        assert_eq!(cfg.resolved_gen_bytes(), 10);
        assert_eq!(cfg.generations(), 1);
    }

    #[test]
    fn auto_gen_size_grows_with_l() {
        let small = ConsensusConfig::new(7, 2, 1 << 10).unwrap().resolved_gen_bytes();
        let large = ConsensusConfig::new(7, 2, 1 << 20).unwrap().resolved_gen_bytes();
        assert!(large > small, "D should grow with sqrt(L): {small} vs {large}");
    }

    #[test]
    fn t_zero_uses_single_generation() {
        // No diagnosis is ever possible with t = 0, so D = L.
        let cfg = ConsensusConfig::new(4, 0, 500).unwrap();
        assert_eq!(cfg.resolved_gen_bytes(), 500);
        assert_eq!(cfg.generations(), 1);
    }

    #[test]
    fn default_value_uses_default_byte() {
        let mut cfg = ConsensusConfig::new(4, 1, 3).unwrap();
        cfg.default_byte = 0xEE;
        assert_eq!(cfg.default_value(), vec![0xEE, 0xEE, 0xEE]);
    }

    #[test]
    fn error_display() {
        assert!(ConfigError::TooManyFaults { n: 3, t: 1 }.to_string().contains("t < n/3"));
        assert!(ConfigError::EmptyValue.to_string().contains("byte"));
    }
}
