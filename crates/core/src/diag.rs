//! The diagnosis graph (paper §2, "Diagnosis Graph").
//!
//! An undirected graph on the `n` processors capturing the fault-free
//! processors' collective knowledge about fault locations. Processors
//! *trust* each other iff their vertices are adjacent. The graph starts
//! complete; the diagnosis stage removes edges, and the paper proves
//! (Lemma 4) three invariants that [`DiagGraph`] exposes as queries and
//! that the property tests assert:
//!
//! 1. an edge is removed only if one of its endpoints is faulty,
//! 2. fault-free processors always trust each other, and
//! 3. a vertex that loses more than `t` edges belongs to a faulty
//!    processor (and is then *isolated*: all its edges are removed and
//!    fault-free processors stop communicating with it).
//!
//! Every fault-free processor maintains its own copy; all updates are
//! driven by `Broadcast_Single_Bit` outputs, so the copies stay identical.

use std::fmt;

/// The shared trust bookkeeping of one consensus execution.
///
/// # Examples
///
/// ```
/// use mvbc_core::DiagGraph;
///
/// let mut g = DiagGraph::new(4, 1);
/// assert!(g.trusts(0, 3));
/// g.remove_edge(0, 3);
/// assert!(!g.trusts(0, 3));
/// assert_eq!(g.removed_count(3), 1);
/// // Losing t + 1 = 2 edges identifies the processor as faulty.
/// g.remove_edge(1, 3);
/// g.enforce_isolation();
/// assert!(g.is_isolated(3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DiagGraph {
    n: usize,
    t: usize,
    /// Row-major adjacency; `edges[i * n + j]` for `i != j`.
    edges: Vec<bool>,
    isolated: Vec<bool>,
}

impl fmt::Debug for DiagGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiagGraph(n={}, t={})", self.n, self.t)?;
        for i in 0..self.n {
            write!(f, "  {i}: trusts [")?;
            let mut first = true;
            for j in 0..self.n {
                if i != j && self.trusts(i, j) {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{j}")?;
                    first = false;
                }
            }
            write!(f, "]")?;
            if self.isolated[i] {
                write!(f, " ISOLATED")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl DiagGraph {
    /// A complete graph on `n` vertices: everyone initially trusts
    /// everyone.
    pub fn new(n: usize, t: usize) -> Self {
        let mut edges = vec![true; n * n];
        for i in 0..n {
            edges[i * n + i] = false;
        }
        DiagGraph {
            n,
            t,
            edges,
            isolated: vec![false; n],
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether `i` trusts `j`. Every processor trusts itself.
    pub fn trusts(&self, i: usize, j: usize) -> bool {
        if i == j {
            return !self.isolated[i];
        }
        self.edges[i * self.n + j]
    }

    /// Removes the undirected edge `(i, j)` (idempotent; no-op for
    /// `i == j`).
    pub fn remove_edge(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        self.edges[i * self.n + j] = false;
        self.edges[j * self.n + i] = false;
    }

    /// Number of edges at `v` removed since initialisation.
    pub fn removed_count(&self, v: usize) -> usize {
        (self.n - 1) - self.degree(v)
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (0..self.n).filter(|&u| u != v && self.edges[v * self.n + u]).count()
    }

    /// Removes all edges at `v` and marks it as an identified faulty
    /// processor; fault-free processors will no longer communicate with
    /// it.
    pub fn isolate(&mut self, v: usize) {
        for u in 0..self.n {
            self.remove_edge(v, u);
        }
        self.isolated[v] = true;
    }

    /// True when `v` has been identified as faulty and cut off.
    pub fn is_isolated(&self, v: usize) -> bool {
        self.isolated[v]
    }

    /// Applies line 3(g): any vertex that has lost at least `t + 1` edges
    /// must be faulty and is isolated. Returns the vertices newly
    /// isolated.
    pub fn enforce_isolation(&mut self) -> Vec<usize> {
        let mut newly = Vec::new();
        loop {
            let mut changed = false;
            for v in 0..self.n {
                if !self.isolated[v] && self.removed_count(v) > self.t {
                    self.isolate(v);
                    newly.push(v);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        newly.sort_unstable();
        newly
    }

    /// Participation mask: `true` for processors not (yet) identified as
    /// faulty. This is what the `Broadcast_Single_Bit` layer uses to skip
    /// isolated processors.
    pub fn participants(&self) -> Vec<bool> {
        self.isolated.iter().map(|&i| !i).collect()
    }

    /// Ids of non-isolated processors, ascending.
    pub fn active_ids(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| !self.isolated[v]).collect()
    }

    /// Total number of removed edges (counting each undirected edge once),
    /// including edges dropped by isolation.
    pub fn total_removed(&self) -> usize {
        let mut removed = 0;
        for i in 0..self.n {
            for j in i + 1..self.n {
                if !self.edges[i * self.n + j] {
                    removed += 1;
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_complete() {
        let g = DiagGraph::new(5, 1);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert!(g.trusts(i, j));
                }
            }
            assert_eq!(g.degree(i), 4);
            assert_eq!(g.removed_count(i), 0);
            assert!(!g.is_isolated(i));
        }
        assert_eq!(g.total_removed(), 0);
    }

    #[test]
    fn removal_is_symmetric_and_idempotent() {
        let mut g = DiagGraph::new(4, 1);
        g.remove_edge(1, 2);
        g.remove_edge(2, 1);
        assert!(!g.trusts(1, 2));
        assert!(!g.trusts(2, 1));
        assert_eq!(g.removed_count(1), 1);
        assert_eq!(g.removed_count(2), 1);
        assert_eq!(g.total_removed(), 1);
    }

    #[test]
    fn self_edge_noop() {
        let mut g = DiagGraph::new(4, 1);
        g.remove_edge(2, 2);
        assert_eq!(g.removed_count(2), 0);
        assert!(g.trusts(2, 2));
    }

    #[test]
    fn isolation_cuts_all_edges() {
        let mut g = DiagGraph::new(5, 1);
        g.isolate(3);
        assert!(g.is_isolated(3));
        for u in 0..5 {
            if u != 3 {
                assert!(!g.trusts(u, 3));
                assert!(!g.trusts(3, u));
            }
        }
        assert!(!g.trusts(3, 3), "isolated processors do not self-trust");
        assert_eq!(g.participants(), vec![true, true, true, false, true]);
        assert_eq!(g.active_ids(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn t_plus_one_rule() {
        let mut g = DiagGraph::new(7, 2);
        g.remove_edge(0, 6);
        g.remove_edge(1, 6);
        assert!(g.enforce_isolation().is_empty()); // only t = 2 edges
        g.remove_edge(2, 6);
        assert_eq!(g.enforce_isolation(), vec![6]);
        assert!(g.is_isolated(6));
    }

    #[test]
    fn isolation_cascade() {
        // Isolating v removes edges at its neighbours too, which can push
        // *them* over the t + 1 threshold; enforce_isolation loops until
        // stable. n = 4, t = 1: vertex 3 loses 2 edges (isolated), which
        // costs each other vertex one edge; then removing (0,1) pushes 0
        // and 1 to two removed edges each -> cascade isolates everyone
        // except... all of 0 and 1; vertex 2 then lost edges to 0,1,3.
        let mut g = DiagGraph::new(4, 1);
        g.remove_edge(0, 3);
        g.remove_edge(1, 3);
        let newly = g.enforce_isolation();
        assert_eq!(newly, vec![3]);
        // 0, 1, 2 each lost exactly one edge (to 3): below threshold.
        assert_eq!(g.removed_count(0), 1);
        assert!(!g.is_isolated(0));
        g.remove_edge(0, 1);
        let newly = g.enforce_isolation();
        // 0 and 1 now at 2 removed edges = t + 1: both isolated; that
        // removes their edges to 2, pushing 2 to 3 removed edges: cascade.
        assert_eq!(newly, vec![0, 1, 2]);
    }

    #[test]
    fn honest_majority_never_isolated_under_correct_usage() {
        // Simulate a worst-case adversary that only ever sacrifices edges
        // adjacent to faulty vertices (the Lemma 4 guarantee): honest
        // vertices lose at most t edges and stay connected.
        let n = 10;
        let t = 3;
        let faulty = [7, 8, 9];
        let mut g = DiagGraph::new(n, t);
        for &f in &faulty {
            for honest in 0..n - 3 {
                g.remove_edge(f, honest);
            }
        }
        g.enforce_isolation();
        for honest in 0..n - 3 {
            assert!(!g.is_isolated(honest));
            // All faulty neighbours gone, honest neighbours intact.
            assert_eq!(g.degree(honest), n - 4);
        }
        for &f in &faulty {
            assert!(g.is_isolated(f));
        }
    }

    #[test]
    fn debug_render() {
        let mut g = DiagGraph::new(3, 0);
        g.isolate(1);
        let s = format!("{g:?}");
        assert!(s.contains("ISOLATED"));
        assert!(s.contains("DiagGraph(n=3, t=0)"));
    }
}
