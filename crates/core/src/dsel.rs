//! Generation sizing and the paper's analytic cost model (§3.4).
//!
//! Equation (1) of the paper gives the total communication complexity as a
//! function of the generation size `D`:
//!
//! ```text
//! C_con(L) = ( n(n-1)/(n-2t) · D  +  n(n-1)·B  +  t·B ) · L/D
//!          + t(t+1) · ( (n-t)/(n-2t) · D  +  n(n-t) ) · B
//! ```
//!
//! where `B` is the cost of one `Broadcast_Single_Bit` instance.
//! Minimising over `D` yields Equation (2)'s optimum
//!
//! ```text
//! D* = sqrt( (n² - n + t)(n - 2t) L / ( t(t+1)(n-t) ) )
//! ```
//!
//! These functions power both the automatic `D` selection in
//! [`ConsensusConfig`](crate::ConsensusConfig) and the model curves that
//! the benchmark harness prints next to measured bit counts (experiments
//! E1/E2/E5).

/// The paper's Eq. (2): the `D` (in bits) minimising Eq. (1).
///
/// For `t = 0` no diagnosis stage can ever run and the `D`-proportional
/// term of Eq. (1) vanishes, so the whole value is processed in one
/// generation (`D = L`).
pub fn optimal_d_bits(n: usize, t: usize, l_bits: u64) -> u64 {
    if t == 0 {
        return l_bits.max(1);
    }
    let n = n as f64;
    let t = t as f64;
    let l = l_bits as f64;
    let num = (n * n - n + t) * (n - 2.0 * t) * l;
    let den = t * (t + 1.0) * (n - t);
    let d = (num / den).sqrt();
    (d.round() as u64).clamp(1, l_bits.max(1))
}

/// The paper's Eq. (1): modelled total bits for generation size `d_bits`
/// and 1-bit-broadcast cost `b_bits`, assuming the worst case of `t(t+1)`
/// diagnosis-stage executions.
pub fn model_ccon_bits(n: usize, t: usize, l_bits: u64, d_bits: u64, b_bits: f64) -> f64 {
    let nf = n as f64;
    let tf = t as f64;
    let l = l_bits as f64;
    let d = d_bits as f64;
    let k = nf - 2.0 * tf;
    let generations = (l / d).ceil();
    let per_generation = nf * (nf - 1.0) / k * d + nf * (nf - 1.0) * b_bits + tf * b_bits;
    let diagnosis = tf * (tf + 1.0) * ((nf - tf) / k * d + nf * (nf - tf)) * b_bits;
    per_generation * generations + diagnosis
}

/// Failure-free model: Eq. (1) without the diagnosis term and without the
/// checking-stage `t·B` term's worst case (kept — non-members always
/// broadcast `Detected`), i.e. the cost when no processor misbehaves.
pub fn model_ccon_failure_free_bits(n: usize, t: usize, l_bits: u64, d_bits: u64, b_bits: f64) -> f64 {
    let nf = n as f64;
    let tf = t as f64;
    let l = l_bits as f64;
    let d = d_bits as f64;
    let k = nf - 2.0 * tf;
    let generations = (l / d).ceil();
    (nf * (nf - 1.0) / k * d + nf * (nf - 1.0) * b_bits + tf * b_bits) * generations
}

/// The dominant `L`-linear coefficient of Eq. (3): `n(n-1)/(n-2t)`.
pub fn linear_coefficient(n: usize, t: usize) -> f64 {
    let nf = n as f64;
    nf * (nf - 1.0) / (nf - 2.0 * t as f64)
}

/// Modelled cost of one `Broadcast_Single_Bit` instance under *this
/// workspace's* Phase-King construction (see `mvbc-bsb`):
/// source round `n-1` bits, then `t+1` phases of `n(n-1)` value bits,
/// `2n(n-1)` proposal bits and `n-1` king bits.
pub fn model_b_phase_king(n: usize, t: usize) -> f64 {
    let nf = n as f64;
    let tf = t as f64;
    (nf - 1.0) + (tf + 1.0) * (nf * (nf - 1.0) + 2.0 * nf * (nf - 1.0) + (nf - 1.0))
}

/// The paper's assumption `B = Θ(n²)` (Berman-Garay-Perry / Coan-Welch
/// bit-optimal broadcast); the constant is taken as 2 for the model
/// curves.
pub fn model_b_theta_n2(n: usize) -> f64 {
    2.0 * (n as f64) * (n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_matches_paper_formula() {
        // n = 7, t = 2, L = 2^20: direct formula evaluation.
        let n = 7.0f64;
        let t = 2.0f64;
        let l = (1u64 << 20) as f64;
        let expect = ((n * n - n + t) * (n - 2.0 * t) * l / (t * (t + 1.0) * (n - t))).sqrt();
        let got = optimal_d_bits(7, 2, 1 << 20) as f64;
        assert!((got - expect).abs() <= 1.0, "got {got}, expect {expect}");
    }

    #[test]
    fn optimum_is_a_local_minimum_of_eq1() {
        let (n, t, l) = (7usize, 2usize, 1u64 << 22);
        let b = model_b_phase_king(n, t);
        let d_star = optimal_d_bits(n, t, l);
        let at_opt = model_ccon_bits(n, t, l, d_star, b);
        for factor in [4u64, 16, 64] {
            let lo = model_ccon_bits(n, t, l, (d_star / factor).max(1), b);
            let hi = model_ccon_bits(n, t, l, d_star * factor, b);
            assert!(at_opt <= lo, "D*/{factor}: {at_opt} vs {lo}");
            assert!(at_opt <= hi, "D* * {factor}: {at_opt} vs {hi}");
        }
    }

    #[test]
    fn d_scales_with_sqrt_l() {
        let d1 = optimal_d_bits(7, 2, 1 << 16) as f64;
        let d2 = optimal_d_bits(7, 2, 1 << 20) as f64; // 16x larger L
        let ratio = d2 / d1;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio} should be ~4");
    }

    #[test]
    fn t_zero_single_generation() {
        assert_eq!(optimal_d_bits(4, 0, 12345), 12345);
    }

    #[test]
    fn d_clamped_to_l() {
        // Tiny L: optimum would exceed L; clamp.
        assert!(optimal_d_bits(7, 2, 8) <= 8);
        assert!(optimal_d_bits(7, 2, 1) >= 1);
    }

    #[test]
    fn model_approaches_linear_term_for_large_l() {
        // Eq. (3): for large L the complexity approaches n(n-1)/(n-2t) L.
        let (n, t) = (7usize, 2usize);
        let b = model_b_theta_n2(n);
        let coeff = linear_coefficient(n, t);
        let l = 1u64 << 36;
        let d = optimal_d_bits(n, t, l);
        let total = model_ccon_bits(n, t, l, d, b);
        let ratio = total / (coeff * l as f64);
        assert!(ratio < 1.05, "ratio {ratio} should approach 1");
        assert!(ratio >= 1.0);
    }

    #[test]
    fn failure_free_below_worst_case() {
        let (n, t, l) = (7, 2, 1u64 << 18);
        let b = model_b_phase_king(n, t);
        let d = optimal_d_bits(n, t, l);
        assert!(
            model_ccon_failure_free_bits(n, t, l, d, b) < model_ccon_bits(n, t, l, d, b)
        );
    }

    #[test]
    fn phase_king_b_grows_cubically() {
        let b4 = model_b_phase_king(4, 1);
        let b8 = model_b_phase_king(8, 2);
        // Doubling n with t ~ n/4 should grow by roughly 2^3.
        assert!(b8 / b4 > 4.0);
        assert!(model_b_theta_n2(8) / model_b_theta_n2(4) == 4.0);
    }

    #[test]
    fn linear_coefficient_examples() {
        assert_eq!(linear_coefficient(4, 1), 6.0); // 4*3/2
        assert_eq!(linear_coefficient(7, 2), 14.0); // 7*6/3
        assert_eq!(linear_coefficient(4, 0), 3.0); // 4*3/4
    }
}
