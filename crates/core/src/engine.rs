//! The multi-generation consensus engine (Theorem 1).
//!
//! Splits the `L`-bit input into `L/D` generations, runs Algorithm 1 per
//! generation with a diagnosis graph carried across generations ("memory
//! across generations", §2), and assembles the `L`-bit decision.

use mvbc_bsb::{BsbDriver, PhaseKingDriver};
use mvbc_netsim::NodeCtx;
use mvbc_rscode::StripedCode;

use crate::config::ConsensusConfig;
use crate::diag::DiagGraph;
use crate::generation::{run_generation, GenerationOutcome};
use crate::hooks::ProtocolHooks;

/// Per-node summary of one consensus execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// The decided `L`-byte value.
    pub output: Vec<u8>,
    /// Number of generations in which the diagnosis stage executed.
    /// Theorem 1 bounds this by `t(t + 1)` in every execution.
    pub diagnosis_invocations: u64,
    /// Generations fully executed (equals `cfg.generations()` unless the
    /// default decision of line 1(f) terminated the run early).
    pub generations_completed: usize,
    /// Whether line 1(f) fired (fault-free inputs provably differed).
    pub defaulted: bool,
    /// Processors identified as faulty and isolated, ascending.
    pub isolated: Vec<usize>,
    /// Undirected diagnosis-graph edges removed over the whole run.
    pub edges_removed: usize,
}

/// Runs the full multi-valued consensus protocol for one processor.
///
/// Every fault-free processor must invoke this in round 0 of the
/// simulation with an identical `cfg`; `input` is this processor's
/// `L`-byte input value, `hooks` its (possibly Byzantine) behaviour.
///
/// # Panics
///
/// Panics when `input.len() != cfg.value_bytes` or the internal
/// invariants guaranteed by the paper's lemmas are violated (which would
/// indicate an implementation bug, not an adversary effect).
pub fn run_consensus(
    ctx: &mut NodeCtx,
    cfg: &ConsensusConfig,
    input: &[u8],
    hooks: &mut dyn ProtocolHooks,
) -> EngineReport {
    run_consensus_with(ctx, cfg, input, hooks, &mut PhaseKingDriver)
}

/// As [`run_consensus`] with an explicit `Broadcast_Single_Bit`
/// substrate (§4's substitution seam; see [`BsbDriver`]).
///
/// All fault-free processors of one execution must supply the same kind
/// of driver — the substrates differ in round structure. The consensus
/// algorithm's own lemmas still require `t < n/3` (enforced by `cfg`)
/// even when the driver tolerates more faults.
///
/// # Panics
///
/// As [`run_consensus`].
pub fn run_consensus_with(
    ctx: &mut NodeCtx,
    cfg: &ConsensusConfig,
    input: &[u8],
    hooks: &mut dyn ProtocolHooks,
    bsb: &mut dyn BsbDriver,
) -> EngineReport {
    assert_eq!(
        input.len(),
        cfg.value_bytes,
        "input must be exactly L = value_bytes bytes"
    );
    let d = cfg.resolved_gen_bytes();
    let generations = cfg.generations();
    let code = StripedCode::c2t(cfg.n, cfg.t, d).expect("validated parameters");
    let mut diag = DiagGraph::new(cfg.n, cfg.t);

    let mut output: Vec<u8> = Vec::with_capacity(cfg.value_bytes);
    let mut diagnosis_invocations = 0u64;
    let mut generations_completed = 0usize;
    let mut defaulted = false;

    for g in 0..generations {
        if hooks.crash_before_generation(g) {
            // Byzantine crash: stop participating. The returned output is
            // meaningless (the processor is faulty by definition).
            output.resize(cfg.value_bytes, cfg.default_byte);
            break;
        }
        if diag.is_isolated(ctx.id()) {
            // This processor has been identified as faulty; fault-free
            // processors no longer communicate with it, so it cannot
            // follow the protocol. Only a faulty processor can get here.
            output.resize(cfg.value_bytes, cfg.default_byte);
            break;
        }

        if cfg.ablation_reset_diag {
            // E9 ablation: forget everything learned about fault
            // locations (disables the paper's memory across generations).
            diag = DiagGraph::new(cfg.n, cfg.t);
        }
        hooks.observe_generation_start(g, ctx.id(), &diag);

        let start = g * d;
        let end = ((g + 1) * d).min(cfg.value_bytes);
        let mut part = input[start..end].to_vec();
        part.resize(d, cfg.default_byte); // pad the final generation
        hooks.input_override(g, &mut part);

        let report = run_generation(ctx, cfg, &code, &mut diag, g, &part, hooks, bsb);
        if report.diagnosis_ran {
            diagnosis_invocations += 1;
        }
        match report.outcome {
            GenerationOutcome::Decided(v) => {
                debug_assert_eq!(v.len(), d);
                output.extend_from_slice(&v);
                generations_completed += 1;
            }
            GenerationOutcome::NoMatch => {
                // Line 1(f): decide the default value for this and all
                // remaining generations and terminate.
                defaulted = true;
                output.resize(cfg.value_bytes, cfg.default_byte);
                break;
            }
        }
    }
    output.truncate(cfg.value_bytes);
    output.resize(cfg.value_bytes, cfg.default_byte);

    let isolated: Vec<usize> = (0..cfg.n).filter(|&v| diag.is_isolated(v)).collect();
    let edges_removed = diag.total_removed();
    EngineReport {
        output,
        diagnosis_invocations,
        generations_completed,
        defaulted,
        isolated,
        edges_removed,
    }
}
