//! One generation of Algorithm 1: matching, checking and diagnosis stages.
//!
//! The line numbers in comments refer to the pseudo-code of Algorithm 1 in
//! the paper (§3). All control information flows through
//! `Broadcast_Single_Bit`, so every fault-free processor derives the same
//! `P_match`, the same `Detected` flags, the same `R#`, the same `Trust`
//! vectors — and therefore makes the same decisions and the same diagnosis
//! graph updates.

use mvbc_bsb::{BsbConfig, BsbDriver, BsbInstance, BsbValueSpec};
use mvbc_netsim::bits::{pack_bits, unpack_bits};
use mvbc_netsim::NodeCtx;
use mvbc_rscode::{StripedCode, Symbol};

use crate::clique::find_clique_of_size;
use crate::config::ConsensusConfig;
use crate::diag::DiagGraph;
use crate::hooks::ProtocolHooks;

/// Message tag for the matching-stage symbol dispersal (line 1(a)).
const TAG_SYMBOL: &str = "consensus.matching.symbol";
/// BSB session for the `M` vectors (line 1(d)).
const SESSION_M: &str = "consensus.matching.m";
/// BSB session for the `Detected` flags (line 2(b)).
const SESSION_DETECTED: &str = "consensus.checking.detected";
/// BSB session for the diagnosis symbols `R#` (line 3(a)).
const SESSION_RSHARP: &str = "consensus.diagnosis.rsharp";
/// BSB session for the `Trust` vectors (line 3(d)).
const SESSION_TRUST: &str = "consensus.diagnosis.trust";

/// The decision of one generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerationOutcome {
    /// Consensus achieved on this `D`-byte generation value.
    Decided(Vec<u8>),
    /// No `P_match` exists: the fault-free inputs provably differ and the
    /// algorithm decides the default value (line 1(f)).
    NoMatch,
}

/// What happened during one generation (consumed by experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationReport {
    /// The decision.
    pub outcome: GenerationOutcome,
    /// Whether the diagnosis stage executed (misbehaviour was detected).
    pub diagnosis_ran: bool,
    /// The matching set, when one was found.
    pub p_match: Option<Vec<usize>>,
    /// Undirected edges removed from the diagnosis graph this generation.
    pub edges_removed: Vec<(usize, usize)>,
    /// Processors newly isolated this generation.
    pub newly_isolated: Vec<usize>,
}

/// Executes Algorithm 1 for one generation.
///
/// All fault-free processors must call this in the same round with equal
/// `cfg`, `code`, a diagnosis graph in the same state, and `g`; `my_part`
/// is this processor's `D`-byte input part for generation `g`.
#[allow(clippy::too_many_arguments)] // one call site; mirrors the paper's per-generation state
pub(crate) fn run_generation(
    ctx: &mut NodeCtx,
    cfg: &ConsensusConfig,
    code: &StripedCode,
    diag: &mut DiagGraph,
    g: usize,
    my_part: &[u8],
    hooks: &mut dyn ProtocolHooks,
    bsb: &mut dyn BsbDriver,
) -> GenerationReport {
    let n = cfg.n;
    let t = cfg.t;
    let me = ctx.id();
    let active = diag.active_ids();
    let participants = diag.participants();
    let stripes = code.layout().stripes;
    let sym_wire_bits = stripes * 16;

    // ------------------------------------------------------------------
    // Matching stage
    // ------------------------------------------------------------------

    // 1(a): encode the generation value and send own symbol to every
    // trusted processor.
    let symbols = code
        .encode_value(my_part)
        .expect("generation part has the configured size");
    if participants[me] {
        for j in 0..n {
            if j == me || !diag.trusts(me, j) {
                continue;
            }
            let mut payload = symbols[me].to_bytes();
            if hooks.matching_symbol(g, j, &mut payload) {
                ctx.send(j, TAG_SYMBOL, payload, code.symbol_bits());
            }
        }
    }
    let mut inbox = ctx.end_round();

    // 1(b): receive symbols; untrusted senders and malformed payloads
    // become the distinguished symbol ⊥ (None).
    let mut received: Vec<Option<Symbol>> = vec![None; n];
    received[me] = Some(symbols[me].clone());
    for (j, slot) in received.iter_mut().enumerate() {
        if j == me || !diag.trusts(me, j) {
            continue;
        }
        *slot = inbox
            .take(j, TAG_SYMBOL)
            .and_then(|b| Symbol::from_bytes(&b, stripes, code.symbol_bits()));
    }

    // 1(c): match flags against the local codeword.
    let mut m: Vec<bool> = (0..n)
        .map(|j| j == me || (diag.trusts(me, j) && received[j].as_ref() == Some(&symbols[j])))
        .collect();
    hooks.m_vector(g, &mut m);

    // 1(d): broadcast M_i with Broadcast_Single_Bit (one instance per
    // bit); isolated processors neither broadcast nor are broadcast to.
    let bsb_m = BsbConfig::new(t, SESSION_M, participants.clone());
    let m_specs: Vec<BsbValueSpec> = active
        .iter()
        .map(|&src| BsbValueSpec {
            source: src,
            bits: n,
            input: (src == me).then(|| m.clone()),
        })
        .collect();
    let m_broadcast = bsb.run_values(ctx, &bsb_m, &m_specs, &mut *hooks);
    let mut m_all: Vec<Vec<bool>> = vec![vec![false; n]; n];
    for (idx, &src) in active.iter().enumerate() {
        m_all[src].clone_from(&m_broadcast[idx]);
    }

    // 1(e): find P_match of size n - t with pairwise true M flags.
    let p_match = find_clique_of_size(&active, n - t, |a, b| m_all[a][b] && m_all[b][a]);

    // 1(f): no P_match => fault-free inputs differ; decide default.
    let Some(p_match) = p_match else {
        return GenerationReport {
            outcome: GenerationOutcome::NoMatch,
            diagnosis_ran: false,
            p_match: None,
            edges_removed: Vec::new(),
            newly_isolated: Vec::new(),
        };
    };
    let mut in_match = vec![false; n];
    for &j in &p_match {
        in_match[j] = true;
    }

    // ------------------------------------------------------------------
    // Checking stage
    // ------------------------------------------------------------------

    // The symbols this processor holds from trusted members of P_match
    // (the set X in the paper's Lemma 4 case 2a).
    let my_x: Vec<(usize, Symbol)> = p_match
        .iter()
        .filter_map(|&j| received[j].clone().map(|s| (j, s)))
        .collect();

    // 2(a)/2(b): processors outside P_match check consistency and
    // broadcast their 1-bit verdicts.
    let outsiders: Vec<usize> = active.iter().copied().filter(|&j| !in_match[j]).collect();
    let mut detected = if !in_match[me] {
        !code
            .is_consistent(&my_x)
            .expect("received positions are valid")
    } else {
        false
    };
    if !in_match[me] {
        hooks.detected_flag(g, &mut detected);
    }
    let bsb_det = BsbConfig::new(t, SESSION_DETECTED, participants.clone());
    let det_instances: Vec<BsbInstance> = outsiders
        .iter()
        .map(|&src| BsbInstance {
            source: src,
            input: (src == me).then_some(detected),
        })
        .collect();
    let det_flags = bsb.run_batch(ctx, &bsb_det, &det_instances, &mut *hooks);
    let any_detected = det_flags.iter().any(|&d| d);

    // 2(c): nobody detected an inconsistency — decode from the symbols at
    // hand. (For a fault-free processor this succeeds and all fault-free
    // processors obtain the same value, Lemma 3; only a *faulty*
    // processor can reach the fallback.)
    if !any_detected {
        let value = code
            .decode_value(&my_x)
            .unwrap_or_else(|_| vec![cfg.default_byte; code.layout().value_bytes]);
        return GenerationReport {
            outcome: GenerationOutcome::Decided(value),
            diagnosis_ran: false,
            p_match: Some(p_match),
            edges_removed: Vec::new(),
            newly_isolated: Vec::new(),
        };
    }

    // ------------------------------------------------------------------
    // Diagnosis stage
    // ------------------------------------------------------------------

    // 3(a)/3(b): every member of P_match broadcasts the symbol it sent in
    // the matching stage (one Broadcast_Single_Bit per bit); R#[j] is the
    // common result.
    let my_sym_bits: Vec<bool> = unpack_bits(&symbols[me].to_bytes(), sym_wire_bits)
        .expect("symbol serialisation is self-consistent");
    let mut my_sym_bits = my_sym_bits;
    if in_match[me] {
        hooks.diagnosis_symbol_bits(g, &mut my_sym_bits);
    }
    let bsb_rsharp = BsbConfig::new(t, SESSION_RSHARP, participants.clone());
    let rsharp_specs: Vec<BsbValueSpec> = p_match
        .iter()
        .map(|&src| BsbValueSpec {
            source: src,
            bits: sym_wire_bits,
            input: (src == me).then(|| my_sym_bits.clone()),
        })
        .collect();
    let rsharp_bits = bsb.run_values(ctx, &bsb_rsharp, &rsharp_specs, &mut *hooks);
    let rsharp: Vec<(usize, Symbol)> = p_match
        .iter()
        .zip(&rsharp_bits)
        .map(|(&j, bits)| {
            let sym = Symbol::from_bytes(&pack_bits(bits), stripes, code.symbol_bits())
                .expect("fixed-width broadcast yields a well-formed symbol");
            (j, sym)
        })
        .collect();

    // 3(c): local trust verdicts about P_match members.
    let mut trust: Vec<bool> = rsharp
        .iter()
        .map(|(j, sym)| diag.trusts(me, *j) && received[*j].as_ref() == Some(sym))
        .collect();
    hooks.trust_vector(g, &mut trust);

    // 3(d): broadcast Trust_i / P_match from every (non-isolated)
    // processor.
    let bsb_trust = BsbConfig::new(t, SESSION_TRUST, participants.clone());
    let trust_specs: Vec<BsbValueSpec> = active
        .iter()
        .map(|&src| BsbValueSpec {
            source: src,
            bits: p_match.len(),
            input: (src == me).then(|| trust.clone()),
        })
        .collect();
    let trust_all = bsb.run_values(ctx, &bsb_trust, &trust_specs, &mut *hooks);

    // 3(e): remove accused edges. All processors hold identical
    // trust_all, so they remove identical edges.
    let mut edges_removed: Vec<(usize, usize)> = Vec::new();
    let mut edge_removed_at = vec![false; n];
    for (ai, &i) in active.iter().enumerate() {
        for (pj, &j) in p_match.iter().enumerate() {
            if i == j || !diag.trusts(i, j) {
                continue;
            }
            if !trust_all[ai][pj] {
                diag.remove_edge(i, j);
                edge_removed_at[i] = true;
                edge_removed_at[j] = true;
                edges_removed.push((i.min(j), i.max(j)));
            }
        }
    }

    // 3(f): when the broadcast symbols form a codeword, an outsider that
    // claimed detection without any removed edge exposed itself as
    // faulty.
    let rsharp_consistent = code
        .is_consistent(&rsharp)
        .expect("broadcast positions are valid");
    let mut newly_isolated: Vec<usize> = Vec::new();
    if rsharp_consistent {
        for (oi, &j) in outsiders.iter().enumerate() {
            if det_flags[oi] && !edge_removed_at[j] && !diag.is_isolated(j) {
                diag.isolate(j);
                newly_isolated.push(j);
            }
        }
    }

    // 3(g): the cumulative t + 1 rule.
    newly_isolated.extend(diag.enforce_isolation());
    newly_isolated.sort_unstable();
    newly_isolated.dedup();

    // 3(h): P_decide ⊂ P_match of size n - 2t, pairwise trusting in the
    // updated graph (existence guaranteed by Lemma 5: the ≥ n - 2t
    // fault-free members of P_match always trust each other).
    let p_decide = find_clique_of_size(&p_match, n - 2 * t, |a, b| diag.trusts(a, b))
        .expect("Lemma 5: P_decide always exists");

    // 3(i): decide on the broadcast symbols of P_decide. For a fault-free
    // processor the restriction is always consistent (Lemma 5); the
    // fallback is reachable only by faulty processors.
    let decide_pairs: Vec<(usize, Symbol)> = rsharp
        .iter()
        .filter(|(j, _)| p_decide.contains(j))
        .cloned()
        .collect();
    let value = code
        .decode_value(&decide_pairs)
        .unwrap_or_else(|_| vec![cfg.default_byte; code.layout().value_bytes]);

    GenerationReport {
        outcome: GenerationOutcome::Decided(value),
        diagnosis_ran: true,
        p_match: Some(p_match),
        edges_removed,
        newly_isolated,
    }
}
