//! Byzantine behaviour hooks for the consensus protocol.
//!
//! Faulty processors in this workspace execute the honest protocol code
//! but may mutate any outgoing information through a [`ProtocolHooks`]
//! implementation. The paper's adversary controls message *content* only
//! (channels are authenticated, §1), so mutation hooks at every send
//! point — including inside the `Broadcast_Single_Bit` sub-protocol via
//! the inherited [`BsbHooks`] — realise the full adversary. Concrete
//! attack strategies live in the `mvbc-adversary` crate.

use mvbc_bsb::BsbHooks;
use mvbc_netsim::NodeId;

use crate::diag::DiagGraph;

/// Mutation points of Algorithm 1, by stage and line number.
///
/// All methods default to honest no-ops. Slices/vectors are mutated in
/// place; indices refer to processor ids except where noted.
pub trait ProtocolHooks: BsbHooks {
    /// Observation point: called at the start of every generation with
    /// this processor's id and the current diagnosis graph. The paper's
    /// adversary has complete knowledge of all state (§1, "no secret is
    /// hidden from the adversary"); adaptive strategies use this to plan
    /// which edges to sacrifice.
    fn observe_generation_start(&mut self, g: usize, me: NodeId, diag: &DiagGraph) {
        let _ = (g, me, diag);
    }

    /// Replace this processor's input for generation `g` (models a faulty
    /// processor that "has" different values at different times).
    fn input_override(&mut self, g: usize, value: &mut Vec<u8>) {
        let _ = (g, value);
    }

    /// Line 1(a): mutate the serialized coded symbol about to be sent to
    /// `to`; clearing the buffer models sending garbage (the receiver
    /// treats it as `⊥`). Returning `false` suppresses the send entirely.
    fn matching_symbol(&mut self, g: usize, to: NodeId, payload: &mut Vec<u8>) -> bool {
        let _ = (g, to, payload);
        true
    }

    /// Line 1(d): mutate the `M` vector before it is broadcast. (Per-
    /// recipient equivocation of the broadcast itself goes through the
    /// inherited [`BsbHooks::source_bits`].)
    fn m_vector(&mut self, g: usize, m: &mut Vec<bool>) {
        let _ = (g, m);
    }

    /// Line 2(b): flip the `Detected` flag before broadcasting it.
    fn detected_flag(&mut self, g: usize, flag: &mut bool) {
        let _ = (g, flag);
    }

    /// Line 3(a): mutate the bits of `S_j[j]` this member of `P_match` is
    /// about to broadcast in the diagnosis stage.
    fn diagnosis_symbol_bits(&mut self, g: usize, bits: &mut Vec<bool>) {
        let _ = (g, bits);
    }

    /// Line 3(d): mutate the `Trust` vector (indexed by position within
    /// `P_match`) before broadcasting it.
    fn trust_vector(&mut self, g: usize, trust: &mut Vec<bool>) {
        let _ = (g, trust);
    }

    /// Called at the start of generation `g`; returning `true` makes the
    /// processor crash (stop participating permanently).
    fn crash_before_generation(&mut self, g: usize) -> bool {
        let _ = g;
        false
    }
}

/// The honest behaviour: every hook is a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHooks;

impl BsbHooks for NoopHooks {}
impl ProtocolHooks for NoopHooks {}

impl NoopHooks {
    /// Boxed honest hooks, convenient for building hook vectors.
    pub fn boxed() -> Box<dyn ProtocolHooks> {
        Box::new(NoopHooks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_defaults() {
        let mut h = NoopHooks;
        let mut v = vec![1u8, 2];
        h.input_override(0, &mut v);
        assert_eq!(v, vec![1, 2]);
        let mut payload = vec![3u8];
        assert!(h.matching_symbol(0, 1, &mut payload));
        assert_eq!(payload, vec![3]);
        let mut m = vec![true];
        h.m_vector(0, &mut m);
        assert_eq!(m, vec![true]);
        let mut flag = false;
        h.detected_flag(0, &mut flag);
        assert!(!flag);
        assert!(!h.crash_before_generation(5));
    }

    #[test]
    fn hooks_are_object_safe() {
        let mut boxed: Box<dyn ProtocolHooks> = NoopHooks::boxed();
        let mut trust = vec![true, false];
        boxed.trust_vector(1, &mut trust);
        assert_eq!(trust, vec![true, false]);
    }
}
