//! Error-free multi-valued Byzantine consensus — Liang & Vaidya,
//! PODC 2011 (full version arXiv:1101.3520).
//!
//! `n` processors, each holding an `L`-bit input, agree on an `L`-bit
//! value despite up to `t < n/3` Byzantine processors, **deterministically
//! and without error**, with communication complexity
//! `O(nL + n⁴L^0.5 + n⁶)` bits — i.e. `O(nL)` for large `L`. The three
//! classic properties hold in every execution:
//!
//! - **Termination**: every fault-free processor decides.
//! - **Consistency**: all fault-free processors decide the same value.
//! - **Validity**: if all fault-free processors hold the same input, they
//!   decide that input.
//!
//! # Algorithm structure (paper §2–3)
//!
//! The `L`-bit value is processed in `L/D` *generations* of `D` bits.
//! Each generation runs Algorithm 1:
//!
//! 1. **Matching stage** — each processor encodes its `D`-bit part with an
//!    `(n, n-2t)` Reed-Solomon code and sends only *its own* coded symbol
//!    to the processors it trusts; match flags are broadcast and a set
//!    `P_match` of `n - t` processors whose fault-free members provably
//!    share one input is located (or the processors safely decide a
//!    default).
//! 2. **Checking stage** — processors outside `P_match` verify that the
//!    symbols received from `P_match` lie on one codeword; if nobody
//!    detects an inconsistency every processor decodes the generation
//!    value from the symbols it already holds.
//! 3. **Diagnosis stage** — on detection, the `P_match` symbols are
//!    re-broadcast with [`Broadcast_Single_Bit`](mvbc_bsb) and every
//!    processor updates a shared *diagnosis graph*, removing at least one
//!    edge adjacent to a faulty processor. After at most `t(t+1)`
//!    diagnoses all faulty processors are identified and isolated.
//!
//! # Examples
//!
//! Four processors (tolerating one Byzantine fault) agree on a 1 KiB
//! value; here all are honest and hold the same input:
//!
//! ```
//! use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks};
//! use mvbc_metrics::MetricsSink;
//!
//! let cfg = ConsensusConfig::new(4, 1, 1024)?;
//! let value = vec![0x5au8; 1024];
//! let inputs = vec![value.clone(); 4];
//! let hooks = (0..4).map(|_| NoopHooks::boxed()).collect();
//! let run = simulate_consensus(&cfg, inputs, hooks, MetricsSink::new());
//! assert!(run.outputs.iter().all(|o| *o == value)); // validity
//! # Ok::<(), mvbc_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clique;
mod config;
mod diag;
pub mod dsel;
mod engine;
mod generation;
mod hooks;
mod runner;

pub use clique::find_clique_of_size;
pub use config::{ConfigError, ConsensusConfig};
pub use diag::DiagGraph;
pub use engine::{run_consensus, run_consensus_with, EngineReport};
pub use generation::{GenerationOutcome, GenerationReport};
pub use hooks::{NoopHooks, ProtocolHooks};
pub use runner::{simulate_consensus, simulate_consensus_traced, simulate_consensus_with, ConsensusRun};
