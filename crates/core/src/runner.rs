//! One-call simulation runner: spawn `n` processors, run consensus,
//! collect outputs, reports and communication metrics.

use mvbc_bsb::{BsbDriver, PhaseKingDriver};
use mvbc_metrics::MetricsSink;
use mvbc_netsim::trace::TraceSink;
use mvbc_netsim::{run_simulation_traced, NodeCtx, NodeLogic, SimConfig};

use crate::config::ConsensusConfig;
use crate::engine::{run_consensus_with, EngineReport};
use crate::hooks::ProtocolHooks;

/// The result of a simulated consensus execution.
#[derive(Debug)]
pub struct ConsensusRun {
    /// Decided values, indexed by processor id. Entries of Byzantine
    /// processors are meaningless.
    pub outputs: Vec<Vec<u8>>,
    /// Per-processor engine reports (diagnosis counts, isolation sets...).
    pub reports: Vec<EngineReport>,
    /// Synchronous rounds executed.
    pub rounds: u64,
}

/// Runs one consensus over the in-process network simulator.
///
/// `inputs[i]` is processor `i`'s `L`-byte input; `hooks[i]` its
/// behaviour ([`NoopHooks`](crate::NoopHooks) for fault-free processors,
/// an `mvbc-adversary` strategy for Byzantine ones). The supplied
/// `metrics` sink accumulates the communication-complexity counters.
///
/// # Panics
///
/// Panics when the vector lengths disagree with `cfg.n` or when any input
/// has the wrong length.
pub fn simulate_consensus(
    cfg: &ConsensusConfig,
    inputs: Vec<Vec<u8>>,
    hooks: Vec<Box<dyn ProtocolHooks>>,
    metrics: MetricsSink,
) -> ConsensusRun {
    let drivers = (0..cfg.n)
        .map(|_| Box::new(PhaseKingDriver) as Box<dyn BsbDriver>)
        .collect();
    simulate_consensus_with(cfg, inputs, hooks, drivers, metrics)
}

/// As [`simulate_consensus`] with one explicit
/// [`BsbDriver`] per processor (the §4 substitution seam).
///
/// All fault-free processors must receive the same *kind* of driver;
/// per-processor driver values exist because some substrates carry
/// per-processor state (e.g. the Dolev-Strong signing handle — see
/// [`DolevStrongDriver::fleet`](mvbc_bsb::DolevStrongDriver::fleet)).
///
/// # Panics
///
/// Panics when the vector lengths disagree with `cfg.n` or when any input
/// has the wrong length.
pub fn simulate_consensus_with(
    cfg: &ConsensusConfig,
    inputs: Vec<Vec<u8>>,
    hooks: Vec<Box<dyn ProtocolHooks>>,
    drivers: Vec<Box<dyn BsbDriver>>,
    metrics: MetricsSink,
) -> ConsensusRun {
    simulate_inner(cfg, inputs, hooks, drivers, metrics, None)
}

/// As [`simulate_consensus_with`], additionally recording every
/// delivered message into `trace` (see
/// [`TraceSink`]) for golden-transcript tests,
/// debugging and offline analysis. Tracing never changes results — the
/// simulator is deterministic either way.
///
/// # Panics
///
/// As [`simulate_consensus_with`].
pub fn simulate_consensus_traced(
    cfg: &ConsensusConfig,
    inputs: Vec<Vec<u8>>,
    hooks: Vec<Box<dyn ProtocolHooks>>,
    drivers: Vec<Box<dyn BsbDriver>>,
    metrics: MetricsSink,
    trace: TraceSink,
) -> ConsensusRun {
    simulate_inner(cfg, inputs, hooks, drivers, metrics, Some(trace))
}

fn simulate_inner(
    cfg: &ConsensusConfig,
    inputs: Vec<Vec<u8>>,
    hooks: Vec<Box<dyn ProtocolHooks>>,
    drivers: Vec<Box<dyn BsbDriver>>,
    metrics: MetricsSink,
    trace: Option<TraceSink>,
) -> ConsensusRun {
    assert_eq!(inputs.len(), cfg.n, "one input per processor");
    assert_eq!(hooks.len(), cfg.n, "one hooks object per processor");
    assert_eq!(drivers.len(), cfg.n, "one BSB driver per processor");

    let logics: Vec<NodeLogic<EngineReport>> = inputs
        .into_iter()
        .zip(hooks)
        .zip(drivers)
        .map(|((input, mut hook), mut driver)| {
            let cfg = cfg.clone();
            Box::new(move |ctx: &mut NodeCtx| {
                run_consensus_with(ctx, &cfg, &input, hook.as_mut(), driver.as_mut())
            }) as NodeLogic<EngineReport>
        })
        .collect();

    let result = run_simulation_traced(SimConfig::new(cfg.n), metrics, trace, logics);
    let outputs = result.outputs.iter().map(|r| r.output.clone()).collect();
    ConsensusRun {
        outputs,
        reports: result.outputs,
        rounds: result.rounds,
    }
}
