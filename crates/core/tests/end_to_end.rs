//! End-to-end tests of the consensus engine with fault-free processors.
//! (Adversarial executions are tested in `mvbc-adversary` and the
//! workspace-level `tests/` suite.)

use mvbc_core::{simulate_consensus, ConsensusConfig, NoopHooks};
use mvbc_metrics::MetricsSink;

fn value(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
}

fn honest_hooks(n: usize) -> Vec<Box<dyn mvbc_core::ProtocolHooks>> {
    (0..n).map(|_| NoopHooks::boxed()).collect()
}

#[test]
fn validity_unanimous_inputs() {
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let cfg = ConsensusConfig::new(n, t, 256).unwrap();
        let v = value(256, 7);
        let run = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), MetricsSink::new());
        for (id, out) in run.outputs.iter().enumerate() {
            assert_eq!(*out, v, "n={n} t={t} node={id}");
        }
        for r in &run.reports {
            assert_eq!(r.diagnosis_invocations, 0);
            assert!(!r.defaulted);
            assert!(r.isolated.is_empty());
        }
    }
}

#[test]
fn differing_inputs_decide_default_consistently() {
    let n = 4;
    let cfg = ConsensusConfig::new(n, 1, 64).unwrap();
    let inputs: Vec<Vec<u8>> = (0..n).map(|i| value(64, i as u8)).collect();
    let run = simulate_consensus(&cfg, inputs, honest_hooks(n), MetricsSink::new());
    // All processors decide the same value (consistency)...
    for out in &run.outputs {
        assert_eq!(*out, run.outputs[0]);
    }
    // ...which is the default, since no n - t processors could match.
    assert_eq!(run.outputs[0], cfg.default_value());
    assert!(run.reports.iter().all(|r| r.defaulted));
}

#[test]
fn n_minus_t_unanimous_suffices_for_that_value() {
    // Only one input differs (at a fault-free node!): P_match exists among
    // the n - t holders of the common value; consistency requires all
    // fault-free outputs equal, and they must equal the majority value
    // because the matched processors all hold it.
    let n = 4;
    let cfg = ConsensusConfig::new(n, 1, 32).unwrap();
    let common = value(32, 1);
    let mut inputs = vec![common.clone(); n];
    inputs[3] = value(32, 99);
    let run = simulate_consensus(&cfg, inputs, honest_hooks(n), MetricsSink::new());
    for out in &run.outputs {
        assert_eq!(*out, common);
    }
}

#[test]
fn one_byte_value() {
    let n = 4;
    let cfg = ConsensusConfig::new(n, 1, 1).unwrap();
    let run = simulate_consensus(&cfg, vec![vec![0xAB]; n], honest_hooks(n), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == vec![0xAB]));
}

#[test]
fn multi_generation_run() {
    // Force many generations with a small explicit D.
    let n = 4;
    let cfg = ConsensusConfig::with_gen_bytes(n, 1, 100, 8).unwrap();
    assert_eq!(cfg.generations(), 13);
    let v = value(100, 42);
    let run = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == v));
    assert!(run.reports.iter().all(|r| r.generations_completed == 13));
}

#[test]
fn t_zero_fast_path() {
    let n = 4;
    let cfg = ConsensusConfig::new(n, 0, 128).unwrap();
    let v = value(128, 9);
    let run = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == v));
}

#[test]
fn failure_free_bits_match_paper_model() {
    // E1 cross-check in miniature: measured bits within the analytic
    // failure-free model (Eq. 1 without the diagnosis term), using the
    // exact per-stage accounting.
    let (n, t) = (7usize, 2usize);
    let l_bytes = 4096usize;
    let cfg = ConsensusConfig::new(n, t, l_bytes).unwrap();
    let metrics = MetricsSink::new();
    let v = value(l_bytes, 3);
    let run = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), metrics.clone());
    assert!(run.outputs.iter().all(|o| *o == v));

    let snap = metrics.snapshot();
    let total = snap.total_logical_bits() as f64;
    let d_bits = cfg.resolved_gen_bytes() as u64 * 8;
    let b = mvbc_core::dsel::model_b_phase_king(n, t);
    let model = mvbc_core::dsel::model_ccon_failure_free_bits(n, t, (l_bytes * 8) as u64, d_bits, b);
    // Generous envelope: the model and the implementation differ in
    // padding/rounding, but must agree within 2x either way.
    assert!(total < 2.0 * model, "measured {total} vs model {model}");
    assert!(total > 0.5 * model, "measured {total} vs model {model}");

    // Stage breakdown exists.
    assert!(snap.logical_bits_with_prefix("consensus.matching.symbol") > 0);
    assert!(snap.logical_bits_with_prefix("consensus.matching.m") > 0);
    assert!(snap.logical_bits_with_prefix("consensus.checking.detected") > 0);
    assert_eq!(snap.logical_bits_with_prefix("consensus.diagnosis"), 0);
}

#[test]
fn larger_network_13_nodes() {
    let n = 13;
    let cfg = ConsensusConfig::new(n, 4, 512).unwrap();
    let v = value(512, 5);
    let run = simulate_consensus(&cfg, vec![v.clone(); n], honest_hooks(n), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == v));
}

#[test]
#[should_panic(expected = "one input per processor")]
fn wrong_input_count_panics() {
    let cfg = ConsensusConfig::new(4, 1, 8).unwrap();
    let _ = simulate_consensus(&cfg, vec![vec![0; 8]; 3], honest_hooks(4), MetricsSink::new());
}

#[test]
fn ablation_reset_diag_breaks_theorem1_bound() {
    // With the ablation switch on, a persistent attacker is re-diagnosed
    // every generation (no memory): diagnosis count tracks generations,
    // far beyond t(t+1) — measuring exactly what §2's design choice buys.
    use mvbc_core::ProtocolHooks;
    let n = 4;
    let t = 1;
    let mut cfg = ConsensusConfig::with_gen_bytes(n, t, 64, 8).unwrap();
    cfg.ablation_reset_diag = true;
    assert_eq!(cfg.generations(), 8);
    let v = value(64, 3);
    let mut hooks: Vec<Box<dyn ProtocolHooks>> = honest_hooks(n);
    hooks[0] = Box::new(PersistentCorruptor);
    let run = simulate_consensus(&cfg, vec![v.clone(); n], hooks, MetricsSink::new());
    for id in 1..n {
        assert_eq!(run.outputs[id], v, "safety must survive the ablation");
    }
    let r = &run.reports[1];
    assert!(
        r.diagnosis_invocations > (t * (t + 1)) as u64,
        "without memory the bound must be exceeded (got {})",
        r.diagnosis_invocations
    );
    assert_eq!(r.diagnosis_invocations, 8, "one diagnosis per generation");
    // Nobody can be permanently isolated: the reset forgives everything.
    assert!(r.isolated.is_empty());
}

/// Corrupts its matching symbol toward the highest-id processor in every
/// generation, forever (the ablation test's persistent attacker).
#[derive(Debug, Clone, Copy)]
struct PersistentCorruptor;

impl mvbc_bsb::BsbHooks for PersistentCorruptor {}

impl mvbc_core::ProtocolHooks for PersistentCorruptor {
    fn matching_symbol(&mut self, _g: usize, to: usize, payload: &mut Vec<u8>) -> bool {
        if to == 3 {
            for b in payload.iter_mut() {
                *b ^= 0xFF;
            }
        }
        true
    }
}

#[test]
fn single_processor_degenerate_network() {
    // n = 1, t = 0: consensus with yourself.
    let cfg = ConsensusConfig::new(1, 0, 16).unwrap();
    let v = value(16, 5);
    let run = simulate_consensus(&cfg, vec![v.clone()], honest_hooks(1), MetricsSink::new());
    assert_eq!(run.outputs[0], v);
}

#[test]
fn two_processors_no_faults() {
    let cfg = ConsensusConfig::new(2, 0, 32).unwrap();
    let v = value(32, 6);
    let run = simulate_consensus(&cfg, vec![v.clone(); 2], honest_hooks(2), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == v));
    // And with differing inputs: default.
    let run = simulate_consensus(
        &cfg,
        vec![value(32, 1), value(32, 2)],
        honest_hooks(2),
        MetricsSink::new(),
    );
    assert!(run.outputs.iter().all(|o| *o == cfg.default_value()));
    assert!(run.reports.iter().all(|r| r.defaulted));
}

#[test]
fn custom_default_byte_respected() {
    let mut cfg = ConsensusConfig::new(4, 1, 16).unwrap();
    cfg.default_byte = 0x99;
    let inputs: Vec<Vec<u8>> = (0..4).map(|i| value(16, i as u8)).collect();
    let run = simulate_consensus(&cfg, inputs, honest_hooks(4), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == vec![0x99u8; 16]));
}

#[test]
fn generation_larger_than_value_padded() {
    // D > L: a single generation with internal padding.
    let cfg = ConsensusConfig::with_gen_bytes(4, 1, 5, 64).unwrap();
    assert_eq!(cfg.generations(), 1);
    let v = value(5, 7);
    let run = simulate_consensus(&cfg, vec![v.clone(); 4], honest_hooks(4), MetricsSink::new());
    assert!(run.outputs.iter().all(|o| *o == v));
}

#[test]
fn rounds_are_identical_across_honest_reports() {
    // Lockstep sanity: every node runs the same number of rounds.
    let cfg = ConsensusConfig::with_gen_bytes(7, 2, 64, 16).unwrap();
    let v = value(64, 8);
    let metrics = MetricsSink::new();
    let run = simulate_consensus(&cfg, vec![v; 7], honest_hooks(7), metrics.clone());
    assert!(run.rounds > 0);
    assert_eq!(metrics.snapshot().rounds(), run.rounds);
}
