//! The [`Field`] trait and the concrete GF(2^4), GF(2^8), GF(2^16) fields.

use std::fmt;
use std::hash::Hash;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables;

/// A finite field of characteristic 2, suitable for Reed-Solomon coding.
///
/// Addition is XOR (hence `sub == add` and `neg == id`). Multiplication and
/// inversion are table-driven in the provided implementations.
///
/// # Examples
///
/// ```
/// use mvbc_gf::{Field, Gf65536};
///
/// let a = Gf65536::new(12345);
/// assert_eq!(a + a, Gf65536::ZERO); // characteristic 2
/// assert_eq!(a.pow(Gf65536::ORDER - 1), Gf65536::ONE); // Fermat
/// ```
pub trait Field:
    Copy
    + Clone
    + Eq
    + PartialEq
    + Ord
    + PartialOrd
    + Hash
    + fmt::Debug
    + fmt::Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Neg<Output = Self>
    + 'static
{
    /// Number of bits in one field element.
    const BITS: u32;
    /// Number of field elements, i.e. `2^BITS`.
    const ORDER: u64;
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Constructs an element from the low `BITS` bits of `raw`.
    fn from_u64(raw: u64) -> Self;

    /// Returns the canonical integer representation of the element.
    fn to_u64(self) -> u64;

    /// Returns the multiplicative inverse, or `None` for zero.
    fn inv(self) -> Option<Self>;

    /// Returns a fixed generator of the multiplicative group.
    fn generator() -> Self;

    /// Returns the `i`-th distinct non-zero evaluation point `g^i`.
    ///
    /// Reed-Solomon codewords are evaluations of the data polynomial at
    /// `alpha(0), ..., alpha(n-1)`; these are pairwise distinct for
    /// `n <= ORDER - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ORDER - 1` (there are only `ORDER - 1` non-zero
    /// points).
    fn alpha(i: usize) -> Self;

    /// Exponentiation by squaring (exponent interpreted over the integers).
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Division; returns `None` when `rhs` is zero.
    fn checked_div(self, rhs: Self) -> Option<Self> {
        rhs.inv().map(|r| self * r)
    }

    /// True if this is the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Batch kernel `dst[i] = c * src[i]`.
    ///
    /// The table-driven fields override this with a log-domain loop that
    /// hoists the table reference and `log(c)` out of the loop; the
    /// default delegates to the scalar reference loop. See
    /// [`crate::kernels`].
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` differ in length.
    fn mul_slice(c: Self, src: &[Self], dst: &mut [Self]) {
        crate::kernels::mul_slice_scalar(c, src, dst);
    }

    /// Batch kernel `dst[i] += c * src[i]` (the fused multiply-accumulate
    /// of every Reed-Solomon matrix row application).
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` differ in length.
    fn addmul_slice(c: Self, src: &[Self], dst: &mut [Self]) {
        crate::kernels::addmul_slice_scalar(c, src, dst);
    }

    /// Batch kernel `buf[i] = c * buf[i]`.
    fn mul_slice_in_place(c: Self, buf: &mut [Self]) {
        for b in buf.iter_mut() {
            *b *= c;
        }
    }

    /// Fused batch kernel `dst[i] += Σ_j coeffs[j] * srcs[j][i]` — one
    /// whole matrix-row application in a single pass over `dst`.
    ///
    /// Semantically identical to `coeffs.len()` successive
    /// [`Field::addmul_slice`] calls (which is the default
    /// implementation); the packed fields override it to visit the
    /// accumulator once instead of once per source. See
    /// [`crate::kernels::addmul_rows`].
    ///
    /// # Panics
    ///
    /// Panics when `coeffs` and `srcs` differ in length, or any source
    /// differs in length from `dst`.
    fn addmul_rows(coeffs: &[Self], srcs: &[&[Self]], dst: &mut [Self]) {
        assert_eq!(coeffs.len(), srcs.len(), "addmul_rows shape mismatch");
        for (&c, src) in coeffs.iter().zip(srcs) {
            Self::addmul_slice(c, src, dst);
        }
    }
}

macro_rules! impl_gf {
    (
        $(#[$meta:meta])*
        $name:ident, $repr:ty, $bits:expr, $tables:path, $packed:path
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($repr);

        impl $name {
            /// Constructs an element from its canonical integer
            /// representation.
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw integer representation.
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl Field for $name {
            const BITS: u32 = $bits;
            const ORDER: u64 = 1 << $bits;
            const ZERO: Self = Self(0);
            const ONE: Self = Self(1);

            fn from_u64(raw: u64) -> Self {
                Self((raw & (Self::ORDER - 1)) as $repr)
            }

            fn to_u64(self) -> u64 {
                self.0 as u64
            }

            fn inv(self) -> Option<Self> {
                if self.0 == 0 {
                    return None;
                }
                let t = $tables();
                let group = (Self::ORDER - 1) as u32;
                let l = t.log[self.0 as usize];
                Some(Self(t.exp[(group - l) as usize] as $repr))
            }

            fn generator() -> Self {
                Self(2)
            }

            fn alpha(i: usize) -> Self {
                assert!(
                    (i as u64) < Self::ORDER - 1,
                    "evaluation point index {i} out of range for GF(2^{})",
                    Self::BITS
                );
                let t = $tables();
                Self(t.exp[i] as $repr)
            }

            // Packed slice kernels: split tables built once per
            // multiplier, `u64`-packed XOR accumulate, log-domain
            // fallback for short slices. See [`crate::packed`].
            fn mul_slice(c: Self, src: &[Self], dst: &mut [Self]) {
                use $packed as packed;
                packed::mul_slice(c, src, dst);
            }

            fn addmul_slice(c: Self, src: &[Self], dst: &mut [Self]) {
                use $packed as packed;
                packed::addmul_slice(c, src, dst);
            }

            fn mul_slice_in_place(c: Self, buf: &mut [Self]) {
                use $packed as packed;
                packed::mul_slice_in_place(c, buf);
            }

            fn addmul_rows(coeffs: &[Self], srcs: &[&[Self]], dst: &mut [Self]) {
                use $packed as packed;
                packed::addmul_rows(coeffs, srcs, dst);
            }
        }

        impl Add for $name {
            type Output = Self;
            // XOR *is* addition in characteristic 2 — not a typo.
            #[allow(clippy::suspicious_arithmetic_impl)]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 ^ rhs.0)
            }
        }

        impl AddAssign for $name {
            #[allow(clippy::suspicious_op_assign_impl)]
            fn add_assign(&mut self, rhs: Self) {
                self.0 ^= rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[allow(clippy::suspicious_arithmetic_impl)]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 ^ rhs.0)
            }
        }

        impl SubAssign for $name {
            #[allow(clippy::suspicious_op_assign_impl)]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 ^= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                self
            }
        }

        impl Mul for $name {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                if self.0 == 0 || rhs.0 == 0 {
                    return Self(0);
                }
                let t = $tables();
                let l = t.log[self.0 as usize] + t.log[rhs.0 as usize];
                Self(t.exp[l as usize] as $repr)
            }
        }

        impl MulAssign for $name {
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl Div for $name {
            type Output = Self;
            /// # Panics
            ///
            /// Panics on division by zero; use [`Field::checked_div`] to
            /// handle the zero divisor case.
            fn div(self, rhs: Self) -> Self {
                self.checked_div(rhs).expect("division by zero in GF(2^c)")
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::Octal for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Octal::fmt(&self.0, f)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0 as u64
            }
        }
    };
}

impl_gf!(
    /// GF(2^4): 16 elements; supports Reed-Solomon codes with `n <= 15`.
    Gf16,
    u8,
    4,
    tables::tables16,
    crate::packed::gf16
);

impl_gf!(
    /// GF(2^8): 256 elements; supports Reed-Solomon codes with `n <= 255`.
    Gf256,
    u8,
    8,
    tables::tables256,
    crate::packed::gf256
);

impl_gf!(
    /// GF(2^16): 65536 elements; the workspace default coding field.
    Gf65536,
    u16,
    16,
    tables::tables65536,
    crate::packed::gf65536
);

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn field_types_are_send_sync() {
        assert_send_sync::<Gf16>();
        assert_send_sync::<Gf256>();
        assert_send_sync::<Gf65536>();
    }

    fn exhaustive_axioms<F: Field>(elems: impl Iterator<Item = u64> + Clone) {
        for a in elems.clone() {
            let a = F::from_u64(a);
            assert_eq!(a + F::ZERO, a);
            assert_eq!(a * F::ONE, a);
            assert_eq!(a * F::ZERO, F::ZERO);
            assert_eq!(a + a, F::ZERO, "characteristic 2");
            assert_eq!(-a, a);
            if !a.is_zero() {
                let i = a.inv().unwrap();
                assert_eq!(a * i, F::ONE);
            } else {
                assert!(a.inv().is_none());
            }
        }
    }

    #[test]
    fn gf16_axioms_exhaustive() {
        exhaustive_axioms::<Gf16>(0..16);
        // Full associativity/commutativity/distributivity over all triples.
        for a in 0..16u64 {
            for b in 0..16u64 {
                let (fa, fb) = (Gf16::from_u64(a), Gf16::from_u64(b));
                assert_eq!(fa * fb, fb * fa);
                assert_eq!(fa + fb, fb + fa);
                for c in 0..16u64 {
                    let fc = Gf16::from_u64(c);
                    assert_eq!((fa * fb) * fc, fa * (fb * fc));
                    assert_eq!(fa * (fb + fc), fa * fb + fa * fc);
                }
            }
        }
    }

    #[test]
    fn gf256_axioms_exhaustive() {
        exhaustive_axioms::<Gf256>(0..256);
    }

    #[test]
    fn gf65536_axioms_sampled() {
        exhaustive_axioms::<Gf65536>((0..65536).step_by(97));
    }

    #[test]
    fn gf256_mul_reference_cross_check() {
        // Carry-less "Russian peasant" multiplication as an independent
        // reference implementation.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut acc: u16 = 0;
            while b != 0 {
                if b & 1 == 1 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= 0x11D;
                }
                b >>= 1;
            }
            acc as u8
        }
        for a in 0..=255u16 {
            for b in (0..=255u16).step_by(7) {
                let expect = Gf256::new(slow_mul(a, b));
                assert_eq!(Gf256::new(a as u8) * Gf256::new(b as u8), expect);
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let g = Gf256::generator();
        let mut x = Gf256::ONE;
        let mut seen = 0usize;
        loop {
            x *= g;
            seen += 1;
            if x == Gf256::ONE {
                break;
            }
        }
        assert_eq!(seen, 255, "generator must have order 2^8 - 1");
    }

    #[test]
    fn alpha_points_are_distinct() {
        let mut pts: Vec<u64> = (0..255).map(|i| Gf256::alpha(i).to_u64()).collect();
        pts.sort_unstable();
        pts.dedup();
        assert_eq!(pts.len(), 255);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn alpha_out_of_range_panics() {
        let _ = Gf16::alpha(15);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Gf65536::new(0x1234);
        let mut acc = Gf65536::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn fermat_little_theorem() {
        for raw in [1u64, 2, 3, 0x7f, 0xff, 0x1234, 0xffff] {
            let a = Gf65536::from_u64(raw);
            assert_eq!(a.pow(Gf65536::ORDER - 1), Gf65536::ONE);
        }
    }

    #[test]
    fn div_and_checked_div() {
        let a = Gf256::new(200);
        let b = Gf256::new(3);
        assert_eq!((a / b) * b, a);
        assert_eq!(a.checked_div(Gf256::ZERO), None);
    }

    #[test]
    fn formatting_is_nonempty() {
        let a = Gf256::new(0);
        assert!(!format!("{a:?}").is_empty());
        assert!(!format!("{a}").is_empty());
        assert_eq!(format!("{:x}", Gf256::new(0xab)), "ab");
        assert_eq!(format!("{:b}", Gf16::new(0b101)), "101");
    }

    #[test]
    fn from_u64_masks_high_bits() {
        assert_eq!(Gf256::from_u64(0x1_00 | 0x42), Gf256::new(0x42));
        assert_eq!(Gf16::from_u64(0xF0 | 0x5), Gf16::new(0x5));
    }
}
