//! Batched slice kernels over a [`Field`] — the codec hot loop.
//!
//! Reed-Solomon encode, decode, and consistency checking over a striped
//! code all reduce to row applications `out[i] ^= c * in[i]` where one
//! multiplier `c` (a generator-matrix or inverted-Vandermonde entry) is
//! applied across a whole slice of field elements (one element per
//! stripe). The kernels here are the single place that loop is written:
//!
//! - [`mul_slice`] — `dst[i] = c * src[i]`
//! - [`addmul_slice`] — `dst[i] += c * src[i]` (XOR-accumulate in
//!   characteristic 2)
//! - [`mul_slice_in_place`] — `buf[i] = c * buf[i]`
//! - [`addmul_rows`] — `dst[i] += Σ_j coeffs[j] * srcs[j][i]`, a whole
//!   matrix-row application fused into one pass over the accumulator
//!
//! The table-driven fields ([`Gf16`](crate::Gf16), [`Gf256`](crate::Gf256),
//! [`Gf65536`](crate::Gf65536)) implement these with *packed split-table*
//! loops (see the `packed` module): per-multiplier low/high split tables
//! are built once per slice call and combined branch-free with XOR, the
//! `c == 1` accumulate path XORs `u64`-packed words via `chunks_exact`,
//! `c == 0` degenerates to `fill`/no-op, and short slices fall back to
//! the log-domain loop (exp/log tables dereferenced once per slice,
//! `log(c)` hoisted). The `*_scalar` twins keep the naive per-element
//! formulation as an executable specification; the equivalence suite
//! pins kernel == scalar on random inputs for every field, every table
//! tier, and every tail alignment.
//!
//! # Examples
//!
//! ```
//! use mvbc_gf::{kernels, Field, Gf256};
//!
//! let c = Gf256::new(0x1d);
//! let src: Vec<Gf256> = (0u16..32).map(|i| Gf256::new(i as u8)).collect();
//! let mut fast = vec![Gf256::ZERO; 32];
//! let mut slow = vec![Gf256::ZERO; 32];
//! kernels::addmul_slice(c, &src, &mut fast);
//! kernels::addmul_slice_scalar(c, &src, &mut slow);
//! assert_eq!(fast, slow);
//! ```

use crate::Field;

/// `dst[i] = c * src[i]` via the field's batched kernel.
///
/// # Panics
///
/// Panics when `src` and `dst` differ in length.
pub fn mul_slice<F: Field>(c: F, src: &[F], dst: &mut [F]) {
    F::mul_slice(c, src, dst);
}

/// `dst[i] += c * src[i]` via the field's batched kernel.
///
/// # Panics
///
/// Panics when `src` and `dst` differ in length.
pub fn addmul_slice<F: Field>(c: F, src: &[F], dst: &mut [F]) {
    F::addmul_slice(c, src, dst);
}

/// `buf[i] = c * buf[i]` via the field's batched kernel.
pub fn mul_slice_in_place<F: Field>(c: F, buf: &mut [F]) {
    F::mul_slice_in_place(c, buf);
}

/// `dst[i] += Σ_j coeffs[j] * srcs[j][i]` via the field's fused kernel.
///
/// One generator-matrix (or inverted-Vandermonde) row applied to all
/// `coeffs.len()` sources in a single pass over `dst`: the packed
/// fields build one split-table pair per non-zero coefficient up
/// front, then XOR every source's product into a register before the
/// single accumulator store. Equivalent to `coeffs.len()` successive
/// [`addmul_slice`] calls, but without the `k - 1` extra load+store
/// round-trips over `dst` per element.
///
/// # Panics
///
/// Panics when `coeffs` and `srcs` differ in length, or any source
/// differs in length from `dst`.
pub fn addmul_rows<F: Field>(coeffs: &[F], srcs: &[&[F]], dst: &mut [F]) {
    F::addmul_rows(coeffs, srcs, dst);
}

/// Scalar reference for [`mul_slice`]: one full `a * b` per element.
///
/// # Panics
///
/// Panics when `src` and `dst` differ in length.
pub fn mul_slice_scalar<F: Field>(c: F, src: &[F], dst: &mut [F]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = c * s;
    }
}

/// Scalar reference for [`addmul_slice`].
///
/// # Panics
///
/// Panics when `src` and `dst` differ in length.
pub fn addmul_slice_scalar<F: Field>(c: F, src: &[F], dst: &mut [F]) {
    assert_eq!(src.len(), dst.len(), "addmul_slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += c * s;
    }
}

/// Scalar reference for [`addmul_rows`]: one [`addmul_slice_scalar`]
/// pass per coefficient.
///
/// # Panics
///
/// Panics when `coeffs` and `srcs` differ in length, or any source
/// differs in length from `dst`.
pub fn addmul_rows_scalar<F: Field>(coeffs: &[F], srcs: &[&[F]], dst: &mut [F]) {
    assert_eq!(coeffs.len(), srcs.len(), "addmul_rows shape mismatch");
    for (&c, src) in coeffs.iter().zip(srcs) {
        addmul_slice_scalar(c, src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf16, Gf256, Gf65536};

    fn pseudo_random(len: usize, seed: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    fn check_field<F: Field>() {
        for (seed, len) in [(1u64, 0usize), (2, 1), (3, 7), (4, 64), (5, 257)] {
            let src: Vec<F> = pseudo_random(len, seed).into_iter().map(F::from_u64).collect();
            let acc: Vec<F> = pseudo_random(len, seed ^ 0xfeed)
                .into_iter()
                .map(F::from_u64)
                .collect();
            // Include the short-circuited multipliers 0 and 1.
            for craw in [0u64, 1, 2, 3, 0x55, F::ORDER - 1] {
                let c = F::from_u64(craw);
                let mut fast = vec![F::ZERO; len];
                let mut slow = vec![F::ZERO; len];
                mul_slice(c, &src, &mut fast);
                mul_slice_scalar(c, &src, &mut slow);
                assert_eq!(fast, slow, "mul_slice c={craw:#x}");

                let mut fast = acc.clone();
                let mut slow = acc.clone();
                addmul_slice(c, &src, &mut fast);
                addmul_slice_scalar(c, &src, &mut slow);
                assert_eq!(fast, slow, "addmul_slice c={craw:#x}");

                let mut buf = src.clone();
                mul_slice_in_place(c, &mut buf);
                assert_eq!(buf, slow_mul_vec(c, &src), "mul_slice_in_place c={craw:#x}");
            }
        }
    }

    fn slow_mul_vec<F: Field>(c: F, src: &[F]) -> Vec<F> {
        src.iter().map(|&s| c * s).collect()
    }

    #[test]
    fn kernels_match_scalar_gf16() {
        check_field::<Gf16>();
    }

    #[test]
    fn kernels_match_scalar_gf256() {
        check_field::<Gf256>();
    }

    #[test]
    fn kernels_match_scalar_gf65536() {
        check_field::<Gf65536>();
    }

    #[test]
    fn addmul_accumulates() {
        let c = Gf256::new(7);
        let src = [Gf256::new(3); 4];
        let mut dst = [Gf256::new(9); 4];
        addmul_slice(c, &src, &mut dst);
        assert_eq!(dst, [Gf256::new(9) + Gf256::new(7) * Gf256::new(3); 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let src = [Gf256::ONE; 3];
        let mut dst = [Gf256::ZERO; 2];
        addmul_slice(Gf256::ONE, &src, &mut dst);
    }
}
