//! Galois-field arithmetic for the `mvbc` workspace.
//!
//! This crate implements the finite fields GF(2^4), GF(2^8) and GF(2^16)
//! together with the polynomial and linear-algebra tooling required by the
//! Reed-Solomon codes of Liang & Vaidya's error-free multi-valued Byzantine
//! consensus algorithm (PODC 2011). The paper's code `C_2t` is an
//! `(n, n-2t)` Reed-Solomon code over GF(2^c) with `n <= 2^c - 1`; the
//! workspace instantiates it over [`Gf65536`] by default so any practical
//! simulated network size is supported.
//!
//! # Examples
//!
//! ```
//! use mvbc_gf::{Field, Gf256};
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xca);
//! // Multiplication distributes over XOR-addition.
//! let c = Gf256::new(0x11);
//! assert_eq!(a * (b + c), a * b + a * c);
//! // Every non-zero element has a multiplicative inverse.
//! let inv = a.inv().expect("non-zero element");
//! assert_eq!(a * inv, Gf256::ONE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
pub mod kernels;
mod linalg;
mod packed;
mod poly;
mod tables;

pub use field::{Field, Gf16, Gf256, Gf65536};
pub use linalg::{solve_linear_system, GfMatrix, LinalgError};
pub use packed::{addmul_rows_prepared, mul_rows_prepared, PreparedMul65536};
pub use poly::{interpolate, InterpolateError, Poly};
