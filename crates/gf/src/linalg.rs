//! Dense matrices and Gaussian elimination over a [`Field`].
//!
//! Berlekamp-Welch decoding reduces error correction to solving a linear
//! system over GF(2^c); this module provides that solver.

use std::fmt;

use crate::Field;

/// Error produced by the linear-algebra routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The system has no solution.
    Inconsistent,
    /// Matrix dimensions do not match the operation.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Inconsistent => write!(f, "linear system is inconsistent"),
            LinalgError::DimensionMismatch => write!(f, "matrix dimensions do not match"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix over `F`.
///
/// # Examples
///
/// ```
/// use mvbc_gf::{Field, Gf256, GfMatrix};
///
/// let mut m = GfMatrix::zeros(2, 2);
/// m.set(0, 0, Gf256::ONE);
/// m.set(1, 1, Gf256::ONE);
/// assert_eq!(m.get(0, 0), Gf256::ONE);
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct GfMatrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> fmt::Debug for GfMatrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GfMatrix({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl<F: Field> GfMatrix<F> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        GfMatrix {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from a closure mapping `(row, col)` to an entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> F {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[F]) -> Result<Vec<F>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = vec![F::ZERO; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = F::ZERO;
            for (c, &vc) in v.iter().enumerate() {
                acc += self.get(r, c) * vc;
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Rank via Gaussian elimination on a copy.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.row_echelon()
    }

    /// In-place reduction to row-echelon form; returns the rank.
    fn row_echelon(&mut self) -> usize {
        let mut pivot_row = 0usize;
        for col in 0..self.cols {
            if pivot_row == self.rows {
                break;
            }
            // Find a pivot.
            let Some(sel) = (pivot_row..self.rows).find(|&r| !self.get(r, col).is_zero()) else {
                continue;
            };
            self.swap_rows(sel, pivot_row);
            let inv = self.get(pivot_row, col).inv().expect("pivot is non-zero");
            for c in col..self.cols {
                let v = self.get(pivot_row, c) * inv;
                self.set(pivot_row, c, v);
            }
            for r in 0..self.rows {
                if r == pivot_row {
                    continue;
                }
                let factor = self.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                for c in col..self.cols {
                    let v = self.get(r, c) - factor * self.get(pivot_row, c);
                    self.set(r, c, v);
                }
            }
            pivot_row += 1;
        }
        pivot_row
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let (va, vb) = (self.get(a, c), self.get(b, c));
            self.set(a, c, vb);
            self.set(b, c, va);
        }
    }
}

/// Solves `A x = b` over `F`, returning one solution (free variables are set
/// to zero when the system is under-determined).
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] when `b.len() != A.rows()`.
/// - [`LinalgError::Inconsistent`] when no solution exists.
///
/// # Examples
///
/// ```
/// use mvbc_gf::{solve_linear_system, Field, Gf256, GfMatrix};
///
/// // x + y = 5, y = 3  =>  x = 6 (XOR arithmetic), y = 3
/// let a = GfMatrix::from_fn(2, 2, |r, c| {
///     if r == 0 || c == 1 { Gf256::ONE } else { Gf256::ZERO }
/// });
/// let b = vec![Gf256::new(5), Gf256::new(3)];
/// let x = solve_linear_system(&a, &b)?;
/// assert_eq!(a.mul_vec(&x)?, b);
/// # Ok::<(), mvbc_gf::LinalgError>(())
/// ```
#[allow(clippy::needless_range_loop)] // index-based elimination reads clearer here
pub fn solve_linear_system<F: Field>(a: &GfMatrix<F>, b: &[F]) -> Result<Vec<F>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    // Build the augmented matrix [A | b].
    let mut aug = GfMatrix::from_fn(a.rows(), a.cols() + 1, |r, c| {
        if c < a.cols() {
            a.get(r, c)
        } else {
            b[r]
        }
    });
    aug.row_echelon();
    // Detect inconsistency: a row of zeros in A-part with non-zero b-part.
    for r in 0..aug.rows() {
        let all_zero = (0..a.cols()).all(|c| aug.get(r, c).is_zero());
        if all_zero && !aug.get(r, a.cols()).is_zero() {
            return Err(LinalgError::Inconsistent);
        }
    }
    // Back-substitute: the matrix is in reduced row-echelon form, so each
    // pivot row directly gives one variable (free variables stay zero).
    let mut x = vec![F::ZERO; a.cols()];
    for r in 0..aug.rows() {
        let Some(pivot_col) = (0..a.cols()).find(|&c| !aug.get(r, c).is_zero()) else {
            continue;
        };
        let mut val = aug.get(r, a.cols());
        for c in pivot_col + 1..a.cols() {
            val -= aug.get(r, c) * x[c];
        }
        x[pivot_col] = val;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Gf256};

    fn m(rows: usize, cols: usize, entries: &[u8]) -> GfMatrix<Gf256> {
        assert_eq!(entries.len(), rows * cols);
        GfMatrix::from_fn(rows, cols, |r, c| Gf256::new(entries[r * cols + c]))
    }

    #[test]
    fn identity_solve() {
        let a = m(3, 3, &[1, 0, 0, 0, 1, 0, 0, 0, 1]);
        let b = vec![Gf256::new(7), Gf256::new(8), Gf256::new(9)];
        assert_eq!(solve_linear_system(&a, &b).unwrap(), b);
    }

    #[test]
    fn vandermonde_is_full_rank() {
        let pts: Vec<Gf256> = (0..6).map(Gf256::alpha).collect();
        let a = GfMatrix::from_fn(6, 6, |r, c| pts[r].pow(c as u64));
        assert_eq!(a.rank(), 6);
    }

    #[test]
    fn solve_roundtrip_random_system() {
        // Deterministic pseudo-random full-rank-ish systems.
        let mut seed = 0x9e37u32;
        let mut next = move || {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            (seed >> 8) as u8
        };
        for _ in 0..20 {
            let a = GfMatrix::from_fn(5, 5, |_, _| Gf256::new(next()));
            let x_true: Vec<Gf256> = (0..5).map(|_| Gf256::new(next())).collect();
            let b = a.mul_vec(&x_true).unwrap();
            if a.rank() < 5 {
                continue; // singular sample; skip
            }
            let x = solve_linear_system(&a, &b).unwrap();
            assert_eq!(x, x_true);
        }
    }

    #[test]
    fn inconsistent_system_detected() {
        // x + y = 1 and x + y = 2 simultaneously.
        let a = m(2, 2, &[1, 1, 1, 1]);
        let b = vec![Gf256::new(1), Gf256::new(2)];
        assert_eq!(solve_linear_system(&a, &b), Err(LinalgError::Inconsistent));
    }

    #[test]
    fn underdetermined_system_solved_with_free_vars_zero() {
        let a = m(1, 3, &[1, 1, 1]);
        let b = vec![Gf256::new(9)];
        let x = solve_linear_system(&a, &b).unwrap();
        assert_eq!(a.mul_vec(&x).unwrap(), b);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = m(2, 2, &[1, 0, 0, 1]);
        assert_eq!(
            solve_linear_system(&a, &[Gf256::ONE]),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(
            a.mul_vec(&[Gf256::ONE]),
            Err(LinalgError::DimensionMismatch)
        );
    }

    #[test]
    fn rank_of_dependent_rows() {
        let a = m(3, 3, &[1, 2, 3, 2, 4, 6, 1, 0, 1]);
        // Row 1 = 2 * row 0 in GF(2^8)? Multiplication by 2 in GF(256) is a
        // field op; row1 entries are exactly 2*row0: 2*1=2, 2*2=4, 2*3=6.
        assert_eq!(a.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let a = m(1, 1, &[1]);
        let _ = a.get(1, 0);
    }

    #[test]
    fn debug_output_nonempty() {
        let a = m(1, 2, &[0, 1]);
        let s = format!("{a:?}");
        assert!(s.contains("GfMatrix(1x2)"));
    }

    #[test]
    fn error_display() {
        assert!(LinalgError::Inconsistent.to_string().contains("inconsistent"));
        assert!(LinalgError::DimensionMismatch.to_string().contains("dimensions"));
    }
}
