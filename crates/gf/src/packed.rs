//! Packed slice kernels: split-table multiplication + word-packed XOR.
//!
//! The log-domain kernels the fields shipped with previously resolve
//! every product through the shared exp/log tables. For GF(2^16) those
//! tables are ~768 KiB — every lookup is a probable L2/L3 miss once the
//! slice no longer fits in cache — and the `s != 0` guard puts a
//! data-dependent branch in the hot loop. The kernels here use the
//! standard fast-Reed-Solomon alternative: for each multiplier `c`,
//! build tiny *split tables* once per slice call, then combine per-part
//! lookups with XOR (multiplication distributes over the bitwise parts
//! of the operand):
//!
//! ```text
//! c * x  =  c * (x_lo + x_hi)  =  T_lo[x_lo] ^ T_hi[x_hi]
//! ```
//!
//! - [`Gf16`]: one 16-entry table — the whole field, 16 bytes.
//! - [`Gf256`]: low/high *nibble* tables, 2 × 16 bytes.
//! - [`Gf65536`]: low/high nibble tables (4 × 16 × u16 = 128 bytes) for
//!   mid-size slices, upgraded to low/high *byte* tables
//!   (2 × 256 × u16 = 1 KiB, still L1-resident) once the slice is long
//!   enough to amortize the larger build.
//!
//! All tables are branch-free in the element loop and stay resident in
//! L1, so throughput is bounded by two (or four) L1 loads per element
//! instead of L2-missing log/exp probes. Short slices, where the table
//! build would dominate, fall back to the original log-domain loop —
//! kept here as [`mul_fallback`]-style twins so the executable spec
//! remains in one place.
//!
//! The `c == 1` accumulate path (`dst[i] ^= src[i]`, the single hottest
//! kernel under Reed-Solomon decode) is XOR over `u64`-packed words:
//! `chunks_exact` blocks are assembled with `from_le_bytes`-style
//! packing — safe code only, `#![forbid(unsafe_code)]` stands — and the
//! compiler lowers the assembly/disassembly of each block to plain
//! 64-bit loads and stores.
//!
//! Every function here is pinned element-for-element against the scalar
//! reference kernels by `crates/gf` unit tests and the workspace
//! equivalence suite (`tests/codec_equivalence.rs`), across odd lengths
//! and unaligned tails.
//!
//! [`Gf16`]: crate::Gf16
//! [`Gf256`]: crate::Gf256
//! [`Gf65536`]: crate::Gf65536

use crate::tables::Tables;

/// Minimum slice length before any split table is built; below this the
/// log-domain loop wins.
const SPLIT_MIN: usize = 32;

/// Minimum slice length before [`gf65536`] upgrades from nibble tables
/// (60 products to build) to byte tables (510 products to build).
const BYTE_TABLE_MIN: usize = 1024;

/// GF(2^4) packed kernels: the "split" table is the whole field.
pub(crate) mod gf16 {
    use super::{Tables, SPLIT_MIN};
    use crate::field::Gf16;
    use crate::tables;

    /// `T[x] = c * x` for the full 16-element field.
    #[inline]
    fn full_table(t: &Tables, c: u8) -> [u8; 16] {
        let lc = t.log[c as usize];
        let mut tab = [0u8; 16];
        for (x, slot) in tab.iter_mut().enumerate().skip(1) {
            *slot = t.exp[(lc + t.log[x]) as usize] as u8;
        }
        tab
    }

    pub(crate) fn mul_slice(c: Gf16, src: &[Gf16], dst: &mut [Gf16]) {
        assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
        if c.raw() == 0 {
            dst.fill(Gf16::new(0));
            return;
        }
        if c.raw() == 1 {
            dst.copy_from_slice(src);
            return;
        }
        let t = tables::tables16();
        if src.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = if s.raw() == 0 {
                    Gf16::new(0)
                } else {
                    Gf16::new(t.exp[(lc + t.log[s.raw() as usize]) as usize] as u8)
                };
            }
            return;
        }
        let tab = full_table(t, c.raw());
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Gf16::new(tab[s.raw() as usize]);
        }
    }

    pub(crate) fn addmul_slice(c: Gf16, src: &[Gf16], dst: &mut [Gf16]) {
        assert_eq!(src.len(), dst.len(), "addmul_slice length mismatch");
        if c.raw() == 0 {
            return;
        }
        if c.raw() == 1 {
            super::xor_u8_repr(src, dst, Gf16::raw, Gf16::new);
            return;
        }
        let t = tables::tables16();
        if src.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                if s.raw() != 0 {
                    *d = Gf16::new(d.raw() ^ t.exp[(lc + t.log[s.raw() as usize]) as usize] as u8);
                }
            }
            return;
        }
        let tab = full_table(t, c.raw());
        for (d, s) in dst.iter_mut().zip(src) {
            *d = Gf16::new(d.raw() ^ tab[s.raw() as usize]);
        }
    }

    pub(crate) fn addmul_rows(coeffs: &[Gf16], srcs: &[&[Gf16]], dst: &mut [Gf16]) {
        super::check_rows_shape(coeffs, srcs, dst);
        if dst.len() < SPLIT_MIN {
            for (&c, src) in coeffs.iter().zip(srcs) {
                addmul_slice(c, src, dst);
            }
            return;
        }
        let t = tables::tables16();
        let len = dst.len();
        let live: Vec<([u8; 16], &[Gf16])> = coeffs
            .iter()
            .zip(srcs)
            .filter(|(c, _)| c.raw() != 0)
            .map(|(&c, &src)| (full_table(t, c.raw()), &src[..len]))
            .collect();
        for (i, d) in dst.iter_mut().enumerate() {
            let mut acc = d.raw();
            for (tab, src) in &live {
                acc ^= tab[src[i].raw() as usize];
            }
            *d = Gf16::new(acc);
        }
    }

    pub(crate) fn mul_slice_in_place(c: Gf16, buf: &mut [Gf16]) {
        if c.raw() == 0 {
            buf.fill(Gf16::new(0));
            return;
        }
        if c.raw() == 1 {
            return;
        }
        let t = tables::tables16();
        if buf.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for b in buf.iter_mut() {
                if b.raw() != 0 {
                    *b = Gf16::new(t.exp[(lc + t.log[b.raw() as usize]) as usize] as u8);
                }
            }
            return;
        }
        let tab = full_table(t, c.raw());
        for b in buf.iter_mut() {
            *b = Gf16::new(tab[b.raw() as usize]);
        }
    }
}

/// GF(2^8) packed kernels: low/high nibble split tables.
pub(crate) mod gf256 {
    use super::{Tables, SPLIT_MIN};
    use crate::field::Gf256;
    use crate::tables;

    /// A nonzero row coefficient prepared for the fused sweep: its
    /// `(lo, hi)` nibble tables plus the source slice they apply to.
    type LiveRow<'a> = (([u8; 16], [u8; 16]), &'a [Gf256]);

    /// `(lo, hi)` with `lo[x] = c * x` and `hi[x] = c * (x << 4)`, so
    /// `c * b = lo[b & 0xf] ^ hi[b >> 4]`.
    #[inline]
    fn nibble_tables(t: &Tables, c: u8) -> ([u8; 16], [u8; 16]) {
        let lc = t.log[c as usize];
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 1..16usize {
            lo[x] = t.exp[(lc + t.log[x]) as usize] as u8;
            hi[x] = t.exp[(lc + t.log[x << 4]) as usize] as u8;
        }
        (lo, hi)
    }

    #[inline]
    fn product(lo: &[u8; 16], hi: &[u8; 16], b: u8) -> u8 {
        lo[(b & 0xf) as usize] ^ hi[(b >> 4) as usize]
    }

    pub(crate) fn mul_slice(c: Gf256, src: &[Gf256], dst: &mut [Gf256]) {
        assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
        if c.raw() == 0 {
            dst.fill(Gf256::new(0));
            return;
        }
        if c.raw() == 1 {
            dst.copy_from_slice(src);
            return;
        }
        let t = tables::tables256();
        if src.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = if s.raw() == 0 {
                    Gf256::new(0)
                } else {
                    Gf256::new(t.exp[(lc + t.log[s.raw() as usize]) as usize] as u8)
                };
            }
            return;
        }
        let (lo, hi) = nibble_tables(t, c.raw());
        // Eight elements per block: one 64-bit word of packed products.
        let mut d_blocks = dst.chunks_exact_mut(8);
        let mut s_blocks = src.chunks_exact(8);
        for (db, sb) in (&mut d_blocks).zip(&mut s_blocks) {
            for (d, s) in db.iter_mut().zip(sb) {
                *d = Gf256::new(product(&lo, &hi, s.raw()));
            }
        }
        for (d, s) in d_blocks.into_remainder().iter_mut().zip(s_blocks.remainder()) {
            *d = Gf256::new(product(&lo, &hi, s.raw()));
        }
    }

    pub(crate) fn addmul_slice(c: Gf256, src: &[Gf256], dst: &mut [Gf256]) {
        assert_eq!(src.len(), dst.len(), "addmul_slice length mismatch");
        if c.raw() == 0 {
            return;
        }
        if c.raw() == 1 {
            super::xor_u8_repr(src, dst, Gf256::raw, Gf256::new);
            return;
        }
        let t = tables::tables256();
        if src.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                if s.raw() != 0 {
                    *d =
                        Gf256::new(d.raw() ^ t.exp[(lc + t.log[s.raw() as usize]) as usize] as u8);
                }
            }
            return;
        }
        let (lo, hi) = nibble_tables(t, c.raw());
        let mut d_blocks = dst.chunks_exact_mut(8);
        let mut s_blocks = src.chunks_exact(8);
        for (db, sb) in (&mut d_blocks).zip(&mut s_blocks) {
            for (d, s) in db.iter_mut().zip(sb) {
                *d = Gf256::new(d.raw() ^ product(&lo, &hi, s.raw()));
            }
        }
        for (d, s) in d_blocks.into_remainder().iter_mut().zip(s_blocks.remainder()) {
            *d = Gf256::new(d.raw() ^ product(&lo, &hi, s.raw()));
        }
    }

    pub(crate) fn addmul_rows(coeffs: &[Gf256], srcs: &[&[Gf256]], dst: &mut [Gf256]) {
        super::check_rows_shape(coeffs, srcs, dst);
        if dst.len() < SPLIT_MIN {
            for (&c, src) in coeffs.iter().zip(srcs) {
                addmul_slice(c, src, dst);
            }
            return;
        }
        let t = tables::tables256();
        let len = dst.len();
        let live: Vec<LiveRow<'_>> = coeffs
            .iter()
            .zip(srcs)
            .filter(|(c, _)| c.raw() != 0)
            .map(|(&c, &src)| (nibble_tables(t, c.raw()), &src[..len]))
            .collect();
        for (i, d) in dst.iter_mut().enumerate() {
            let mut acc = d.raw();
            for ((lo, hi), src) in &live {
                acc ^= product(lo, hi, src[i].raw());
            }
            *d = Gf256::new(acc);
        }
    }

    pub(crate) fn mul_slice_in_place(c: Gf256, buf: &mut [Gf256]) {
        if c.raw() == 0 {
            buf.fill(Gf256::new(0));
            return;
        }
        if c.raw() == 1 {
            return;
        }
        let t = tables::tables256();
        if buf.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for b in buf.iter_mut() {
                if b.raw() != 0 {
                    *b = Gf256::new(t.exp[(lc + t.log[b.raw() as usize]) as usize] as u8);
                }
            }
            return;
        }
        let (lo, hi) = nibble_tables(t, c.raw());
        for b in buf.iter_mut() {
            *b = Gf256::new(product(&lo, &hi, b.raw()));
        }
    }
}

/// GF(2^16) packed kernels: nibble split tables, upgraded to byte split
/// tables for long slices. This is the workspace's default coding field
/// — the striped codec runs every stripe through these.
pub(crate) mod gf65536 {
    use super::{Tables, BYTE_TABLE_MIN, SPLIT_MIN};
    use crate::field::Gf65536;
    use crate::tables;

    /// Four nibble tables: `tab[j][x] = c * (x << 4j)`.
    #[inline]
    fn nibble_tables(t: &Tables, c: u16) -> [[u16; 16]; 4] {
        let lc = t.log[c as usize];
        let mut tabs = [[0u16; 16]; 4];
        for (j, tab) in tabs.iter_mut().enumerate() {
            for (x, slot) in tab.iter_mut().enumerate().skip(1) {
                *slot = t.exp[(lc + t.log[x << (4 * j)]) as usize] as u16;
            }
        }
        tabs
    }

    /// Two byte tables: `lo[x] = c * x`, `hi[x] = c * (x << 8)`; 1 KiB
    /// total, L1-resident, one load per operand byte.
    #[inline]
    fn byte_tables(t: &Tables, c: u16) -> ([u16; 256], [u16; 256]) {
        let lc = t.log[c as usize];
        let mut lo = [0u16; 256];
        let mut hi = [0u16; 256];
        for x in 1..256usize {
            lo[x] = t.exp[(lc + t.log[x]) as usize] as u16;
            hi[x] = t.exp[(lc + t.log[x << 8]) as usize] as u16;
        }
        (lo, hi)
    }

    #[inline]
    fn nib_product(tabs: &[[u16; 16]; 4], s: u16) -> u16 {
        tabs[0][(s & 0xf) as usize]
            ^ tabs[1][((s >> 4) & 0xf) as usize]
            ^ tabs[2][((s >> 8) & 0xf) as usize]
            ^ tabs[3][(s >> 12) as usize]
    }

    #[inline]
    fn byte_product(lo: &[u16; 256], hi: &[u16; 256], s: u16) -> u16 {
        lo[(s & 0xff) as usize] ^ hi[(s >> 8) as usize]
    }

    pub(crate) fn mul_slice(c: Gf65536, src: &[Gf65536], dst: &mut [Gf65536]) {
        assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
        if c.raw() == 0 {
            dst.fill(Gf65536::new(0));
            return;
        }
        if c.raw() == 1 {
            dst.copy_from_slice(src);
            return;
        }
        let t = tables::tables65536();
        if src.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = if s.raw() == 0 {
                    Gf65536::new(0)
                } else {
                    Gf65536::new(t.exp[(lc + t.log[s.raw() as usize]) as usize] as u16)
                };
            }
            return;
        }
        if src.len() < BYTE_TABLE_MIN {
            let tabs = nibble_tables(t, c.raw());
            for (d, s) in dst.iter_mut().zip(src) {
                *d = Gf65536::new(nib_product(&tabs, s.raw()));
            }
            return;
        }
        let (lo, hi) = byte_tables(t, c.raw());
        // Four elements per block: one 64-bit word of packed products.
        let mut d_blocks = dst.chunks_exact_mut(4);
        let mut s_blocks = src.chunks_exact(4);
        for (db, sb) in (&mut d_blocks).zip(&mut s_blocks) {
            for (d, s) in db.iter_mut().zip(sb) {
                *d = Gf65536::new(byte_product(&lo, &hi, s.raw()));
            }
        }
        for (d, s) in d_blocks.into_remainder().iter_mut().zip(s_blocks.remainder()) {
            *d = Gf65536::new(byte_product(&lo, &hi, s.raw()));
        }
    }

    pub(crate) fn addmul_slice(c: Gf65536, src: &[Gf65536], dst: &mut [Gf65536]) {
        assert_eq!(src.len(), dst.len(), "addmul_slice length mismatch");
        if c.raw() == 0 {
            return;
        }
        if c.raw() == 1 {
            super::xor_u16_repr(src, dst, Gf65536::raw, Gf65536::new);
            return;
        }
        let t = tables::tables65536();
        if src.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                if s.raw() != 0 {
                    *d = Gf65536::new(
                        d.raw() ^ t.exp[(lc + t.log[s.raw() as usize]) as usize] as u16,
                    );
                }
            }
            return;
        }
        if src.len() < BYTE_TABLE_MIN {
            let tabs = nibble_tables(t, c.raw());
            for (d, s) in dst.iter_mut().zip(src) {
                *d = Gf65536::new(d.raw() ^ nib_product(&tabs, s.raw()));
            }
            return;
        }
        let (lo, hi) = byte_tables(t, c.raw());
        let mut d_blocks = dst.chunks_exact_mut(4);
        let mut s_blocks = src.chunks_exact(4);
        for (db, sb) in (&mut d_blocks).zip(&mut s_blocks) {
            for (d, s) in db.iter_mut().zip(sb) {
                *d = Gf65536::new(d.raw() ^ byte_product(&lo, &hi, s.raw()));
            }
        }
        for (d, s) in d_blocks.into_remainder().iter_mut().zip(s_blocks.remainder()) {
            *d = Gf65536::new(d.raw() ^ byte_product(&lo, &hi, s.raw()));
        }
    }

    /// Fused `dst[i] += Σ_j coeffs[j] * srcs[j][i]`: one split-table
    /// pair per live source is built up front, then the accumulator is
    /// visited exactly once — every source's product XORs into a
    /// register before the single store. Compared with one
    /// [`addmul_slice`] pass per source this removes `k - 1`
    /// load+store round-trips over `dst` per element, which is the
    /// dominant traffic of a generator-matrix row application.
    pub(crate) fn addmul_rows(coeffs: &[Gf65536], srcs: &[&[Gf65536]], dst: &mut [Gf65536]) {
        super::check_rows_shape(coeffs, srcs, dst);
        if dst.len() < SPLIT_MIN {
            for (&c, src) in coeffs.iter().zip(srcs) {
                addmul_slice(c, src, dst);
            }
            return;
        }
        let t = tables::tables65536();
        let len = dst.len();
        if len < BYTE_TABLE_MIN {
            let live: Vec<([[u16; 16]; 4], &[Gf65536])> = coeffs
                .iter()
                .zip(srcs)
                .filter(|(c, _)| c.raw() != 0)
                .map(|(&c, &src)| (nibble_tables(t, c.raw()), &src[..len]))
                .collect();
            for (i, d) in dst.iter_mut().enumerate() {
                let mut acc = d.raw();
                for (tabs, src) in &live {
                    acc ^= nib_product(tabs, src[i].raw());
                }
                *d = Gf65536::new(acc);
            }
            return;
        }
        // Byte tier: prepared tables + the shared fused group loop.
        let live_tables: Vec<super::PreparedMul65536> = coeffs
            .iter()
            .filter(|c| c.raw() != 0)
            .map(|&c| super::PreparedMul65536::new(c))
            .collect();
        let live_srcs: Vec<&[Gf65536]> = coeffs
            .iter()
            .zip(srcs)
            .filter(|(c, _)| c.raw() != 0)
            .map(|(_, &src)| src)
            .collect();
        super::addmul_rows_prepared(&live_tables, &live_srcs, dst);
    }

    pub(crate) fn mul_slice_in_place(c: Gf65536, buf: &mut [Gf65536]) {
        if c.raw() == 0 {
            buf.fill(Gf65536::new(0));
            return;
        }
        if c.raw() == 1 {
            return;
        }
        let t = tables::tables65536();
        if buf.len() < SPLIT_MIN {
            let lc = t.log[c.raw() as usize];
            for b in buf.iter_mut() {
                if b.raw() != 0 {
                    *b = Gf65536::new(t.exp[(lc + t.log[b.raw() as usize]) as usize] as u16);
                }
            }
            return;
        }
        if buf.len() < BYTE_TABLE_MIN {
            let tabs = nibble_tables(t, c.raw());
            for b in buf.iter_mut() {
                *b = Gf65536::new(nib_product(&tabs, b.raw()));
            }
            return;
        }
        let (lo, hi) = byte_tables(t, c.raw());
        for b in buf.iter_mut() {
            *b = Gf65536::new(byte_product(&lo, &hi, b.raw()));
        }
    }
}

/// Shared shape assertions for the fused `addmul_rows` kernels.
#[inline]
fn check_rows_shape<T>(coeffs: &[T], srcs: &[&[T]], dst: &[T]) {
    assert_eq!(coeffs.len(), srcs.len(), "addmul_rows shape mismatch");
    for src in srcs {
        assert_eq!(src.len(), dst.len(), "addmul_rows length mismatch");
    }
}

use crate::field::Gf65536;
use crate::tables;

/// A GF(2^16) multiplier prepared into low/high byte split tables:
/// `lo[x] = c * x`, `hi[x] = c * (x << 8)`, so
/// `c * s = lo[s & 0xff] ^ hi[s >> 8]` — 1 KiB per multiplier,
/// L1-resident, two loads per element.
///
/// Building a table costs 510 log/exp products, so preparation pays
/// once the multiplier is applied across at least ~1 KiB of data — or,
/// better, when the same prepared table is reused across many calls:
/// a Reed-Solomon generator matrix is fixed per `(n, k)` geometry, so
/// its `n·k` prepared tables amortize over every value ever encoded.
///
/// # Examples
///
/// ```
/// use mvbc_gf::{Field, Gf65536, PreparedMul65536};
///
/// let c = Gf65536::new(0x1d2c);
/// let p = PreparedMul65536::new(c);
/// let x = Gf65536::new(0xbeef);
/// assert_eq!(p.mul(x), c * x);
/// ```
#[derive(Debug, Clone)]
pub struct PreparedMul65536 {
    lo: [u16; 256],
    hi: [u16; 256],
}

impl PreparedMul65536 {
    /// Prepares the split tables for multiplier `c` (any `c`, including
    /// 0 and 1).
    pub fn new(c: Gf65536) -> Self {
        let mut lo = [0u16; 256];
        let mut hi = [0u16; 256];
        if c.raw() != 0 {
            let t = tables::tables65536();
            let lc = t.log[c.raw() as usize];
            for x in 1..256usize {
                lo[x] = t.exp[(lc + t.log[x]) as usize] as u16;
                hi[x] = t.exp[(lc + t.log[x << 8]) as usize] as u16;
            }
        }
        PreparedMul65536 { lo, hi }
    }

    /// `c * x` through the prepared tables.
    #[inline]
    pub fn mul(&self, x: Gf65536) -> Gf65536 {
        Gf65536::new(self.product(x.raw()))
    }

    #[inline]
    fn product(&self, s: u16) -> u16 {
        self.lo[(s & 0xff) as usize] ^ self.hi[(s >> 8) as usize]
    }
}

/// `dst[i] = Σ_j tables[j] * srcs[j][i]` — overwrite: the previous
/// contents of `dst` are not read, saving the accumulator load of
/// [`addmul_rows_prepared`] when the destination starts from zero
/// (every striped-codec row does).
///
/// # Panics
///
/// Panics when `tables` and `srcs` differ in length, or any source
/// differs in length from `dst`.
pub fn mul_rows_prepared(tables: &[PreparedMul65536], srcs: &[&[Gf65536]], dst: &mut [Gf65536]) {
    assert_eq!(tables.len(), srcs.len(), "prepared rows shape mismatch");
    for src in srcs {
        assert_eq!(src.len(), dst.len(), "prepared rows length mismatch");
    }
    if tables.is_empty() {
        dst.fill(Gf65536::new(0));
        return;
    }
    fused_groups::<false>(tables, srcs, dst);
}

/// `dst[i] += Σ_j tables[j] * srcs[j][i]` with prepared multipliers.
///
/// # Panics
///
/// Panics when `tables` and `srcs` differ in length, or any source
/// differs in length from `dst`.
pub fn addmul_rows_prepared(tables: &[PreparedMul65536], srcs: &[&[Gf65536]], dst: &mut [Gf65536]) {
    assert_eq!(tables.len(), srcs.len(), "prepared rows shape mismatch");
    for src in srcs {
        assert_eq!(src.len(), dst.len(), "prepared rows length mismatch");
    }
    if tables.is_empty() {
        return;
    }
    fused_groups::<true>(tables, srcs, dst);
}

/// Dispatches to monomorphic fixed-arity loops in groups of three
/// sources: a dynamic source loop inside the element loop defeats
/// unrolling and hides the table base pointers behind an extra
/// indirection, while groups of three bound the accumulator
/// round-trips at `ceil(k / 3)` passes over `dst`. `ACC = false`
/// applies only to the first group (it overwrites); later groups
/// always accumulate.
fn fused_groups<const ACC: bool>(
    tables: &[PreparedMul65536],
    srcs: &[&[Gf65536]],
    dst: &mut [Gf65536],
) {
    let mut i = 0;
    let mut first = true;
    while tables.len() - i >= 3 {
        if first && !ACC {
            fused3::<false>(
                (&tables[i], srcs[i]),
                (&tables[i + 1], srcs[i + 1]),
                (&tables[i + 2], srcs[i + 2]),
                dst,
            );
        } else {
            fused3::<true>(
                (&tables[i], srcs[i]),
                (&tables[i + 1], srcs[i + 1]),
                (&tables[i + 2], srcs[i + 2]),
                dst,
            );
        }
        first = false;
        i += 3;
    }
    match tables.len() - i {
        1 if first && !ACC => fused1::<false>((&tables[i], srcs[i]), dst),
        1 => fused1::<true>((&tables[i], srcs[i]), dst),
        2 if first && !ACC => fused2::<false>((&tables[i], srcs[i]), (&tables[i + 1], srcs[i + 1]), dst),
        2 => fused2::<true>((&tables[i], srcs[i]), (&tables[i + 1], srcs[i + 1]), dst),
        _ => {}
    }
}

/// One prepared source; `ACC` selects accumulate vs overwrite.
fn fused1<const ACC: bool>(a: (&PreparedMul65536, &[Gf65536]), dst: &mut [Gf65536]) {
    let (ta, sa) = a;
    for (d, s) in dst.iter_mut().zip(sa) {
        let base = if ACC { d.raw() } else { 0 };
        *d = Gf65536::new(base ^ ta.product(s.raw()));
    }
}

/// Two prepared sources fused into one pass; four elements per block
/// for unrolled, independent lookup chains.
fn fused2<const ACC: bool>(
    a: (&PreparedMul65536, &[Gf65536]),
    b: (&PreparedMul65536, &[Gf65536]),
    dst: &mut [Gf65536],
) {
    let (ta, sa) = a;
    let (tb, sb) = b;
    let mut d_blocks = dst.chunks_exact_mut(4);
    let mut a_blocks = sa.chunks_exact(4);
    let mut b_blocks = sb.chunks_exact(4);
    for ((db, ab), bb) in (&mut d_blocks).zip(&mut a_blocks).zip(&mut b_blocks) {
        for i in 0..4 {
            let base = if ACC { db[i].raw() } else { 0 };
            db[i] = Gf65536::new(base ^ ta.product(ab[i].raw()) ^ tb.product(bb[i].raw()));
        }
    }
    for ((d, s_a), s_b) in d_blocks
        .into_remainder()
        .iter_mut()
        .zip(a_blocks.remainder())
        .zip(b_blocks.remainder())
    {
        let base = if ACC { d.raw() } else { 0 };
        *d = Gf65536::new(base ^ ta.product(s_a.raw()) ^ tb.product(s_b.raw()));
    }
}

/// Three prepared sources fused into one pass; four elements per block
/// for unrolled, independent lookup chains.
fn fused3<const ACC: bool>(
    a: (&PreparedMul65536, &[Gf65536]),
    b: (&PreparedMul65536, &[Gf65536]),
    c: (&PreparedMul65536, &[Gf65536]),
    dst: &mut [Gf65536],
) {
    let (ta, sa) = a;
    let (tb, sb) = b;
    let (tc, sc) = c;
    let mut d_blocks = dst.chunks_exact_mut(4);
    let mut a_blocks = sa.chunks_exact(4);
    let mut b_blocks = sb.chunks_exact(4);
    let mut c_blocks = sc.chunks_exact(4);
    for (((db, ab), bb), cb) in
        (&mut d_blocks).zip(&mut a_blocks).zip(&mut b_blocks).zip(&mut c_blocks)
    {
        for i in 0..4 {
            let base = if ACC { db[i].raw() } else { 0 };
            db[i] = Gf65536::new(
                base ^ ta.product(ab[i].raw()) ^ tb.product(bb[i].raw()) ^ tc.product(cb[i].raw()),
            );
        }
    }
    for (((d, s_a), s_b), s_c) in d_blocks
        .into_remainder()
        .iter_mut()
        .zip(a_blocks.remainder())
        .zip(b_blocks.remainder())
        .zip(c_blocks.remainder())
    {
        let base = if ACC { d.raw() } else { 0 };
        *d = Gf65536::new(
            base ^ ta.product(s_a.raw()) ^ tb.product(s_b.raw()) ^ tc.product(s_c.raw()),
        );
    }
}

/// `dst[i] ^= src[i]` for u8-repr fields, eight elements (one `u64`
/// word) per `chunks_exact` block. The byte↔word assembly is safe code
/// the compiler folds into single 64-bit loads/stores.
#[inline]
fn xor_u8_repr<T: Copy>(src: &[T], dst: &mut [T], raw: impl Fn(T) -> u8, new: impl Fn(u8) -> T) {
    let mut d_blocks = dst.chunks_exact_mut(8);
    let mut s_blocks = src.chunks_exact(8);
    for (db, sb) in (&mut d_blocks).zip(&mut s_blocks) {
        let mut dw = [0u8; 8];
        let mut sw = [0u8; 8];
        for i in 0..8 {
            dw[i] = raw(db[i]);
            sw[i] = raw(sb[i]);
        }
        let w = u64::from_le_bytes(dw) ^ u64::from_le_bytes(sw);
        for (d, &b) in db.iter_mut().zip(w.to_le_bytes().iter()) {
            *d = new(b);
        }
    }
    for (d, s) in d_blocks.into_remainder().iter_mut().zip(s_blocks.remainder()) {
        *d = new(raw(*d) ^ raw(*s));
    }
}

/// `dst[i] ^= src[i]` for u16-repr fields, four elements (one `u64`
/// word) per `chunks_exact` block.
#[inline]
fn xor_u16_repr<T: Copy>(src: &[T], dst: &mut [T], raw: impl Fn(T) -> u16, new: impl Fn(u16) -> T) {
    let mut d_blocks = dst.chunks_exact_mut(4);
    let mut s_blocks = src.chunks_exact(4);
    for (db, sb) in (&mut d_blocks).zip(&mut s_blocks) {
        let mut dw = 0u64;
        let mut sw = 0u64;
        for i in 0..4 {
            dw |= u64::from(raw(db[i])) << (16 * i);
            sw |= u64::from(raw(sb[i])) << (16 * i);
        }
        let w = dw ^ sw;
        for (i, d) in db.iter_mut().enumerate() {
            *d = new((w >> (16 * i)) as u16);
        }
    }
    for (d, s) in d_blocks.into_remainder().iter_mut().zip(s_blocks.remainder()) {
        *d = new(raw(*d) ^ raw(*s));
    }
}

#[cfg(test)]
mod tests {
    use crate::{kernels, Field, Gf16, Gf256, Gf65536};

    fn pseudo_random(len: usize, seed: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    /// Every table tier and every tail shape against the scalar spec:
    /// lengths straddle the log-domain→nibble and nibble→byte-table
    /// thresholds and the 4/8-element packing blocks.
    fn check_tiers<F: Field>() {
        let lens = [
            0usize, 1, 3, 7, 8, 9, 31, 32, 33, 63, 64, 65, 255, 256, 257, 1023, 1024, 1025, 4097,
        ];
        for (i, &len) in lens.iter().enumerate() {
            let seed = 0xC0DE + i as u64;
            let src: Vec<F> = pseudo_random(len, seed).into_iter().map(F::from_u64).collect();
            let acc: Vec<F> =
                pseudo_random(len, seed ^ 0xbeef).into_iter().map(F::from_u64).collect();
            for craw in [0u64, 1, 2, 3, 0x0b, 0x55, 0xa7, F::ORDER / 2 + 1, F::ORDER - 1] {
                let c = F::from_u64(craw);

                let mut fast = vec![F::ZERO; len];
                let mut slow = vec![F::ZERO; len];
                kernels::mul_slice(c, &src, &mut fast);
                kernels::mul_slice_scalar(c, &src, &mut slow);
                assert_eq!(fast, slow, "mul_slice len={len} c={craw:#x}");

                let mut fast = acc.clone();
                let mut slow = acc.clone();
                kernels::addmul_slice(c, &src, &mut fast);
                kernels::addmul_slice_scalar(c, &src, &mut slow);
                assert_eq!(fast, slow, "addmul_slice len={len} c={craw:#x}");

                let mut fast = src.clone();
                kernels::mul_slice_in_place(c, &mut fast);
                let expect: Vec<F> = src.iter().map(|&s| c * s).collect();
                assert_eq!(fast, expect, "mul_slice_in_place len={len} c={craw:#x}");
            }
        }
    }

    #[test]
    fn packed_tiers_match_scalar_gf16() {
        check_tiers::<Gf16>();
    }

    #[test]
    fn packed_tiers_match_scalar_gf256() {
        check_tiers::<Gf256>();
    }

    #[test]
    fn packed_tiers_match_scalar_gf65536() {
        check_tiers::<Gf65536>();
    }

    /// The fused row kernel against its scalar spec: every table tier,
    /// several source counts, and coefficient vectors that include the
    /// short-circuited 0 and 1 multipliers.
    fn check_rows<F: Field>() {
        for &len in &[0usize, 1, 31, 33, 257, 1023, 1025, 4097] {
            for k in [0usize, 1, 2, 3, 5] {
                let srcs: Vec<Vec<F>> = (0..k)
                    .map(|j| {
                        pseudo_random(len, 0xAB5E + j as u64 * 31 + len as u64)
                            .into_iter()
                            .map(F::from_u64)
                            .collect()
                    })
                    .collect();
                let src_refs: Vec<&[F]> = srcs.iter().map(Vec::as_slice).collect();
                let coeffs: Vec<F> = (0..k)
                    .map(|j| F::from_u64([0u64, 1, 2, 0x55, F::ORDER - 1][j % 5]))
                    .collect();
                let acc: Vec<F> =
                    pseudo_random(len, len as u64 ^ 0xF00D).into_iter().map(F::from_u64).collect();
                let mut fast = acc.clone();
                let mut slow = acc.clone();
                kernels::addmul_rows(&coeffs, &src_refs, &mut fast);
                kernels::addmul_rows_scalar(&coeffs, &src_refs, &mut slow);
                assert_eq!(fast, slow, "addmul_rows len={len} k={k}");
            }
        }
    }

    #[test]
    fn fused_rows_match_scalar_gf16() {
        check_rows::<Gf16>();
    }

    #[test]
    fn fused_rows_match_scalar_gf256() {
        check_rows::<Gf256>();
    }

    #[test]
    fn fused_rows_match_scalar_gf65536() {
        check_rows::<Gf65536>();
    }

    /// The prepared-table API against the scalar spec, in both
    /// overwrite and accumulate modes, across group shapes 0..=7.
    #[test]
    fn prepared_rows_match_scalar() {
        use crate::{addmul_rows_prepared, mul_rows_prepared, PreparedMul65536};
        for &len in &[0usize, 1, 3, 4, 5, 257, 1025] {
            for k in 0..=7usize {
                let coeffs: Vec<Gf65536> = (0..k)
                    .map(|j| Gf65536::from_u64([0u64, 1, 7, 0x1d2c, 0xffff][j % 5]))
                    .collect();
                let tables: Vec<PreparedMul65536> =
                    coeffs.iter().map(|&c| PreparedMul65536::new(c)).collect();
                let srcs: Vec<Vec<Gf65536>> = (0..k)
                    .map(|j| {
                        pseudo_random(len, 0xD00D + j as u64)
                            .into_iter()
                            .map(Gf65536::from_u64)
                            .collect()
                    })
                    .collect();
                let src_refs: Vec<&[Gf65536]> = srcs.iter().map(Vec::as_slice).collect();
                let acc: Vec<Gf65536> =
                    pseudo_random(len, 0xACC + len as u64).into_iter().map(Gf65536::from_u64).collect();

                let mut over = acc.clone();
                mul_rows_prepared(&tables, &src_refs, &mut over);
                let mut expect = vec![Gf65536::ZERO; len];
                kernels::addmul_rows_scalar(&coeffs, &src_refs, &mut expect);
                assert_eq!(over, expect, "mul_rows_prepared len={len} k={k}");

                let mut add = acc.clone();
                addmul_rows_prepared(&tables, &src_refs, &mut add);
                let mut expect = acc.clone();
                kernels::addmul_rows_scalar(&coeffs, &src_refs, &mut expect);
                assert_eq!(add, expect, "addmul_rows_prepared len={len} k={k}");
            }
        }
    }

    /// The XOR fast path is exercised with misaligned tails of every
    /// residue class modulo the packing block.
    #[test]
    fn xor_path_covers_all_tail_residues() {
        for len in 0..40usize {
            let src: Vec<Gf65536> =
                pseudo_random(len, len as u64 + 1).into_iter().map(Gf65536::from_u64).collect();
            let acc: Vec<Gf65536> =
                pseudo_random(len, len as u64 + 77).into_iter().map(Gf65536::from_u64).collect();
            let mut fast = acc.clone();
            let mut slow = acc.clone();
            kernels::addmul_slice(Gf65536::ONE, &src, &mut fast);
            kernels::addmul_slice_scalar(Gf65536::ONE, &src, &mut slow);
            assert_eq!(fast, slow, "xor tail len={len}");

            let src8: Vec<Gf256> =
                pseudo_random(len, len as u64 + 5).into_iter().map(Gf256::from_u64).collect();
            let mut fast8 = vec![Gf256::new(0xa5); len];
            let mut slow8 = fast8.clone();
            kernels::addmul_slice(Gf256::ONE, &src8, &mut fast8);
            kernels::addmul_slice_scalar(Gf256::ONE, &src8, &mut slow8);
            assert_eq!(fast8, slow8, "xor tail (u8 repr) len={len}");
        }
    }
}
