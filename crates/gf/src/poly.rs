//! Dense univariate polynomials over a [`Field`].
//!
//! Used by the Reed-Solomon codec: encoding is polynomial evaluation,
//! erasure decoding is Lagrange interpolation, and Berlekamp-Welch error
//! correction needs polynomial multiplication and long division.

use std::fmt;

use crate::Field;

/// Error returned by [`interpolate`] when the evaluation points are not
/// pairwise distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpolateError;

impl fmt::Display for InterpolateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpolation points are not pairwise distinct")
    }
}

impl std::error::Error for InterpolateError {}

/// A dense polynomial `c[0] + c[1] x + ... + c[d] x^d` over `F`.
///
/// The representation is normalised: the leading coefficient is non-zero
/// (the zero polynomial has an empty coefficient vector).
///
/// # Examples
///
/// ```
/// use mvbc_gf::{Field, Gf256, Poly};
///
/// // p(x) = 3 + x
/// let p = Poly::from_coeffs(vec![Gf256::new(3), Gf256::new(1)]);
/// assert_eq!(p.eval(Gf256::new(5)), Gf256::new(3) + Gf256::new(5));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly<F: Field> {
    coeffs: Vec<F>,
}

impl<F: Field> fmt::Debug for Poly<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}*x^{i}")?;
        }
        write!(f, ")")
    }
}

impl<F: Field> Poly<F> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// Builds a polynomial from coefficients `c[0] + c[1] x + ...`,
    /// trimming leading zeros.
    pub fn from_coeffs(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self::from_coeffs(vec![c])
    }

    /// The monomial `c * x^d`.
    pub fn monomial(c: F, d: usize) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![F::ZERO; d + 1];
        coeffs[d] = c;
        Poly { coeffs }
    }

    /// Coefficient view, lowest degree first. Empty for the zero polynomial.
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Consumes the polynomial, returning its coefficients.
    pub fn into_coeffs(self) -> Vec<F> {
        self.coeffs
    }

    /// The coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> F {
        self.coeffs.get(i).copied().unwrap_or(F::ZERO)
    }

    /// `None` for the zero polynomial, `Some(degree)` otherwise.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the polynomial at `x` via Horner's rule.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Polynomial addition (characteristic 2: also subtraction).
    pub fn add(&self, rhs: &Self) -> Self {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i) + rhs.coeff(i));
        }
        Self::from_coeffs(out)
    }

    /// Polynomial multiplication (schoolbook; degrees here are small).
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        let mut out = vec![F::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Self::from_coeffs(out)
    }

    /// Multiplies every coefficient by the scalar `s`.
    pub fn scale(&self, s: F) -> Self {
        Self::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Long division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and
    /// `deg(remainder) < deg(divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dd = divisor.degree().expect("non-zero divisor");
        let lead_inv = divisor.coeffs[dd].inv().expect("leading coeff non-zero");
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (Self::zero(), self.clone());
        }
        let qlen = rem.len() - dd;
        let mut quot = vec![F::ZERO; qlen];
        for qi in (0..qlen).rev() {
            let c = rem[qi + dd] * lead_inv;
            quot[qi] = c;
            if c.is_zero() {
                continue;
            }
            for (di, &dc) in divisor.coeffs.iter().enumerate() {
                rem[qi + di] -= c * dc;
            }
        }
        (Self::from_coeffs(quot), Self::from_coeffs(rem))
    }

    /// Formal derivative (over characteristic 2, even-power terms vanish).
    pub fn derivative(&self) -> Self {
        let mut out = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate().skip(1) {
            // i * c in characteristic 2 is c when i is odd, 0 when even.
            out.push(if i % 2 == 1 { c } else { F::ZERO });
        }
        Self::from_coeffs(out)
    }
}

/// Lagrange interpolation: the unique polynomial of degree `< points.len()`
/// passing through all `(x, y)` pairs.
///
/// # Errors
///
/// Returns [`InterpolateError`] when two points share an `x` coordinate.
///
/// # Examples
///
/// ```
/// use mvbc_gf::{interpolate, Field, Gf256};
///
/// let pts = [
///     (Gf256::new(1), Gf256::new(7)),
///     (Gf256::new(2), Gf256::new(11)),
///     (Gf256::new(3), Gf256::new(13)),
/// ];
/// let p = interpolate(&pts)?;
/// for (x, y) in pts {
///     assert_eq!(p.eval(x), y);
/// }
/// # Ok::<(), mvbc_gf::InterpolateError>(())
/// ```
pub fn interpolate<F: Field>(points: &[(F, F)]) -> Result<Poly<F>, InterpolateError> {
    for (i, (xi, _)) in points.iter().enumerate() {
        for (xj, _) in &points[..i] {
            if xi == xj {
                return Err(InterpolateError);
            }
        }
    }
    let mut acc = Poly::zero();
    for (i, &(xi, yi)) in points.iter().enumerate() {
        if yi.is_zero() {
            continue;
        }
        // Basis polynomial l_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
        let mut basis = Poly::constant(F::ONE);
        let mut denom = F::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if j == i {
                continue;
            }
            basis = basis.mul(&Poly::from_coeffs(vec![xj, F::ONE])); // (x + xj) == (x - xj)
            denom *= xi - xj;
        }
        let scale = yi * denom.inv().expect("distinct points imply non-zero denominator");
        acc = acc.add(&basis.scale(scale));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf65536};

    fn p256(cs: &[u8]) -> Poly<Gf256> {
        Poly::from_coeffs(cs.iter().map(|&c| Gf256::new(c)).collect())
    }

    #[test]
    fn zero_polynomial_properties() {
        let z = Poly::<Gf256>::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(Gf256::new(17)), Gf256::ZERO);
        assert_eq!(format!("{z:?}"), "Poly(0)");
    }

    #[test]
    fn from_coeffs_trims_leading_zeros() {
        let p = p256(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs().len(), 2);
    }

    #[test]
    fn eval_horner_matches_naive() {
        let p = p256(&[3, 1, 4, 1, 5]);
        for x in 0..=255u8 {
            let x = Gf256::new(x);
            let mut naive = Gf256::ZERO;
            let mut xp = Gf256::ONE;
            for &c in p.coeffs() {
                naive += c * xp;
                xp *= x;
            }
            assert_eq!(p.eval(x), naive);
        }
    }

    #[test]
    fn add_is_char2_involution() {
        let p = p256(&[1, 2, 3]);
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn mul_degrees_add() {
        let a = p256(&[1, 1]); // deg 1
        let b = p256(&[2, 0, 1]); // deg 2
        assert_eq!(a.mul(&b).degree(), Some(3));
        assert_eq!(a.mul(&Poly::zero()).degree(), None);
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let a = p256(&[1, 7, 3]);
        let b = p256(&[9, 2]);
        let c = p256(&[5, 0, 0, 8]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn div_rem_identity() {
        let a = p256(&[7, 3, 0, 1, 9]);
        let d = p256(&[2, 1, 1]);
        let (q, r) = a.div_rem(&d);
        assert!(r.degree() < d.degree());
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn div_rem_by_larger_degree_gives_zero_quotient() {
        let a = p256(&[7, 3]);
        let d = p256(&[2, 1, 1]);
        let (q, r) = a.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_rem_by_zero_panics() {
        let _ = p256(&[1]).div_rem(&Poly::zero());
    }

    #[test]
    fn monomial_and_constant() {
        let m = Poly::monomial(Gf256::new(5), 3);
        assert_eq!(m.degree(), Some(3));
        assert_eq!(m.coeff(3), Gf256::new(5));
        assert_eq!(Poly::monomial(Gf256::ZERO, 3), Poly::zero());
        assert_eq!(Poly::constant(Gf256::new(9)).degree(), Some(0));
        assert_eq!(Poly::constant(Gf256::ZERO).degree(), None);
    }

    #[test]
    fn derivative_char2() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 in char 2.
        let p = p256(&[1, 2, 3, 4]);
        let d = p.derivative();
        assert_eq!(d.coeff(0), Gf256::new(2));
        assert_eq!(d.coeff(1), Gf256::ZERO);
        assert_eq!(d.coeff(2), Gf256::new(4));
    }

    #[test]
    fn interpolate_roundtrip() {
        let p = p256(&[11, 22, 33, 44]);
        let pts: Vec<_> = (0..7)
            .map(|i| {
                let x = Gf256::alpha(i);
                (x, p.eval(x))
            })
            .collect();
        let q = interpolate(&pts).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn interpolate_rejects_duplicate_x() {
        let pts = [
            (Gf256::new(1), Gf256::new(5)),
            (Gf256::new(1), Gf256::new(6)),
        ];
        assert_eq!(interpolate(&pts), Err(InterpolateError));
    }

    #[test]
    fn interpolate_degree_bound() {
        let pts: Vec<_> = (0..5)
            .map(|i| (Gf65536::alpha(i), Gf65536::from_u64(i as u64 * 31 + 7)))
            .collect();
        let p = interpolate(&pts).unwrap();
        assert!(p.degree().unwrap_or(0) < 5);
        for (x, y) in pts {
            assert_eq!(p.eval(x), y);
        }
    }

    #[test]
    fn interpolate_single_point() {
        let p = interpolate(&[(Gf256::new(3), Gf256::new(9))]).unwrap();
        assert_eq!(p, Poly::constant(Gf256::new(9)));
    }

    #[test]
    fn interpolate_error_display() {
        let msg = InterpolateError.to_string();
        assert!(msg.contains("distinct"));
    }
}
