//! Lazily-built logarithm/anti-logarithm tables for the GF(2^c) fields.
//!
//! Each binary extension field GF(2^c) is represented by polynomials over
//! GF(2) modulo a fixed primitive polynomial. Multiplication is performed via
//! discrete-log tables: `a * b = exp[(log[a] + log[b]) mod (2^c - 1)]`.

use std::sync::OnceLock;

/// Log/exp tables for one GF(2^c) instance.
#[derive(Debug)]
pub(crate) struct Tables {
    /// `exp[i] = g^i` for `i` in `0 .. 2 * (order - 1)` (doubled so that
    /// `log a + log b` never needs an explicit modulo).
    pub exp: Vec<u32>,
    /// `log[x]` for `x` in `1 .. order`; `log[0]` is unused (set to 0).
    pub log: Vec<u32>,
}

impl Tables {
    /// Builds tables for GF(2^`bits`) defined by `prim_poly` (which must be
    /// primitive so that `x` generates the multiplicative group).
    fn build(bits: u32, prim_poly: u32) -> Self {
        let order: u32 = 1 << bits;
        let group = (order - 1) as usize;
        let mut exp = vec![0u32; 2 * group];
        let mut log = vec![0u32; order as usize];
        let mut x: u32 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(group) {
            *slot = x;
            log[x as usize] = i as u32;
            x <<= 1;
            if x & order != 0 {
                x ^= prim_poly;
            }
        }
        debug_assert_eq!(x, 1, "polynomial 0x{prim_poly:x} is not primitive for 2^{bits}");
        for i in group..2 * group {
            exp[i] = exp[i - group];
        }
        Tables { exp, log }
    }
}

macro_rules! table_singleton {
    ($fn_name:ident, $bits:expr, $poly:expr) => {
        pub(crate) fn $fn_name() -> &'static Tables {
            static T: OnceLock<Tables> = OnceLock::new();
            T.get_or_init(|| Tables::build($bits, $poly))
        }
    };
}

// x^4 + x + 1
table_singleton!(tables16, 4, 0b1_0011);
// x^8 + x^4 + x^3 + x^2 + 1 (the classic 0x11D used by many RS codecs)
table_singleton!(tables256, 8, 0x11D);
// x^16 + x^12 + x^3 + x + 1 (primitive polynomial 0x1100B)
table_singleton!(tables65536, 16, 0x1100B);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tables(t: &Tables, bits: u32) {
        let group = (1usize << bits) - 1;
        // exp is a permutation of 1..order over one period.
        let mut seen = vec![false; 1 << bits];
        for i in 0..group {
            let v = t.exp[i] as usize;
            assert!(v > 0 && v < (1 << bits));
            assert!(!seen[v], "exp not injective at {i}");
            seen[v] = true;
        }
        // log inverts exp.
        for i in 0..group {
            assert_eq!(t.log[t.exp[i] as usize] as usize, i);
        }
        // Doubled region mirrors the first period.
        for i in 0..group {
            assert_eq!(t.exp[i], t.exp[i + group]);
        }
    }

    #[test]
    fn gf16_tables_consistent() {
        check_tables(tables16(), 4);
    }

    #[test]
    fn gf256_tables_consistent() {
        check_tables(tables256(), 8);
    }

    #[test]
    fn gf65536_tables_consistent() {
        check_tables(tables65536(), 16);
    }
}
