//! Diagnostics: the findings a scan produces, their deterministic
//! ordering, and their human and JSON renderings.
//!
//! The JSON form reuses the workspace's shared document model
//! ([`mvbc_metrics::json`]) and is pinned by schema tag
//! (`mvbc.lint.v1`) the same way run reports pin `mvbc.run_report.v1`,
//! so CI can validate the output shape without trusting the producer.

use mvbc_metrics::json::JsonValue;

/// Schema tag for `--json` output.
pub const LINT_SCHEMA: &str = "mvbc.lint.v1";

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`determinism.wall_clock`, ...).
    pub rule: String,
    /// Repo-relative file path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(rule: &str, file: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic { rule: rule.to_owned(), file: file.to_owned(), line, message }
    }

    /// The one-line human rendering: `file:line: [rule] message`.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Sorts diagnostics into the canonical `(file, line, rule)` order so
/// output is byte-identical run to run.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
}

/// Per-crate scan statistics (`--stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrateStats {
    /// `.rs` files scanned.
    pub files: u64,
    /// `unsafe` tokens seen in code (blocks, fns, impls).
    pub unsafe_blocks: u64,
    /// Inline `mvbc-lint: allow(...)` suppressions.
    pub suppressions: u64,
    /// Diagnostics attributed to the crate (after suppression).
    pub rule_hits: u64,
}

/// The result of scanning a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings, in canonical order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-crate statistics, keyed by crate directory (sorted).
    pub stats: Vec<(String, CrateStats)>,
}

impl Report {
    /// Whether the scan found nothing.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The JSON document (`mvbc.lint.v1`). `include_stats` controls the
    /// optional `stats` array.
    pub fn to_json_value(&self, include_stats: bool) -> JsonValue {
        let diags = self
            .diagnostics
            .iter()
            .map(|d| {
                JsonValue::Obj(vec![
                    ("rule".to_owned(), JsonValue::Str(d.rule.clone())),
                    ("file".to_owned(), JsonValue::Str(d.file.clone())),
                    ("line".to_owned(), JsonValue::Num(f64::from(d.line))),
                    ("message".to_owned(), JsonValue::Str(d.message.clone())),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema".to_owned(), JsonValue::Str(LINT_SCHEMA.to_owned())),
            ("clean".to_owned(), JsonValue::Bool(self.clean())),
            (
                "diagnostic_count".to_owned(),
                JsonValue::Num(self.diagnostics.len() as f64),
            ),
            ("diagnostics".to_owned(), JsonValue::Arr(diags)),
        ];
        if include_stats {
            let stats = self
                .stats
                .iter()
                .map(|(krate, s)| {
                    JsonValue::Obj(vec![
                        ("crate".to_owned(), JsonValue::Str(krate.clone())),
                        ("files".to_owned(), JsonValue::Num(s.files as f64)),
                        ("unsafe_blocks".to_owned(), JsonValue::Num(s.unsafe_blocks as f64)),
                        ("suppressions".to_owned(), JsonValue::Num(s.suppressions as f64)),
                        ("rule_hits".to_owned(), JsonValue::Num(s.rule_hits as f64)),
                    ])
                })
                .collect();
            fields.push(("stats".to_owned(), JsonValue::Arr(stats)));
        }
        JsonValue::Obj(fields)
    }

    /// Serialized JSON (deterministic field and crate order).
    pub fn to_json(&self, include_stats: bool) -> String {
        self.to_json_value(include_stats).render()
    }

    /// The human `--stats` table.
    pub fn stats_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>6} {:>8} {:>13} {:>10}\n",
            "crate", "files", "unsafe", "suppressions", "rule-hits"
        ));
        for (krate, s) in &self.stats {
            out.push_str(&format!(
                "{:<24} {:>6} {:>8} {:>13} {:>10}\n",
                krate, s.files, s.unsafe_blocks, s.suppressions, s.rule_hits
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvbc_metrics::json::parse_json;

    fn diag(rule: &str, file: &str, line: u32) -> Diagnostic {
        Diagnostic::new(rule, file, line, format!("hit {rule}"))
    }

    #[test]
    fn canonical_order_is_file_line_rule() {
        let mut diags = vec![
            diag("b.rule", "z.rs", 1),
            diag("a.rule", "a.rs", 9),
            diag("b.rule", "a.rs", 3),
            diag("a.rule", "a.rs", 3),
        ];
        sort_diagnostics(&mut diags);
        let order: Vec<(String, u32, String)> =
            diags.iter().map(|d| (d.file.clone(), d.line, d.rule.clone())).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_owned(), 3, "a.rule".to_owned()),
                ("a.rs".to_owned(), 3, "b.rule".to_owned()),
                ("a.rs".to_owned(), 9, "a.rule".to_owned()),
                ("z.rs".to_owned(), 1, "b.rule".to_owned()),
            ]
        );
    }

    #[test]
    fn json_round_trips_through_shared_parser() {
        let mut report = Report::default();
        report.diagnostics.push(diag("determinism.wall_clock", "crates/x/src/lib.rs", 7));
        report.stats.push(("crates/x".to_owned(), CrateStats {
            files: 1,
            unsafe_blocks: 0,
            suppressions: 2,
            rule_hits: 1,
        }));
        let parsed = parse_json(&report.to_json(true)).unwrap();
        assert_eq!(parsed.get("schema").and_then(JsonValue::as_str), Some(LINT_SCHEMA));
        assert_eq!(parsed.get("clean").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(parsed.get("diagnostic_count").and_then(JsonValue::as_u64), Some(1));
        let d = &parsed.get("diagnostics").and_then(JsonValue::as_array).unwrap()[0];
        assert_eq!(d.get("line").and_then(JsonValue::as_u64), Some(7));
        let s = &parsed.get("stats").and_then(JsonValue::as_array).unwrap()[0];
        assert_eq!(s.get("suppressions").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn clean_report_omits_stats_unless_asked() {
        let report = Report::default();
        assert!(report.clean());
        let parsed = parse_json(&report.to_json(false)).unwrap();
        assert!(parsed.get("stats").is_none());
        assert_eq!(parsed.get("diagnostic_count").and_then(JsonValue::as_u64), Some(0));
    }
}
