//! A hand-rolled Rust source lexer: just enough tokenization for the
//! rule engine, with no external dependencies.
//!
//! The lexer's one job is to separate *code* from *non-code* so rules
//! never fire on a forbidden name inside a string literal or a comment,
//! and so comments (suppressions, `SAFETY:` notes) can be collected with
//! their line numbers. It understands line and nested block comments,
//! plain/byte/raw string literals, character literals vs lifetimes, and
//! numeric literals; everything else becomes single-character
//! punctuation tokens.
//!
//! It deliberately does not build a syntax tree: rules work on the flat
//! token stream with explicit brace-depth tracking, which is robust to
//! any parseable input and keeps the scanner a few hundred lines.

/// One token of code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token kinds. String literals keep their (unprocessed) contents so
/// rules like the wedge-panic check can inspect format strings; they are
/// still opaque to identifier matching, so a forbidden name inside a
/// string never trips a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A string literal (plain, byte, or raw); carries the inner text
    /// exactly as written (escapes not processed).
    Str(String),
    /// A character or byte literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`).
    Lifetime,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(i) if i == s)
    }

    /// The string literal contents, if this token is a string.
    pub fn str_content(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One comment, line or block (block comments report their first line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Text after the comment marker, trimmed.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes one Rust source file. Never fails: unrecognized bytes become
/// punctuation tokens, unterminated literals run to end of file.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances past `n` characters, counting newlines.
    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' | ' ' | '\t' | '\r' => advance!(1),
            '/' if next == Some('/') => {
                let start_line = line;
                let mut j = i + 2;
                // Swallow additional comment markers (`///`, `//!`).
                while chars.get(j) == Some(&'/') || chars.get(j) == Some(&'!') {
                    j += 1;
                }
                let text_start = j;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[text_start..j].iter().collect();
                out.comments.push(Comment {
                    line: start_line,
                    text: text.trim().to_owned(),
                });
                advance!(j - i);
            }
            '/' if next == Some('*') => {
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = (j.saturating_sub(2)).max(i + 2);
                let text: String = chars[i + 2..end.min(chars.len())].iter().collect();
                out.comments.push(Comment {
                    line: start_line,
                    text: text.trim().to_owned(),
                });
                advance!(j - i);
            }
            '"' => {
                let tok_line = line;
                let len = plain_string_len(&chars[i..]);
                let inner: String =
                    chars[i + 1..(i + len).saturating_sub(1).max(i + 1)].iter().collect();
                out.toks.push(Tok { line: tok_line, kind: TokKind::Str(inner) });
                advance!(len);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let tok_line = line;
                if is_lifetime(&chars[i..]) {
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    out.toks.push(Tok { line: tok_line, kind: TokKind::Lifetime });
                    advance!(j - i);
                } else {
                    let len = char_literal_len(&chars[i..]);
                    out.toks.push(Tok { line: tok_line, kind: TokKind::Char });
                    advance!(len);
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let mut j = i + 1;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        // Only consume '.' when a digit follows, so
                        // `1.max(2)` stays Num('1') '.' Ident(max).
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok { line: tok_line, kind: TokKind::Num });
                advance!(j - i);
            }
            c if c.is_alphabetic() || c == '_' => {
                let tok_line = line;
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                // Raw / byte string prefixes: r", r#", b", br", rb is not
                // a thing; b'..' byte char.
                let after = chars.get(j).copied();
                let is_raw_prefix = matches!(word.as_str(), "r" | "br")
                    && matches!(after, Some('"') | Some('#'));
                let is_byte_str = word == "b" && after == Some('"');
                let is_byte_char = word == "b" && after == Some('\'');
                if is_raw_prefix {
                    let (len, hashes) = raw_string_len(&chars[j..]);
                    if len > 0 {
                        let lo = j + hashes + 1;
                        let hi = (j + len).saturating_sub(hashes + 1).max(lo);
                        let inner: String = chars[lo..hi.min(chars.len())].iter().collect();
                        out.toks.push(Tok { line: tok_line, kind: TokKind::Str(inner) });
                        advance!((j - i) + len);
                        continue;
                    }
                }
                if is_byte_str {
                    let len = plain_string_len(&chars[j..]);
                    let inner: String =
                        chars[j + 1..(j + len).saturating_sub(1).max(j + 1)].iter().collect();
                    out.toks.push(Tok { line: tok_line, kind: TokKind::Str(inner) });
                    advance!((j - i) + len);
                    continue;
                }
                if is_byte_char {
                    let len = char_literal_len(&chars[j..]);
                    out.toks.push(Tok { line: tok_line, kind: TokKind::Char });
                    advance!((j - i) + len);
                    continue;
                }
                out.toks.push(Tok { line: tok_line, kind: TokKind::Ident(word) });
                advance!(j - i);
            }
            other => {
                out.toks.push(Tok { line, kind: TokKind::Punct(other) });
                advance!(1);
            }
        }
    }
    out
}

/// Length (in chars, including quotes) of a `"..."` literal starting at
/// `s[0] == '"'`. Unterminated strings run to the end.
fn plain_string_len(s: &[char]) -> usize {
    let mut j = 1usize;
    while j < s.len() {
        match s[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    s.len()
}

/// Length of a raw string starting at `s[0]` being `#` or `"` (the `r` /
/// `br` prefix has been consumed), plus the hash count. Returns (0, 0)
/// when `s` is not a raw string opener.
fn raw_string_len(s: &[char]) -> (usize, usize) {
    let mut hashes = 0usize;
    while s.get(hashes) == Some(&'#') {
        hashes += 1;
    }
    if s.get(hashes) != Some(&'"') {
        return (0, 0);
    }
    let mut j = hashes + 1;
    while j < s.len() {
        if s[j] == '"' {
            let mut closing = 0usize;
            while closing < hashes && s.get(j + 1 + closing) == Some(&'#') {
                closing += 1;
            }
            if closing == hashes {
                return (j + 1 + hashes, hashes);
            }
        }
        j += 1;
    }
    (s.len(), hashes)
}

/// Whether `'`-prefixed input is a lifetime rather than a char literal.
fn is_lifetime(s: &[char]) -> bool {
    let Some(&first) = s.get(1) else { return false };
    if !(first.is_alphabetic() || first == '_') {
        return false;
    }
    // 'a' is a char literal; 'a is a lifetime; 'abc can only be a
    // lifetime (multi-char literals don't exist).
    let mut j = 2usize;
    while j < s.len() && (s[j].is_alphanumeric() || s[j] == '_') {
        j += 1;
    }
    s.get(j) != Some(&'\'') || j > 2
}

/// Length (in chars, including quotes) of a `'x'` literal starting at
/// `s[0] == '\''`.
fn char_literal_len(s: &[char]) -> usize {
    let mut j = 1usize;
    while j < s.len() {
        match s[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let l = lex("fn main() { x += 1; }");
        assert_eq!(idents("fn main() { x += 1; }"), ["fn", "main", "x"]);
        assert!(l.toks.iter().any(|t| t.is_punct('{')));
        assert!(l.toks.iter().any(|t| matches!(t.kind, TokKind::Num)));
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "Instant::now() inside";"#), ["let", "s"]);
        assert_eq!(idents(r#"let s = r"raw HashMap";"#), ["let", "s"]);
        assert_eq!(idents(r##"let s = r#"hash "quoted" set"#;"##), ["let", "s"]);
        assert_eq!(idents(r#"let b = b"bytes";"#), ["let", "b"]);
    }

    #[test]
    fn string_contents_are_retained() {
        let l = lex(r##"panic!("wedged at round {r}"); let raw = r#"a "b" c"#;"##);
        let strs: Vec<&str> = l.toks.iter().filter_map(|t| t.str_content()).collect();
        assert_eq!(strs, ["wedged at round {r}", r#"a "b" c"#]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let l = lex("// SAFETY: fine\nunsafe { x } /* block\ncomment */ y");
        assert_eq!(idents("// SAFETY: fine\nunsafe { x }"), ["unsafe", "x"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].text, "SAFETY: fine");
        assert!(l.comments[1].text.contains("block"));
        // The unsafe token carries the line after the comment.
        assert_eq!(l.toks[0].line, 2);
    }

    #[test]
    fn doc_comments_strip_markers() {
        let l = lex("/// doc line\n//! inner doc\nfn f() {}");
        assert_eq!(l.comments[0].text, "doc line");
        assert_eq!(l.comments[1].text, "inner doc");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numeric_method_calls_keep_the_dot() {
        // `1.max(2)` must not swallow `.max` into the number.
        assert_eq!(idents("let x = 1.max(2) + 1.5;"), ["let", "x", "max"]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), ["fn", "f"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
