//! `mvbc-lint`: the workspace determinism & soundness auditor.
//!
//! The consensus stack's headline guarantee is reproducibility: the same
//! seed must yield byte-identical traces, reports, and digests (four
//! RoundBarrier trace digests are pinned in tests). That guarantee is
//! easy to break silently — one `Instant::now()` in a protocol crate,
//! one `HashMap` iteration feeding a trace event — and the breakage only
//! shows up later as a flaky digest test. This crate scans the workspace
//! source directly and turns those hazards into findings *at the line
//! that introduces them*:
//!
//! - **Determinism zones** (`determinism.*`): wall-clock types, `thread::sleep`,
//!   OS entropy, and unordered containers are forbidden in protocol
//!   crates; the telemetry wall-clock seam is an explicit allow-list.
//! - **Trace order** (`trace.hash_iter`): iterating an unordered
//!   container into trace/report output.
//! - **Unsafe audit** (`unsafe.*`): every `unsafe` needs a `// SAFETY:`
//!   comment, each crate has an unsafe budget (default 0), and
//!   zero-budget crates must carry `#![forbid(unsafe_code)]`.
//! - **Panic conventions** (`panic.wedge_context`): wedge panics must
//!   name round / node / vtime.
//!
//! Rules and zones live in the checked-in `lint.toml`
//! ([`manifest::Manifest`]); violations are suppressed inline with
//! `// mvbc-lint: allow(rule.name): justification`, and the suppressions
//! are themselves audited. The binary (`cargo run -p mvbc-lint`) emits
//! human diagnostics or `--json` (schema `mvbc.lint.v1`, rendered with
//! the shared [`mvbc_metrics::json`] model) for CI.
//!
//! The scanner has no dependencies beyond `mvbc-metrics` — lexer and
//! manifest parser are hand-rolled — and is itself deterministic:
//! directory walks are sorted, diagnostics are emitted in canonical
//! `(file, line, rule)` order, and JSON field order is fixed.

#![forbid(unsafe_code)]

pub mod diagnostics;
pub mod lexer;
pub mod manifest;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub use diagnostics::{sort_diagnostics, CrateStats, Diagnostic, Report, LINT_SCHEMA};
pub use manifest::Manifest;
pub use rules::{check_file, FileOutcome};

/// Loads `lint.toml` from the workspace root.
pub fn load_manifest(root: &Path) -> Result<Manifest, String> {
    let path = root.join("lint.toml");
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Scans the workspace under `root` against `manifest`, producing the
/// full report: per-file rule findings, crate-level unsafe-budget and
/// missing-forbid findings, and per-crate statistics.
pub fn scan_workspace(root: &Path, manifest: &Manifest) -> Result<Report, String> {
    let mut files = Vec::new();
    for scan_root in &manifest.scan_roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    // Deterministic order regardless of filesystem enumeration.
    files.sort();

    let mut report = Report::default();
    let mut per_crate: BTreeMap<String, CrateStats> = BTreeMap::new();
    // crate dir → (unsafe total, lib.rs forbid flag if a lib.rs was seen)
    let mut unsafe_totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut lib_forbid: BTreeMap<String, bool> = BTreeMap::new();

    for file in &files {
        let rel = relative_slash_path(root, file);
        if manifest.scan_exclude.iter().any(|x| rel == *x || rel.starts_with(&format!("{x}/"))) {
            continue;
        }
        let src = fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let outcome = check_file(&rel, &src, manifest);

        let krate = crate_dir_of(&rel);
        let stats = per_crate.entry(krate.clone()).or_default();
        stats.files += 1;
        stats.unsafe_blocks += outcome.unsafe_count;
        stats.suppressions += outcome.suppressions;
        stats.rule_hits += outcome.diagnostics.len() as u64;
        *unsafe_totals.entry(krate.clone()).or_default() += outcome.unsafe_count;
        if rel.ends_with("/src/lib.rs") {
            lib_forbid.insert(krate, outcome.has_forbid_unsafe);
        }
        report.diagnostics.extend(outcome.diagnostics);
    }

    // Crate-level rules: budgets and forbid attributes.
    for (krate, &count) in &unsafe_totals {
        let budget = manifest.unsafe_budget_for(krate);
        if (count as i64) > budget {
            let d = Diagnostic::new(
                "unsafe.budget",
                &format!("{krate}/"),
                0,
                format!(
                    "crate has {count} unsafe block(s), over its budget of {budget}; \
                     raise the budget in lint.toml [unsafe_budget] or remove the unsafe"
                ),
            );
            if let Some(stats) = per_crate.get_mut(krate) {
                stats.rule_hits += 1;
            }
            report.diagnostics.push(d);
        }
    }
    for (krate, &forbids) in &lib_forbid {
        if manifest.unsafe_budget_for(krate) == 0 && !forbids {
            let d = Diagnostic::new(
                "unsafe.missing_forbid",
                &format!("{krate}/src/lib.rs"),
                1,
                "crate has a zero unsafe budget but its lib.rs lacks \
                 `#![forbid(unsafe_code)]`; add the attribute so the compiler enforces \
                 the budget too"
                    .to_owned(),
            );
            if let Some(stats) = per_crate.get_mut(krate) {
                stats.rule_hits += 1;
            }
            report.diagnostics.push(d);
        }
    }

    sort_diagnostics(&mut report.diagnostics);
    report.stats = per_crate.into_iter().collect();
    Ok(report)
}

/// Recursively collects `.rs` files, descending in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            // `target/` can appear under crate dirs when building with
            // non-workspace settings; never descend into build output.
            if entry.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// The repo-relative path with forward slashes.
fn relative_slash_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate directory a file belongs to: `crates/<name>` for workspace
/// crates, the first path component (e.g. `tests`) otherwise.
fn crate_dir_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        (Some(first), _) => first.to_owned(),
        (None, _) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_dir_of("crates/smr/src/log.rs"), "crates/smr");
        assert_eq!(crate_dir_of("tests/netsim_latency.rs"), "tests");
        assert_eq!(crate_dir_of("examples/demo.rs"), "examples");
    }

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/repo");
        let file = Path::new("/repo/crates/gf/src/lib.rs");
        assert_eq!(relative_slash_path(root, file), "crates/gf/src/lib.rs");
    }
}
