//! `mvbc-lint` binary: scan the workspace and report.
//!
//! ```text
//! mvbc-lint [--check] [--json] [--stats] [--root DIR] [--manifest FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage / IO / manifest
//! error. `--check` is the (default) scan mode, accepted explicitly so
//! CI invocations read as intent. `--json` emits the `mvbc.lint.v1`
//! document instead of human diagnostics; `--stats` adds per-crate
//! counts to either form.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mvbc_lint::{load_manifest, scan_workspace, Manifest};

struct Args {
    json: bool,
    stats: bool,
    root: PathBuf,
    manifest: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        stats: false,
        root: PathBuf::from("."),
        manifest: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {}
            "--json" => args.json = true,
            "--stats" => args.stats = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--manifest" => {
                args.manifest = Some(PathBuf::from(it.next().ok_or("--manifest needs a file")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: mvbc-lint [--check] [--json] [--stats] [--root DIR] \
                     [--manifest FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<bool, String> {
    let manifest = match &args.manifest {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => load_manifest(&args.root)?,
    };
    let report = scan_workspace(&args.root, &manifest)?;

    if args.json {
        println!("{}", report.to_json(args.stats));
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
        if args.stats {
            print!("{}", report.stats_table());
        }
        let files: u64 = report.stats.iter().map(|(_, s)| s.files).sum();
        if report.clean() {
            println!("mvbc-lint: clean ({files} files scanned)");
        } else {
            println!(
                "mvbc-lint: {} violation(s) across {files} files",
                report.diagnostics.len()
            );
        }
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mvbc-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("mvbc-lint: {e}");
            ExitCode::from(2)
        }
    }
}
