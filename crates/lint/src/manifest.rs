//! The checked-in rule manifest (`lint.toml`) and its parser.
//!
//! The parser handles exactly the TOML subset the manifest uses —
//! `[section]` headers, `key = value` with string / integer / boolean /
//! string-array values, `#` comments, and quoted keys (for per-crate
//! unsafe budgets like `"crates/gf" = 0`). Keeping it in-tree avoids an
//! external TOML dependency, consistent with the workspace's offline
//! shim policy, and the manifest format is frozen by the tests.

use std::collections::BTreeMap;

/// One parsed manifest value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// An array of quoted strings.
    List(Vec<String>),
}

/// Sections, each a key → value map. `BTreeMap` keeps reporting over the
/// manifest itself deterministic.
pub type Doc = BTreeMap<String, BTreeMap<String, Value>>;

/// Parses the manifest text into sections. Errors carry a line number.
pub fn parse_doc(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::new();
    let mut section = String::new();
    let raw_lines: Vec<&str> = text.lines().collect();
    let mut idx = 0usize;
    while idx < raw_lines.len() {
        let lineno = idx + 1;
        let mut owned = strip_comment(raw_lines[idx]).trim().to_owned();
        idx += 1;
        // Arrays may span lines: keep consuming until brackets balance.
        while bracket_balance(&owned) > 0 && idx < raw_lines.len() {
            owned.push(' ');
            owned.push_str(strip_comment(raw_lines[idx]).trim());
            idx += 1;
        }
        let line = owned.as_str();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated section header"))?;
            section = name.trim().to_owned();
            doc.entry(section.clone()).or_default();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = unquote_key(key.trim());
        let value = parse_value(value.trim())
            .map_err(|e| format!("line {lineno}: {e}"))?;
        if section.is_empty() {
            return Err(format!("line {lineno}: key outside any [section]"));
        }
        doc.get_mut(&section)
            .expect("section inserted on header")
            .insert(key, value);
    }
    Ok(doc)
}

/// Net count of unclosed `[` outside quotes (section headers always
/// balance on their own line, so a positive balance means an open
/// array).
fn bracket_balance(line: &str) -> i32 {
    let mut balance = 0i32;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Keys may be bare or quoted (`"crates/gf"`).
fn unquote_key(key: &str) -> String {
    key.strip_prefix('"')
        .and_then(|k| k.strip_suffix('"'))
        .unwrap_or(key)
        .to_owned()
}

fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(rest) = v.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or("unterminated array (arrays must be single-line)")?;
        let mut items = Vec::new();
        for item in split_array_items(inner) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only contain strings".to_owned()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(rest) = v.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or("unterminated string")?;
        return Ok(Value::Str(inner.to_owned()));
    }
    match v {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unrecognized value `{v}`"))
}

/// Splits array contents on commas outside quotes.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    items
}

/// The fully-resolved rule configuration.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Directories (relative to the repo root) to walk for `.rs` files.
    pub scan_roots: Vec<String>,
    /// Path prefixes to skip entirely (shims, fixtures, build output).
    pub scan_exclude: Vec<String>,

    /// Path prefixes where determinism rules apply (protocol code).
    pub determinism_zones: Vec<String>,
    /// Exact files inside a zone that are exempt (the wall-clock seam).
    pub determinism_allow_files: Vec<String>,
    /// Identifiers that read the wall clock.
    pub wall_clock: Vec<String>,
    /// Identifiers that source OS entropy / unseeded randomness.
    pub unseeded_rng: Vec<String>,
    /// Identifiers that read the machine's thread count (pool sizing
    /// may never influence committed bytes or trace digests).
    pub thread_count: Vec<String>,

    /// Path prefixes where unordered-container state is forbidden.
    pub hash_state_zones: Vec<String>,
    /// Exact files subject to the trace-order (hash-iteration) rule.
    pub trace_order_files: Vec<String>,

    /// Path prefixes where wedge panics must carry context.
    pub panic_zones: Vec<String>,
    /// Substrings that mark a panic message as a wedge report.
    pub wedge_markers: Vec<String>,
    /// Substrings a wedge panic message must contain.
    pub required_context: Vec<String>,

    /// Default per-crate unsafe-block budget.
    pub unsafe_default_budget: i64,
    /// Per-crate overrides, keyed by crate directory (`crates/gf`).
    pub unsafe_budgets: BTreeMap<String, i64>,
}

impl Manifest {
    /// Resolves a parsed document into a manifest, applying defaults for
    /// any missing section or key.
    pub fn from_doc(doc: &Doc) -> Result<Manifest, String> {
        let list = |section: &str, key: &str, default: &[&str]| -> Result<Vec<String>, String> {
            match doc.get(section).and_then(|s| s.get(key)) {
                Some(Value::List(items)) => Ok(items.clone()),
                Some(_) => Err(format!("[{section}] {key}: expected an array of strings")),
                None => Ok(default.iter().map(|s| (*s).to_owned()).collect()),
            }
        };
        let mut unsafe_budgets = BTreeMap::new();
        let mut unsafe_default_budget = 0i64;
        if let Some(section) = doc.get("unsafe_budget") {
            for (key, value) in section {
                let Value::Int(n) = value else {
                    return Err(format!("[unsafe_budget] {key}: expected an integer"));
                };
                if *n < 0 {
                    return Err(format!("[unsafe_budget] {key}: budget must be >= 0"));
                }
                if key == "default" {
                    unsafe_default_budget = *n;
                } else {
                    unsafe_budgets.insert(key.clone(), *n);
                }
            }
        }
        Ok(Manifest {
            scan_roots: list("scan", "roots", &["crates"])?,
            scan_exclude: list("scan", "exclude", &[])?,
            determinism_zones: list("determinism", "zones", &[])?,
            determinism_allow_files: list("determinism", "allow_files", &[])?,
            wall_clock: list("determinism", "wall_clock", &["Instant", "SystemTime"])?,
            unseeded_rng: list(
                "determinism",
                "unseeded_rng",
                &["thread_rng", "from_entropy", "OsRng"],
            )?,
            thread_count: list("determinism", "thread_count", &["available_parallelism"])?,
            hash_state_zones: list("hash_state", "zones", &[])?,
            trace_order_files: list("trace_order", "files", &[])?,
            panic_zones: list("panics", "zones", &[])?,
            wedge_markers: list("panics", "wedge_markers", &["wedge"])?,
            required_context: list("panics", "required_context", &["round"])?,
            unsafe_default_budget,
            unsafe_budgets,
        })
    }

    /// Parses manifest text directly.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        Manifest::from_doc(&parse_doc(text)?)
    }

    /// The unsafe budget for a crate directory.
    pub fn unsafe_budget_for(&self, crate_dir: &str) -> i64 {
        self.unsafe_budgets
            .get(crate_dir)
            .copied()
            .unwrap_or(self.unsafe_default_budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# top comment
[scan]
roots = ["crates", "tests"]   # trailing comment
exclude = ["crates/shims"]

[determinism]
zones = ["crates/smr"]
wall_clock = ["Instant", "SystemTime"]

[unsafe_budget]
default = 0
"crates/gf" = 2
"#;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let m = Manifest::parse(SAMPLE).unwrap();
        assert_eq!(m.scan_roots, ["crates", "tests"]);
        assert_eq!(m.scan_exclude, ["crates/shims"]);
        assert_eq!(m.determinism_zones, ["crates/smr"]);
        assert_eq!(m.unsafe_default_budget, 0);
        assert_eq!(m.unsafe_budget_for("crates/gf"), 2);
        assert_eq!(m.unsafe_budget_for("crates/smr"), 0);
    }

    #[test]
    fn defaults_apply_for_missing_sections() {
        let m = Manifest::parse("[scan]\nroots = [\"crates\"]\n").unwrap();
        assert!(m.determinism_zones.is_empty());
        assert_eq!(m.wall_clock, ["Instant", "SystemTime"]);
        assert_eq!(m.wedge_markers, ["wedge"]);
    }

    #[test]
    fn multi_line_arrays_parse() {
        let m = Manifest::parse(
            "[scan]\nroots = [\n    \"crates\",  # inline comment\n    \"tests\",\n]\n\
             exclude = [\"x\"]\n",
        )
        .unwrap();
        assert_eq!(m.scan_roots, ["crates", "tests"]);
        assert_eq!(m.scan_exclude, ["x"]);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse_doc("[a]\nx = \"b#c\"\n").unwrap();
        assert_eq!(doc["a"]["x"], Value::Str("b#c".to_owned()));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_doc("[unclosed\n").is_err());
        assert!(parse_doc("[a]\nno_equals\n").is_err());
        assert!(parse_doc("orphan = 1\n").is_err());
        assert!(Manifest::parse("[unsafe_budget]\ndefault = -1\n").is_err());
        assert!(Manifest::parse("[scan]\nroots = 3\n").is_err());
    }

    #[test]
    fn commas_inside_quoted_items_survive() {
        let doc = parse_doc("[a]\nx = [\"p,q\", \"r\"]\n").unwrap();
        assert_eq!(
            doc["a"]["x"],
            Value::List(vec!["p,q".to_owned(), "r".to_owned()])
        );
    }
}
