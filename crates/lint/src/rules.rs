//! The rule engine: runs the catalogue against one lexed file.
//!
//! Rules work on the flat token stream with statement-span and
//! brace-depth heuristics rather than a full AST. The heuristics are
//! deliberately conservative in one direction each:
//!
//! - *Determinism* rules flag any appearance of a forbidden name in a
//!   zone (over-approximate — an import alone is a smell worth a
//!   justified suppression).
//! - The *trace-order* rule only fires on unambiguous evidence: an
//!   identifier it can positively bind to an unordered container, in a
//!   statement that iterates and shows no ordered re-keying. Ambiguous
//!   names (bound to both kinds somewhere in the file) are inconclusive
//!   and never flagged — a byte-identical-output invariant is guarded by
//!   the digest-pin tests too, so the lint prefers silence to noise.
//!
//! Test regions (`#[cfg(test)]` mods, `#[test]` fns) are exempt from the
//! determinism, hash-state, trace-order, and panic rules: tests may use
//! the wall clock and unordered maps freely. The unsafe audit applies
//! everywhere.

use std::collections::BTreeSet;

use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Lexed, Tok};
use crate::manifest::Manifest;

/// Every suppressible rule. `allow.*` meta-rules are not suppressible.
pub const KNOWN_RULES: &[&str] = &[
    "determinism.wall_clock",
    "determinism.sleep",
    "determinism.unseeded_rng",
    "determinism.thread_count",
    "determinism.hash_state",
    "trace.hash_iter",
    "unsafe.missing_safety",
    "unsafe.budget",
    "unsafe.missing_forbid",
    "panic.wedge_context",
];

/// What checking one file produced.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings surviving suppression, unsorted.
    pub diagnostics: Vec<Diagnostic>,
    /// `unsafe` tokens in the file (test regions included).
    pub unsafe_count: u64,
    /// `mvbc-lint: allow(...)` comments in the file.
    pub suppressions: u64,
    /// Whether the file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

/// One parsed inline suppression comment.
#[derive(Debug)]
struct Suppression {
    rule: String,
    line: u32,
    /// Known rule *and* justified — only then does it suppress.
    effective: bool,
}

/// Whether `path` sits under any of the given zone prefixes.
pub fn in_zone(path: &str, zones: &[String]) -> bool {
    zones.iter().any(|z| path == z || path.starts_with(&format!("{z}/")))
}

/// Zone rules cover shipped protocol code only, not a crate's
/// integration tests or benches.
fn is_src_file(path: &str) -> bool {
    path.contains("/src/")
}

/// Runs every rule against one file. `path` is repo-relative with
/// forward slashes.
pub fn check_file(path: &str, src: &str, manifest: &Manifest) -> FileOutcome {
    let lexed = lex(src);
    let mut out = FileOutcome::default();
    let mut raw: Vec<Diagnostic> = Vec::new();

    let (suppressions, mut meta_diags) = parse_suppressions(path, &lexed);
    out.suppressions = suppressions.len() as u64;

    let mask = test_mask(&lexed.toks);
    let statements = statement_spans(&lexed.toks);

    out.has_forbid_unsafe = has_forbid_unsafe(&lexed.toks);
    unsafe_rules(path, &lexed, &mut out, &mut raw);

    let determinism_here = in_zone(path, &manifest.determinism_zones)
        && is_src_file(path)
        && !manifest.determinism_allow_files.iter().any(|f| f == path);
    if determinism_here {
        determinism_rules(path, &lexed, &mask, manifest, &mut raw);
    }

    if in_zone(path, &manifest.hash_state_zones) && is_src_file(path) {
        hash_state_rule(path, &lexed, &mask, &statements, &mut raw);
    }

    if manifest.trace_order_files.iter().any(|f| f == path) {
        trace_order_rule(path, &lexed, &mask, &statements, &mut raw);
    }

    if in_zone(path, &manifest.panic_zones) && is_src_file(path) {
        panic_rule(path, &lexed, &mask, manifest, &mut raw);
    }

    // A suppression covers its own line and the next — enough for both
    // end-of-line and line-above placement.
    let suppressed = |d: &Diagnostic| {
        suppressions.iter().any(|s| {
            s.effective && s.rule == d.rule && (d.line == s.line || d.line == s.line + 1)
        })
    };
    out.diagnostics.extend(raw.into_iter().filter(|d| !suppressed(d)));
    out.diagnostics.append(&mut meta_diags);
    out
}

/// Parses `mvbc-lint: allow(rule.name): justification` comments,
/// emitting `allow.missing_justification` / `allow.unknown_rule` for
/// malformed ones (which then do not suppress anything).
fn parse_suppressions(path: &str, lexed: &Lexed) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for c in &lexed.comments {
        // A directive comment *starts* with the marker; prose that
        // merely mentions `mvbc-lint:` mid-sentence is not a directive.
        let Some(rest) = c.text.strip_prefix("mvbc-lint:") else { continue };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = args.find(')') else { continue };
        let rule = args[..close].trim().to_owned();
        let tail = args[close + 1..].trim_start();
        let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");

        let known = KNOWN_RULES.contains(&rule.as_str());
        let justified = !justification.is_empty();
        if !known {
            diags.push(Diagnostic::new(
                "allow.unknown_rule",
                path,
                c.line,
                format!("suppression names unknown rule `{rule}`; it has no effect"),
            ));
        } else if !justified {
            diags.push(Diagnostic::new(
                "allow.missing_justification",
                path,
                c.line,
                format!(
                    "suppression of `{rule}` has no justification; write \
                     `// mvbc-lint: allow({rule}): <why this site is sound>`"
                ),
            ));
        }
        sups.push(Suppression { rule, line: c.line, effective: known && justified });
    }
    (sups, diags)
}

/// Marks token indices inside `#[cfg(test)]` items and `#[test]`
/// functions. `#[cfg(not(test))]` is production code and stays unmasked.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((attr_end, is_test)) = attr_span(toks, i) else { break };
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match attr_span(toks, j) {
                Some((end, _)) => j = end + 1,
                None => break,
            }
        }
        // The item runs to its first top-level `;`, or through the brace
        // block opened by its first `{`.
        let mut depth = 0usize;
        let mut end = toks.len() - 1;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = j;
                    break;
                }
            } else if toks[j].is_punct(';') && depth == 0 {
                end = j;
                break;
            }
            j += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// The end index of the `#[...]` attribute starting at `start` (the `#`)
/// and whether it marks test-only code.
fn attr_span(toks: &[Tok], start: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    for (k, t) in toks.iter().enumerate().skip(start + 1) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                let is_test = idents.as_slice() == ["test"]
                    || (idents.first() == Some(&"cfg")
                        && idents.contains(&"test")
                        && !idents.contains(&"not"));
                return Some((k, is_test));
            }
        } else if let Some(id) = t.ident() {
            idents.push(id);
        }
    }
    None
}

/// Token ranges between `;` / `{` / `}` delimiters — a cheap stand-in
/// for statements and headers, good enough for span heuristics.
fn statement_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            if k > start {
                spans.push((start, k));
            }
            start = k + 1;
        }
    }
    if start < toks.len() {
        spans.push((start, toks.len()));
    }
    spans
}

/// `#![forbid(unsafe_code)]` anywhere in the file.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(3).any(|w| {
        w[0].is_ident("forbid") && w[1].is_punct('(') && w[2].is_ident("unsafe_code")
    })
}

/// Counts `unsafe` tokens and requires an adjacent `// SAFETY:` comment
/// for each (on the same line or up to three lines above).
fn unsafe_rules(path: &str, lexed: &Lexed, out: &mut FileOutcome, raw: &mut Vec<Diagnostic>) {
    for t in &lexed.toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        out.unsafe_count += 1;
        let covered = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.line <= t.line && t.line.saturating_sub(c.line) <= 3
        });
        if !covered {
            raw.push(Diagnostic::new(
                "unsafe.missing_safety",
                path,
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment explaining why the \
                 invariants hold"
                    .to_owned(),
            ));
        }
    }
}

/// Wall clock, sleep, and entropy rules for determinism zones.
fn determinism_rules(
    path: &str,
    lexed: &Lexed,
    mask: &[bool],
    manifest: &Manifest,
    raw: &mut Vec<Diagnostic>,
) {
    for (i, t) in lexed.toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        if manifest.wall_clock.iter().any(|w| w == id) {
            raw.push(Diagnostic::new(
                "determinism.wall_clock",
                path,
                t.line,
                format!(
                    "wall-clock type `{id}` in a determinism zone; protocol code runs on \
                     virtual time (the only sanctioned seam is the telemetry allow-list)"
                ),
            ));
        } else if id == "sleep" && preceded_by_path(&lexed.toks, i, "thread") {
            raw.push(Diagnostic::new(
                "determinism.sleep",
                path,
                t.line,
                "`thread::sleep` in a determinism zone; advance the virtual clock instead"
                    .to_owned(),
            ));
        } else if manifest.unseeded_rng.iter().any(|w| w == id) {
            raw.push(Diagnostic::new(
                "determinism.unseeded_rng",
                path,
                t.line,
                format!(
                    "`{id}` sources OS entropy; all randomness in protocol code must flow \
                     from an explicit seed"
                ),
            ));
        } else if manifest.thread_count.iter().any(|w| w == id) {
            raw.push(Diagnostic::new(
                "determinism.thread_count",
                path,
                t.line,
                format!(
                    "`{id}` makes behaviour depend on the machine's core count in a \
                     determinism zone; a pool size may only trade wall-clock time — \
                     suppress with a justification proving committed bytes and trace \
                     digests are pool-size-invariant"
                ),
            ));
        }
    }
}

/// Whether token `i` is reached via `prefix::` (e.g. `thread::sleep`).
fn preceded_by_path(toks: &[Tok], i: usize, prefix: &str) -> bool {
    i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].is_ident(prefix)
}

/// Flags `HashMap` / `HashSet` outside `use` statements in hash-state
/// zones: protocol state lives in ordered containers even when only
/// accessed by key, so iteration order can never silently become
/// observable later.
fn hash_state_rule(
    path: &str,
    lexed: &Lexed,
    mask: &[bool],
    statements: &[(usize, usize)],
    raw: &mut Vec<Diagnostic>,
) {
    for &(s, e) in statements {
        let span = &lexed.toks[s..e];
        if span.first().is_some_and(|t| t.is_ident("use")) {
            continue;
        }
        for (off, t) in span.iter().enumerate() {
            if mask[s + off] {
                continue;
            }
            let Some(id) = t.ident() else { continue };
            if id == "HashMap" || id == "HashSet" {
                raw.push(Diagnostic::new(
                    "determinism.hash_state",
                    path,
                    t.line,
                    format!(
                        "unordered container `{id}` holds state in a hash-state zone; use \
                         BTreeMap/BTreeSet, or suppress with a justification if the \
                         container is provably never iterated"
                    ),
                ));
            }
        }
    }
}

/// Iteration markers that make a container's order observable.
const ITER_MARKERS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

/// Flags iteration over identifiers positively bound to `HashMap` /
/// `HashSet` in trace-order files, unless the statement shows an
/// ordered re-keying. Identifiers bound to both kinds anywhere in the
/// file are ambiguous and never flagged.
fn trace_order_rule(
    path: &str,
    lexed: &Lexed,
    mask: &[bool],
    statements: &[(usize, usize)],
    raw: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.toks;
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    let mut ordered_names: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        // `name: ...Type...` (skip `path::segment`), or `name = Type::new()`.
        let type_window = if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !(i > 0 && toks[i - 1].is_punct(':'))
        {
            Some(6)
        } else if toks.get(i + 1).is_some_and(|n| n.is_punct('='))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct('='))
        {
            Some(4)
        } else {
            None
        };
        let Some(window) = type_window else { continue };
        for n in toks.iter().skip(i + 2).take(window) {
            match n.ident() {
                Some("HashMap") | Some("HashSet") => {
                    hash_names.insert(name);
                    break;
                }
                Some("BTreeMap") | Some("BTreeSet") => {
                    ordered_names.insert(name);
                    break;
                }
                _ => {}
            }
        }
    }
    // Ambiguous names are inconclusive evidence.
    let ambiguous: Vec<&str> = hash_names.intersection(&ordered_names).copied().collect();
    for a in ambiguous {
        hash_names.remove(a);
        ordered_names.remove(a);
    }

    let is_ordered_escape = |id: &str| {
        ordered_names.contains(id)
            || id == "BTreeMap"
            || id == "BTreeSet"
            || id.starts_with("sort")
    };

    for &(s, e) in statements {
        let span = &toks[s..e];
        if span.first().is_some_and(|t| t.is_ident("use")) {
            continue;
        }
        let mut hash_site: Option<&Tok> = None;
        let mut iterates = false;
        let mut ordered_escape = false;
        let mut saw_for = false;
        for (off, t) in span.iter().enumerate() {
            if mask[s + off] {
                continue;
            }
            let Some(id) = t.ident() else { continue };
            if id == "for" {
                saw_for = true;
            } else if saw_for && id == "in" {
                iterates = true;
            }
            if ITER_MARKERS.contains(&id) && off > 0 && span[off - 1].is_punct('.') {
                iterates = true;
            }
            if hash_names.contains(id) && hash_site.is_none() {
                hash_site = Some(t);
            }
            if is_ordered_escape(id) {
                ordered_escape = true;
            }
        }
        // A header that opens a block (`for ... in m.iter() {`) may
        // re-key into an ordered container inside the body — the
        // sanctioned escape — so extend the escape search through the
        // block before concluding anything.
        if hash_site.is_some() && iterates && !ordered_escape
            && toks.get(e).is_some_and(|t| t.is_punct('{'))
        {
            let mut depth = 0usize;
            for t in &toks[e..] {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.ident().is_some_and(is_ordered_escape) {
                    ordered_escape = true;
                    break;
                }
            }
        }
        if let (Some(site), true, false) = (hash_site, iterates, ordered_escape) {
            let name = site.ident().unwrap_or_default();
            raw.push(Diagnostic::new(
                "trace.hash_iter",
                path,
                site.line,
                format!(
                    "iteration over unordered container `{name}` feeds trace/report \
                     output; re-key through a BTreeMap/BTreeSet (or sort) before emitting"
                ),
            ));
        }
    }
}

/// Wedge-style panics (message mentions a wedge marker) must name the
/// configured context fields so a wedged run is diagnosable from the
/// panic alone.
fn panic_rule(
    path: &str,
    lexed: &Lexed,
    mask: &[bool],
    manifest: &Manifest,
    raw: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("panic") || !toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            continue;
        }
        // First string literal in the macro invocation is the format
        // string; panics built without a literal are out of scope.
        let Some(fmt) = toks.iter().skip(i + 2).take(24).find_map(|n| n.str_content()) else {
            continue;
        };
        let lower = fmt.to_lowercase();
        if !manifest.wedge_markers.iter().any(|m| lower.contains(&m.to_lowercase())) {
            continue;
        }
        let missing: Vec<&str> = manifest
            .required_context
            .iter()
            .map(String::as_str)
            .filter(|c| !lower.contains(&c.to_lowercase()))
            .collect();
        if !missing.is_empty() {
            raw.push(Diagnostic::new(
                "panic.wedge_context",
                path,
                t.line,
                format!(
                    "wedge panic omits required context {}; a wedged run must be \
                     diagnosable from the panic message alone",
                    missing
                        .iter()
                        .map(|m| format!("`{m}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest::parse(
            r#"
[determinism]
zones = ["crates/proto"]
allow_files = ["crates/proto/src/seam.rs"]

[hash_state]
zones = ["crates/proto"]

[trace_order]
files = ["crates/obs/src/trace.rs"]

[panics]
zones = ["crates/proto"]
wedge_markers = ["wedged"]
required_context = ["round", "node", "vtime"]
"#,
        )
        .unwrap()
    }

    fn rules_hit(path: &str, src: &str) -> Vec<String> {
        let mut out = check_file(path, src, &manifest());
        let mut rules: Vec<String> = out.diagnostics.drain(..).map(|d| d.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    }

    #[test]
    fn zone_scoping_is_path_based() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_hit("crates/proto/src/lib.rs", src), ["determinism.wall_clock"]);
        assert!(rules_hit("crates/other/src/lib.rs", src).is_empty());
        assert!(rules_hit("crates/proto/tests/it.rs", src).is_empty());
        assert!(rules_hit("crates/proto/src/seam.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt_from_zone_rules() {
        let src = "#[cfg(test)]\nmod tests {\n fn h() { std::thread::sleep(d); }\n}\n\
                   fn g() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let rules = rules_hit("crates/proto/src/lib.rs", src);
        assert_eq!(rules, ["determinism.hash_state"]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn g() { let t: Instant = x; }";
        assert_eq!(rules_hit("crates/proto/src/lib.rs", src), ["determinism.wall_clock"]);
    }

    #[test]
    fn thread_count_flagged_and_suppressible() {
        let src = "fn f() -> usize { std::thread::available_parallelism().map_or(1, |n| n.get()) }";
        assert_eq!(
            rules_hit("crates/proto/src/lib.rs", src),
            ["determinism.thread_count"]
        );
        assert!(rules_hit("crates/other/src/lib.rs", src).is_empty());
        let justified = format!(
            "// mvbc-lint: allow(determinism.thread_count): workers shard disjoint bands, bytes pinned invariant\n{src}"
        );
        assert!(rules_hit("crates/proto/src/lib.rs", &justified).is_empty());
    }

    #[test]
    fn use_lines_do_not_trip_hash_state() {
        let src = "use std::collections::HashMap;\nfn f() {}";
        assert!(rules_hit("crates/proto/src/lib.rs", src).is_empty());
    }

    #[test]
    fn suppression_requires_justification_and_known_rule() {
        let base = "fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let justified = format!(
            "// mvbc-lint: allow(determinism.hash_state): keyed access only\n{base}"
        );
        assert!(rules_hit("crates/proto/src/lib.rs", &justified).is_empty());

        let bare = format!("// mvbc-lint: allow(determinism.hash_state)\n{base}");
        assert_eq!(
            rules_hit("crates/proto/src/lib.rs", &bare),
            ["allow.missing_justification", "determinism.hash_state"]
        );

        let unknown = format!("// mvbc-lint: allow(no.such.rule): because\n{base}");
        assert_eq!(
            rules_hit("crates/proto/src/lib.rs", &unknown),
            ["allow.unknown_rule", "determinism.hash_state"]
        );
    }

    #[test]
    fn trace_order_flags_unambiguous_hash_iteration_only() {
        let flagged = "fn f(m: HashMap<u8, u8>) { for (k, v) in m.iter() { emit(k, v); } }";
        assert_eq!(rules_hit("crates/obs/src/trace.rs", flagged), ["trace.hash_iter"]);

        // Re-keying under the same name (the telemetry snapshot idiom)
        // makes the identifier ambiguous, which is inconclusive.
        let rekeyed = "struct S { links: HashMap<u8, u8> }\nfn f(s: S) {\n let mut links: \
                       BTreeMap<u8, u8> = BTreeMap::new();\n for (k, v) in s.links.iter() { \
                       links.insert(k, v); }\n}";
        let rules = rules_hit("crates/obs/src/trace.rs", rekeyed);
        assert!(
            !rules.contains(&"trace.hash_iter".to_owned()),
            "ambiguous name should be inconclusive: {rules:?}"
        );

        // Re-keying into an ordered container inside the loop body (the
        // metrics snapshot idiom) is the sanctioned escape.
        let body_rekey = "fn f(m: HashMap<u8, u8>) {\n let mut b: BTreeMap<u8, u8> = \
                          BTreeMap::new();\n for (k, v) in m.iter() { b.insert(k, v); }\n}";
        let rules = rules_hit("crates/obs/src/trace.rs", body_rekey);
        assert!(
            !rules.contains(&"trace.hash_iter".to_owned()),
            "body re-key should silence: {rules:?}"
        );

        // An explicit sort in the iterating statement is also an escape.
        let sorted = "fn f(m: HashSet<u8>) { let v = m.iter().collect::<Vec<_>>()\n\
                      .sort(); }";
        let rules = rules_hit("crates/obs/src/trace.rs", sorted);
        assert!(
            !rules.contains(&"trace.hash_iter".to_owned()),
            "sort escape should silence: {rules:?}"
        );
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { g() } }";
        let out = check_file("crates/any/src/lib.rs", bad, &manifest());
        assert_eq!(out.unsafe_count, 1);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "unsafe.missing_safety");

        let good = "fn f() {\n // SAFETY: g is a pure FFI shim with no invariants\n \
                    unsafe { g() }\n}";
        let out = check_file("crates/any/src/lib.rs", good, &manifest());
        assert_eq!(out.unsafe_count, 1);
        assert!(out.diagnostics.is_empty());
    }

    #[test]
    fn forbid_unsafe_is_detected() {
        let out = check_file("crates/any/src/lib.rs", "#![forbid(unsafe_code)]\n", &manifest());
        assert!(out.has_forbid_unsafe);
        let out = check_file("crates/any/src/lib.rs", "fn f() {}\n", &manifest());
        assert!(!out.has_forbid_unsafe);
    }

    #[test]
    fn wedge_panics_must_name_context() {
        let bad = r#"fn f() { panic!("wedged: giving up"); }"#;
        assert_eq!(rules_hit("crates/proto/src/lib.rs", bad), ["panic.wedge_context"]);

        let good = r#"fn f() { panic!("wedged at round {r}: node {n} vtime {t}", r = 1, n = 2, t = 3); }"#;
        assert!(rules_hit("crates/proto/src/lib.rs", good).is_empty());

        // Non-wedge panics are unconstrained.
        let plain = r#"fn f() { panic!("bad input"); }"#;
        assert!(rules_hit("crates/proto/src/lib.rs", plain).is_empty());
    }

    #[test]
    fn forbidden_names_inside_strings_do_not_fire() {
        let src = r#"fn f() { let s = "Instant::now() HashMap thread::sleep"; }"#;
        assert!(rules_hit("crates/proto/src/lib.rs", src).is_empty());
    }
}
