//! Observer-crate stub.

#![forbid(unsafe_code)]
