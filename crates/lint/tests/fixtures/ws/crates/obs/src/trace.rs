//! Seeds exactly one `trace.hash_iter` violation: iterating a
//! positively-bound unordered container straight into emitted output,
//! with no ordered re-keying in the loop body.

pub fn dump(events: HashMap<u64, String>, out: &mut Vec<String>) {
    for (seq, event) in events.iter() {
        out.push(format!("{seq}: {event}"));
    }
}
