//! Seeds the crate-level unsafe rules: a documented unsafe block in a
//! crate with a zero budget (`unsafe.budget`) whose lib.rs also lacks
//! `#![forbid(unsafe_code)]` (`unsafe.missing_forbid`).

pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: fixture only; callers pass a valid, aligned, readable
    // pointer.
    unsafe { *p }
}
