//! Seeds the two suppression meta-rules: a justification-less allow
//! (which therefore does NOT silence the underlying finding) and an
//! allow naming a rule that does not exist.

// mvbc-lint: allow(determinism.hash_state)
pub fn not_actually_suppressed() -> usize {
    let m: std::collections::HashMap<u32, u32> = Default::default();
    m.len()
}

// mvbc-lint: allow(no.such.rule): a justification cannot save an unknown rule
pub fn unknown() {}
