//! Seeds exactly one `determinism.hash_state` violation. The `use`
//! line is exempt; the type annotation is the finding.

use std::collections::HashMap;

pub fn state_size() -> usize {
    let m: HashMap<u32, u32> = Default::default();
    m.len()
}
