//! Zone-crate stub: carries the forbid attribute a zero-budget crate
//! must have, and nothing else.

#![forbid(unsafe_code)]
