//! Seeds exactly one `panic.wedge_context` violation: a wedge report
//! that names none of round / node / vtime.

pub fn give_up() -> ! {
    panic!("wedged: protocol gave up");
}
