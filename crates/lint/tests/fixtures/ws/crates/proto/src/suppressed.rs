//! A justified suppression: lints clean, counts one suppression in the
//! stats.

pub fn keyed_only() -> usize {
    // mvbc-lint: allow(determinism.hash_state): fixture proving a justified suppression silences the rule
    let m: std::collections::HashMap<u32, u32> = Default::default();
    m.len()
}
