//! Seeds exactly one `determinism.thread_count` violation.

pub fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
