//! Seeds exactly one `determinism.unseeded_rng` violation.

pub fn coin_flip() -> bool {
    let mut rng = thread_rng();
    rng.gen()
}
