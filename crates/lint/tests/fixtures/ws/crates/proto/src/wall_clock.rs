//! Seeds exactly one `determinism.wall_clock` violation.

pub fn elapsed_nanos() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}
