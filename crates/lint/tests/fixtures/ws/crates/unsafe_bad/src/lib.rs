//! Seeds exactly one `unsafe.missing_safety` violation: the crate has
//! budget for one unsafe block, but the block lacks a `// SAFETY:`
//! comment.

pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}
