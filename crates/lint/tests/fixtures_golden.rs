//! Golden test over the fixture workspace: every rule in the catalogue
//! must fire at the seeded site, suppression must silence exactly the
//! justified site, and the rendered diagnostics must match the
//! checked-in golden output byte for byte (which also pins the
//! scanner's deterministic ordering).

use std::path::PathBuf;

use mvbc_lint::rules::KNOWN_RULES;
use mvbc_lint::{load_manifest, scan_workspace, Report};

fn fixture_report() -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let manifest = load_manifest(&root).expect("fixture lint.toml parses");
    scan_workspace(&root, &manifest).expect("fixture scan succeeds")
}

const GOLDEN: &str = include_str!("golden_diagnostics.txt");

#[test]
fn fixture_diagnostics_match_golden() {
    let report = fixture_report();
    let rendered: String =
        report.diagnostics.iter().map(|d| format!("{}\n", d.render())).collect();
    assert_eq!(
        rendered, GOLDEN,
        "fixture diagnostics drifted from tests/golden_diagnostics.txt; \
         if the change is intentional, regenerate the golden with \
         `mvbc-lint --check --root crates/lint/tests/fixtures/ws`"
    );
}

#[test]
fn every_rule_fires_on_its_fixture() {
    let report = fixture_report();
    let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    for rule in KNOWN_RULES {
        assert!(fired.contains(rule), "rule `{rule}` fired nowhere in the fixtures");
    }
    for meta in ["allow.missing_justification", "allow.unknown_rule"] {
        assert!(fired.contains(&meta), "meta-rule `{meta}` fired nowhere in the fixtures");
    }
}

#[test]
fn justified_suppression_silences_and_is_counted() {
    let report = fixture_report();
    assert!(
        !report.diagnostics.iter().any(|d| d.file.ends_with("suppressed.rs")),
        "the justified suppression fixture must lint clean"
    );
    let proto = report
        .stats
        .iter()
        .find(|(krate, _)| krate == "crates/proto")
        .map(|(_, s)| s.clone())
        .expect("proto crate in stats");
    // suppressed.rs has the one effective directive; allow_bad.rs has
    // two ineffective ones — all three are *directives* and counted.
    assert_eq!(proto.suppressions, 3);
    assert_eq!(proto.files, 9);
}

#[test]
fn stats_attribute_unsafe_to_the_right_crates() {
    let report = fixture_report();
    let unsafe_of = |name: &str| {
        report
            .stats
            .iter()
            .find(|(krate, _)| krate == name)
            .map(|(_, s)| s.unsafe_blocks)
            .expect("crate in stats")
    };
    assert_eq!(unsafe_of("crates/unsafe_bad"), 1);
    assert_eq!(unsafe_of("crates/overbudget"), 1);
    assert_eq!(unsafe_of("crates/proto"), 0);
}
