//! The real workspace must lint clean against the checked-in
//! `lint.toml` — the same invocation CI runs. A failure here lists the
//! violations; fix them or add a justified inline suppression.

use std::path::PathBuf;

use mvbc_lint::{load_manifest, scan_workspace, LINT_SCHEMA};
use mvbc_metrics::json::{parse_json, JsonValue};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    let manifest = load_manifest(&root).expect("lint.toml parses");
    let report = scan_workspace(&root, &manifest).expect("scan succeeds");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
    // The scan must actually have covered the protocol crates.
    let scanned: Vec<&str> = report.stats.iter().map(|(k, _)| k.as_str()).collect();
    for krate in ["crates/broadcast", "crates/bsb", "crates/smr", "crates/netsim"] {
        assert!(scanned.contains(&krate), "scan skipped {krate}");
    }
}

#[test]
fn workspace_json_report_matches_schema() {
    let root = workspace_root();
    let manifest = load_manifest(&root).expect("lint.toml parses");
    let report = scan_workspace(&root, &manifest).expect("scan succeeds");
    let parsed = parse_json(&report.to_json(true)).expect("lint JSON parses");
    assert_eq!(parsed.get("schema").and_then(JsonValue::as_str), Some(LINT_SCHEMA));
    assert_eq!(parsed.get("clean").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(parsed.get("diagnostic_count").and_then(JsonValue::as_u64), Some(0));
    let stats = parsed.get("stats").and_then(JsonValue::as_array).expect("stats array");
    assert!(!stats.is_empty());
    // Zero unsafe across the workspace today; raising a budget is a
    // deliberate lint.toml change that will update this invariant.
    for entry in stats {
        assert_eq!(entry.get("unsafe_blocks").and_then(JsonValue::as_u64), Some(0));
    }
}
