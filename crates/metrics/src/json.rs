//! Hand-rolled JSON: escaping, a document model with a deterministic
//! renderer, and a minimal recursive-descent parser.
//!
//! The workspace has no external JSON dependency (see the offline-shim
//! policy in the root `Cargo.toml`), so every artifact that speaks JSON
//! — `RunReport` in `mvbc-smr`, the `BENCH_*.json` manifests in
//! `mvbc-bench`, the diagnostics of `mvbc-lint` — shares this module
//! instead of carrying its own copy. It lives in `mvbc-metrics` because
//! that is the lowest crate every artifact producer already depends on.
//!
//! Rendering is deterministic: object fields keep insertion order,
//! integral numbers in the `i64` range render without a decimal point,
//! and strings escape through [`escape`]. That determinism is what lets
//! same-seed runs emit byte-identical documents.
//!
//! # Examples
//!
//! ```
//! use mvbc_metrics::json::{parse_json, JsonValue};
//!
//! let doc = JsonValue::Obj(vec![
//!     ("n".to_owned(), JsonValue::Num(7.0)),
//!     ("policy".to_owned(), JsonValue::Str("round-barrier".to_owned())),
//! ]);
//! let text = doc.render();
//! assert_eq!(text, "{\"n\": 7, \"policy\": \"round-barrier\"}");
//! assert_eq!(parse_json(&text).unwrap(), doc);
//! ```

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal (the
/// quotes themselves are the caller's).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON value: the shared document model for parsing artifacts back
/// and for building documents programmatically.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (single spaces after `:` and
    /// `,`, no newlines). Deterministic: field order is insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the rendering of this value to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                // Integral values in the exactly-representable range
                // render without a fractional part.
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte offset and description for the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        let c = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            b => out.push(b),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_scalars_and_nesting() {
        let v = parse_json(
            r#"{"a": 1, "b": [true, false, null], "c": {"d": "x\ny", "e": -2.5}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[2], JsonValue::Null);
        let c = v.get("c").unwrap();
        assert_eq!(c.get("d").and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(c.get("e").and_then(JsonValue::as_f64), Some(-2.5));
        assert_eq!(c.get("e").and_then(JsonValue::as_u64), None);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn render_round_trips_documents() {
        let doc = JsonValue::Obj(vec![
            ("int".into(), JsonValue::Num(42.0)),
            ("neg".into(), JsonValue::Num(-3.0)),
            ("frac".into(), JsonValue::Num(2.5)),
            ("s".into(), JsonValue::Str("quo\"te".into())),
            ("flag".into(), JsonValue::Bool(false)),
            ("none".into(), JsonValue::Null),
            (
                "arr".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Obj(vec![])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse_json(&text).unwrap(), doc);
        // Integral numbers render with no decimal point.
        assert!(text.contains("\"int\": 42"));
        assert!(text.contains("\"frac\": 2.5"));
    }

    #[test]
    fn render_is_deterministic_insertion_order() {
        let doc = JsonValue::Obj(vec![
            ("z".into(), JsonValue::Num(1.0)),
            ("a".into(), JsonValue::Num(2.0)),
        ]);
        assert_eq!(doc.render(), "{\"z\": 1, \"a\": 2}");
        assert_eq!(doc.render(), doc.render());
    }
}
