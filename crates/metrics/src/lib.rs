//! Communication-complexity metering for the `mvbc` workspace.
//!
//! The Liang-Vaidya paper's only evaluation metric is *communication
//! complexity*: the total number of bits transmitted by all processors
//! according to the algorithm specification (Yao's measure). This crate
//! provides the shared [`MetricsSink`] that the network simulator feeds on
//! every send, broken down by sending node and by hierarchical *tag*
//! (e.g. `"consensus.matching.symbol"` or `"consensus.matching.m.bsb.value"`),
//! so experiments can reproduce the per-stage cost terms of the paper's
//! §3.4 analysis.
//!
//! Logical vs physical size: each message records the *logical* bit count
//! the algorithm assigns to it (a 1-bit broadcast counts one bit, a
//! `D/(n-2t)`-bit symbol counts that many bits) alongside the serialized
//! payload size, so accounting matches the paper's measure rather than
//! wire-format overhead.
//!
//! # Examples
//!
//! ```
//! use mvbc_metrics::MetricsSink;
//!
//! let sink = MetricsSink::new();
//! sink.record_send(0, "consensus.matching.symbol", 16, 4);
//! sink.record_send(1, "consensus.matching.m.bsb.value", 1, 1);
//! let snap = sink.snapshot();
//! assert_eq!(snap.total_logical_bits(), 17);
//! assert_eq!(snap.logical_bits_with_prefix("consensus.matching"), 17);
//! assert_eq!(snap.logical_bits_with_prefix("consensus.matching.m"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

pub mod json;
pub mod telemetry;

pub use telemetry::{
    Histogram, LinkStat, Outage, SpanRecord, SpanTimer, Telemetry, TelemetrySnapshot,
};

/// Identifier of a simulated processor (0-based).
pub type NodeId = usize;

/// Interns a tag string, returning a `&'static str` suitable for metric
/// tags. Repeated calls with equal content return the same leaked
/// allocation, so composing hierarchical tags at runtime (e.g.
/// `"consensus.matching.m" + ".bsb.value"`) does not grow memory per call.
///
/// Read-mostly: interning a tag that already exists only takes the
/// shared read lock, so concurrent node threads re-interning known tags
/// never serialize on a write lock.
pub fn intern_tag(tag: &str) -> &'static str {
    static INTERNED: RwLock<Option<std::collections::HashSet<&'static str>>> = RwLock::new(None);
    if let Some(set) = INTERNED.read().as_ref() {
        if let Some(&existing) = set.get(tag) {
            return existing;
        }
    }
    let mut guard = INTERNED.write();
    let set = guard.get_or_insert_with(std::collections::HashSet::new);
    if let Some(&existing) = set.get(tag) {
        // Raced with another interner between the read and write locks.
        return existing;
    }
    let leaked: &'static str = Box::leak(tag.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Counters kept per `(node, tag)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    /// Number of point-to-point messages sent.
    pub messages: u64,
    /// Logical bits per the algorithm's own accounting.
    pub logical_bits: u64,
    /// Serialized payload bytes actually moved by the simulator.
    pub payload_bytes: u64,
}

impl Counter {
    fn absorb(&mut self, other: Counter) {
        self.messages += other.messages;
        self.logical_bits += other.logical_bits;
        self.payload_bytes += other.payload_bytes;
    }
}

/// Lock-free counter cells for one `(node, tag)` pair. Updates use
/// `Relaxed` ordering: the three fields are independent monotone sums,
/// and readers ([`MetricsSink::snapshot`]) run at quiescent points
/// (round barriers, post-join) where the simulator's own channel
/// synchronization already ordered the writes.
#[derive(Debug, Default)]
struct AtomicCounter {
    messages: AtomicU64,
    logical_bits: AtomicU64,
    payload_bytes: AtomicU64,
}

impl AtomicCounter {
    fn add(&self, logical_bits: u64, payload_bytes: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.logical_bits.fetch_add(logical_bits, Ordering::Relaxed);
        self.payload_bytes.fetch_add(payload_bytes, Ordering::Relaxed);
    }

    fn load(&self) -> Counter {
        Counter {
            messages: self.messages.load(Ordering::Relaxed),
            logical_bits: self.logical_bits.load(Ordering::Relaxed),
            payload_bytes: self.payload_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Number of counter shards. Node `i` hits shard `i % SHARD_COUNT`, so
/// for every practical simulation size (`n <= 64`) each node owns its
/// shard exclusively and [`MetricsSink::record_send`] never contends
/// with another node's sends.
pub(crate) const SHARD_COUNT: usize = 64;

/// One shard: the counters of the nodes mapped to it. The inner lock is
/// read-mostly — the steady state (tag already seen) is a shared read
/// lock plus three relaxed `fetch_add`s; only a node's *first* send of a
/// given tag takes the shard's write lock.
#[derive(Debug, Default)]
struct Shard {
    counters: RwLock<HashMap<(NodeId, &'static str), Arc<AtomicCounter>>>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    rounds: AtomicU64,
    /// Attached telemetry recorder, if any. `None` (the default) keeps
    /// every instrumentation site a no-op — no histogram or span storage
    /// exists unless a caller opted in via
    /// [`MetricsSink::with_telemetry`].
    telemetry: Option<Telemetry>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            rounds: AtomicU64::new(0),
            telemetry: None,
        }
    }
}

/// Thread-safe sink collecting per-send counters.
///
/// Cheap to clone (it is an `Arc` handle); the simulator and all node
/// threads share one sink per run. Counters are sharded by sending node
/// and merged only at [`MetricsSink::snapshot`] time, so the per-send
/// hot path ([`NodeCtx::send`](../mvbc_netsim/struct.NodeCtx.html)) is
/// contention-free across nodes — no global mutex.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    inner: Arc<Inner>,
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink with a [`Telemetry`] recorder attached, so
    /// instrumentation sites (phase spans, latency histograms, link
    /// accounting) record instead of no-opping. The recorder travels
    /// with every clone of the sink — the simulator and all node threads
    /// see the same one via [`MetricsSink::telemetry`].
    pub fn with_telemetry() -> Self {
        MetricsSink {
            inner: Arc::new(Inner {
                telemetry: Some(Telemetry::new()),
                ..Inner::default()
            }),
        }
    }

    /// The attached telemetry recorder, if any (a cheap `Arc` handle).
    /// Instrumentation sites gate on this: `None` means record nothing.
    pub fn telemetry(&self) -> Option<Telemetry> {
        self.inner.telemetry.clone()
    }

    /// Records one sent message. Contention-free across sending nodes.
    pub fn record_send(
        &self,
        from: NodeId,
        tag: &'static str,
        logical_bits: u64,
        payload_bytes: u64,
    ) {
        let shard = &self.inner.shards[from % SHARD_COUNT];
        {
            let counters = shard.counters.read();
            if let Some(counter) = counters.get(&(from, tag)) {
                counter.add(logical_bits, payload_bytes);
                return;
            }
        }
        let counter = {
            let mut counters = shard.counters.write();
            counters.entry((from, tag)).or_default().clone()
        };
        counter.add(logical_bits, payload_bytes);
    }

    /// Records the completion of one synchronous communication round.
    pub fn record_round(&self) {
        self.inner.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes an immutable snapshot of all counters, merging the per-node
    /// shards. Intended for quiescent points (round barriers, slot
    /// boundaries, post-run): a snapshot raced with in-flight sends sees
    /// each counter at some recent value but no torn individual counter.
    pub fn snapshot(&self) -> Snapshot {
        let mut by_node_tag: BTreeMap<(NodeId, String), Counter> = BTreeMap::new();
        for shard in &self.inner.shards {
            let counters = shard.counters.read();
            for (&(node, tag), counter) in counters.iter() {
                // Distinct `&'static str`s with equal content merge here.
                by_node_tag
                    .entry((node, tag.to_owned()))
                    .or_default()
                    .absorb(counter.load());
            }
        }
        Snapshot {
            by_node_tag,
            rounds: self.inner.rounds.load(Ordering::Relaxed),
        }
    }

    /// Clears all counters (for reusing a sink across runs).
    pub fn reset(&self) {
        for shard in &self.inner.shards {
            shard.counters.write().clear();
        }
        self.inner.rounds.store(0, Ordering::Relaxed);
    }
}

/// Immutable view of the counters of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    by_node_tag: BTreeMap<(NodeId, String), Counter>,
    rounds: u64,
}

impl Snapshot {
    /// Number of synchronous rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Sum of logical bits over all nodes and tags.
    pub fn total_logical_bits(&self) -> u64 {
        self.by_node_tag.values().map(|c| c.logical_bits).sum()
    }

    /// Sum of messages over all nodes and tags.
    pub fn total_messages(&self) -> u64 {
        self.by_node_tag.values().map(|c| c.messages).sum()
    }

    /// Logical bits sent by one node (all tags).
    pub fn logical_bits_by_node(&self, node: NodeId) -> u64 {
        self.by_node_tag
            .iter()
            .filter(|((n, _), _)| *n == node)
            .map(|(_, c)| c.logical_bits)
            .sum()
    }

    /// Logical bits summed over tags sharing a prefix (hierarchical query).
    ///
    /// A tag matches when it equals the prefix or continues it at a `.`
    /// boundary, so `"a.b"` matches `"a.b"` and `"a.b.c"` but not `"a.bc"`.
    pub fn logical_bits_with_prefix(&self, prefix: &str) -> u64 {
        self.by_node_tag
            .iter()
            .filter(|((_, tag), _)| tag_matches(tag, prefix))
            .map(|(_, c)| c.logical_bits)
            .sum()
    }

    /// Logical bits for a prefix restricted to a set of (e.g. fault-free)
    /// nodes. The paper's complexity measure counts bits sent per the
    /// algorithm specification; Byzantine nodes' extra bits can be excluded
    /// by passing only the honest node ids.
    pub fn logical_bits_with_prefix_by_nodes(&self, prefix: &str, nodes: &[NodeId]) -> u64 {
        self.by_node_tag
            .iter()
            .filter(|((n, tag), _)| nodes.contains(n) && tag_matches(tag, prefix))
            .map(|(_, c)| c.logical_bits)
            .sum()
    }

    /// The counters accumulated since `earlier` was taken (per-key
    /// saturating difference, dropping keys that did not change).
    ///
    /// This is how per-slot costs are measured in multi-slot runs (e.g.
    /// the `mvbc-smr` replicated log): snapshot at each slot boundary and
    /// diff, instead of calling [`MetricsSink::reset`] mid-run from one
    /// node while other nodes are still sending.
    ///
    /// Note that a node's *own* counters are exact in a mid-run delta
    /// (its sends are ordered with its snapshots), while other nodes may
    /// already have recorded sends for the next slot.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let by_node_tag = self
            .by_node_tag
            .iter()
            .filter_map(|(key, c)| {
                let e = earlier.by_node_tag.get(key).copied().unwrap_or_default();
                let d = Counter {
                    messages: c.messages.saturating_sub(e.messages),
                    logical_bits: c.logical_bits.saturating_sub(e.logical_bits),
                    payload_bytes: c.payload_bytes.saturating_sub(e.payload_bytes),
                };
                (d != Counter::default()).then(|| (key.clone(), d))
            })
            .collect();
        Snapshot {
            by_node_tag,
            rounds: self.rounds.saturating_sub(earlier.rounds),
        }
    }

    /// All distinct tags seen, sorted.
    pub fn tags(&self) -> Vec<String> {
        let mut tags: Vec<String> = self
            .by_node_tag
            .keys()
            .map(|(_, tag)| tag.clone())
            .collect();
        tags.sort();
        tags.dedup();
        tags
    }

    /// Aggregated counter for one node across all tags.
    pub fn counter_for_node(&self, node: NodeId) -> Counter {
        let mut acc = Counter::default();
        for ((n, _), c) in &self.by_node_tag {
            if *n == node {
                acc.absorb(*c);
            }
        }
        acc
    }

    /// Aggregated counter for one tag across all nodes.
    pub fn counter_for_tag(&self, tag: &str) -> Counter {
        let mut acc = Counter::default();
        for ((_, t), c) in &self.by_node_tag {
            if t == tag {
                acc.absorb(*c);
            }
        }
        acc
    }

    /// Renders the per-(node, tag) counters as CSV
    /// (`node,tag,messages,logical_bits,payload_bytes`), sorted by node
    /// then tag — the machine-readable companion of
    /// [`to_markdown`](Snapshot::to_markdown) for offline analysis.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,tag,messages,logical_bits,payload_bytes\n");
        // BTreeMap iteration is already (node, tag)-sorted.
        for ((node, tag), c) in &self.by_node_tag {
            out.push_str(&format!(
                "{node},{tag},{},{},{}\n",
                c.messages, c.logical_bits, c.payload_bytes
            ));
        }
        out
    }

    /// Renders a per-tag summary as a markdown table (used by the harness).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| tag | messages | logical bits | payload bytes |\n");
        out.push_str("|---|---:|---:|---:|\n");
        for tag in self.tags() {
            let c = self.counter_for_tag(&tag);
            out.push_str(&format!(
                "| {tag} | {} | {} | {} |\n",
                c.messages, c.logical_bits, c.payload_bytes
            ));
        }
        out.push_str(&format!(
            "| **total** | {} | {} | — |\n",
            self.total_messages(),
            self.total_logical_bits()
        ));
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

fn tag_matches(tag: &str, prefix: &str) -> bool {
    tag == prefix
        || (tag.len() > prefix.len()
            && tag.starts_with(prefix)
            && tag.as_bytes()[prefix.len()] == b'.')
}

#[cfg(test)]
mod tests {
    #[test]
    fn csv_export_sorted_and_complete() {
        let sink = crate::MetricsSink::new();
        sink.record_send(1, "b.tag", 8, 1);
        sink.record_send(0, "a.tag", 16, 2);
        sink.record_send(0, "a.tag", 16, 2);
        let csv = sink.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "node,tag,messages,logical_bits,payload_bytes");
        assert_eq!(lines[1], "0,a.tag,2,32,4");
        assert_eq!(lines[2], "1,b.tag,1,8,1");
        assert_eq!(lines.len(), 3);
    }

    use super::*;

    #[test]
    fn empty_snapshot() {
        let s = MetricsSink::new().snapshot();
        assert_eq!(s.total_logical_bits(), 0);
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.rounds(), 0);
        assert!(s.tags().is_empty());
    }

    #[test]
    fn record_and_aggregate() {
        let sink = MetricsSink::new();
        sink.record_send(0, "a.x", 10, 2);
        sink.record_send(0, "a.x", 5, 1);
        sink.record_send(1, "a.y", 3, 1);
        let s = sink.snapshot();
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_logical_bits(), 18);
        assert_eq!(s.logical_bits_by_node(0), 15);
        assert_eq!(s.logical_bits_by_node(1), 3);
        assert_eq!(s.counter_for_tag("a.x").messages, 2);
    }

    #[test]
    fn prefix_queries_respect_dot_boundaries() {
        let sink = MetricsSink::new();
        sink.record_send(0, "match.sym", 4, 1);
        sink.record_send(0, "match.symbols", 8, 1);
        sink.record_send(0, "match", 1, 1);
        let s = sink.snapshot();
        assert_eq!(s.logical_bits_with_prefix("match.sym"), 4);
        assert_eq!(s.logical_bits_with_prefix("match"), 13);
        assert_eq!(s.logical_bits_with_prefix("mat"), 0);
    }

    #[test]
    fn per_node_prefix_filter() {
        let sink = MetricsSink::new();
        sink.record_send(0, "x", 1, 1);
        sink.record_send(1, "x", 2, 1);
        sink.record_send(2, "x", 4, 1);
        let s = sink.snapshot();
        assert_eq!(s.logical_bits_with_prefix_by_nodes("x", &[0, 2]), 5);
        assert_eq!(s.logical_bits_with_prefix_by_nodes("x", &[]), 0);
    }

    #[test]
    fn rounds_counted() {
        let sink = MetricsSink::new();
        sink.record_round();
        sink.record_round();
        assert_eq!(sink.snapshot().rounds(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let sink = MetricsSink::new();
        sink.record_send(0, "x", 1, 1);
        sink.record_round();
        sink.reset();
        let s = sink.snapshot();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.rounds(), 0);
    }

    #[test]
    fn clone_shares_state() {
        let sink = MetricsSink::new();
        let clone = sink.clone();
        clone.record_send(3, "y", 7, 2);
        assert_eq!(sink.snapshot().logical_bits_by_node(3), 7);
    }

    #[test]
    fn tags_sorted_dedup() {
        let sink = MetricsSink::new();
        sink.record_send(0, "b", 1, 1);
        sink.record_send(1, "a", 1, 1);
        sink.record_send(2, "b", 1, 1);
        assert_eq!(sink.snapshot().tags(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn markdown_render_contains_rows() {
        let sink = MetricsSink::new();
        sink.record_send(0, "stage.one", 9, 3);
        let md = sink.snapshot().to_markdown();
        assert!(md.contains("stage.one"));
        assert!(md.contains("**total**"));
        assert_eq!(format!("{}", sink.snapshot()), md);
    }

    #[test]
    fn snapshot_clone_eq() {
        let sink = MetricsSink::new();
        sink.record_send(0, "x.y", 12, 4);
        let s = sink.snapshot();
        assert_eq!(s.clone(), s);
        assert_ne!(s, Snapshot::default());
    }

    #[test]
    fn delta_between_snapshots() {
        let sink = MetricsSink::new();
        sink.record_send(0, "a.x", 10, 2);
        sink.record_round();
        let earlier = sink.snapshot();
        sink.record_send(0, "a.x", 5, 1);
        sink.record_send(1, "b.y", 3, 1);
        sink.record_round();
        sink.record_round();
        let d = sink.snapshot().delta(&earlier);
        assert_eq!(d.total_messages(), 2);
        assert_eq!(d.total_logical_bits(), 8);
        assert_eq!(d.logical_bits_by_node(0), 5);
        assert_eq!(d.logical_bits_by_node(1), 3);
        assert_eq!(d.rounds(), 2);
        // Unchanged keys are dropped, so a no-op delta is empty.
        assert_eq!(sink.snapshot().delta(&sink.snapshot()), Snapshot::default());
        // Deltas against a *later* snapshot saturate to zero.
        assert_eq!(earlier.delta(&sink.snapshot()).total_logical_bits(), 0);
    }

    #[test]
    fn intern_tag_dedups() {
        let a = intern_tag("x.y.z");
        let b = intern_tag(&format!("x.y.{}", 'z'));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "x.y.z");
    }

    #[test]
    fn distinct_statics_with_equal_content_merge() {
        // Two different &'static str allocations spelling the same tag
        // land in one snapshot entry (keys merge by content).
        let sink = MetricsSink::new();
        let a: &'static str = "merge.me";
        let b: &'static str = Box::leak(String::from("merge.me").into_boxed_str());
        assert!(!std::ptr::eq(a, b));
        sink.record_send(0, a, 1, 1);
        sink.record_send(0, b, 2, 1);
        let s = sink.snapshot();
        assert_eq!(s.tags(), vec!["merge.me".to_owned()]);
        assert_eq!(s.counter_for_tag("merge.me").messages, 2);
        assert_eq!(s.total_logical_bits(), 3);
    }

    /// Parses [`Snapshot::to_csv`] output back into `(node, tag) -> Counter`.
    fn parse_csv(csv: &str) -> BTreeMap<(NodeId, String), Counter> {
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("node,tag,messages,logical_bits,payload_bytes"),
            "csv header drifted"
        );
        lines
            .map(|line| {
                let cells: Vec<&str> = line.split(',').collect();
                assert_eq!(cells.len(), 5, "malformed csv row: {line}");
                (
                    (cells[0].parse().unwrap(), cells[1].to_owned()),
                    Counter {
                        messages: cells[2].parse().unwrap(),
                        logical_bits: cells[3].parse().unwrap(),
                        payload_bytes: cells[4].parse().unwrap(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn csv_round_trips_every_counter() {
        let sink = MetricsSink::new();
        sink.record_send(2, "z.last", 1, 9);
        sink.record_send(0, "a.first", 64, 8);
        sink.record_send(0, "a.first", 64, 8);
        sink.record_send(1, "a.first", 32, 4);
        let snap = sink.snapshot();
        let parsed = parse_csv(&snap.to_csv());
        assert_eq!(parsed.len(), 3);
        for ((node, tag), c) in &parsed {
            let direct = snap.counter_for_tag(tag);
            assert!(direct.messages >= c.messages);
            assert_eq!(
                snap.logical_bits_with_prefix_by_nodes(tag, &[*node]),
                c.logical_bits,
                "({node}, {tag}) logical bits lost in csv"
            );
        }
        let total: u64 = parsed.values().map(|c| c.logical_bits).sum();
        assert_eq!(total, snap.total_logical_bits());
    }

    #[test]
    fn delta_snapshot_round_trips_through_csv() {
        // The delta path produces snapshots that never went through the
        // sink's shards — their CSV must round-trip identically.
        let sink = MetricsSink::new();
        sink.record_send(0, "s.keep", 10, 2);
        sink.record_send(1, "s.drop", 4, 1);
        let earlier = sink.snapshot();
        sink.record_send(0, "s.keep", 6, 1);
        sink.record_send(2, "s.new", 3, 1);
        let delta = sink.snapshot().delta(&earlier);
        let parsed = parse_csv(&delta.to_csv());
        // Unchanged keys are dropped from the delta and its CSV alike.
        assert_eq!(
            parsed.keys().cloned().collect::<Vec<_>>(),
            vec![(0, "s.keep".to_owned()), (2, "s.new".to_owned())]
        );
        assert_eq!(parsed[&(0, "s.keep".to_owned())].logical_bits, 6);
        assert_eq!(parsed[&(2, "s.new".to_owned())].messages, 1);
    }

    #[test]
    fn csv_merges_interned_tag_aliases() {
        // Two distinct &'static str allocations with equal content must
        // appear as ONE csv row (the snapshot merges by content).
        let sink = MetricsSink::new();
        let a = intern_tag("alias.tag");
        let b: &'static str = Box::leak(String::from("alias.tag").into_boxed_str());
        assert!(!std::ptr::eq(a, b));
        sink.record_send(0, a, 5, 1);
        sink.record_send(0, b, 7, 2);
        let parsed = parse_csv(&sink.snapshot().to_csv());
        assert_eq!(parsed.len(), 1);
        let c = &parsed[&(0, "alias.tag".to_owned())];
        assert_eq!((c.messages, c.logical_bits, c.payload_bytes), (2, 12, 3));
    }

    #[test]
    fn markdown_rows_match_counter_queries() {
        let sink = MetricsSink::new();
        sink.record_send(0, "m.one", 8, 2);
        sink.record_send(1, "m.one", 8, 2);
        sink.record_send(1, "m.two", 4, 1);
        let snap = sink.snapshot();
        let md = snap.to_markdown();
        let rows: Vec<&str> = md.lines().collect();
        assert_eq!(rows[0], "| tag | messages | logical bits | payload bytes |");
        assert_eq!(rows[1], "|---|---:|---:|---:|");
        // One row per distinct tag, each matching counter_for_tag.
        for tag in snap.tags() {
            let c = snap.counter_for_tag(&tag);
            let want = format!("| {tag} | {} | {} | {} |", c.messages, c.logical_bits, c.payload_bytes);
            assert!(md.contains(&want), "missing markdown row {want:?}");
        }
        let total_row = format!(
            "| **total** | {} | {} | — |",
            snap.total_messages(),
            snap.total_logical_bits()
        );
        assert_eq!(rows.last(), Some(&total_row.as_str()));
    }

    #[test]
    fn markdown_round_trips_the_delta_path() {
        let sink = MetricsSink::new();
        sink.record_send(0, "d.x", 3, 1);
        let earlier = sink.snapshot();
        sink.record_send(0, "d.x", 5, 2);
        let delta = sink.snapshot().delta(&earlier);
        let md = delta.to_markdown();
        assert!(md.contains("| d.x | 1 | 5 | 2 |"));
        assert!(md.contains("| **total** | 1 | 5 | — |"));
    }

    #[test]
    fn plain_sink_has_no_telemetry() {
        assert!(MetricsSink::new().telemetry().is_none());
        assert!(MetricsSink::default().telemetry().is_none());
    }

    #[test]
    fn telemetry_travels_with_clones() {
        let sink = MetricsSink::with_telemetry();
        let clone = sink.clone();
        clone.telemetry().unwrap().record_value(0, "lat", 42);
        let snap = sink.telemetry().unwrap().snapshot();
        assert_eq!(snap.histogram_for_tag("lat").count(), 1);
        assert_eq!(snap.histogram_for_tag("lat").max(), 42);
    }

    #[test]
    fn concurrent_recording() {
        let sink = MetricsSink::new();
        std::thread::scope(|scope| {
            for node in 0..8 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        sink.record_send(node, "t", 1, 1);
                    }
                });
            }
        });
        assert_eq!(sink.snapshot().total_logical_bits(), 800);
    }
}
