//! Run-time telemetry: latency histograms, phase spans, and link accounting.
//!
//! [`MetricsSink`](crate::MetricsSink) counts *how many bits* moved; this
//! module records *where the time went*. It is attached to a sink with
//! [`MetricsSink::with_telemetry`](crate::MetricsSink::with_telemetry) and is
//! deliberately optional: a sink built with `MetricsSink::new()` carries no
//! [`Telemetry`], every instrumentation site is gated on
//! [`MetricsSink::telemetry`](crate::MetricsSink::telemetry) returning
//! `Some`, and nothing here allocates until a caller opts in — so the
//! default path is byte-identical to the pre-telemetry simulator (the trace
//! digest pins in `tests/netsim_latency.rs` hold with and without it).
//!
//! Three recorders, all contention-free across nodes (the same sharding
//! idiom as the counter sink):
//!
//! - [`Histogram`] — fixed log₂-bucketed latency histograms keyed by
//!   `(node, tag)`, merged at snapshot time, with percentile queries.
//! - [`SpanTimer`] — phase spans carrying *dual* durations: virtual time
//!   (deterministic, seeded) and wall clock (machine-dependent).
//! - Link stats — per-`(from, to)` messages/bytes/cumulative delay,
//!   partition outage windows, and the delivery-queue high-water mark,
//!   fed by the event-driven scheduler's coordinator.
//!
//! # Examples
//!
//! ```
//! use mvbc_metrics::MetricsSink;
//!
//! let sink = MetricsSink::with_telemetry();
//! let tel = sink.telemetry().unwrap();
//! tel.record_value(0, "smr.commit.gap", 1500);
//! tel.record_value(0, "smr.commit.gap", 900);
//! let span = tel.span(0, "smr.slot0", "dispersal", 10);
//! span.finish(25);
//! let snap = tel.snapshot();
//! assert_eq!(snap.histogram_for_tag("smr.commit.gap").count(), 2);
//! assert_eq!(snap.spans[0].vend - snap.spans[0].vstart, 15);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::NodeId;

/// Number of fixed log₂ buckets per histogram: bucket 0 holds the value
/// `0`, bucket `b ≥ 1` holds values in `[2^(b-1), 2^b - 1]`. 64 buckets
/// cover the full `u64` range, so recording never saturates or resizes.
pub const HISTOGRAM_BUCKETS: usize = 64;

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper edge of a bucket (the largest value it can hold).
fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A mergeable log₂-bucketed histogram of `u64` samples (virtual-time
/// ticks, byte counts, queue depths, ...).
///
/// The bucket layout is fixed ([`HISTOGRAM_BUCKETS`]), so merging two
/// histograms is element-wise addition and a percentile query is a single
/// cumulative walk. Quantiles are resolved to the upper edge of the
/// containing bucket, clamped to the observed extrema — exact for `p=0`
/// and `p=100`, within a factor of 2 everywhere else, which is the usual
/// log-bucket trade for O(1) recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self` (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`), resolved to the upper
    /// edge of the containing bucket and clamped to the observed
    /// min/max. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Lock-free histogram cells for one `(node, tag)` pair; `Relaxed`
/// ordering for the same reason as the counter cells — independent
/// monotone sums read at quiescent points.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn load(&self) -> Histogram {
        Histogram {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// One finished phase span: what `node` spent on `phase` of `scope`,
/// in both virtual time and wall clock.
///
/// Virtual durations are deterministic under a seeded run; `wall_ns` is
/// machine-dependent and therefore excluded from any artifact that must
/// replay byte-identically (the SMR `RunReport` keeps only the virtual
/// side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Node that executed the phase.
    pub node: NodeId,
    /// Hierarchical scope, e.g. `"smr.slot17"` (slot and lane identity).
    pub scope: String,
    /// Phase name, e.g. `"dispersal"`, `"echo"`, `"diagnosis"`.
    pub phase: String,
    /// Virtual time when the span started.
    pub vstart: u64,
    /// Virtual time when the span finished.
    pub vend: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
}

/// Interned-string form kept on the hot path; stringified at snapshot.
#[derive(Debug)]
struct RawSpan {
    node: NodeId,
    scope: &'static str,
    phase: &'static str,
    vstart: u64,
    vend: u64,
    wall_ns: u64,
}

/// An in-flight phase span. Created by [`Telemetry::span`]; consumed by
/// [`SpanTimer::finish`], which records the dual-duration [`SpanRecord`].
/// Dropping a timer without finishing records nothing.
#[derive(Debug)]
pub struct SpanTimer {
    telemetry: Telemetry,
    node: NodeId,
    scope: &'static str,
    phase: &'static str,
    vstart: u64,
    wall: Instant,
}

impl SpanTimer {
    /// Finishes the span at virtual time `vend`, recording it.
    pub fn finish(self, vend: u64) {
        let wall_ns = self.wall.elapsed().as_nanos() as u64;
        let shard = &self.telemetry.inner.span_shards[self.node % crate::SHARD_COUNT];
        shard.lock().push(RawSpan {
            node: self.node,
            scope: self.scope,
            phase: self.phase,
            vstart: self.vstart,
            vend: vend.max(self.vstart),
            wall_ns,
        });
    }
}

/// Per-link delivery totals, keyed by `(from, to)` in the snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStat {
    /// Messages delivered over the link.
    pub messages: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Cumulative delivery delay in virtual-time ticks (latency plus any
    /// partition hold and FIFO clamping).
    pub total_delay: u64,
}

impl LinkStat {
    /// Mean per-message delivery delay in ticks (0 when no messages).
    pub fn mean_delay(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.messages as f64
        }
    }
}

/// One partition outage window and the traffic it affected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outage {
    /// Virtual time the cut starts.
    pub start: u64,
    /// Virtual time the cut heals.
    pub heal: u64,
    /// `"drop"` or `"delay"`.
    pub behavior: String,
    /// Messages lost to the cut.
    pub dropped: u64,
    /// Messages held until the heal.
    pub delayed: u64,
}

#[derive(Debug, Default)]
struct HistShard {
    histograms: RwLock<HashMap<(NodeId, &'static str), Arc<AtomicHistogram>>>,
}

#[derive(Debug)]
struct TelemetryInner {
    hist_shards: Vec<HistShard>,
    span_shards: Vec<Mutex<Vec<RawSpan>>>,
    links: Mutex<HashMap<(NodeId, NodeId), LinkStat>>,
    queue_high_water: AtomicU64,
    outages: Mutex<Vec<Outage>>,
}

impl Default for TelemetryInner {
    fn default() -> Self {
        TelemetryInner {
            hist_shards: (0..crate::SHARD_COUNT).map(|_| HistShard::default()).collect(),
            span_shards: (0..crate::SHARD_COUNT).map(|_| Mutex::new(Vec::new())).collect(),
            links: Mutex::new(HashMap::new()),
            queue_high_water: AtomicU64::new(0),
            outages: Mutex::new(Vec::new()),
        }
    }
}

/// Shared telemetry recorder. Cheap to clone (an `Arc` handle); all node
/// threads and the coordinator share one per instrumented run.
///
/// Histograms and spans are sharded by node exactly like the counter
/// sink, so recording never contends across nodes; link stats, outages
/// and the queue high-water mark are coordinator-only and sit behind one
/// uncontended lock.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Telemetry {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one histogram sample under `(node, tag)`. Contention-free
    /// across nodes; the first sample of a tag takes the shard's write
    /// lock, every later one only the shared read lock.
    pub fn record_value(&self, node: NodeId, tag: &'static str, value: u64) {
        let shard = &self.inner.hist_shards[node % crate::SHARD_COUNT];
        {
            let histograms = shard.histograms.read();
            if let Some(hist) = histograms.get(&(node, tag)) {
                hist.record(value);
                return;
            }
        }
        let hist = {
            let mut histograms = shard.histograms.write();
            histograms.entry((node, tag)).or_default().clone()
        };
        hist.record(value);
    }

    /// Starts a phase span for `node` at virtual time `vstart`; the wall
    /// clock starts now. Use interned strings ([`crate::intern_tag`]) for
    /// `scope`/`phase` built at runtime.
    // This is the workspace's sanctioned wall-clock seam (see lint.toml
    // [determinism] allow_files); span timings are observability-only
    // and never feed anything digest-pinned.
    #[allow(clippy::disallowed_methods)]
    pub fn span(
        &self,
        node: NodeId,
        scope: &'static str,
        phase: &'static str,
        vstart: u64,
    ) -> SpanTimer {
        SpanTimer {
            telemetry: self.clone(),
            node,
            scope,
            phase,
            vstart,
            wall: Instant::now(),
        }
    }

    /// Records one delivered message on the `from → to` link with its
    /// delivery delay in ticks. Coordinator-only.
    pub fn record_link(&self, from: NodeId, to: NodeId, payload_bytes: u64, delay: u64) {
        let mut links = self.inner.links.lock();
        let stat = links.entry((from, to)).or_default();
        stat.messages += 1;
        stat.payload_bytes += payload_bytes;
        stat.total_delay += delay;
    }

    /// Raises the delivery-queue high-water mark to `depth` if larger.
    pub fn record_queue_depth(&self, depth: u64) {
        self.inner.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Registers a partition outage window up front, returning its index
    /// for [`Telemetry::record_outage_hit`].
    pub fn register_outage(&self, start: u64, heal: u64, behavior: &str) -> usize {
        let mut outages = self.inner.outages.lock();
        outages.push(Outage {
            start,
            heal,
            behavior: behavior.to_owned(),
            dropped: 0,
            delayed: 0,
        });
        outages.len() - 1
    }

    /// Counts one message hitting outage `index`: lost (`dropped`) or
    /// held until the heal.
    pub fn record_outage_hit(&self, index: usize, dropped: bool) {
        let mut outages = self.inner.outages.lock();
        if let Some(outage) = outages.get_mut(index) {
            if dropped {
                outage.dropped += 1;
            } else {
                outage.delayed += 1;
            }
        }
    }

    /// Takes an immutable snapshot, merging the per-node shards. Spans
    /// are sorted by `(vstart, node, scope, phase, vend)` so the order is
    /// deterministic regardless of shard interleaving.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut histograms: BTreeMap<(NodeId, String), Histogram> = BTreeMap::new();
        for shard in &self.inner.hist_shards {
            for (&(node, tag), hist) in shard.histograms.read().iter() {
                histograms
                    .entry((node, tag.to_owned()))
                    .or_default()
                    .merge(&hist.load());
            }
        }
        let mut spans: Vec<SpanRecord> = Vec::new();
        for shard in &self.inner.span_shards {
            for raw in shard.lock().iter() {
                spans.push(SpanRecord {
                    node: raw.node,
                    scope: raw.scope.to_owned(),
                    phase: raw.phase.to_owned(),
                    vstart: raw.vstart,
                    vend: raw.vend,
                    wall_ns: raw.wall_ns,
                });
            }
        }
        spans.sort_by(|a, b| {
            (a.vstart, a.node, &a.scope, &a.phase, a.vend)
                .cmp(&(b.vstart, b.node, &b.scope, &b.phase, b.vend))
        });
        // Explicitly re-key the coordinator's hash map into a BTreeMap so
        // everything downstream (RunReport JSON, inspect tables) iterates
        // in (from, to) order.
        let mut links: BTreeMap<(NodeId, NodeId), LinkStat> = BTreeMap::new();
        for (&key, &stat) in self.inner.links.lock().iter() {
            links.insert(key, stat);
        }
        TelemetrySnapshot {
            histograms,
            spans,
            links,
            queue_high_water: self.inner.queue_high_water.load(Ordering::Relaxed),
            outages: self.inner.outages.lock().clone(),
        }
    }
}

/// Immutable view of one run's telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Per-`(node, tag)` histograms.
    pub histograms: BTreeMap<(NodeId, String), Histogram>,
    /// All finished spans, deterministically ordered.
    pub spans: Vec<SpanRecord>,
    /// Per-link delivery totals.
    pub links: BTreeMap<(NodeId, NodeId), LinkStat>,
    /// Largest delivery-queue depth observed by the scheduler.
    pub queue_high_water: u64,
    /// Partition outage windows with affected-traffic counts.
    pub outages: Vec<Outage>,
}

impl TelemetrySnapshot {
    /// The histogram for `tag` merged across all nodes.
    pub fn histogram_for_tag(&self, tag: &str) -> Histogram {
        let mut merged = Histogram::new();
        for ((_, t), hist) in &self.histograms {
            if t == tag {
                merged.merge(hist);
            }
        }
        merged
    }

    /// Total virtual-time and wall-clock duration per phase name, sorted
    /// by phase.
    pub fn phase_totals(&self) -> BTreeMap<String, (u64, u64)> {
        let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for span in &self.spans {
            let entry = totals.entry(span.phase.clone()).or_default();
            entry.0 += span.vend - span.vstart;
            entry.1 += span.wall_ns;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_extrema() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_are_bucket_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Extremes are exact; interior quantiles land within a factor
        // of 2 above the true value (log buckets resolve upward).
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
        let p50 = h.percentile(50.0);
        assert!((50..=100).contains(&p50), "p50 = {p50}");
        let p90 = h.percentile(90.0);
        assert!((90..=100).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 17, 200] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 9999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sharded_histograms_merge_at_snapshot() {
        let tel = Telemetry::new();
        // Nodes 0 and 64 share shard 0; node 1 sits elsewhere.
        tel.record_value(0, "lat", 10);
        tel.record_value(64, "lat", 20);
        tel.record_value(1, "lat", 30);
        let snap = tel.snapshot();
        assert_eq!(snap.histograms.len(), 3);
        let merged = snap.histogram_for_tag("lat");
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 60);
        assert_eq!(snap.histogram_for_tag("other").count(), 0);
    }

    #[test]
    fn span_records_both_clocks() {
        let tel = Telemetry::new();
        let span = tel.span(2, "smr.slot3", "echo", 100);
        span.finish(140);
        let snap = tel.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!((s.node, s.scope.as_str(), s.phase.as_str()), (2, "smr.slot3", "echo"));
        assert_eq!((s.vstart, s.vend), (100, 140));
        // Wall clock ran (possibly 0ns on a coarse timer, but finish
        // must not panic and the record must exist).
    }

    #[test]
    fn span_vend_clamped_to_vstart() {
        let tel = Telemetry::new();
        tel.span(0, "s", "p", 50).finish(10);
        assert_eq!(tel.snapshot().spans[0].vend, 50);
    }

    #[test]
    fn phase_totals_sum_spans() {
        let tel = Telemetry::new();
        tel.span(0, "a", "echo", 0).finish(10);
        tel.span(1, "b", "echo", 5).finish(25);
        tel.span(0, "a", "diagnosis", 10).finish(12);
        let totals = tel.snapshot().phase_totals();
        assert_eq!(totals["echo"].0, 30);
        assert_eq!(totals["diagnosis"].0, 2);
    }

    #[test]
    fn links_accumulate() {
        let tel = Telemetry::new();
        tel.record_link(0, 1, 100, 50);
        tel.record_link(0, 1, 100, 70);
        tel.record_link(2, 0, 7, 5);
        let snap = tel.snapshot();
        let l01 = snap.links[&(0, 1)];
        assert_eq!((l01.messages, l01.payload_bytes, l01.total_delay), (2, 200, 120));
        assert!((l01.mean_delay() - 60.0).abs() < 1e-9);
        assert_eq!(snap.links[&(2, 0)].messages, 1);
    }

    #[test]
    fn queue_high_water_is_max() {
        let tel = Telemetry::new();
        tel.record_queue_depth(5);
        tel.record_queue_depth(17);
        tel.record_queue_depth(3);
        assert_eq!(tel.snapshot().queue_high_water, 17);
    }

    #[test]
    fn outage_windows_count_hits() {
        let tel = Telemetry::new();
        let idx = tel.register_outage(5_000, 60_000, "delay");
        tel.record_outage_hit(idx, false);
        tel.record_outage_hit(idx, false);
        tel.record_outage_hit(idx, true);
        let snap = tel.snapshot();
        assert_eq!(snap.outages.len(), 1);
        let o = &snap.outages[0];
        assert_eq!((o.start, o.heal, o.behavior.as_str()), (5_000, 60_000, "delay"));
        assert_eq!((o.delayed, o.dropped), (2, 1));
    }

    #[test]
    fn snapshot_span_order_is_deterministic() {
        let tel = Telemetry::new();
        // Recorded across different shards in scrambled order.
        tel.span(3, "z", "p", 7).finish(9);
        tel.span(1, "a", "p", 7).finish(9);
        tel.span(0, "m", "p", 2).finish(4);
        let order: Vec<(u64, NodeId)> =
            tel.snapshot().spans.iter().map(|s| (s.vstart, s.node)).collect();
        assert_eq!(order, vec![(2, 0), (7, 1), (7, 3)]);
    }

    #[test]
    fn concurrent_histogram_recording() {
        let tel = Telemetry::new();
        std::thread::scope(|scope| {
            for node in 0..8 {
                let tel = tel.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        tel.record_value(node, "t", i);
                    }
                });
            }
        });
        assert_eq!(tel.snapshot().histogram_for_tag("t").count(), 800);
    }
}
