//! Bit-packing helpers for 1-bit protocol messages.
//!
//! `Broadcast_Single_Bit` instances exchange single bits; when many
//! instances run batched in the same round their bits are packed into one
//! payload. These helpers keep the packing/unpacking symmetric and
//! deterministic.

/// Packs booleans into bytes, LSB-first within each byte.
///
/// # Examples
///
/// ```
/// use mvbc_netsim::bits::{pack_bits, unpack_bits};
///
/// let bits = vec![true, false, true, true, false, false, false, false, true];
/// let bytes = pack_bits(&bits);
/// assert_eq!(bytes.len(), 2);
/// assert_eq!(unpack_bits(&bytes, bits.len()), Some(bits));
/// ```
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpacks `count` booleans from bytes produced by [`pack_bits`].
///
/// Returns `None` when `bytes` is not exactly `ceil(count / 8)` long —
/// malformed messages from Byzantine peers must be treated as absent.
pub fn unpack_bits(bytes: &[u8], count: usize) -> Option<Vec<bool>> {
    if bytes.len() != count.div_ceil(8) {
        return None;
    }
    Some((0..count).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
}

/// Packs a vector of 2-bit symbols (values `0..=3`), used by the
/// Phase-King proposal round (`no proposal` / `propose 0` / `propose 1`).
///
/// # Panics
///
/// Panics when any value exceeds 3.
pub fn pack_crumbs(vals: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; vals.len().div_ceil(4)];
    for (i, &v) in vals.iter().enumerate() {
        assert!(v < 4, "crumb value {v} out of range");
        out[i / 4] |= v << (2 * (i % 4));
    }
    out
}

/// Unpacks `count` 2-bit symbols packed by [`pack_crumbs`].
///
/// Returns `None` on a length mismatch.
pub fn unpack_crumbs(bytes: &[u8], count: usize) -> Option<Vec<u8>> {
    if bytes.len() != count.div_ceil(4) {
        return None;
    }
    Some((0..count).map(|i| (bytes[i / 4] >> (2 * (i % 4))) & 0b11).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrips() {
        assert_eq!(pack_bits(&[]), Vec::<u8>::new());
        assert_eq!(unpack_bits(&[], 0), Some(Vec::new()));
        assert_eq!(pack_crumbs(&[]), Vec::<u8>::new());
        assert_eq!(unpack_crumbs(&[], 0), Some(Vec::new()));
    }

    #[test]
    fn bits_roundtrip_all_lengths() {
        for len in 0..40usize {
            let bits: Vec<bool> = (0..len).map(|i| (i * 7 + 3) % 5 < 2).collect();
            let bytes = pack_bits(&bits);
            assert_eq!(bytes.len(), len.div_ceil(8));
            assert_eq!(unpack_bits(&bytes, len), Some(bits));
        }
    }

    #[test]
    fn bits_length_mismatch_rejected() {
        assert_eq!(unpack_bits(&[0xff], 9), None);
        assert_eq!(unpack_bits(&[0xff, 0x00], 8), None);
    }

    #[test]
    fn crumbs_roundtrip() {
        for len in 0..20usize {
            let vals: Vec<u8> = (0..len).map(|i| (i % 4) as u8).collect();
            let bytes = pack_crumbs(&vals);
            assert_eq!(unpack_crumbs(&bytes, len), Some(vals));
        }
    }

    #[test]
    fn crumbs_length_mismatch_rejected() {
        assert_eq!(unpack_crumbs(&[0x00], 5), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crumbs_reject_large_values() {
        let _ = pack_crumbs(&[4]);
    }

    #[test]
    fn bit_ordering_is_lsb_first() {
        assert_eq!(pack_bits(&[true, false, false, false, false, false, false, false]), vec![1]);
        assert_eq!(pack_bits(&[false, true]), vec![2]);
    }
}
