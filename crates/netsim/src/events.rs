//! The discrete-event core: a virtual clock and an event queue ordered
//! by `(time, seq)`.
//!
//! Virtual time is a dimensionless tick count ([`VirtualTime`]); by
//! convention the workspace reads one tick as one microsecond, so a
//! 50 ms WAN hop is `50_000` ticks. The queue breaks ties on an
//! insertion sequence number, which makes the pop order — and therefore
//! every event-driven simulation — a pure function of the push order:
//! two runs that schedule the same events in the same order pop them in
//! the same order, bit for bit.
//!
//! # Examples
//!
//! ```
//! use mvbc_netsim::events::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(30, "c");
//! q.schedule(10, "a");
//! q.schedule(10, "b"); // same time: insertion order breaks the tie
//! assert_eq!(q.pop(), Some((10, "a")));
//! assert_eq!(q.pop(), Some((10, "b")));
//! assert_eq!(q.pop(), Some((30, "c")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A point on the simulation's virtual clock, in ticks (conventionally
/// microseconds).
pub type VirtualTime = u64;

/// One queued event: ordering compares `(at, seq)` only, so the payload
/// needs no `Ord`.
struct Entry<T> {
    at: VirtualTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event queue: events pop in `(time, seq)`
/// order, where `seq` is the queue-wide insertion counter (see the
/// module docs).
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at virtual time `at` and returns its sequence
    /// number (the tiebreaker among same-time events).
    pub fn schedule(&mut self, at: VirtualTime, item: T) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, item }));
        seq
    }

    /// Removes and returns the earliest event as `(time, item)`; ties
    /// resolve in insertion order.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.item))
    }

    /// The time of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 50);
        q.schedule(1, 10);
        q.schedule(3, 30);
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.pop(), Some((1, 10)));
        assert_eq!(q.pop(), Some((3, 30)));
        assert_eq!(q.pop(), Some((5, 50)));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_sequence() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(7, i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((7, i)), "FIFO among same-time events");
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, "late");
        q.schedule(2, "early");
        assert_eq!(q.pop(), Some((2, "early")));
        q.schedule(4, "mid");
        assert_eq!(q.pop(), Some((4, "mid")));
        assert_eq!(q.pop(), Some((10, "late")));
        assert_eq!(q.pop(), None);
    }
}
