//! Worker-thread pool for lane execution.
//!
//! [`LaneMux::spawn`](crate::lanes::LaneMux::spawn) runs each lane as a
//! blocking closure over its own channel pair, which historically meant
//! one fresh OS thread per lane. Pipelined workloads spawn and retire
//! lanes constantly (the `mvbc-smr` replicated log opens one lane per
//! broadcast slot), so at n >= 64 a run churns through thousands of
//! short-lived threads. The pool here keeps finished lane workers warm
//! and hands them the next lane instead: one OS thread drives many
//! lanes *over its lifetime*.
//!
//! Two properties are load-bearing:
//!
//! - **Concurrency is never bounded.** A lane blocks inside
//!   `end_round` until its mux steps it, so every concurrently-live
//!   lane needs a live thread. [`run`] therefore always finds a thread
//!   for a job — it pops an idle warm worker when one exists and spawns
//!   a fresh one otherwise. The pool size knob bounds only how many
//!   *idle* workers are retained for reuse; it can never deadlock a
//!   pipeline, and it can never change scheduling order: each lane
//!   still owns its private channel pair, and
//!   [`LaneMux::step`](crate::lanes::LaneMux::step) still collects
//!   lanes in lane-id order, so committed bytes and trace digests are
//!   identical for every pool size.
//! - **Panics stay contained.** A lane panic is caught on the worker,
//!   shipped through the lane's [`PoolHandle`] exactly like
//!   [`std::thread::JoinHandle::join`] would ship it, and the worker
//!   survives to run later lanes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crossbeam::channel::{self, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// Warm workers waiting for their next lane (a stack: the most
    /// recently parked worker — hottest caches — is reused first).
    idle: Mutex<Vec<Sender<Job>>>,
    /// Total workers ever spawned (diagnostics; see [`lane_pool_spawned`]).
    spawned: AtomicUsize,
}

fn state() -> &'static PoolState {
    static STATE: OnceLock<PoolState> = OnceLock::new();
    STATE.get_or_init(|| PoolState {
        idle: Mutex::new(Vec::new()),
        spawned: AtomicUsize::new(0),
    })
}

/// `0` means "unset": resolve from the machine's available parallelism.
static LANE_POOL_RETAIN: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide lane-pool size: how many idle lane workers are
/// kept warm for reuse. `1` keeps a single warm worker — functionally
/// identical to the historical thread-per-lane behaviour, minus the
/// spawn churn for strictly sequential lanes.
///
/// The knob never bounds lane *concurrency* (see the module docs) and
/// never affects committed bytes or trace digests.
///
/// # Panics
///
/// Panics when `retain` is zero — reject zero at the flag-parsing layer
/// with a structured error instead.
pub fn set_lane_pool_retain(retain: usize) {
    assert!(retain >= 1, "lane pool size must be at least 1");
    LANE_POOL_RETAIN.store(retain, Ordering::Relaxed);
}

/// The effective lane-pool size (see [`set_lane_pool_retain`]).
///
/// Defaults to the machine's available parallelism until set.
pub fn lane_pool_retain() -> usize {
    match LANE_POOL_RETAIN.load(Ordering::Relaxed) {
        // mvbc-lint: allow(determinism.thread_count): the pool size only bounds how many idle workers are retained for reuse; lane scheduling and trace digests are pinned pool-size-invariant by the netsim latency suite
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Total lane workers ever spawned by this process (diagnostics: a
/// pipelined run that reuses warm workers keeps this far below its lane
/// count).
pub fn lane_pool_spawned() -> usize {
    state().spawned.load(Ordering::Relaxed)
}

/// Handle to a job submitted with [`run`] — the pool's analogue of
/// [`std::thread::JoinHandle`].
#[derive(Debug)]
pub(crate) struct PoolHandle<O> {
    result: Receiver<std::thread::Result<O>>,
}

impl<O> PoolHandle<O> {
    /// Waits for the job to finish. Mirrors
    /// [`std::thread::JoinHandle::join`]: a panicking job yields
    /// `Err(payload)` with the original panic payload.
    pub(crate) fn join(self) -> std::thread::Result<O> {
        self.result
            .recv()
            .unwrap_or_else(|_| Err(Box::new("lane pool worker vanished")))
    }
}

/// Runs `f` on a warm lane worker (or a freshly spawned one when none
/// is idle) and returns a join handle for its result.
pub(crate) fn run<O, F>(f: F) -> PoolHandle<O>
where
    O: Send + 'static,
    F: FnOnce() -> O + Send + 'static,
{
    let (res_tx, res_rx) = channel::unbounded::<std::thread::Result<O>>();
    let job: Job = Box::new(move || {
        let out = catch_unwind(AssertUnwindSafe(f));
        let _ = res_tx.send(out);
    });
    dispatch(job);
    PoolHandle { result: res_rx }
}

fn dispatch(mut job: Job) {
    let pool = state();
    loop {
        let worker = pool
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match worker {
            Some(tx) => match tx.send(job) {
                Ok(()) => return,
                // The worker vanished (can only happen if its thread was
                // torn down externally); retry with the next one.
                Err(err) => job = err.0,
            },
            None => {
                let (tx, rx) = channel::unbounded::<Job>();
                tx.send(job).expect("fresh worker accepts its first job");
                pool.spawned.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || worker_loop(&rx, &tx));
                return;
            }
        }
    }
}

/// Executes jobs until the retain bound says this worker should retire.
/// The worker holds a sender to its own queue, so exit is decided by the
/// park step, never by channel disconnection.
fn worker_loop(rx: &Receiver<Job>, tx: &Sender<Job>) {
    while let Ok(job) = rx.recv() {
        job();
        let mut idle = state().idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() >= lane_pool_retain() {
            return; // enough warm workers already; retire this thread
        }
        idle.push(tx.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_output_round_trips() {
        let handle = run(|| 6 * 7);
        assert_eq!(handle.join().expect("job succeeded"), 42);
    }

    #[test]
    fn panic_payload_is_preserved() {
        let handle = run(|| -> u32 { panic!("pool exploded") });
        let err = handle.join().expect_err("job panicked");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"pool exploded"));
    }

    #[test]
    fn worker_survives_a_panicking_job() {
        let boom = run(|| -> () { panic!("first job dies") });
        assert!(boom.join().is_err());
        let ok = run(|| "still serving");
        assert_eq!(ok.join().expect("pool still works"), "still serving");
    }

    #[test]
    fn concurrent_jobs_all_complete() {
        let handles: Vec<_> = (0..32u64).map(|i| run(move || i * i)).collect();
        let total: u64 = handles
            .into_iter()
            .map(|h| h.join().expect("job succeeded"))
            .sum();
        assert_eq!(total, (0..32u64).map(|i| i * i).sum());
    }

    #[test]
    fn sequential_jobs_reuse_warm_workers() {
        // Prime one warm worker, then run strictly sequential jobs: the
        // pool should mostly reuse instead of spawning per job. Other
        // tests share the process-wide pool, so the bound is generous.
        run(|| ()).join().expect("prime job");
        let before = lane_pool_spawned();
        for i in 0..20u64 {
            assert_eq!(run(move || i).join().expect("job succeeded"), i);
        }
        let delta = lane_pool_spawned() - before;
        assert!(delta < 20, "20 sequential jobs spawned {delta} fresh workers");
    }

    #[test]
    #[should_panic(expected = "lane pool size must be at least 1")]
    fn retain_knob_rejects_zero() {
        set_lane_pool_retain(0);
    }
}
