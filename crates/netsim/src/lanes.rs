//! Lane multiplexing: several concurrent protocol instances ("lanes")
//! sharing one node's synchronous round barrier.
//!
//! The simulator's round model is strictly lockstep: one [`NodeCtx`], one
//! [`NodeCtx::end_round`] per round. Protocols that want to *pipeline*
//! several sub-protocol instances inside one simulation (the `mvbc-smr`
//! replicated log runs a window of broadcast slots concurrently) need
//! every instance to advance one protocol round per physical round,
//! with all instances' messages multiplexed into the node's single round
//! submission and demultiplexed back by message-tag scope.
//!
//! [`LaneMux`] implements exactly that:
//!
//! - [`LaneMux::spawn`] starts a lane: a blocking closure over its own
//!   lane-local [`NodeCtx`] running on a pooled worker thread (see
//!   [`crate::lanepool`] — finished lanes' workers are kept warm and
//!   reused). The closure is unchanged protocol code — re-entrant
//!   functions like `run_broadcast_slot` run as-is.
//! - [`LaneMux::step`] advances *every* live lane by one round: it
//!   collects each lane's round submission (or completion), forwards the
//!   union through the real [`NodeCtx`] in **one** physical
//!   [`NodeCtx::end_round`], then routes the delivered inbox back to
//!   lanes by tag scope.
//!
//! Determinism and alignment: all fault-free nodes that spawn the same
//! lanes at the same physical round, and step them together, keep every
//! lane's protocol rounds aligned across nodes — a lane's round-`k`
//! messages are delivered while every fault-free peer is in the same
//! lane's round `k`. The caller is responsible for spawning lanes at
//! common-knowledge points (the `mvbc-smr` scheduler derives them from
//! agreed protocol outputs).
//!
//! Scopes must be prefix-free: no lane's scope may be a `.`-boundary
//! prefix of another live lane's scope, so every message routes to at
//! most one lane (enforced at spawn time).
//!
//! # Examples
//!
//! Two lanes per node, each a one-round peer exchange, driven by one
//! physical round:
//!
//! ```
//! use mvbc_netsim::lanes::LaneMux;
//! use mvbc_netsim::{run_simulation, NodeCtx, NodeLogic, SimConfig};
//! use mvbc_metrics::MetricsSink;
//!
//! let logics: Vec<NodeLogic<Vec<u8>>> = (0..2)
//!     .map(|_| {
//!         Box::new(|ctx: &mut NodeCtx| {
//!             let mut mux: LaneMux<u8> = LaneMux::new();
//!             for (scope, mark) in [("ping.a", 10u8), ("ping.b", 20u8)] {
//!                 let me = ctx.id() as u8;
//!                 mux.spawn(ctx, scope, move |lane| {
//!                     let peer = 1 - lane.id();
//!                     let tag = mvbc_netsim::scoped_tag(scope, "msg");
//!                     lane.send(peer, tag, vec![me + mark], 8);
//!                     let mut inbox = lane.end_round();
//!                     inbox.take(peer, tag).map(|b| b[0]).unwrap_or(0)
//!                 });
//!             }
//!             let mut out = Vec::new();
//!             while mux.has_lanes() {
//!                 for lane in mux.step(ctx) {
//!                     out.push(lane.output);
//!                 }
//!             }
//!             out.sort_unstable();
//!             out
//!         }) as NodeLogic<Vec<u8>>
//!     })
//!     .collect();
//! let run = run_simulation(SimConfig::new(2), MetricsSink::new(), logics);
//! assert_eq!(run.outputs[0], vec![11, 21]); // peer id 1, lanes a and b
//! assert_eq!(run.rounds, 1); // both lanes shared one physical round
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use crossbeam::channel::{self, Receiver, Sender};

use crate::lanepool::{self, PoolHandle};
use crate::{CoordMsg, Inbox, InboxPool, NodeCtx};

/// Identifier of one spawned lane, unique within its [`LaneMux`].
pub type LaneId = u64;

/// A lane that completed during a [`LaneMux::step`] call.
#[derive(Debug)]
pub struct FinishedLane<O> {
    /// The lane's id (as returned by [`LaneMux::spawn`]).
    pub id: LaneId,
    /// The lane closure's return value.
    pub output: O,
    /// Protocol rounds the lane consumed (its own `end_round` count).
    pub rounds: u64,
    /// Logical bits the lane sent over its lifetime.
    pub logical_bits: u64,
}

struct Lane<O> {
    scope: String,
    up: Receiver<CoordMsg>,
    down: Sender<Inbox>,
    join: Option<PoolHandle<O>>,
    rounds: u64,
    logical_bits: u64,
}

/// Multiplexes several concurrent protocol lanes over one node's round
/// barrier (see the module docs).
pub struct LaneMux<O> {
    lanes: BTreeMap<LaneId, Lane<O>>,
    next_id: LaneId,
    /// Recycles the per-lane routed inboxes across steps (lane threads
    /// return shells when they drop them), mirroring the coordinator's
    /// own inbox pool.
    pool: Arc<InboxPool>,
}

impl<O> Default for LaneMux<O> {
    fn default() -> Self {
        LaneMux {
            lanes: BTreeMap::new(),
            next_id: 0,
            // 2 shells per lane in steady state; depth-16 pipelines fit.
            pool: InboxPool::with_cap(32),
        }
    }
}

/// True when `tag` equals `scope` or continues it at a `.` boundary.
fn scope_matches(tag: &str, scope: &str) -> bool {
    tag.len() >= scope.len()
        && tag.starts_with(scope)
        && (tag.len() == scope.len() || tag.as_bytes()[scope.len()] == b'.')
}

impl<O: Send + 'static> LaneMux<O> {
    /// An empty multiplexer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (spawned, not yet finished-and-collected) lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// True while any lane is live. A caller that stops early must keep
    /// calling [`LaneMux::step`] until this returns false (draining), or
    /// the lane threads are left blocked on a dropped channel.
    pub fn has_lanes(&self) -> bool {
        !self.lanes.is_empty()
    }

    /// Starts a lane running `logic` against a lane-local [`NodeCtx`]
    /// that shares `ctx`'s identity and metrics sink. All the lane's
    /// message tags must live under `scope` (see [`crate::scoped_tag`]);
    /// incoming messages are routed to the lane by that scope.
    ///
    /// The lane begins executing immediately on a pooled worker thread,
    /// up to its first `end_round`; it makes no further progress until
    /// the next [`LaneMux::step`].
    ///
    /// # Panics
    ///
    /// Panics when `scope` overlaps a live lane's scope (one is a
    /// `.`-boundary prefix of the other): routing would be ambiguous.
    pub fn spawn<F>(&mut self, ctx: &NodeCtx, scope: impl Into<String>, logic: F) -> LaneId
    where
        F: FnOnce(&mut NodeCtx) -> O + Send + 'static,
    {
        let scope = scope.into();
        for lane in self.lanes.values() {
            assert!(
                !scope_matches(&scope, &lane.scope) && !scope_matches(&lane.scope, &scope),
                "lane scope {scope:?} overlaps live lane scope {:?}",
                lane.scope
            );
        }
        let (up_tx, up_rx) = channel::unbounded::<CoordMsg>();
        let (down_tx, down_rx) = channel::unbounded::<Inbox>();
        let id = ctx.id();
        let n = ctx.n();
        let round = ctx.round();
        let vtime = ctx.vtime();
        let metrics = ctx.metrics().clone();
        // Lanes run on pooled workers: a warm worker from an earlier
        // finished lane is reused when one is idle (see `lanepool`).
        let join = lanepool::run(move || {
            let mut lane_ctx = NodeCtx {
                id,
                n,
                round,
                vtime,
                pending: Vec::new(),
                to_coord: up_tx.clone(),
                from_coord: down_rx,
                metrics,
            };
            let out = logic(&mut lane_ctx);
            let _ = up_tx.send(CoordMsg::Finished { from: id });
            out
        });
        let lane_id = self.next_id;
        self.next_id += 1;
        self.lanes.insert(
            lane_id,
            Lane {
                scope,
                up: up_rx,
                down: down_tx,
                join: Some(join),
                rounds: 0,
                logical_bits: 0,
            },
        );
        lane_id
    }

    /// Advances every live lane by one protocol round through **one**
    /// physical round of `ctx` (no physical round when every lane
    /// finished instead of submitting), and returns the lanes that
    /// completed.
    ///
    /// Round accounting: each submitting lane's messages are merged into
    /// `ctx`'s pending queue as-is (the lane's own sends already recorded
    /// the metrics), and the round's inbox is partitioned among the live
    /// lanes by tag scope. Messages matching no live lane — late traffic
    /// for finished lanes, or Byzantine noise — are dropped, exactly as
    /// an unread inbox message would be.
    ///
    /// # Panics
    ///
    /// Panics when called with no live lanes (callers gate on
    /// [`LaneMux::has_lanes`]), or when a lane's thread panicked (the
    /// panic is propagated with the lane's scope).
    pub fn step(&mut self, ctx: &mut NodeCtx) -> Vec<FinishedLane<O>> {
        assert!(self.has_lanes(), "step with no live lanes");
        let mut submitted: Vec<LaneId> = Vec::new();
        let mut done: Vec<LaneId> = Vec::new();
        for (&id, lane) in self.lanes.iter_mut() {
            // A live lane always either submits a round or finishes; recv
            // blocks until it does. A closed channel means the lane
            // panicked before announcing termination — surfaced at join.
            match lane.up.recv() {
                Ok(CoordMsg::Submit { outgoing, .. }) => {
                    lane.rounds += 1;
                    lane.logical_bits += outgoing.iter().map(|o| o.logical_bits).sum::<u64>();
                    ctx.pending.extend(outgoing);
                    submitted.push(id);
                }
                Ok(CoordMsg::Finished { .. }) | Err(_) => done.push(id),
            }
        }
        if !submitted.is_empty() {
            let mut inbox = ctx.end_round();
            let n = ctx.n();
            let mut routed: BTreeMap<LaneId, Inbox> = submitted
                .iter()
                .map(|&id| {
                    let mut sub_inbox = Inbox::pooled(n, &self.pool);
                    // Lanes share the physical round's clock: every
                    // sub-inbox (and thus every lane's `vtime()`) carries
                    // the round-end time of the underlying context.
                    sub_inbox.vtime = inbox.vtime();
                    (id, sub_inbox)
                })
                .collect();
            // Drain (rather than consume) the inbox so its buffers flow
            // back to the simulator's recycling pool on drop.
            for msg in inbox.drain_messages() {
                let target = self
                    .lanes
                    .iter()
                    .find(|(id, lane)| routed.contains_key(id) && scope_matches(msg.tag, &lane.scope))
                    .map(|(&id, _)| id);
                if let Some(id) = target {
                    let lane_inbox = routed.get_mut(&id).unwrap_or_else(|| {
                        panic!(
                            "lane routing: no inbox for lane {id} \
                             (tag {:?} from node {} routed to a lane that never submitted)",
                            msg.tag, msg.from
                        )
                    });
                    lane_inbox.by_sender[msg.from].push(msg);
                }
            }
            for (id, sub_inbox) in routed {
                // A send error means the lane finished right after this
                // submission without reading the inbox; it will report
                // Finished at the next step.
                let _ = self.lanes[&id].down.send(sub_inbox);
            }
        }
        done.into_iter()
            .map(|id| {
                let mut lane = self.lanes.remove(&id).expect("finished lane is live");
                let output = match lane.join.take().expect("join handle present").join() {
                    Ok(out) => out,
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| e.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!("lane {:?} panicked: {msg}", lane.scope);
                    }
                };
                FinishedLane {
                    id,
                    output,
                    rounds: lane.rounds,
                    logical_bits: lane.logical_bits,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_simulation, NodeLogic, SimConfig};
    use mvbc_metrics::MetricsSink;

    #[test]
    fn scope_matching_respects_dot_boundaries() {
        assert!(scope_matches("a.b", "a.b"));
        assert!(scope_matches("a.b.c", "a.b"));
        assert!(!scope_matches("a.bc", "a.b"));
        assert!(!scope_matches("a", "a.b"));
        assert!(!scope_matches("smr.slot1.a1.echo", "smr.slot1.a0"));
        assert!(scope_matches("smr.slot1.a0.echo", "smr.slot1.a0"));
    }

    /// Each node runs `w` lanes; lane `l` ping-pongs with the peer for
    /// `l + 1` protocol rounds. Lanes of different lengths share the
    /// physical rounds; total physical rounds = longest lane.
    #[test]
    fn lanes_of_unequal_length_share_physical_rounds() {
        let n = 2;
        let w = 3u64;
        let metrics = MetricsSink::new();
        let logics: Vec<NodeLogic<Vec<(LaneId, u64, u64)>>> = (0..n)
            .map(|_| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let mut mux: LaneMux<u64> = LaneMux::new();
                    for l in 0..w {
                        let scope = format!("lane{l}");
                        let tag = crate::scoped_tag(&scope, "ping");
                        mux.spawn(ctx, scope, move |lane| {
                            let peer = 1 - lane.id();
                            let mut acc = 0u64;
                            for r in 0..=l {
                                lane.send(peer, tag, vec![r as u8], 8);
                                let mut inbox = lane.end_round();
                                acc += u64::from(inbox.take(peer, tag).expect("peer pinged")[0]);
                            }
                            acc
                        });
                    }
                    let mut out = Vec::new();
                    while mux.has_lanes() {
                        for f in mux.step(ctx) {
                            out.push((f.id, f.output, f.rounds));
                        }
                    }
                    out.sort_unstable();
                    out
                }) as NodeLogic<Vec<(LaneId, u64, u64)>>
            })
            .collect();
        let run = run_simulation(SimConfig::new(n), metrics.clone(), logics);
        for out in &run.outputs {
            // Lane l exchanged sum(0..=l) and took l + 1 protocol rounds.
            assert_eq!(*out, vec![(0, 0, 1), (1, 1, 2), (2, 3, 3)]);
        }
        // Three lanes of 1/2/3 protocol rounds in 3 physical rounds.
        assert_eq!(run.rounds, 3);
        // Lane sends were metered exactly once: 2 nodes x (1+2+3) pings.
        assert_eq!(metrics.snapshot().total_messages(), 12);
        assert_eq!(metrics.snapshot().total_logical_bits(), 96);
    }

    #[test]
    fn per_lane_bit_accounting_is_exact() {
        let logics: Vec<NodeLogic<u64>> = (0..2)
            .map(|_| {
                Box::new(|ctx: &mut NodeCtx| {
                    let mut mux: LaneMux<()> = LaneMux::new();
                    let tag = crate::scoped_tag("acct", "x");
                    mux.spawn(ctx, "acct", move |lane| {
                        let peer = 1 - lane.id();
                        lane.send(peer, tag, vec![1, 2, 3], 24);
                        lane.end_round();
                        lane.send(peer, tag, vec![4], 8);
                        lane.end_round();
                    });
                    let mut bits = 0;
                    while mux.has_lanes() {
                        for f in mux.step(ctx) {
                            bits = f.logical_bits;
                            assert_eq!(f.rounds, 2);
                        }
                    }
                    bits
                }) as NodeLogic<u64>
            })
            .collect();
        let run = run_simulation(SimConfig::new(2), MetricsSink::new(), logics);
        assert_eq!(run.outputs, vec![32, 32]);
    }

    #[test]
    fn messages_for_finished_lanes_are_dropped() {
        // Node 0 runs a short lane "a" and a long lane "b"; node 1 keeps
        // sending "a"-scoped messages after lane "a" finished. The late
        // traffic is dropped, lane "b" is unaffected.
        let tag_a = crate::scoped_tag("a", "m");
        let tag_b = crate::scoped_tag("b", "m");
        let logics: Vec<NodeLogic<u64>> = (0..2)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    if id == 1 {
                        // Raw peer: 3 rounds, spamming both scopes.
                        for _ in 0..3 {
                            ctx.send(0, tag_a, vec![9], 8);
                            ctx.send(0, tag_b, vec![7], 8);
                            ctx.end_round();
                        }
                        return 0;
                    }
                    let mut mux: LaneMux<u64> = LaneMux::new();
                    mux.spawn(ctx, "a", move |lane| {
                        let mut inbox = lane.end_round();
                        u64::from(inbox.take(1, tag_a).expect("round-1 a")[0])
                    });
                    mux.spawn(ctx, "b", move |lane| {
                        let mut acc = 0u64;
                        for _ in 0..3 {
                            let mut inbox = lane.end_round();
                            acc += u64::from(inbox.take(1, tag_b).expect("b every round")[0]);
                        }
                        acc
                    });
                    let mut total = 0;
                    while mux.has_lanes() {
                        for f in mux.step(ctx) {
                            total += f.output;
                        }
                    }
                    total
                }) as NodeLogic<u64>
            })
            .collect();
        let run = run_simulation(SimConfig::new(2), MetricsSink::new(), logics);
        assert_eq!(run.outputs[0], 9 + 21);
    }

    #[test]
    fn lanes_spawned_mid_run_join_the_next_round() {
        // One lane finishes, then a new lane with the same traffic
        // pattern is spawned from its result — sequential composition
        // through the mux.
        let logics: Vec<NodeLogic<u64>> = (0..2)
            .map(|_| {
                Box::new(move |ctx: &mut NodeCtx| {
                    let mut mux: LaneMux<u64> = LaneMux::new();
                    let spawn_exchange = |mux: &mut LaneMux<u64>, ctx: &NodeCtx, add: u64| {
                        let me = ctx.id() as u64;
                        mux.spawn(ctx, format!("gen{add}"), move |lane| {
                            let peer = 1 - lane.id();
                            let tag = crate::scoped_tag(&format!("gen{add}"), "m");
                            lane.send(peer, tag, vec![(me + add) as u8], 8);
                            let mut inbox = lane.end_round();
                            u64::from(inbox.take(peer, tag).expect("peer sent")[0])
                        });
                    };
                    spawn_exchange(&mut mux, ctx, 1);
                    let mut results = Vec::new();
                    while mux.has_lanes() {
                        for f in mux.step(ctx) {
                            results.push(f.output);
                            if results.len() == 1 {
                                spawn_exchange(&mut mux, ctx, 10);
                            }
                        }
                    }
                    results.iter().sum()
                }) as NodeLogic<u64>
            })
            .collect();
        let run = run_simulation(SimConfig::new(2), MetricsSink::new(), logics);
        // Node 0 hears 1+1=2 then 1+10=11; node 1 hears 0+1 then 0+10.
        assert_eq!(run.outputs, vec![13, 11]);
        assert_eq!(run.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "overlaps live lane scope")]
    fn overlapping_scopes_rejected() {
        let logics: Vec<NodeLogic<()>> = vec![Box::new(|ctx: &mut NodeCtx| {
            let mut mux: LaneMux<()> = LaneMux::new();
            mux.spawn(ctx, "s.slot1", |lane| {
                lane.end_round();
            });
            mux.spawn(ctx, "s.slot1.a0", |lane| {
                lane.end_round();
            });
        })];
        let _ = run_simulation(SimConfig::new(1), MetricsSink::new(), logics);
    }

    #[test]
    #[should_panic(expected = "lane \"boom\" panicked: lane exploded")]
    fn lane_panic_propagates_with_scope() {
        let logics: Vec<NodeLogic<()>> = vec![Box::new(|ctx: &mut NodeCtx| {
            let mut mux: LaneMux<()> = LaneMux::new();
            mux.spawn(ctx, "boom", |_lane| panic!("lane exploded"));
            while mux.has_lanes() {
                mux.step(ctx);
            }
        })];
        let _ = run_simulation(SimConfig::new(1), MetricsSink::new(), logics);
    }
}
