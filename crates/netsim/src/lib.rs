//! Synchronous fully-connected network simulator.
//!
//! Implements the system model of Liang & Vaidya (PODC 2011) §1:
//!
//! - a synchronous network of `n` processors with common knowledge of
//!   processor identities,
//! - a pair of directed point-to-point channels between every two
//!   processors, and
//! - *authenticated channels*: when a processor receives a message on such
//!   a channel it knows which processor sent it (the simulator stamps the
//!   true sender on every delivery; a Byzantine processor can lie about
//!   content but never about its identity).
//!
//! Each processor runs on its own OS thread and proceeds in lockstep
//! rounds: messages sent during round `r` (via [`NodeCtx::send`]) are
//! delivered to every recipient at the end of round `r` (from
//! [`NodeCtx::end_round`]). A coordinator thread enforces the round
//! barrier, routes messages, and feeds the
//! [`MetricsSink`] that experiments use to
//! measure communication complexity.
//!
//! # Scheduling policies
//!
//! The coordinator runs one of two [`SchedulingPolicy`]s (configured via
//! [`SimConfig::with_policy`]):
//!
//! - [`SchedulingPolicy::RoundBarrier`] (the default): the classic
//!   lockstep model above, where the round counter *is* the clock — the
//!   virtual time of round `r`'s deliveries is simply `r`. This path is
//!   byte-identical to the pre-event-driven simulator: traces, digests
//!   and metrics do not change.
//! - [`SchedulingPolicy::EventDriven`]: timed rounds over a
//!   [`NetModel`]. Every node keeps its own virtual clock, each message
//!   is assigned a per-link latency (seeded, FIFO per directed link) and
//!   delivered through a discrete-event queue ([`events::EventQueue`]),
//!   and a node's round ends at the arrival of its last round message.
//!   Round *semantics* are unchanged — every round-`r` message still
//!   reaches its recipient within the recipient's round `r`, so protocol
//!   code runs unmodified — but [`NodeCtx::vtime`], [`Inbox::vtime`] and
//!   the trace's virtual timestamps now measure the latency shape of a
//!   WAN deployment, including partitions that form and heal mid-run.
//!
//! # Examples
//!
//! ```
//! use mvbc_netsim::{run_simulation, NodeCtx, SimConfig};
//! use mvbc_metrics::MetricsSink;
//!
//! // Two nodes exchange their ids and report the peer's id.
//! let metrics = MetricsSink::new();
//! let mk = |_: usize| {
//!     Box::new(move |ctx: &mut NodeCtx| {
//!         let peer = 1 - ctx.id();
//!         ctx.send(peer, "hello", vec![ctx.id() as u8], 8);
//!         let mut inbox = ctx.end_round();
//!         inbox.take(peer, "hello").map(|b| b[0] as usize)
//!     }) as Box<dyn FnOnce(&mut NodeCtx) -> Option<usize> + Send>
//! };
//! let out = run_simulation(SimConfig::new(2), metrics, (0..2).map(mk).collect());
//! assert_eq!(out.outputs, vec![Some(1), Some(0)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod events;
pub mod lanepool;
pub mod lanes;
pub mod net;
pub mod trace;

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use mvbc_metrics::MetricsSink;
use rand::rngs::StdRng;
use rand::SeedableRng;

use events::EventQueue;

pub use events::VirtualTime;
pub use mvbc_metrics::NodeId;
pub use net::{
    LinkModel, NetModel, Partition, PartitionBehavior, SchedulingPolicy, Topology,
};

/// Default for [`SimConfig::round_timeout`]: how long the coordinator
/// waits for a node's round submission before declaring the simulation
/// wedged. Protocol bugs (mismatched `end_round` counts between nodes)
/// surface as this panic instead of a silent hang.
pub const DEFAULT_ROUND_TIMEOUT: Duration = Duration::from_secs(60);

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of processors.
    pub n: usize,
    /// Abort the run if it exceeds this many rounds (guards against
    /// run-away protocols in tests). `None` disables the check.
    pub max_rounds: Option<u64>,
    /// How long the coordinator waits for any round submission before
    /// declaring the simulation wedged. Long multi-slot runs on slow
    /// machines may need more than [`DEFAULT_ROUND_TIMEOUT`]. This is a
    /// *wall-clock* guard against protocol bugs; for a *virtual-time*
    /// budget, see [`SimConfig::max_vtime`].
    pub round_timeout: Duration,
    /// How the coordinator schedules rounds (see the crate docs).
    pub policy: SchedulingPolicy,
    /// Abort the run if the virtual clock exceeds this many ticks
    /// (guards event-driven runs the way `max_rounds` guards round
    /// counts). `None` disables the check.
    pub max_vtime: Option<VirtualTime>,
}

impl SimConfig {
    /// Configuration with the default round limit (1 million), round
    /// timeout ([`DEFAULT_ROUND_TIMEOUT`]), and the
    /// [`SchedulingPolicy::RoundBarrier`] policy.
    pub fn new(n: usize) -> Self {
        SimConfig {
            n,
            max_rounds: Some(1_000_000),
            round_timeout: DEFAULT_ROUND_TIMEOUT,
            policy: SchedulingPolicy::RoundBarrier,
            max_vtime: None,
        }
    }

    /// Returns the configuration with a different wedge-detection timeout.
    pub fn with_round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Returns the configuration with a different scheduling policy.
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the configuration with a virtual-time budget.
    pub fn with_max_vtime(mut self, limit: VirtualTime) -> Self {
        self.max_vtime = Some(limit);
        self
    }
}

/// Interns `"{scope}.{suffix}"` as a `'static` message/metric tag.
///
/// Protocols that run many sequential executions inside one simulation
/// (e.g. the `mvbc-smr` replicated log) scope their tags per execution so
/// a Byzantine processor sending a message early or late cannot have it
/// mistaken for the like-tagged message of an adjacent slot.
pub fn scoped_tag(scope: &str, suffix: &str) -> &'static str {
    mvbc_metrics::intern_tag(&format!("{scope}.{suffix}"))
}

/// Interns the per-slot tag scope `"{proto}.slot{slot}"` (see
/// [`scoped_tag`]).
pub fn slot_scope(proto: &str, slot: u64) -> &'static str {
    mvbc_metrics::intern_tag(&format!("{proto}.slot{slot}"))
}

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// True sender identity (authenticated channel).
    pub from: NodeId,
    /// Protocol tag; sub-protocols use distinct tags to multiplex a round.
    pub tag: &'static str,
    /// Opaque payload.
    pub payload: Bytes,
    /// Virtual delivery time, stamped by the coordinator at routing (0
    /// while the message is still queued on the sender). Under the
    /// round-barrier policy this is the round counter; under the
    /// event-driven policy it is the message's arrival tick.
    pub at: VirtualTime,
}

/// A drained inbox buffer (`n` per-sender message vectors, emptied but
/// with capacity retained).
type InboxShell = Vec<Vec<Message>>;

/// Recycling pool for inbox buffers, shared between the coordinator
/// (which takes a shell per node per round) and the node-side [`Inbox`]
/// drops (which return them). Without the pool, routing allocated
/// `vec![Vec::new(); n]` per node per round; with it, a steady-state
/// simulation reuses the same `2n` shells — and their grown inner
/// capacities — for the whole run.
#[derive(Debug, Default)]
struct InboxPool {
    shells: std::sync::Mutex<Vec<InboxShell>>,
    /// Maximum shells retained (`2n`: one in flight + one draining per
    /// node). Returns beyond the cap are dropped, bounding memory even
    /// if a protocol clones or hoards inboxes.
    cap: usize,
}

impl InboxPool {
    fn with_cap(cap: usize) -> Arc<Self> {
        Arc::new(InboxPool {
            shells: std::sync::Mutex::new(Vec::with_capacity(cap)),
            cap,
        })
    }

    fn take(&self, n: usize) -> InboxShell {
        let shell = self
            .shells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        match shell {
            Some(mut shell) => {
                shell.resize_with(n, Vec::new);
                shell
            }
            None => vec![Vec::new(); n],
        }
    }

    fn put(&self, mut shell: InboxShell) {
        for msgs in &mut shell {
            msgs.clear();
        }
        let mut shells = self
            .shells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shells.len() < self.cap {
            shells.push(shell);
        }
    }
}

/// All messages delivered to one node at one round boundary, grouped by
/// sender.
///
/// Inboxes delivered by the simulator carry a handle to the
/// coordinator's buffer pool: dropping the inbox (however the protocol
/// code is structured) returns its buffers for reuse in a later round.
#[derive(Debug, Default)]
pub struct Inbox {
    by_sender: InboxShell,
    pool: Option<Arc<InboxPool>>,
    vtime: VirtualTime,
}

impl Clone for Inbox {
    fn clone(&self) -> Self {
        // Clones are detached from the pool: only the original returns
        // its (capacity-grown) buffers.
        Inbox {
            by_sender: self.by_sender.clone(),
            pool: None,
            vtime: self.vtime,
        }
    }
}

impl Drop for Inbox {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.by_sender));
        }
    }
}

impl Inbox {
    fn pooled(n: usize, pool: &Arc<InboxPool>) -> Self {
        Inbox {
            by_sender: pool.take(n),
            pool: Some(pool.clone()),
            vtime: 0,
        }
    }

    /// The virtual time at which this round ended for the recipient:
    /// the round counter under the round-barrier policy, the arrival
    /// tick of the round's last message under the event-driven policy.
    pub fn vtime(&self) -> VirtualTime {
        self.vtime
    }

    /// Messages received from `sender`, in send order.
    pub fn from_sender(&self, sender: NodeId) -> &[Message] {
        &self.by_sender[sender]
    }

    /// Removes and returns the first message from `sender` carrying `tag`.
    ///
    /// Returns `None` when no such message arrived — Byzantine silence and
    /// "message not sent" are indistinguishable, exactly as in the model.
    pub fn take(&mut self, sender: NodeId, tag: &str) -> Option<Bytes> {
        let msgs = &mut self.by_sender[sender];
        let idx = msgs.iter().position(|m| m.tag == tag)?;
        Some(msgs.remove(idx).payload)
    }

    /// Drains every message (senders in id order, send order within a
    /// sender), leaving the inbox empty but its buffers intact for
    /// recycling. Each [`Message`] still names its authenticated sender.
    pub fn drain_messages(&mut self) -> impl Iterator<Item = Message> + '_ {
        self.by_sender.iter_mut().flat_map(|msgs| msgs.drain(..))
    }

    /// Total number of messages in the inbox.
    pub fn len(&self) -> usize {
        self.by_sender.iter().map(Vec::len).sum()
    }

    /// True when no messages were delivered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Outgoing {
    to: NodeId,
    msg: Message,
    logical_bits: u64,
}

enum CoordMsg {
    Submit {
        from: NodeId,
        outgoing: Vec<Outgoing>,
    },
    Finished {
        from: NodeId,
    },
}

/// Handle through which node logic interacts with the network.
///
/// See the crate docs for the round semantics.
pub struct NodeCtx {
    id: NodeId,
    n: usize,
    round: u64,
    vtime: VirtualTime,
    pending: Vec<Outgoing>,
    to_coord: Sender<CoordMsg>,
    from_coord: Receiver<Inbox>,
    metrics: MetricsSink,
}

impl fmt::Debug for NodeCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCtx")
            .field("id", &self.id)
            .field("n", &self.n)
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl NodeCtx {
    /// This processor's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of processors in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This processor's virtual clock: the end time of its last
    /// completed round (0 before the first [`NodeCtx::end_round`]).
    /// Under the round-barrier policy this equals [`NodeCtx::round`];
    /// under the event-driven policy it is the node's position on the
    /// simulation's virtual clock, in ticks.
    pub fn vtime(&self) -> VirtualTime {
        self.vtime
    }

    /// Shared metrics sink (e.g. for protocol-level custom counters).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Queues a message for delivery at the end of the current round.
    ///
    /// `logical_bits` is the message's size under the algorithm's own
    /// accounting (see [`mvbc_metrics`]); it is what the communication
    /// complexity experiments sum up.
    ///
    /// Sending to self is allowed and delivered like any other message.
    ///
    /// # Panics
    ///
    /// Panics when `to >= n`.
    pub fn send(&mut self, to: NodeId, tag: &'static str, payload: impl Into<Bytes>, logical_bits: u64) {
        assert!(to < self.n, "recipient {to} out of range (n = {})", self.n);
        let payload = payload.into();
        self.metrics
            .record_send(self.id, tag, logical_bits, payload.len() as u64);
        self.pending.push(Outgoing {
            to,
            msg: Message {
                from: self.id,
                tag,
                payload,
                at: 0,
            },
            logical_bits,
        });
    }

    /// Completes the current round: flushes queued messages and blocks
    /// until every other processor has completed the round too, then
    /// returns the messages delivered to this processor.
    ///
    /// # Panics
    ///
    /// Panics when the coordinator has shut down (another node panicked or
    /// the round limit was hit).
    pub fn end_round(&mut self) -> Inbox {
        let outgoing = std::mem::take(&mut self.pending);
        self.to_coord
            .send(CoordMsg::Submit {
                from: self.id,
                outgoing,
            })
            .expect("coordinator alive");
        let inbox = self
            .from_coord
            .recv()
            .expect("coordinator delivers a round inbox");
        self.round += 1;
        self.vtime = inbox.vtime;
        inbox
    }
}

/// The boxed per-node logic closure executed by [`run_simulation`].
pub type NodeLogic<O> = Box<dyn FnOnce(&mut NodeCtx) -> O + Send>;

/// Coordinator-side state of an event-driven run.
struct EventState {
    model: NetModel,
    /// Per-node dispatch time of the *next* round: its last round-end
    /// plus the model's compute ticks.
    clocks: Vec<VirtualTime>,
    /// Last delivery tick per directed link `[from][to]`: sampled
    /// latencies are clamped to it so links stay FIFO under jitter and a
    /// recipient's per-sender inbox order always equals send order.
    link_last: Vec<Vec<VirtualTime>>,
    /// Seeded jitter stream ([`NetModel::seed`]).
    rng: StdRng,
}

/// Result of a completed simulation.
#[derive(Debug)]
pub struct SimResult<O> {
    /// Output of each node's logic, indexed by node id.
    pub outputs: Vec<O>,
    /// Rounds executed.
    pub rounds: u64,
    /// Final virtual time: the latest round-end tick across all nodes
    /// (equals `rounds` under the round-barrier policy).
    pub vtime: VirtualTime,
}

/// Runs `n` node closures to completion under the synchronous round model.
///
/// Each closure runs on its own thread; outputs are collected by node id.
/// Byzantine "crash"/"silence" is modelled by a closure returning early.
///
/// # Panics
///
/// Panics if any node logic panics (the panic is propagated with the node
/// id), if `nodes.len() != config.n`, or if `config.max_rounds` is
/// exceeded.
pub fn run_simulation<O: Send + 'static>(
    config: SimConfig,
    metrics: MetricsSink,
    nodes: Vec<NodeLogic<O>>,
) -> SimResult<O> {
    run_simulation_traced(config, metrics, None, nodes)
}

/// As [`run_simulation`], additionally recording every delivered message
/// into `trace` (when supplied). Tracing does not change scheduling or
/// results — the simulator is deterministic either way — so a traced run
/// is bit-identical to an untraced one.
///
/// # Panics
///
/// As [`run_simulation`].
pub fn run_simulation_traced<O: Send + 'static>(
    config: SimConfig,
    metrics: MetricsSink,
    trace: Option<trace::TraceSink>,
    nodes: Vec<NodeLogic<O>>,
) -> SimResult<O> {
    let n = config.n;
    assert!(n > 0, "simulation needs at least one node");
    assert_eq!(nodes.len(), n, "one logic closure per node required");

    let (to_coord, coord_rx) = channel::unbounded::<CoordMsg>();

    std::thread::scope(|scope| {
        let mut node_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (id, logic) in nodes.into_iter().enumerate() {
            let (tx, rx) = channel::unbounded::<Inbox>();
            node_txs.push(tx);
            let to_coord = to_coord.clone();
            let metrics = metrics.clone();
            handles.push(scope.spawn(move || {
                let mut ctx = NodeCtx {
                    id,
                    n,
                    round: 0,
                    vtime: 0,
                    pending: Vec::new(),
                    to_coord: to_coord.clone(),
                    from_coord: rx,
                    metrics,
                };
                // Always announce termination, even on panic, so the
                // coordinator never wedges; the panic is re-raised and
                // surfaced with the node id at join time.
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| logic(&mut ctx)));
                let _ = to_coord.send(CoordMsg::Finished { from: id });
                match result {
                    Ok(out) => out,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }));
        }
        drop(to_coord);

        // Coordinator loop (runs on the scope's owning thread).
        let pool = InboxPool::with_cap(2 * n);
        let mut active = vec![true; n];
        let mut active_count = n;
        let mut rounds: u64 = 0;
        // The simulation's virtual clock: the latest round-end tick
        // routed so far. Under the round-barrier policy it tracks the
        // round counter exactly.
        let mut vtime_now: VirtualTime = 0;
        let mut event_state = match &config.policy {
            SchedulingPolicy::RoundBarrier => None,
            SchedulingPolicy::EventDriven(model) => {
                model.topology.validate(n);
                assert!(model.compute_ticks >= 1, "compute_ticks must be at least 1");
                for p in &model.partitions {
                    assert!(
                        p.start < p.heal,
                        "partition heals at {} before it starts at {}",
                        p.heal,
                        p.start
                    );
                    for &node in &p.island {
                        assert!(node < n, "partition island node {node} out of range (n = {n})");
                    }
                }
                Some(EventState {
                    clocks: vec![0; n],
                    link_last: vec![vec![0; n]; n],
                    rng: StdRng::seed_from_u64(model.seed),
                    model: model.clone(),
                })
            }
        };
        // Optional telemetry (attached via `MetricsSink::with_telemetry`):
        // per-link delivery accounting, partition outage windows, and the
        // event-queue high-water mark. Purely observational — it adds no
        // messages and moves no timestamps, so trace digests are
        // unchanged whether or not a recorder is attached.
        let telemetry = metrics.telemetry();
        if let (Some(st), Some(tel)) = (&event_state, &telemetry) {
            for p in &st.model.partitions {
                let behavior = match p.behavior {
                    PartitionBehavior::Drop => "drop",
                    PartitionBehavior::Delay => "delay",
                };
                tel.register_outage(p.start, p.heal, behavior);
            }
        }
        while active_count > 0 {
            let mut submissions: Vec<Option<Vec<Outgoing>>> = (0..n).map(|_| None).collect();
            let mut waiting = active_count;
            while waiting > 0 {
                let msg = match coord_rx.recv_timeout(config.round_timeout) {
                    Ok(msg) => msg,
                    Err(e) => {
                        let missing: Vec<NodeId> = (0..n)
                            .filter(|&i| active[i] && submissions[i].is_none())
                            .collect();
                        panic!(
                            "simulation wedged in round {}: node(s) {missing:?} never submitted \
                             within {:?} under the {} policy at virtual time {vtime_now} \
                             ({waiting} of {active_count} active node(s) outstanding, \
                             channel state: {e:?})",
                            rounds + 1,
                            config.round_timeout,
                            config.policy.name(),
                        );
                    }
                };
                match msg {
                    CoordMsg::Submit { from, outgoing } => {
                        assert!(
                            submissions[from].is_none(),
                            "node {from} submitted twice in one round"
                        );
                        submissions[from] = Some(outgoing);
                        waiting -= 1;
                    }
                    CoordMsg::Finished { from } => {
                        if active[from] {
                            active[from] = false;
                            active_count -= 1;
                            // A node that had already submitted this round and
                            // then finished: its submission stays valid.
                            if submissions[from].is_none() {
                                waiting -= 1;
                            }
                        }
                    }
                }
            }
            if active_count == 0 && submissions.iter().all(Option::is_none) {
                break;
            }
            rounds += 1;
            if let Some(limit) = config.max_rounds {
                assert!(rounds <= limit, "round limit {limit} exceeded");
            }
            metrics.record_round();
            // Route: recipients see messages grouped by sender id.
            // Buffers come from the recycling pool: nodes return them
            // when they drop the previous round's inbox.
            let mut inboxes: Vec<Inbox> = (0..n).map(|_| Inbox::pooled(n, &pool)).collect();
            match &mut event_state {
                // Round barrier: deliveries iterate submissions in
                // sender-id order and the round counter is the clock.
                // This arm must stay byte-identical to the pre-policy
                // simulator (golden digests pin it).
                None => {
                    vtime_now = rounds;
                    for inbox in &mut inboxes {
                        inbox.vtime = rounds;
                    }
                    for sub in submissions.into_iter().flatten() {
                        for mut out in sub {
                            out.msg.at = rounds;
                            if let Some(trace) = &trace {
                                trace.record(trace::TraceEvent {
                                    round: rounds,
                                    from: out.msg.from,
                                    to: out.to,
                                    tag: out.msg.tag,
                                    logical_bits: out.logical_bits,
                                    payload_bytes: out.msg.payload.len() as u64,
                                    vtime: rounds,
                                });
                            }
                            if active[out.to] {
                                inboxes[out.to].by_sender[out.msg.from].push(out.msg);
                            }
                        }
                    }
                }
                // Event-driven: sample a latency per message (senders in
                // id order, send order within a sender, so the jitter
                // stream is a pure function of the send pattern), clamp
                // each directed link to FIFO, apply partitions at
                // dispatch time, then deliver through the event queue in
                // (time, seq) order.
                Some(st) => {
                    let mut queue: EventQueue<Outgoing> = EventQueue::new();
                    for (from, sub) in submissions.into_iter().enumerate() {
                        let Some(sub) = sub else { continue };
                        let dispatch = st.clocks[from];
                        for out in sub {
                            // Sample before the partition check so the
                            // jitter stream does not depend on the
                            // partition schedule: with and without a
                            // partition, the same seed yields the same
                            // latencies for the surviving messages.
                            let latency = st
                                .model
                                .link
                                .sample(st.model.same_cluster(from, out.to), &mut st.rng);
                            let mut base = dispatch;
                            let mut dropped = false;
                            for (cut, p) in st.model.partitions.iter().enumerate() {
                                if p.cuts(dispatch, from, out.to) {
                                    match p.behavior {
                                        PartitionBehavior::Drop => dropped = true,
                                        PartitionBehavior::Delay => base = base.max(p.heal),
                                    }
                                    if let Some(tel) = &telemetry {
                                        tel.record_outage_hit(cut, dropped);
                                    }
                                    break;
                                }
                            }
                            if dropped {
                                // Lost at the cut: no delivery, no trace
                                // event. The send itself was already
                                // metered — the bits left the sender.
                                continue;
                            }
                            let link_last = &mut st.link_last[from][out.to];
                            let at = (base + latency).max(*link_last);
                            *link_last = at;
                            queue.schedule(at, out);
                        }
                    }
                    if let Some(tel) = &telemetry {
                        tel.record_queue_depth(queue.len() as u64);
                    }
                    let mut round_end: Vec<VirtualTime> = st.clocks.clone();
                    while let Some((at, mut out)) = queue.pop() {
                        out.msg.at = at;
                        if let Some(tel) = &telemetry {
                            // Delivery delay: sampled latency plus any
                            // partition hold and FIFO clamping (clocks
                            // still hold this round's dispatch times).
                            tel.record_link(
                                out.msg.from,
                                out.to,
                                out.msg.payload.len() as u64,
                                at - st.clocks[out.msg.from],
                            );
                        }
                        if let Some(trace) = &trace {
                            trace.record(trace::TraceEvent {
                                round: rounds,
                                from: out.msg.from,
                                to: out.to,
                                tag: out.msg.tag,
                                logical_bits: out.logical_bits,
                                payload_bytes: out.msg.payload.len() as u64,
                                vtime: at,
                            });
                        }
                        if active[out.to] {
                            round_end[out.to] = round_end[out.to].max(at);
                            inboxes[out.to].by_sender[out.msg.from].push(out.msg);
                        }
                    }
                    for (id, inbox) in inboxes.iter_mut().enumerate() {
                        inbox.vtime = round_end[id];
                        st.clocks[id] = round_end[id] + st.model.compute_ticks;
                        vtime_now = vtime_now.max(round_end[id]);
                    }
                }
            }
            if let Some(limit) = config.max_vtime {
                assert!(
                    vtime_now <= limit,
                    "virtual time limit {limit} exceeded (virtual time {vtime_now} at round {rounds})"
                );
            }
            for (id, inbox) in inboxes.into_iter().enumerate() {
                if active[id] {
                    // A send error means the node finished right after
                    // submitting; it will be deactivated via Finished.
                    let _ = node_txs[id].send(inbox);
                }
            }
        }

        let outputs: Vec<O> = handles
            .into_iter()
            .enumerate()
            .map(|(id, h)| match h.join() {
                Ok(o) => o,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("node {id} panicked: {msg}");
                }
            })
            .collect();
        SimResult {
            outputs,
            rounds,
            vtime: vtime_now,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    type Logic<O> = Box<dyn FnOnce(&mut NodeCtx) -> O + Send>;

    fn run<O: Send + 'static>(n: usize, mk: impl Fn(usize) -> Logic<O>) -> (SimResult<O>, MetricsSink) {
        let metrics = MetricsSink::new();
        let logics = (0..n).map(&mk).collect();
        let res = run_simulation(SimConfig::new(n), metrics.clone(), logics);
        (res, metrics)
    }

    #[test]
    fn all_to_all_exchange() {
        let (res, metrics) = run(4, |_| {
            Box::new(|ctx: &mut NodeCtx| {
                for to in 0..ctx.n() {
                    if to != ctx.id() {
                        ctx.send(to, "ping", vec![ctx.id() as u8], 8);
                    }
                }
                let inbox = ctx.end_round();
                let mut got: Vec<usize> = (0..ctx.n())
                    .filter(|&s| !inbox.from_sender(s).is_empty())
                    .collect();
                got.sort_unstable();
                got
            })
        });
        for (id, got) in res.outputs.iter().enumerate() {
            let expect: Vec<usize> = (0..4).filter(|&s| s != id).collect();
            assert_eq!(*got, expect);
        }
        assert_eq!(res.rounds, 1);
        let snap = metrics.snapshot();
        assert_eq!(snap.total_messages(), 12);
        assert_eq!(snap.total_logical_bits(), 96);
        assert_eq!(snap.rounds(), 1);
    }

    #[test]
    fn multi_round_pipeline() {
        // Token passes 0 -> 1 -> 2 -> 0 over three rounds.
        let (res, _) = run(3, |_| {
            Box::new(|ctx: &mut NodeCtx| {
                let mut token: Option<u8> = (ctx.id() == 0).then_some(42);
                for _ in 0..3 {
                    if let Some(t) = token.take() {
                        ctx.send((ctx.id() + 1) % ctx.n(), "tok", vec![t], 8);
                    }
                    let mut inbox = ctx.end_round();
                    let prev = (ctx.id() + ctx.n() - 1) % ctx.n();
                    if let Some(b) = inbox.take(prev, "tok") {
                        token = Some(b[0]);
                    }
                }
                token
            })
        });
        assert_eq!(res.outputs, vec![Some(42), None, None]);
        assert_eq!(res.rounds, 3);
    }

    #[test]
    fn early_finisher_does_not_deadlock() {
        // Node 2 "crashes" immediately; others exchange for 2 rounds.
        let (res, _) = run(3, |id| {
            Box::new(move |ctx: &mut NodeCtx| {
                if id == 2 {
                    return 0usize;
                }
                let mut received = 0usize;
                for _ in 0..2 {
                    for to in 0..ctx.n() {
                        if to != ctx.id() {
                            ctx.send(to, "x", Bytes::new(), 1);
                        }
                    }
                    let inbox = ctx.end_round();
                    received += inbox.len();
                }
                received
            })
        });
        // Each active node hears only from the other active node.
        assert_eq!(res.outputs[0], 2);
        assert_eq!(res.outputs[1], 2);
        assert_eq!(res.outputs[2], 0);
    }

    #[test]
    fn messages_to_finished_nodes_are_dropped() {
        let (res, metrics) = run(2, |id| {
            Box::new(move |ctx: &mut NodeCtx| {
                if id == 1 {
                    return 0usize;
                }
                ctx.send(1, "into-void", vec![1, 2, 3], 24);
                let inbox = ctx.end_round();
                inbox.len()
            })
        });
        assert_eq!(res.outputs[0], 0);
        // The send is still *counted*: the bits were transmitted.
        assert_eq!(metrics.snapshot().total_logical_bits(), 24);
    }

    #[test]
    fn sender_identity_is_authenticated() {
        // Receiver sees the true `from` regardless of payload claims.
        let (res, _) = run(2, |id| {
            Box::new(move |ctx: &mut NodeCtx| {
                if id == 0 {
                    // claims to be node 7 in the payload
                    ctx.send(1, "spoof", vec![7u8], 8);
                    ctx.end_round();
                    None
                } else {
                    let inbox = ctx.end_round();
                    inbox.from_sender(0).first().map(|m| m.from)
                }
            })
        });
        assert_eq!(res.outputs[1], Some(0));
    }

    #[test]
    fn take_consumes_messages_in_order() {
        let (res, _) = run(2, |id| {
            Box::new(move |ctx: &mut NodeCtx| {
                if id == 0 {
                    ctx.send(1, "a", vec![1], 8);
                    ctx.send(1, "b", vec![2], 8);
                    ctx.send(1, "a", vec![3], 8);
                    ctx.end_round();
                    Vec::new()
                } else {
                    let mut inbox = ctx.end_round();
                    let mut got = Vec::new();
                    got.push(inbox.take(0, "a").unwrap()[0]);
                    got.push(inbox.take(0, "a").unwrap()[0]);
                    assert!(inbox.take(0, "a").is_none());
                    got.push(inbox.take(0, "b").unwrap()[0]);
                    got
                }
            })
        });
        assert_eq!(res.outputs[1], vec![1, 3, 2]);
    }

    #[test]
    fn self_send_is_delivered() {
        let (res, _) = run(1, |_| {
            Box::new(|ctx: &mut NodeCtx| {
                ctx.send(0, "self", vec![9], 8);
                let mut inbox = ctx.end_round();
                inbox.take(0, "self").map(|b| b[0])
            })
        });
        assert_eq!(res.outputs[0], Some(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        let _ = run(1, |_| {
            Box::new(|ctx: &mut NodeCtx| {
                ctx.send(5, "bad", Bytes::new(), 0);
            })
        });
    }

    #[test]
    #[should_panic(expected = "round limit")]
    fn round_limit_enforced() {
        let metrics = MetricsSink::new();
        let logics: Vec<NodeLogic<()>> = vec![Box::new(|ctx| loop {
            ctx.end_round();
        })];
        let cfg = SimConfig {
            max_rounds: Some(10),
            ..SimConfig::new(1)
        };
        let _ = run_simulation(cfg, metrics, logics);
    }

    #[test]
    #[should_panic(expected = "node 0 panicked")]
    fn node_panic_propagates() {
        let metrics = MetricsSink::new();
        let logics: Vec<NodeLogic<()>> = vec![Box::new(|_| panic!("boom"))];
        let _ = run_simulation(SimConfig::new(1), metrics, logics);
    }

    #[test]
    fn scoped_tags_intern_and_compose() {
        let a = scoped_tag("smr.slot3", "dispersal.symbol");
        let b = scoped_tag(&format!("smr.slot{}", 3), "dispersal.symbol");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "smr.slot3.dispersal.symbol");
        assert_eq!(slot_scope("smr", 7), "smr.slot7");
        assert_ne!(slot_scope("smr", 7), slot_scope("smr", 8));
    }

    #[test]
    fn round_timeout_is_configurable() {
        let cfg = SimConfig::new(2).with_round_timeout(Duration::from_secs(5));
        assert_eq!(cfg.round_timeout, Duration::from_secs(5));
        assert_eq!(SimConfig::new(2).round_timeout, DEFAULT_ROUND_TIMEOUT);
        // A short timeout still completes a healthy run.
        let metrics = MetricsSink::new();
        let logics: Vec<NodeLogic<u64>> = (0..2)
            .map(|_| {
                Box::new(|ctx: &mut NodeCtx| {
                    ctx.end_round();
                    ctx.round()
                }) as NodeLogic<u64>
            })
            .collect();
        let res = run_simulation(cfg, metrics, logics);
        assert_eq!(res.outputs, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "simulation wedged in round 2: node(s) [1] never submitted")]
    // The stall is the point of the test: a real thread must out-sleep
    // the wedge timeout. Exempt from the clippy determinism mirror.
    #[allow(clippy::disallowed_methods)]
    fn wedge_panic_names_missing_nodes_and_round() {
        // Node 1 completes round 1 and then stalls (sleeps past the
        // timeout before finishing); node 0 keeps going. The coordinator
        // must name the stalled node and the wedged round.
        let metrics = MetricsSink::new();
        let logics: Vec<NodeLogic<()>> = (0..2)
            .map(|id| {
                Box::new(move |ctx: &mut NodeCtx| {
                    ctx.end_round();
                    if id == 1 {
                        std::thread::sleep(Duration::from_millis(400));
                    } else {
                        ctx.end_round();
                    }
                }) as NodeLogic<()>
            })
            .collect();
        let cfg = SimConfig::new(2).with_round_timeout(Duration::from_millis(50));
        let _ = run_simulation(cfg, metrics, logics);
    }

    #[test]
    fn inbox_pool_recycles_and_caps() {
        let pool = InboxPool::with_cap(2);
        let shell = pool.take(3);
        assert_eq!(shell.len(), 3);
        // Dropping a pooled inbox returns its (cleared) buffers.
        {
            let mut inbox = Inbox::pooled(3, &pool);
            inbox.by_sender[1].push(Message {
                from: 1,
                tag: "t",
                payload: Bytes::new(),
                at: 0,
            });
        }
        let recycled = pool.take(3);
        assert!(recycled.iter().all(Vec::is_empty), "shells come back drained");
        // The cap bounds retention.
        pool.put(vec![Vec::new(); 3]);
        pool.put(vec![Vec::new(); 3]);
        pool.put(vec![Vec::new(); 3]);
        assert!(
            pool.shells
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
                <= 2
        );
        // Shells are resized to the requested width on reuse.
        pool.put(vec![Vec::new(); 7]);
        assert_eq!(pool.take(2).len(), 2);
        // Clones are detached: dropping one never double-returns.
        let inbox = Inbox::pooled(2, &pool);
        let clone = inbox.clone();
        drop(clone);
        drop(inbox);
    }

    #[test]
    fn drain_messages_yields_sender_order_and_empties() {
        let (res, _) = run(3, |id| {
            Box::new(move |ctx: &mut NodeCtx| {
                if id != 2 {
                    ctx.send(2, "m", vec![id as u8], 8);
                    ctx.send(2, "m", vec![id as u8 + 10], 8);
                    ctx.end_round();
                    return Vec::new();
                }
                let mut inbox = ctx.end_round();
                let drained: Vec<(usize, u8)> =
                    inbox.drain_messages().map(|m| (m.from, m.payload[0])).collect();
                assert!(inbox.is_empty());
                drained
            })
        });
        assert_eq!(res.outputs[2], vec![(0, 0), (0, 10), (1, 1), (1, 11)]);
    }

    #[test]
    fn rounds_match_between_result_and_metrics() {
        let (res, metrics) = run(2, |_| {
            Box::new(|ctx: &mut NodeCtx| {
                for _ in 0..5 {
                    ctx.end_round();
                }
            })
        });
        assert_eq!(res.rounds, 5);
        assert_eq!(metrics.snapshot().rounds(), 5);
    }

    // --- event-driven scheduling ---

    fn run_with<O: Send + 'static>(
        cfg: SimConfig,
        mk: impl Fn(usize) -> Logic<O>,
    ) -> SimResult<O> {
        let logics = (0..cfg.n).map(&mk).collect();
        run_simulation(cfg, MetricsSink::new(), logics)
    }

    /// Both nodes ping each other every round for `rounds` rounds.
    fn ping_pong(rounds: usize) -> impl Fn(usize) -> Logic<Vec<VirtualTime>> {
        move |_| {
            Box::new(move |ctx: &mut NodeCtx| {
                let mut ends = Vec::new();
                for _ in 0..rounds {
                    ctx.send(1 - ctx.id(), "ping", vec![1u8], 8);
                    let inbox = ctx.end_round();
                    assert_eq!(inbox.vtime(), ctx.vtime());
                    ends.push(ctx.vtime());
                }
                ends
            })
        }
    }

    #[test]
    fn round_barrier_vtime_is_the_round_counter() {
        let res = run_with(SimConfig::new(2), ping_pong(3));
        assert_eq!(res.rounds, 3);
        assert_eq!(res.vtime, 3, "round-barrier virtual time == rounds");
        assert_eq!(res.outputs[0], vec![1, 2, 3]);
    }

    #[test]
    fn fixed_latency_advances_the_virtual_clock() {
        let model = NetModel::new(LinkModel::Fixed(50), Topology::Clique).with_compute_ticks(10);
        let cfg = SimConfig::new(2).with_policy(SchedulingPolicy::EventDriven(model));
        let res = run_with(cfg, ping_pong(3));
        // Round k ends at arrival of the peer's ping: dispatch + 50,
        // with dispatch advancing by (50 + 10) per round.
        assert_eq!(res.outputs[0], vec![50, 110, 170]);
        assert_eq!(res.outputs[1], vec![50, 110, 170]);
        assert_eq!(res.rounds, 3);
        assert_eq!(res.vtime, 170);
    }

    #[test]
    fn jitter_respects_bounds_and_link_fifo() {
        let model = NetModel::new(
            LinkModel::UniformJitter { base: 100, jitter: 40 },
            Topology::Clique,
        )
        .with_seed(42);
        let cfg = SimConfig::new(2).with_policy(SchedulingPolicy::EventDriven(model));
        let res = run_with(
            cfg,
            |_| {
                Box::new(|ctx: &mut NodeCtx| {
                    // Two same-round messages on one link must not reorder.
                    ctx.send(1 - ctx.id(), "a", vec![1u8], 8);
                    ctx.send(1 - ctx.id(), "b", vec![2u8], 8);
                    let inbox = ctx.end_round();
                    let msgs = inbox.from_sender(1 - ctx.id());
                    assert_eq!(msgs.len(), 2);
                    assert_eq!(msgs[0].tag, "a", "link FIFO preserves send order");
                    assert!(msgs[0].at <= msgs[1].at);
                    for m in msgs {
                        assert!((100..=140).contains(&m.at), "jitter bounds: {}", m.at);
                    }
                    ctx.vtime()
                }) as Logic<VirtualTime>
            },
        );
        assert!((100..=140).contains(&res.vtime));
    }

    #[test]
    fn wan_links_are_slower_across_clusters() {
        let model = NetModel::new(
            LinkModel::Wan { intra: 10, inter: 1000, jitter: 0 },
            Topology::Clusters(vec![2, 2]),
        );
        let cfg = SimConfig::new(4).with_policy(SchedulingPolicy::EventDriven(model));
        let res = run_with(
            cfg,
            |_| {
                Box::new(|ctx: &mut NodeCtx| {
                    for to in 0..ctx.n() {
                        if to != ctx.id() {
                            ctx.send(to, "m", vec![1u8], 8);
                        }
                    }
                    let inbox = ctx.end_round();
                    let same = if ctx.id() < 2 { 1 - ctx.id() } else { 5 - ctx.id() };
                    let far = (ctx.id() + 2) % 4;
                    (inbox.from_sender(same)[0].at, inbox.from_sender(far)[0].at)
                }) as Logic<(VirtualTime, VirtualTime)>
            },
        );
        for &(near, far) in &res.outputs {
            assert_eq!(near, 10);
            assert_eq!(far, 1000);
        }
        assert_eq!(res.vtime, 1000, "the round waits for the WAN stragglers");
    }

    #[test]
    fn partition_drop_loses_crossings_and_delay_defers_them() {
        let topo = Topology::Clusters(vec![1, 1]);
        for (behavior, expect_lost) in
            [(PartitionBehavior::Drop, true), (PartitionBehavior::Delay, false)]
        {
            let model = NetModel::new(LinkModel::Fixed(10), topo.clone())
                .with_partition(Partition {
                    start: 0,
                    heal: 500,
                    island: vec![1],
                    behavior,
                });
            let cfg = SimConfig::new(2).with_policy(SchedulingPolicy::EventDriven(model));
            let res = run_with(
                cfg,
                |_| {
                    Box::new(|ctx: &mut NodeCtx| {
                        ctx.send(1 - ctx.id(), "x", vec![1u8], 8);
                        let inbox = ctx.end_round();
                        inbox.from_sender(1 - ctx.id()).first().map(|m| m.at)
                    }) as Logic<Option<VirtualTime>>
                },
            );
            if expect_lost {
                assert_eq!(res.outputs, vec![None, None], "drop partitions lose crossings");
            } else {
                // Delayed crossings arrive at heal + latency; the round
                // stretches past the heal instead of losing the message.
                assert_eq!(res.outputs, vec![Some(510), Some(510)]);
                assert_eq!(res.vtime, 510);
            }
        }
    }

    #[test]
    fn healed_partition_restores_normal_latency() {
        // Round-1 dispatches (t = 0) cross the active cut and are
        // delayed to heal + latency; once healed, later rounds flow at
        // plain link latency again.
        let model = NetModel::new(LinkModel::Fixed(10), Topology::Clusters(vec![1, 1]))
            .with_partition(Partition {
                start: 0,
                heal: 100,
                island: vec![0],
                behavior: PartitionBehavior::Delay,
            });
        let cfg = SimConfig::new(2).with_policy(SchedulingPolicy::EventDriven(model));
        let res = run_with(cfg, ping_pong(2));
        // Round 1 ends at 110 for both; round-2 dispatch at 111 is past
        // the heal, so round 2 ends at 121.
        assert_eq!(res.outputs[0], vec![110, 121]);
        assert_eq!(res.outputs[1], vec![110, 121]);
    }

    #[test]
    fn event_driven_runs_are_deterministic() {
        let mk = || {
            let model = NetModel::new(
                LinkModel::Wan { intra: 50, inter: 2000, jitter: 300 },
                Topology::Clusters(vec![2, 1]),
            )
            .with_seed(7);
            SimConfig::new(3).with_policy(SchedulingPolicy::EventDriven(model))
        };
        let run_once = || {
            run_with(mk(), |_| {
                Box::new(|ctx: &mut NodeCtx| {
                    let mut arrivals = Vec::new();
                    for _ in 0..4 {
                        for to in 0..ctx.n() {
                            ctx.send(to, "m", vec![ctx.id() as u8], 8);
                        }
                        let mut inbox = ctx.end_round();
                        arrivals.extend(inbox.drain_messages().map(|m| (m.from, m.at)));
                    }
                    arrivals
                }) as Logic<Vec<(usize, VirtualTime)>>
            })
        };
        let (a, b) = (run_once(), run_once());
        assert_eq!(a.outputs, b.outputs, "same seed, same delivery schedule");
        assert_eq!(a.vtime, b.vtime);
    }

    fn run_with_sink<O: Send + 'static>(
        cfg: SimConfig,
        metrics: MetricsSink,
        mk: impl Fn(usize) -> Logic<O>,
    ) -> SimResult<O> {
        let logics = (0..cfg.n).map(&mk).collect();
        run_simulation(cfg, metrics, logics)
    }

    #[test]
    fn telemetry_records_links_and_queue_depth() {
        let model = NetModel::new(LinkModel::Fixed(50), Topology::Clique);
        let cfg = SimConfig::new(2).with_policy(SchedulingPolicy::EventDriven(model));
        let metrics = MetricsSink::with_telemetry();
        let _ = run_with_sink(cfg, metrics.clone(), ping_pong(3));
        let snap = metrics.telemetry().unwrap().snapshot();
        // Each direction carried one 1-byte ping per round at 50 ticks.
        for key in [(0usize, 1usize), (1, 0)] {
            let link = snap.links[&key];
            assert_eq!(link.messages, 3, "link {key:?}");
            assert_eq!(link.payload_bytes, 3);
            assert_eq!(link.total_delay, 150);
            assert!((link.mean_delay() - 50.0).abs() < 1e-9);
        }
        // Two in-flight deliveries per round.
        assert_eq!(snap.queue_high_water, 2);
        assert!(snap.outages.is_empty());
    }

    #[test]
    fn telemetry_counts_partition_outage_traffic() {
        for (behavior, name) in
            [(PartitionBehavior::Drop, "drop"), (PartitionBehavior::Delay, "delay")]
        {
            let model = NetModel::new(LinkModel::Fixed(10), Topology::Clusters(vec![1, 1]))
                .with_partition(Partition {
                    start: 0,
                    heal: 500,
                    island: vec![1],
                    behavior,
                });
            let cfg = SimConfig::new(2).with_policy(SchedulingPolicy::EventDriven(model));
            let metrics = MetricsSink::with_telemetry();
            let _ = run_with_sink(cfg, metrics.clone(), |_| {
                Box::new(|ctx: &mut NodeCtx| {
                    ctx.send(1 - ctx.id(), "x", vec![1u8], 8);
                    let _ = ctx.end_round();
                }) as Logic<()>
            });
            let snap = metrics.telemetry().unwrap().snapshot();
            assert_eq!(snap.outages.len(), 1);
            let o = &snap.outages[0];
            assert_eq!((o.start, o.heal, o.behavior.as_str()), (0, 500, name));
            // Both crossings of the round hit the cut.
            if o.behavior == "drop" {
                assert_eq!((o.dropped, o.delayed), (2, 0));
                assert!(snap.links.is_empty(), "dropped crossings never deliver");
            } else {
                assert_eq!((o.dropped, o.delayed), (0, 2));
                // Held until the heal: delay = heal + latency - dispatch.
                assert_eq!(snap.links[&(0, 1)].total_delay, 510);
            }
        }
    }

    #[test]
    fn plain_sink_records_no_telemetry_under_event_driven() {
        let model = NetModel::new(LinkModel::Fixed(50), Topology::Clique);
        let cfg = SimConfig::new(2).with_policy(SchedulingPolicy::EventDriven(model));
        let metrics = MetricsSink::new();
        let res = run_with_sink(cfg, metrics.clone(), ping_pong(2));
        assert_eq!(res.rounds, 2);
        assert!(res.vtime >= 100, "two 50-tick rounds ran");
        assert!(metrics.telemetry().is_none());
    }

    #[test]
    #[should_panic(expected = "virtual time limit 100 exceeded")]
    fn max_vtime_is_enforced() {
        let model = NetModel::new(LinkModel::Fixed(60), Topology::Clique);
        let cfg = SimConfig::new(2)
            .with_policy(SchedulingPolicy::EventDriven(model))
            .with_max_vtime(100);
        let _ = run_with(cfg, ping_pong(5));
    }

    #[test]
    #[should_panic(expected = "cluster sizes")]
    fn event_driven_validates_topology_against_n() {
        let model = NetModel::new(LinkModel::Fixed(1), Topology::Clusters(vec![2, 2]));
        let cfg = SimConfig::new(3).with_policy(SchedulingPolicy::EventDriven(model));
        let _ = run_with(cfg, |_| Box::new(|_ctx: &mut NodeCtx| ()) as Logic<()>);
    }
}
