//! Network models for the event-driven scheduler: per-link latency
//! distributions, topologies, and partitions that form and heal at
//! scheduled virtual times.
//!
//! A [`NetModel`] bundles a [`LinkModel`] (how long a message spends on
//! a link), a [`Topology`] (which links are intra- vs inter-cluster),
//! a partition schedule ([`Partition`]: a set of nodes cut off from the
//! rest between two virtual times), and a seed for the jitter stream.
//! Wrapping one in [`SchedulingPolicy::EventDriven`] switches the
//! simulator from the lockstep round barrier to timed rounds: every
//! node keeps its own virtual clock, messages are delivered by a
//! discrete-event queue at `dispatch + latency`, and a node's round
//! does not end until its last round message has arrived — so the
//! protocol semantics of the synchronous model are preserved while the
//! virtual clock measures what a WAN deployment would actually wait.
//!
//! All latencies are in [`VirtualTime`] ticks (conventionally
//! microseconds). Every sampled latency is at least 1 tick, and links
//! are FIFO: two messages on the same directed link never reorder, even
//! under jitter.

use crate::events::VirtualTime;
use crate::NodeId;

use rand::rngs::StdRng;
use rand::RngExt;

/// Per-link latency distribution, sampled once per message from the
/// model's seeded generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkModel {
    /// Every link takes exactly this many ticks.
    Fixed(VirtualTime),
    /// Uniform jitter around a base: `base + U[0, jitter]` ticks.
    UniformJitter {
        /// Minimum link latency.
        base: VirtualTime,
        /// Maximum extra delay, drawn uniformly per message.
        jitter: VirtualTime,
    },
    /// Cluster-based WAN profile: links inside a [`Topology`] cluster
    /// take `intra + U[0, jitter]`, links between clusters take
    /// `inter + U[0, jitter]`. Under [`Topology::Clique`] every link is
    /// intra-cluster.
    Wan {
        /// Base latency inside a cluster (a LAN/metro hop).
        intra: VirtualTime,
        /// Base latency between clusters (the WAN hop).
        inter: VirtualTime,
        /// Maximum extra delay, drawn uniformly per message.
        jitter: VirtualTime,
    },
}

impl LinkModel {
    /// Samples one message's latency on a link that is (or is not)
    /// inside a single cluster. Always at least 1 tick.
    pub fn sample(&self, same_cluster: bool, rng: &mut StdRng) -> VirtualTime {
        let (base, jitter) = match *self {
            LinkModel::Fixed(t) => (t, 0),
            LinkModel::UniformJitter { base, jitter } => (base, jitter),
            LinkModel::Wan { intra, inter, jitter } => {
                (if same_cluster { intra } else { inter }, jitter)
            }
        };
        let extra = if jitter == 0 { 0 } else { rng.random_range(0..=jitter) };
        base.saturating_add(extra).max(1)
    }
}

/// Who is close to whom: the cluster structure the [`LinkModel`] and
/// [`Partition`]s are defined against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of nodes is equally close (one big cluster).
    Clique,
    /// Consecutive node-id ranges form clusters: `Clusters(vec![3, 2])`
    /// puts nodes 0-2 in cluster 0 and nodes 3-4 in cluster 1. Sizes
    /// must sum to the simulation's `n` (checked at startup).
    Clusters(Vec<usize>),
}

impl Topology {
    /// The cluster index of `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is beyond the last cluster (the simulator
    /// validates sizes against `n` at startup).
    pub fn cluster_of(&self, node: NodeId) -> usize {
        match self {
            Topology::Clique => 0,
            Topology::Clusters(sizes) => {
                let mut start = 0;
                for (c, &len) in sizes.iter().enumerate() {
                    if node < start + len {
                        return c;
                    }
                    start += len;
                }
                panic!("node {node} is outside the cluster topology {sizes:?}")
            }
        }
    }

    /// The node ids of cluster `c` (empty for out-of-range `c` under
    /// [`Topology::Clique`] except cluster 0, which is everyone — but
    /// clique membership needs `n`, so this is only defined for
    /// [`Topology::Clusters`]).
    ///
    /// # Panics
    ///
    /// Panics on [`Topology::Clique`] (no finite member list without
    /// `n`) or an out-of-range cluster index.
    pub fn cluster_nodes(&self, c: usize) -> Vec<NodeId> {
        match self {
            Topology::Clique => panic!("cluster_nodes needs an explicit cluster topology"),
            Topology::Clusters(sizes) => {
                assert!(c < sizes.len(), "cluster {c} out of range ({} clusters)", sizes.len());
                let start: usize = sizes[..c].iter().sum();
                (start..start + sizes[c]).collect()
            }
        }
    }

    /// Checks the topology covers exactly `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics when cluster sizes do not sum to `n` or a cluster is
    /// empty.
    pub fn validate(&self, n: usize) {
        if let Topology::Clusters(sizes) = self {
            assert!(
                sizes.iter().all(|&s| s > 0),
                "cluster topology {sizes:?} has an empty cluster"
            );
            let total: usize = sizes.iter().sum();
            assert_eq!(total, n, "cluster sizes {sizes:?} sum to {total}, not n = {n}");
        }
    }
}

/// What happens to a message dispatched across an active partition cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionBehavior {
    /// The message is lost (never delivered, never traced; the send is
    /// still metered — the bits left the sender). Losing messages steps
    /// *outside* the error-free synchronous model the protocols above
    /// assume: across a drop cut, fault-free nodes look
    /// Byzantine-silent to each other, and agreement/liveness are no
    /// longer guaranteed. Use [`Delay`](PartitionBehavior::Delay) for a
    /// partition that preserves the model.
    Drop,
    /// The message queues at the cut and crosses when the partition
    /// heals: it is delivered at `heal + latency`. Because a node's
    /// round does not end before its round messages arrive, recipients
    /// stall (in virtual time) until the heal instead of mistaking
    /// partitioned peers for Byzantine-silent ones.
    Delay,
}

/// One scheduled partition: `island` is cut off from the rest of the
/// network for dispatches in `[start, heal)` virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Virtual time at which the partition forms.
    pub start: VirtualTime,
    /// Virtual time at which it heals (exclusive end of the window).
    pub heal: VirtualTime,
    /// The nodes on the cut-off side. Traffic *within* the island and
    /// within the remainder flows normally; only crossings are affected.
    pub island: Vec<NodeId>,
    /// Drop or delay crossings.
    pub behavior: PartitionBehavior,
}

impl Partition {
    /// A partition cutting off the nodes of cluster `c` of `topology`.
    pub fn of_cluster(
        topology: &Topology,
        c: usize,
        start: VirtualTime,
        heal: VirtualTime,
        behavior: PartitionBehavior,
    ) -> Self {
        Partition {
            start,
            heal,
            island: topology.cluster_nodes(c),
            behavior,
        }
    }

    /// An eclipse-style partition: a single `node` is cut off from every
    /// peer for dispatches in `[start, heal)`. With
    /// [`PartitionBehavior::Delay`] this models a suppressed (eclipsed)
    /// replica whose traffic is withheld and released at the heal — the
    /// synchronous model is preserved, so the protocols above stay
    /// correct while the virtual clock pays for the outage.
    pub fn of_node(
        node: NodeId,
        start: VirtualTime,
        heal: VirtualTime,
        behavior: PartitionBehavior,
    ) -> Self {
        Partition { start, heal, island: vec![node], behavior }
    }

    /// True when a message dispatched at `at` from `from` to `to`
    /// crosses this partition's cut while it is active.
    pub fn cuts(&self, at: VirtualTime, from: NodeId, to: NodeId) -> bool {
        at >= self.start
            && at < self.heal
            && (self.island.contains(&from) != self.island.contains(&to))
    }
}

/// The full network model of an event-driven simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetModel {
    /// Per-link latency distribution.
    pub link: LinkModel,
    /// Cluster structure (drives [`LinkModel::Wan`] and
    /// [`Partition::of_cluster`]).
    pub topology: Topology,
    /// Scheduled partitions, applied in order (the first whose window
    /// and cut match a dispatch decides its fate).
    pub partitions: Vec<Partition>,
    /// Seed of the jitter stream (the workspace `rand` shim); two runs
    /// with the same model produce identical delivery schedules.
    pub seed: u64,
    /// Virtual ticks a node spends computing between receiving its
    /// round inbox and dispatching the next round (at least 1, so the
    /// clock advances even on message-free rounds).
    pub compute_ticks: VirtualTime,
}

impl NetModel {
    /// A model with the given link latencies and topology, no
    /// partitions, seed 1, and 1 compute tick per round.
    pub fn new(link: LinkModel, topology: Topology) -> Self {
        NetModel {
            link,
            topology,
            partitions: Vec::new(),
            seed: 1,
            compute_ticks: 1,
        }
    }

    /// Returns the model with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the model with `partition` added to the schedule.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Returns the model with a different per-round compute time.
    pub fn with_compute_ticks(mut self, ticks: VirtualTime) -> Self {
        self.compute_ticks = ticks;
        self
    }

    /// True when `from -> to` is an intra-cluster link.
    pub fn same_cluster(&self, from: NodeId, to: NodeId) -> bool {
        self.topology.cluster_of(from) == self.topology.cluster_of(to)
    }
}

/// How the coordinator schedules rounds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// The classic lockstep barrier: all messages sent in round `r` are
    /// delivered together at the end of round `r`, and the virtual
    /// clock *is* the round counter (round `r`'s deliveries happen at
    /// virtual time `r`). This reproduces the pre-event-driven
    /// simulator exactly — byte-identical traces and digests.
    #[default]
    RoundBarrier,
    /// Timed rounds over a [`NetModel`]: per-node virtual clocks,
    /// per-message link latencies, and a `(time, seq)` event queue
    /// deciding delivery order. Protocol semantics are unchanged (every
    /// round message still reaches its recipient within the recipient's
    /// round); the virtual clock measures real latency shape.
    EventDriven(NetModel),
}

impl SchedulingPolicy {
    /// Short human-readable name, used in wedge reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicy::RoundBarrier => "round-barrier",
            SchedulingPolicy::EventDriven(_) => "event-driven",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_and_jitter_sampling() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(LinkModel::Fixed(25).sample(true, &mut rng), 25);
        assert_eq!(LinkModel::Fixed(0).sample(false, &mut rng), 1, "latency floor is 1 tick");
        let m = LinkModel::UniformJitter { base: 10, jitter: 5 };
        for _ in 0..200 {
            let l = m.sample(true, &mut rng);
            assert!((10..=15).contains(&l), "jitter out of bounds: {l}");
        }
    }

    #[test]
    fn wan_distinguishes_intra_and_inter() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LinkModel::Wan { intra: 100, inter: 5000, jitter: 0 };
        assert_eq!(m.sample(true, &mut rng), 100);
        assert_eq!(m.sample(false, &mut rng), 5000);
    }

    #[test]
    fn cluster_membership() {
        let t = Topology::Clusters(vec![3, 2, 2]);
        t.validate(7);
        assert_eq!(t.cluster_of(0), 0);
        assert_eq!(t.cluster_of(2), 0);
        assert_eq!(t.cluster_of(3), 1);
        assert_eq!(t.cluster_of(6), 2);
        assert_eq!(t.cluster_nodes(1), vec![3, 4]);
        assert_eq!(Topology::Clique.cluster_of(99), 0);
    }

    #[test]
    #[should_panic(expected = "sum to 5, not n = 6")]
    fn cluster_sizes_must_cover_n() {
        Topology::Clusters(vec![3, 2]).validate(6);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_clusters_rejected() {
        Topology::Clusters(vec![3, 0, 3]).validate(6);
    }

    #[test]
    fn partition_cut_detection() {
        let topo = Topology::Clusters(vec![2, 2]);
        let p = Partition::of_cluster(&topo, 1, 100, 200, PartitionBehavior::Drop);
        assert_eq!(p.island, vec![2, 3]);
        assert!(p.cuts(100, 0, 2), "crossing during the window is cut");
        assert!(p.cuts(199, 3, 1), "cut works in both directions");
        assert!(!p.cuts(99, 0, 2), "before the window");
        assert!(!p.cuts(200, 0, 2), "heal time is exclusive");
        assert!(!p.cuts(150, 2, 3), "island-internal traffic flows");
        assert!(!p.cuts(150, 0, 1), "mainland-internal traffic flows");
        // Eclipse form: one node cut off in both directions.
        let e = Partition::of_node(2, 10, 20, PartitionBehavior::Delay);
        assert_eq!(e.island, vec![2]);
        assert!(e.cuts(15, 2, 0) && e.cuts(15, 0, 2));
        assert!(!e.cuts(15, 0, 1), "mainland traffic unaffected by an eclipse");
    }

    #[test]
    fn policy_names_and_default() {
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::RoundBarrier);
        assert_eq!(SchedulingPolicy::RoundBarrier.name(), "round-barrier");
        let model = NetModel::new(LinkModel::Fixed(10), Topology::Clique);
        assert_eq!(SchedulingPolicy::EventDriven(model).name(), "event-driven");
    }

    #[test]
    fn model_builders_compose() {
        let topo = Topology::Clusters(vec![2, 2]);
        let m = NetModel::new(LinkModel::Fixed(10), topo.clone())
            .with_seed(9)
            .with_compute_ticks(5)
            .with_partition(Partition::of_cluster(&topo, 0, 10, 20, PartitionBehavior::Delay));
        assert_eq!(m.seed, 9);
        assert_eq!(m.compute_ticks, 5);
        assert_eq!(m.partitions.len(), 1);
        assert!(m.same_cluster(0, 1));
        assert!(!m.same_cluster(1, 2));
    }
}
