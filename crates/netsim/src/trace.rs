//! Execution traces: a per-delivery record of everything the network
//! carried, for debugging, golden-transcript tests and offline analysis.
//!
//! A [`TraceSink`] handed to
//! [`run_simulation_traced`](crate::run_simulation_traced) records one
//! [`TraceEvent`] per delivered message (round, sender, recipient, tag,
//! logical bits, payload bytes). Because the simulator is a lockstep
//! deterministic round model, the trace of a run is a pure function of
//! the inputs and the adversary strategy — two runs with the same
//! parameters produce byte-identical traces, which
//! [`TraceSink::digest`] turns into a golden value tests can pin.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::{NodeId, VirtualTime};

/// One delivered message, as observed by the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round in which the message was sent (1-based, matching the
    /// metrics round counter).
    pub round: u64,
    /// Sender (authenticated).
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Protocol tag.
    pub tag: &'static str,
    /// The algorithm's own size accounting for this message.
    pub logical_bits: u64,
    /// Serialized payload size.
    pub payload_bytes: u64,
    /// Virtual delivery time: the round counter under the round-barrier
    /// policy, the arrival tick under the event-driven policy.
    pub vtime: VirtualTime,
}

/// Shared, thread-safe recorder of [`TraceEvent`]s.
///
/// Cloning is cheap and all clones feed one buffer, mirroring the
/// [`MetricsSink`](mvbc_metrics::MetricsSink) convention.
///
/// # Examples
///
/// ```
/// use mvbc_metrics::MetricsSink;
/// use mvbc_netsim::trace::TraceSink;
/// use mvbc_netsim::{run_simulation_traced, NodeCtx, SimConfig};
///
/// let trace = TraceSink::new();
/// let logics = (0..2)
///     .map(|_| {
///         Box::new(move |ctx: &mut NodeCtx| {
///             let peer = 1 - ctx.id();
///             ctx.send(peer, "hello", vec![1u8], 8);
///             let _ = ctx.end_round();
///         }) as Box<dyn FnOnce(&mut NodeCtx) + Send>
///     })
///     .collect();
/// run_simulation_traced(SimConfig::new(2), MetricsSink::new(), Some(trace.clone()), logics);
/// assert_eq!(trace.len(), 2); // one delivery each way
/// assert_eq!(trace.events()[0].tag, "hello");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&self, event: TraceEvent) {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).push(event);
    }

    /// A snapshot of all events recorded so far, in delivery order
    /// (round-major; within a round, sender-submission order).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events of one round only.
    pub fn round_events(&self, round: u64) -> Vec<TraceEvent> {
        self.events().into_iter().filter(|e| e.round == round).collect()
    }

    /// Events carrying a tag with the given prefix (protocol stages use
    /// dotted tag namespaces, so prefixes select stages).
    pub fn events_with_tag_prefix(&self, prefix: &str) -> Vec<TraceEvent> {
        self.events().into_iter().filter(|e| e.tag.starts_with(prefix)).collect()
    }

    /// An order-sensitive FNV-1a digest of the whole trace. Two runs
    /// with identical inputs produce identical digests; golden tests pin
    /// this value to detect any unintended protocol change.
    ///
    /// The digest deliberately excludes [`TraceEvent::vtime`]: it hashes
    /// *what the protocol said* (round, endpoints, tag, sizes), not when
    /// the network delivered it, so golden digests pinned under the
    /// round-barrier policy stay valid and a latency-model change never
    /// masquerades as a protocol change.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in self.events() {
            eat(&e.round.to_be_bytes());
            eat(&e.from.to_be_bytes());
            eat(&e.to.to_be_bytes());
            eat(e.tag.as_bytes());
            eat(&[0]);
            eat(&e.logical_bits.to_be_bytes());
            eat(&e.payload_bytes.to_be_bytes());
        }
        h
    }

    /// Renders the trace as CSV
    /// (`round,from,to,tag,logical_bits,payload_bytes,vtime`).
    ///
    /// The virtual-time column is kept last so positional consumers of
    /// the original columns keep working.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,from,to,tag,logical_bits,payload_bytes,vtime\n");
        for e in self.events() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                e.round, e.from, e.to, e.tag, e.logical_bits, e.payload_bytes, e.vtime
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u64, from: NodeId, to: NodeId) -> TraceEvent {
        TraceEvent {
            round,
            from,
            to,
            tag: "test.tag",
            logical_bits: 8,
            payload_bytes: 1,
            vtime: round,
        }
    }

    #[test]
    fn records_and_snapshots() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.record(event(1, 0, 1));
        sink.record(event(2, 1, 0));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].round, 1);
        assert_eq!(sink.round_events(2).len(), 1);
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::new();
        let clone = sink.clone();
        clone.record(event(1, 0, 1));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = TraceSink::new();
        a.record(event(1, 0, 1));
        a.record(event(1, 1, 0));
        let b = TraceSink::new();
        b.record(event(1, 1, 0));
        b.record(event(1, 0, 1));
        assert_ne!(a.digest(), b.digest());
        let c = TraceSink::new();
        c.record(event(1, 0, 1));
        c.record(event(1, 1, 0));
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn tag_prefix_filter() {
        let sink = TraceSink::new();
        sink.record(TraceEvent { tag: "consensus.matching.symbol", ..event(1, 0, 1) });
        sink.record(TraceEvent { tag: "other.tag", ..event(1, 0, 2) });
        assert_eq!(sink.events_with_tag_prefix("consensus.").len(), 1);
    }

    #[test]
    fn csv_render() {
        let sink = TraceSink::new();
        sink.record(event(3, 2, 1));
        let csv = sink.to_csv();
        assert!(csv.starts_with("round,from,to,tag"));
        assert!(csv.contains("3,2,1,test.tag,8,1,3"));
        // The virtual-time column stays last.
        assert!(csv.lines().next().unwrap().ends_with(",vtime"));
    }

    #[test]
    fn digest_excludes_vtime() {
        let a = TraceSink::new();
        a.record(event(1, 0, 1));
        let b = TraceSink::new();
        b.record(TraceEvent { vtime: 999, ..event(1, 0, 1) });
        assert_eq!(a.digest(), b.digest(), "latency shape must not change the digest");
    }
}
