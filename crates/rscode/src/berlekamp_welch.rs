//! Berlekamp-Welch error correction for Reed-Solomon codes.
//!
//! The Liang-Vaidya consensus algorithm only needs error *detection* (its
//! diagnosis stage localises faults interactively instead of correcting
//! them, which is what makes the low rate `n/(n-2t)` achievable). Error
//! *correction* is still needed elsewhere in this workspace:
//!
//! - the Fitzi-Hirt baseline reconstructs the agreed value from `n` symbol
//!   shares of which up to `t` may be corrupted, and
//! - it is exercised by property tests as an independent cross-check of the
//!   codec.
//!
//! Given `m` received symbols of an `(n, k)` code with at most
//! `e <= (m - k) / 2` corruptions, the decoder finds the unique data
//! polynomial by solving the classic key equation `Q(x) = P(x) E(x)` where
//! `E` is the monic error-locator polynomial.

use std::fmt;

use mvbc_gf::{solve_linear_system, Field, GfMatrix, Poly};

use crate::{CodeError, ReedSolomon};

/// Outcome of a successful Berlekamp-Welch decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corrected<F: Field> {
    /// The recovered `k` data symbols.
    pub data: Vec<F>,
    /// Positions (indices into the *input slice*) whose symbols disagreed
    /// with the decoded codeword.
    pub error_positions: Vec<usize>,
}

/// Error returned when correction is impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BwError {
    /// The input was malformed (delegated validation).
    Code(CodeError),
    /// More errors than `(m - k) / 2`; no codeword within range.
    TooManyErrors,
}

impl fmt::Display for BwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BwError::Code(e) => write!(f, "{e}"),
            BwError::TooManyErrors => write!(f, "too many symbol errors to correct"),
        }
    }
}

impl std::error::Error for BwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BwError::Code(e) => Some(e),
            BwError::TooManyErrors => None,
        }
    }
}

impl From<CodeError> for BwError {
    fn from(e: CodeError) -> Self {
        BwError::Code(e)
    }
}

/// Decodes `symbols` (pairs of codeword position and received value),
/// correcting up to `(symbols.len() - k) / 2` corrupted symbols.
///
/// # Errors
///
/// - [`BwError::Code`] for malformed input (bad positions, fewer than `k`
///   symbols).
/// - [`BwError::TooManyErrors`] when no codeword lies within the correction
///   radius.
///
/// # Examples
///
/// ```
/// use mvbc_gf::{Field, Gf256};
/// use mvbc_rscode::{berlekamp_welch::decode, ReedSolomon};
///
/// let rs: ReedSolomon<Gf256> = ReedSolomon::new(7, 3)?;
/// let data = [Gf256::new(5), Gf256::new(6), Gf256::new(7)];
/// let mut cw = rs.encode(&data)?;
/// cw[1] += Gf256::ONE; // one corruption: correctable ((7-3)/2 = 2)
/// let pairs: Vec<_> = cw.into_iter().enumerate().collect();
/// let out = decode(&rs, &pairs).expect("within correction radius");
/// assert_eq!(out.data, data.to_vec());
/// assert_eq!(out.error_positions, vec![1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn decode<F: Field>(
    rs: &ReedSolomon<F>,
    symbols: &[(usize, F)],
) -> Result<Corrected<F>, BwError> {
    let k = rs.k();
    let m = symbols.len();
    if m < k {
        return Err(CodeError::NotEnoughSymbols { needed: k, got: m }.into());
    }
    // Validate positions through the detection path (cheap).
    rs.is_consistent(&symbols[..k.min(m)]).map_err(BwError::from)?;
    let e_max = (m - k) / 2;

    // Fast path: already consistent.
    if rs.is_consistent(symbols)? {
        let data = rs.decode(&symbols[..k])?;
        // With <= e_max corruptions and full consistency, there are none.
        return Ok(Corrected {
            data,
            error_positions: Vec::new(),
        });
    }

    // Unknowns: Q coefficients (k + e_max), then E coefficients (e_max,
    // E monic of degree e_max). One equation per received symbol:
    //   Q(x_i) - y_i * (E_low(x_i)) = y_i * x_i^{e_max}
    let q_len = k + e_max;
    let unknowns = q_len + e_max;
    let a = GfMatrix::from_fn(m, unknowns, |r, c| {
        let (x, y) = {
            let (pos, y) = symbols[r];
            (rs.alpha(pos), y)
        };
        if c < q_len {
            x.pow(c as u64)
        } else {
            y * x.pow((c - q_len) as u64)
        }
    });
    let b: Vec<F> = symbols
        .iter()
        .map(|&(pos, y)| y * rs.alpha(pos).pow(e_max as u64))
        .collect();
    let sol = solve_linear_system(&a, &b).map_err(|_| BwError::TooManyErrors)?;

    let q = Poly::from_coeffs(sol[..q_len].to_vec());
    let mut e_coeffs = sol[q_len..].to_vec();
    e_coeffs.push(F::ONE); // monic
    let e_poly = Poly::from_coeffs(e_coeffs);
    let (p, rem) = q.div_rem(&e_poly);
    if !rem.is_zero() || p.degree().is_some_and(|d| d >= k) {
        return Err(BwError::TooManyErrors);
    }

    // Verify: count disagreements against the decoded codeword.
    let mut error_positions = Vec::new();
    for (i, &(pos, y)) in symbols.iter().enumerate() {
        if p.eval(rs.alpha(pos)) != y {
            error_positions.push(i);
        }
    }
    if error_positions.len() > e_max {
        return Err(BwError::TooManyErrors);
    }
    let mut data = p.into_coeffs();
    data.resize(k, F::ZERO);
    Ok(Corrected {
        data,
        error_positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvbc_gf::Gf256;

    fn rs(n: usize, k: usize) -> ReedSolomon<Gf256> {
        ReedSolomon::new(n, k).unwrap()
    }

    fn enc(rs: &ReedSolomon<Gf256>, d: &[u8]) -> Vec<Gf256> {
        rs.encode(&d.iter().map(|&x| Gf256::new(x)).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn no_errors_fast_path() {
        let c = rs(7, 3);
        let cw = enc(&c, &[1, 2, 3]);
        let pairs: Vec<_> = cw.into_iter().enumerate().collect();
        let out = decode(&c, &pairs).unwrap();
        assert_eq!(out.data, vec![Gf256::new(1), Gf256::new(2), Gf256::new(3)]);
        assert!(out.error_positions.is_empty());
    }

    #[test]
    fn corrects_up_to_radius() {
        let c = rs(9, 3); // e_max = 3
        let clean = enc(&c, &[10, 20, 30]);
        for errs in 1..=3usize {
            let mut cw = clean.clone();
            for (j, item) in cw.iter_mut().enumerate().take(errs) {
                *item += Gf256::new(j as u8 + 1);
            }
            let pairs: Vec<_> = cw.into_iter().enumerate().collect();
            let out = decode(&c, &pairs).unwrap_or_else(|e| panic!("errs={errs}: {e}"));
            assert_eq!(out.data, vec![Gf256::new(10), Gf256::new(20), Gf256::new(30)]);
            assert_eq!(out.error_positions, (0..errs).collect::<Vec<_>>());
        }
    }

    #[test]
    fn beyond_radius_fails_or_misdecodes_consistently() {
        // With e_max + 1 errors the decoder must not return the original
        // codeword *silently wrong*: either TooManyErrors, or a valid
        // codeword within radius of the corrupted word.
        let c = rs(7, 3); // e_max = 2
        let clean = enc(&c, &[1, 1, 1]);
        let mut cw = clean.clone();
        cw[0] += Gf256::new(9);
        cw[1] += Gf256::new(9);
        cw[2] += Gf256::new(9);
        let pairs: Vec<_> = cw.iter().copied().enumerate().collect();
        match decode(&c, &pairs) {
            Err(BwError::TooManyErrors) => {}
            Ok(out) => {
                // Must be a genuine codeword within the radius.
                let recoded = c
                    .encode(&out.data)
                    .expect("decoder returned k symbols");
                let dist = recoded.iter().zip(&cw).filter(|(a, b)| a != b).count();
                assert!(dist <= 2);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn partial_view_with_errors() {
        // m = 6 of n = 9 symbols, e_max = (6-3)/2 = 1.
        let c = rs(9, 3);
        let cw = enc(&c, &[7, 8, 9]);
        let mut pairs: Vec<_> = cw.into_iter().enumerate().skip(3).collect();
        pairs[4].1 += Gf256::ONE;
        let out = decode(&c, &pairs).unwrap();
        assert_eq!(out.data, vec![Gf256::new(7), Gf256::new(8), Gf256::new(9)]);
        assert_eq!(out.error_positions, vec![4]);
    }

    #[test]
    fn too_few_symbols_rejected() {
        let c = rs(7, 3);
        let cw = enc(&c, &[1, 2, 3]);
        let pairs: Vec<_> = cw.into_iter().enumerate().take(2).collect();
        assert!(matches!(
            decode(&c, &pairs),
            Err(BwError::Code(CodeError::NotEnoughSymbols { .. }))
        ));
    }

    #[test]
    fn zero_error_margin_decodes_exact() {
        // m == k: no redundancy, decode trusts all symbols.
        let c = rs(7, 3);
        let cw = enc(&c, &[4, 5, 6]);
        let pairs: Vec<_> = cw.into_iter().enumerate().take(3).collect();
        let out = decode(&c, &pairs).unwrap();
        assert_eq!(out.data, vec![Gf256::new(4), Gf256::new(5), Gf256::new(6)]);
    }

    #[test]
    fn error_display() {
        assert!(BwError::TooManyErrors.to_string().contains("too many"));
        let wrapped = BwError::from(CodeError::Inconsistent);
        assert!(wrapped.to_string().contains("codeword"));
        assert!(std::error::Error::source(&wrapped).is_some());
    }

    #[test]
    fn burst_of_t_errors_in_c2t() {
        // The Fitzi-Hirt use case: (n, t+1) code, correct t errors from n
        // shares: n = 7, t = 2 -> k = 3, e_max = 2.
        let c = rs(7, 3);
        let clean = enc(&c, &[0xde, 0xad, 0xbe]);
        let mut cw = clean;
        cw[2] = Gf256::new(0);
        cw[5] = Gf256::new(0xff);
        let pairs: Vec<_> = cw.into_iter().enumerate().collect();
        let out = decode(&c, &pairs).unwrap();
        assert_eq!(
            out.data,
            vec![Gf256::new(0xde), Gf256::new(0xad), Gf256::new(0xbe)]
        );
        assert_eq!(out.error_positions.len(), 2);
    }
}
