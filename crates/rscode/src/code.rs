//! The core `(n, k)` Reed-Solomon code over one field.

use std::fmt;
use std::sync::Arc;

use mvbc_gf::{kernels, Field};

use crate::weights::{weights_for, InterpWeights};

/// Errors produced by Reed-Solomon encoding and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeError {
    /// Code parameters are invalid (`k == 0`, `k > n`, or `n` exceeds the
    /// number of distinct non-zero field points `2^c - 1`).
    InvalidParameters {
        /// Requested codeword length.
        n: usize,
        /// Requested dimension.
        k: usize,
        /// Field size `2^c`.
        field_order: u64,
    },
    /// Wrong number of data symbols passed to `encode`.
    WrongDataLength {
        /// Expected `k`.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Fewer than `k` symbols supplied to a decode operation.
    NotEnoughSymbols {
        /// Code dimension `k`.
        needed: usize,
        /// Provided count.
        got: usize,
    },
    /// A symbol position is `>= n` or appears twice.
    BadPosition {
        /// The offending position.
        position: usize,
    },
    /// The supplied symbols are not consistent with any codeword.
    Inconsistent,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { n, k, field_order } => write!(
                f,
                "invalid Reed-Solomon parameters (n = {n}, k = {k}, field order = {field_order})"
            ),
            CodeError::WrongDataLength { expected, got } => {
                write!(f, "expected {expected} data symbols, got {got}")
            }
            CodeError::NotEnoughSymbols { needed, got } => {
                write!(f, "need at least {needed} symbols to decode, got {got}")
            }
            CodeError::BadPosition { position } => {
                write!(f, "symbol position {position} is out of range or duplicated")
            }
            CodeError::Inconsistent => write!(f, "symbols do not lie on a single codeword"),
        }
    }
}

impl std::error::Error for CodeError {}

/// An `(n, k)` Reed-Solomon code over field `F`.
///
/// A data vector `d[0..k]` is interpreted as the polynomial
/// `p(x) = d[0] + d[1] x + ... + d[k-1] x^{k-1}` and the codeword is
/// `(p(alpha_0), ..., p(alpha_{n-1}))` at fixed pairwise-distinct points.
/// Any `k` codeword symbols determine `p` (Vandermonde), giving the
/// paper's key property that every `k`-subset of coded symbols is a set of
/// linearly independent combinations of the data symbols.
///
/// Minimum distance is `n - k + 1`; with `k = n - 2t` this is the paper's
/// distance-`(2t + 1)` code `C_2t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReedSolomon<F: Field> {
    n: usize,
    k: usize,
    alphas: Vec<F>,
    /// Row-major `n × k` generator matrix: `gen[j * k + i] = alpha_j^i`,
    /// so `codeword[j] = Σ_i data[i] · gen[j * k + i]`. Precomputed once
    /// so encoding is a matrix application (and, striped, a sequence of
    /// [`kernels::addmul_slice`] calls) instead of per-stripe Horner
    /// evaluation through a freshly-allocated polynomial.
    gen: Vec<F>,
}

impl<F: Field> ReedSolomon<F> {
    /// Creates an `(n, k)` code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] unless
    /// `1 <= k <= n <= 2^c - 1`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        if k == 0 || k > n || (n as u64) > F::ORDER - 1 {
            return Err(CodeError::InvalidParameters {
                n,
                k,
                field_order: F::ORDER,
            });
        }
        let alphas: Vec<F> = (0..n).map(F::alpha).collect();
        let mut gen = Vec::with_capacity(n * k);
        for &a in &alphas {
            let mut power = F::ONE;
            for _ in 0..k {
                gen.push(power);
                power *= a;
            }
        }
        Ok(ReedSolomon { n, k, alphas, gen })
    }

    /// Creates the paper's code `C_2t`: an `(n, n - 2t)` code.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError::InvalidParameters`] when `n <= 2t` or `n`
    /// exceeds the field.
    pub fn c2t(n: usize, t: usize) -> Result<Self, CodeError> {
        let k = n.saturating_sub(2 * t);
        Self::new(n, k)
    }

    /// Codeword length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension `k` (`n - 2t` for `C_2t`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimum Hamming distance `n - k + 1`.
    pub fn distance(&self) -> usize {
        self.n - self.k + 1
    }

    /// The evaluation point for codeword position `j`.
    pub fn alpha(&self, j: usize) -> F {
        self.alphas[j]
    }

    /// One generator-matrix row: the `k` multipliers producing codeword
    /// position `j` (`[1, alpha_j, alpha_j^2, ...]`).
    pub(crate) fn gen_row(&self, j: usize) -> &[F] {
        &self.gen[j * self.k..(j + 1) * self.k]
    }

    /// The memoized interpolation weights for a `k`-subset of positions
    /// (see [`crate::weights`]).
    pub(crate) fn interp_weights(&self, positions: &[usize]) -> Arc<InterpWeights<F>> {
        weights_for(positions, &self.alphas)
    }

    /// Encodes `k` data symbols into an `n`-symbol codeword by applying
    /// the precomputed generator matrix (no intermediate allocation).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongDataLength`] when `data.len() != k`.
    pub fn encode(&self, data: &[F]) -> Result<Vec<F>, CodeError> {
        if data.len() != self.k {
            return Err(CodeError::WrongDataLength {
                expected: self.k,
                got: data.len(),
            });
        }
        Ok((0..self.n).map(|j| dot(self.gen_row(j), data)).collect())
    }

    /// Validates `(position, symbol)` pairs: positions in range, no
    /// duplicates. Uses a stack bitset for codes up to 128 positions
    /// (every practical geometry), so the hot path never allocates.
    fn validate_positions<S>(&self, symbols: &[(usize, S)]) -> Result<(), CodeError> {
        if self.n <= 128 {
            let mut seen: u128 = 0;
            for &(pos, _) in symbols {
                if pos >= self.n || seen & (1u128 << pos) != 0 {
                    return Err(CodeError::BadPosition { position: pos });
                }
                seen |= 1u128 << pos;
            }
        } else {
            let mut seen = vec![false; self.n];
            for &(pos, _) in symbols {
                if pos >= self.n || seen[pos] {
                    return Err(CodeError::BadPosition { position: pos });
                }
                seen[pos] = true;
            }
        }
        Ok(())
    }

    /// Fetches the interpolation weights for the first `k` supplied
    /// symbols and verifies every remaining symbol lies on the polynomial
    /// they determine (incremental check via the cached extension rows —
    /// no re-interpolation).
    fn checked_weights(&self, symbols: &[(usize, F)]) -> Result<Arc<InterpWeights<F>>, CodeError> {
        self.validate_positions(symbols)?;
        if symbols.len() < self.k {
            return Err(CodeError::NotEnoughSymbols {
                needed: self.k,
                got: symbols.len(),
            });
        }
        let mut positions = [0usize; 128];
        let positions = if self.k <= 128 {
            for (slot, &(pos, _)) in positions.iter_mut().zip(&symbols[..self.k]) {
                *slot = pos;
            }
            &positions[..self.k]
        } else {
            return self.checked_weights_large(symbols);
        };
        let w = self.interp_weights(positions);
        for &(pos, s) in &symbols[self.k..] {
            if predict(&w, pos, symbols) != s {
                return Err(CodeError::Inconsistent);
            }
        }
        Ok(w)
    }

    /// Cold path of [`ReedSolomon::checked_weights`] for `k > 128`.
    fn checked_weights_large(
        &self,
        symbols: &[(usize, F)],
    ) -> Result<Arc<InterpWeights<F>>, CodeError> {
        let positions: Vec<usize> = symbols[..self.k].iter().map(|&(pos, _)| pos).collect();
        let w = self.interp_weights(&positions);
        for &(pos, s) in &symbols[self.k..] {
            if predict(&w, pos, symbols) != s {
                return Err(CodeError::Inconsistent);
            }
        }
        Ok(w)
    }

    /// The paper's consistency predicate `V/A ∈ C_2t`: do the given
    /// `(position, symbol)` pairs all lie on one codeword?
    ///
    /// Fewer than `k` symbols are vacuously consistent (some codeword always
    /// extends them).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadPosition`] for out-of-range or duplicated
    /// positions.
    pub fn is_consistent(&self, symbols: &[(usize, F)]) -> Result<bool, CodeError> {
        self.validate_positions(symbols)?;
        if symbols.len() < self.k {
            return Ok(true);
        }
        match self.checked_weights(symbols) {
            Ok(_) => Ok(true),
            Err(CodeError::Inconsistent) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// The paper's decoding function `C_2t^{-1}(V/A)`: recovers the `k` data
    /// symbols from at least `k` symbols, verifying that *all* provided
    /// symbols are consistent with the decoded codeword.
    ///
    /// # Errors
    ///
    /// - [`CodeError::NotEnoughSymbols`] with fewer than `k` symbols.
    /// - [`CodeError::Inconsistent`] when the symbols do not all lie on one
    ///   codeword.
    /// - [`CodeError::BadPosition`] for invalid positions.
    pub fn decode(&self, symbols: &[(usize, F)]) -> Result<Vec<F>, CodeError> {
        let w = self.checked_weights(symbols)?;
        let mut data = vec![F::ZERO; self.k];
        for (j, &(_, y)) in symbols[..self.k].iter().enumerate() {
            kernels::addmul_slice(y, w.coeff_row(j), &mut data);
        }
        Ok(data)
    }

    /// Recomputes the full codeword from at least `k` consistent symbols.
    ///
    /// # Errors
    ///
    /// Same as [`ReedSolomon::decode`].
    pub fn extend(&self, symbols: &[(usize, F)]) -> Result<Vec<F>, CodeError> {
        let w = self.checked_weights(symbols)?;
        Ok((0..self.n).map(|pos| predict(&w, pos, symbols)).collect())
    }
}

/// Dot product `Σ row[i] · data[i]` (both length `k`).
fn dot<F: Field>(row: &[F], data: &[F]) -> F {
    row.iter().zip(data).fold(F::ZERO, |acc, (&g, &d)| acc + g * d)
}

/// Predicted codeword symbol at `pos` from the first `k` supplied
/// symbols, via the cached extension row.
fn predict<F: Field>(w: &InterpWeights<F>, pos: usize, symbols: &[(usize, F)]) -> F {
    w.ext_row(pos)
        .iter()
        .zip(&symbols[..w.k])
        .fold(F::ZERO, |acc, (&e, &(_, y))| acc + e * y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvbc_gf::{Gf16, Gf256, Gf65536};

    fn code(n: usize, k: usize) -> ReedSolomon<Gf256> {
        ReedSolomon::new(n, k).unwrap()
    }

    fn data(vals: &[u8]) -> Vec<Gf256> {
        vals.iter().map(|&v| Gf256::new(v)).collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::<Gf256>::new(10, 0).is_err());
        assert!(ReedSolomon::<Gf256>::new(3, 4).is_err());
        assert!(ReedSolomon::<Gf16>::new(16, 2).is_err()); // only 15 points
        assert!(ReedSolomon::<Gf16>::new(15, 2).is_ok());
        assert!(ReedSolomon::<Gf65536>::new(1000, 500).is_ok());
    }

    #[test]
    fn c2t_constructor() {
        let rs = ReedSolomon::<Gf256>::c2t(7, 2).unwrap();
        assert_eq!(rs.n(), 7);
        assert_eq!(rs.k(), 3);
        assert_eq!(rs.distance(), 5); // 2t + 1
        assert!(ReedSolomon::<Gf256>::c2t(6, 3).is_err()); // n = 2t
    }

    #[test]
    fn encode_wrong_length_rejected() {
        let rs = code(7, 3);
        assert_eq!(
            rs.encode(&data(&[1, 2])),
            Err(CodeError::WrongDataLength { expected: 3, got: 2 })
        );
    }

    #[test]
    fn roundtrip_every_k_subset() {
        let rs = code(7, 3);
        let d = data(&[42, 17, 99]);
        let cw = rs.encode(&d).unwrap();
        // All C(7,3) = 35 subsets of size k decode identically.
        for a in 0..7 {
            for b in a + 1..7 {
                for c in b + 1..7 {
                    let picks = [(a, cw[a]), (b, cw[b]), (c, cw[c])];
                    assert_eq!(rs.decode(&picks).unwrap(), d);
                }
            }
        }
    }

    #[test]
    fn decode_detects_single_corruption_with_full_codeword() {
        let rs = code(7, 3);
        let cw = rs.encode(&data(&[1, 2, 3])).unwrap();
        for victim in 0..7 {
            let mut bad = cw.clone();
            bad[victim] += Gf256::ONE;
            let pairs: Vec<_> = bad.iter().copied().enumerate().collect();
            assert!(!rs.is_consistent(&pairs).unwrap());
        }
    }

    #[test]
    fn minimum_distance_is_achieved() {
        // Two distinct codewords differ in at least n - k + 1 positions.
        let rs = code(7, 3);
        let c1 = rs.encode(&data(&[1, 2, 3])).unwrap();
        let c2 = rs.encode(&data(&[1, 2, 4])).unwrap();
        let diff = c1.iter().zip(&c2).filter(|(a, b)| a != b).count();
        assert!(diff >= rs.distance());
    }

    #[test]
    fn consistency_vacuous_below_k() {
        let rs = code(7, 3);
        assert!(rs.is_consistent(&[(0, Gf256::new(5)), (3, Gf256::new(9))]).unwrap());
        assert!(rs.is_consistent(&[]).unwrap());
    }

    #[test]
    fn consistency_with_exactly_k_symbols_is_always_true() {
        let rs = code(7, 3);
        // Any k points define some polynomial of degree < k.
        let picks = [(0, Gf256::new(1)), (1, Gf256::new(200)), (6, Gf256::new(77))];
        assert!(rs.is_consistent(&picks).unwrap());
    }

    #[test]
    fn inconsistent_symbols_detected_and_reported_by_decode() {
        let rs = code(7, 3);
        let cw = rs.encode(&data(&[8, 8, 8])).unwrap();
        let mut pairs: Vec<_> = cw.iter().copied().enumerate().collect();
        pairs[5].1 += Gf256::new(3);
        assert_eq!(rs.decode(&pairs), Err(CodeError::Inconsistent));
        assert!(!rs.is_consistent(&pairs).unwrap());
    }

    #[test]
    fn bad_positions_rejected() {
        let rs = code(7, 3);
        assert_eq!(
            rs.is_consistent(&[(7, Gf256::ZERO)]),
            Err(CodeError::BadPosition { position: 7 })
        );
        assert_eq!(
            rs.decode(&[(1, Gf256::ZERO), (1, Gf256::ONE), (2, Gf256::ZERO)]),
            Err(CodeError::BadPosition { position: 1 })
        );
    }

    #[test]
    fn not_enough_symbols_rejected() {
        let rs = code(7, 3);
        assert_eq!(
            rs.decode(&[(0, Gf256::ZERO)]),
            Err(CodeError::NotEnoughSymbols { needed: 3, got: 1 })
        );
    }

    #[test]
    fn extend_recovers_missing_symbols() {
        let rs = code(9, 4);
        let d = data(&[5, 6, 7, 8]);
        let cw = rs.encode(&d).unwrap();
        let partial: Vec<_> = cw.iter().copied().enumerate().take(4).collect();
        assert_eq!(rs.extend(&partial).unwrap(), cw);
    }

    #[test]
    fn zero_data_encodes_to_zero_codeword() {
        let rs = code(5, 2);
        let cw = rs.encode(&data(&[0, 0])).unwrap();
        assert!(cw.iter().all(|s| s.is_zero()));
    }

    #[test]
    fn decode_pads_short_polynomials() {
        // Data whose polynomial has low degree must still decode to k
        // symbols (trailing zeros preserved).
        let rs = code(6, 3);
        let d = data(&[9, 0, 0]);
        let cw = rs.encode(&d).unwrap();
        let picks: Vec<_> = cw.iter().copied().enumerate().take(3).collect();
        assert_eq!(rs.decode(&picks).unwrap(), d);
    }

    #[test]
    fn rate_one_code_is_identity_like() {
        let rs = code(4, 4);
        let d = data(&[1, 2, 3, 4]);
        let cw = rs.encode(&d).unwrap();
        let picks: Vec<_> = cw.iter().copied().enumerate().collect();
        assert_eq!(rs.decode(&picks).unwrap(), d);
        assert_eq!(rs.distance(), 1);
    }

    #[test]
    fn error_display_strings() {
        let e = CodeError::InvalidParameters { n: 3, k: 9, field_order: 256 };
        assert!(e.to_string().contains("invalid"));
        assert!(CodeError::Inconsistent.to_string().contains("codeword"));
        assert!(CodeError::NotEnoughSymbols { needed: 3, got: 1 }
            .to_string()
            .contains("at least 3"));
    }

    #[test]
    fn large_field_large_code() {
        let rs: ReedSolomon<Gf65536> = ReedSolomon::new(64, 22).unwrap();
        let d: Vec<Gf65536> = (0..22).map(|i| Gf65536::new(i * 997)).collect();
        let cw = rs.encode(&d).unwrap();
        let picks: Vec<_> = cw.iter().copied().enumerate().skip(42).collect();
        assert_eq!(picks.len(), 22);
        assert_eq!(rs.decode(&picks).unwrap(), d);
    }
}
