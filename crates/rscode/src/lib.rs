//! Reed-Solomon codes for the Liang-Vaidya error-free multi-valued
//! Byzantine consensus algorithm (PODC 2011).
//!
//! The paper uses an `(n, n-2t)` distance-`(2t+1)` Reed-Solomon code `C_2t`
//! over GF(2^c) in three ways:
//!
//! 1. **Encoding** (`C_2t(v)`): each processor encodes its `D`-bit
//!    generation value, represented as `k = n - 2t` data symbols, into `n`
//!    coded symbols and disperses symbol `i` from processor `P_i`
//!    (matching stage, line 1(a)).
//! 2. **Consistency detection** (`V/A ∈ C_2t`): a processor checks whether
//!    the symbols received from a set `A` of peers lie on one codeword
//!    (checking stage, line 2(a); diagnosis stage, line 3(f)).
//! 3. **Erasure decoding** (`C_2t^{-1}(V/A)` for `|A| >= n - 2t`):
//!    the decision value is recovered from any `n - 2t` consistent symbols
//!    (lines 2(c) and 3(i)).
//!
//! [`ReedSolomon`] implements these primitives over a single
//! [`Field`](mvbc_gf::Field); [`StripedCode`] lifts them to
//! arbitrary-length byte strings by running many interleaved codewords
//! ("stripes") in parallel, which is how a `D`-bit generation value maps
//! onto GF(2^16) symbols. The [`berlekamp_welch`] module additionally
//! provides error *correction* (used by the Fitzi-Hirt baseline and
//! available as an extension).
//!
//! # Examples
//!
//! ```
//! use mvbc_gf::Gf256;
//! use mvbc_rscode::ReedSolomon;
//!
//! // (n, k) = (7, 3): the paper's C_2t with n = 7, t = 2.
//! let rs: ReedSolomon<Gf256> = ReedSolomon::new(7, 3)?;
//! let data = [Gf256::new(1), Gf256::new(2), Gf256::new(3)];
//! let cw = rs.encode(&data)?;
//! // Any k symbols decode back to the data...
//! let picks = [(0usize, cw[0]), (4, cw[4]), (6, cw[6])];
//! assert_eq!(rs.decode(&picks)?, data.to_vec());
//! // ...and the full codeword is consistent.
//! let all: Vec<_> = cw.iter().copied().enumerate().collect();
//! assert!(rs.is_consistent(&all)?);
//! # Ok::<(), mvbc_rscode::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod berlekamp_welch;
mod code;
pub mod reference;
mod striped;
mod symbol;
mod threads;
mod weights;

pub use code::{CodeError, ReedSolomon};
pub use striped::{StripedCode, StripedLayout};
pub use symbol::Symbol;
pub use threads::{codec_threads, set_codec_threads};
