//! Scalar reference implementations of the codec — the executable
//! specification the batched kernels are measured and verified against.
//!
//! These are the pre-batch-kernel code paths, kept verbatim in spirit:
//! encoding evaluates a freshly-built [`Poly`] per stripe with Horner's
//! rule, and every consistency check or decode re-runs full Lagrange
//! [`interpolate`] from scratch. The equivalence suite
//! (`tests/codec_equivalence.rs`) asserts byte-identical results against
//! the production paths on random geometries, and `exp_codec` reports
//! the wall-clock ratio between the two.

use mvbc_gf::{interpolate, Field, Gf65536, Poly};

use crate::{CodeError, ReedSolomon, StripedCode, Symbol};

/// Scalar-reference encode: build the data polynomial, evaluate with
/// Horner at every point.
///
/// # Errors
///
/// As [`ReedSolomon::encode`].
pub fn rs_encode<F: Field>(rs: &ReedSolomon<F>, data: &[F]) -> Result<Vec<F>, CodeError> {
    if data.len() != rs.k() {
        return Err(CodeError::WrongDataLength {
            expected: rs.k(),
            got: data.len(),
        });
    }
    let p = Poly::from_coeffs(data.to_vec());
    Ok((0..rs.n()).map(|j| p.eval(rs.alpha(j))).collect())
}

fn validate_positions<F: Field>(rs: &ReedSolomon<F>, symbols: &[(usize, F)]) -> Result<(), CodeError> {
    let mut seen = vec![false; rs.n()];
    for &(pos, _) in symbols {
        if pos >= rs.n() || seen[pos] {
            return Err(CodeError::BadPosition { position: pos });
        }
        seen[pos] = true;
    }
    Ok(())
}

fn interpolate_checked<F: Field>(
    rs: &ReedSolomon<F>,
    symbols: &[(usize, F)],
) -> Result<Poly<F>, CodeError> {
    validate_positions(rs, symbols)?;
    if symbols.len() < rs.k() {
        return Err(CodeError::NotEnoughSymbols {
            needed: rs.k(),
            got: symbols.len(),
        });
    }
    let pts: Vec<(F, F)> = symbols[..rs.k()]
        .iter()
        .map(|&(pos, s)| (rs.alpha(pos), s))
        .collect();
    let p = interpolate(&pts).expect("alphas are pairwise distinct");
    for &(pos, s) in &symbols[rs.k()..] {
        if p.eval(rs.alpha(pos)) != s {
            return Err(CodeError::Inconsistent);
        }
    }
    Ok(p)
}

/// Scalar-reference consistency check: full Lagrange interpolation, then
/// point-wise verification.
///
/// # Errors
///
/// As [`ReedSolomon::is_consistent`].
pub fn rs_is_consistent<F: Field>(
    rs: &ReedSolomon<F>,
    symbols: &[(usize, F)],
) -> Result<bool, CodeError> {
    validate_positions(rs, symbols)?;
    if symbols.len() < rs.k() {
        return Ok(true);
    }
    match interpolate_checked(rs, symbols) {
        Ok(_) => Ok(true),
        Err(CodeError::Inconsistent) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Scalar-reference erasure decode via Lagrange interpolation.
///
/// # Errors
///
/// As [`ReedSolomon::decode`].
pub fn rs_decode<F: Field>(rs: &ReedSolomon<F>, symbols: &[(usize, F)]) -> Result<Vec<F>, CodeError> {
    let p = interpolate_checked(rs, symbols)?;
    let mut data = p.into_coeffs();
    data.resize(rs.k(), F::ZERO);
    Ok(data)
}

fn stripe_pairs(symbols: &[(usize, Symbol)], s: usize) -> Vec<(usize, Gf65536)> {
    symbols.iter().map(|(pos, sym)| (*pos, sym.elems()[s])).collect()
}

fn striped_chunks(code: &StripedCode, value: &[u8]) -> Vec<Vec<Gf65536>> {
    let l = code.layout();
    let mut padded = value.to_vec();
    padded.resize(l.chunk_bytes * l.k, 0);
    padded
        .chunks(l.chunk_bytes)
        .map(|chunk| {
            (0..l.stripes)
                .map(|s| {
                    let b0 = chunk.get(2 * s).copied().unwrap_or(0);
                    let b1 = chunk.get(2 * s + 1).copied().unwrap_or(0);
                    Gf65536::new(u16::from_be_bytes([b0, b1]))
                })
                .collect()
        })
        .collect()
}

/// Scalar-reference striped encode: one [`rs_encode`] per stripe.
///
/// # Errors
///
/// As [`StripedCode::encode_value`].
pub fn encode_value(code: &StripedCode, value: &[u8]) -> Result<Vec<Symbol>, CodeError> {
    let l = code.layout();
    if value.len() != l.value_bytes {
        return Err(CodeError::WrongDataLength {
            expected: l.value_bytes,
            got: value.len(),
        });
    }
    let chunks = striped_chunks(code, value);
    let mut out: Vec<Vec<Gf65536>> = vec![Vec::with_capacity(l.stripes); l.n];
    for s in 0..l.stripes {
        let data: Vec<Gf65536> = chunks.iter().map(|c| c[s]).collect();
        let cw = rs_encode(code.rs(), &data)?;
        for (pos, &sym) in cw.iter().enumerate() {
            out[pos].push(sym);
        }
    }
    Ok(out
        .into_iter()
        .map(|elems| Symbol::new(elems, code.symbol_bits()))
        .collect())
}

/// Scalar-reference striped consistency check: one full interpolation
/// per stripe.
///
/// # Errors
///
/// As [`StripedCode::is_consistent`].
pub fn is_consistent_value(
    code: &StripedCode,
    symbols: &[(usize, Symbol)],
) -> Result<bool, CodeError> {
    code.validate_shape(symbols)?;
    for s in 0..code.layout().stripes {
        if !rs_is_consistent(code.rs(), &stripe_pairs(symbols, s))? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Scalar-reference striped decode: one full interpolation per stripe.
///
/// # Errors
///
/// As [`StripedCode::decode_value`].
pub fn decode_value(code: &StripedCode, symbols: &[(usize, Symbol)]) -> Result<Vec<u8>, CodeError> {
    code.validate_shape(symbols)?;
    let l = code.layout();
    let mut chunks: Vec<Vec<u8>> = vec![Vec::with_capacity(l.chunk_bytes); l.k];
    for s in 0..l.stripes {
        let data = rs_decode(code.rs(), &stripe_pairs(symbols, s))?;
        for (ci, elem) in data.iter().enumerate() {
            let bytes = (elem.to_u64() as u16).to_be_bytes();
            chunks[ci].push(bytes[0]);
            chunks[ci].push(bytes[1]);
        }
    }
    let mut out = Vec::with_capacity(l.value_bytes);
    for chunk in chunks {
        out.extend_from_slice(&chunk[..l.chunk_bytes.min(chunk.len())]);
    }
    out.truncate(l.value_bytes);
    Ok(out)
}
