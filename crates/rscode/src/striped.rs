//! Striped Reed-Solomon coding of arbitrary-length byte values.
//!
//! The paper represents a `D`-bit generation value as `k = n - 2t` data
//! symbols of `D / (n - 2t)` bits each, encoded with `C_2t` over a field
//! large enough to hold one symbol. We instead fix the field at GF(2^16)
//! and run `s = ceil(chunk_bytes / 2)` *interleaved* codewords ("stripes"):
//! stripe `j` encodes the `j`-th 16-bit element of every data chunk. A
//! codeword position then carries one 16-bit element per stripe, which
//! together form one paper-symbol of `chunk_bytes * 8` logical bits.
//!
//! Equality of two symbols, consistency of a symbol set, and decoding all
//! behave exactly as in the paper because they hold iff they hold
//! stripe-wise.

use mvbc_gf::{kernels, Field, Gf65536};

use crate::{CodeError, ReedSolomon, Symbol};

/// Geometry of a striped code: how a byte value maps onto symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedLayout {
    /// Codeword length (number of processors `n`).
    pub n: usize,
    /// Code dimension (`n - 2t`).
    pub k: usize,
    /// Size of the encoded value in bytes.
    pub value_bytes: usize,
    /// Bytes of the value carried by each data symbol (`ceil(value/k)`).
    pub chunk_bytes: usize,
    /// Number of interleaved GF(2^16) codewords.
    pub stripes: usize,
}

/// A Reed-Solomon code over GF(2^16) striped across byte values.
///
/// # Examples
///
/// ```
/// use mvbc_rscode::StripedCode;
///
/// // n = 7 processors, t = 2 faults, 100-byte generation values.
/// let code = StripedCode::c2t(7, 2, 100)?;
/// let value = vec![0xabu8; 100];
/// let symbols = code.encode_value(&value)?;
/// assert_eq!(symbols.len(), 7);
/// // Decode from any k = 3 symbols.
/// let picks: Vec<_> = symbols.iter().cloned().enumerate().take(3).collect();
/// assert_eq!(code.decode_value(&picks)?, value);
/// # Ok::<(), mvbc_rscode::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StripedCode {
    layout: StripedLayout,
    rs: ReedSolomon<Gf65536>,
}

impl StripedCode {
    /// Creates a striped `(n, k)` code for values of `value_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] for an invalid `(n, k)` pair
    /// or a zero-length value.
    pub fn new(n: usize, k: usize, value_bytes: usize) -> Result<Self, CodeError> {
        if value_bytes == 0 {
            return Err(CodeError::InvalidParameters {
                n,
                k,
                field_order: Gf65536::ORDER,
            });
        }
        let rs = ReedSolomon::new(n, k)?;
        let chunk_bytes = value_bytes.div_ceil(k);
        let stripes = chunk_bytes.div_ceil(2);
        Ok(StripedCode {
            layout: StripedLayout {
                n,
                k,
                value_bytes,
                chunk_bytes,
                stripes,
            },
            rs,
        })
    }

    /// Creates the paper's `C_2t` striped code: `(n, n - 2t)`.
    ///
    /// # Errors
    ///
    /// Same as [`StripedCode::new`].
    pub fn c2t(n: usize, t: usize, value_bytes: usize) -> Result<Self, CodeError> {
        let k = n.saturating_sub(2 * t);
        Self::new(n, k, value_bytes)
    }

    /// The code geometry.
    pub fn layout(&self) -> StripedLayout {
        self.layout
    }

    /// Logical bits carried by one coded symbol (the paper's
    /// `D / (n - 2t)`).
    pub fn symbol_bits(&self) -> u64 {
        self.layout.chunk_bytes as u64 * 8
    }

    /// The underlying single-codeword Reed-Solomon code.
    pub(crate) fn rs(&self) -> &ReedSolomon<Gf65536> {
        &self.rs
    }

    /// Splits (and zero-pads) a value into `k` chunks of stripe elements,
    /// reading straight out of `value` (no padded intermediate copy).
    fn chunks(&self, value: &[u8]) -> Vec<Vec<Gf65536>> {
        let l = &self.layout;
        (0..l.k)
            .map(|ci| {
                let base = ci * l.chunk_bytes;
                (0..l.stripes)
                    .map(|s| {
                        // Stay within this chunk: an odd chunk's final
                        // stripe pads with a zero byte, not the first
                        // byte of the next chunk.
                        let b0 = value.get(base + 2 * s).copied().unwrap_or(0);
                        let b1 = if 2 * s + 1 < l.chunk_bytes {
                            value.get(base + 2 * s + 1).copied().unwrap_or(0)
                        } else {
                            0
                        };
                        Gf65536::new(u16::from_be_bytes([b0, b1]))
                    })
                    .collect()
            })
            .collect()
    }

    /// Encodes a value into `n` coded symbols (line 1(a) of Algorithm 1).
    ///
    /// Applies the precomputed generator matrix stripe-parallel: each
    /// matrix entry feeds one [`kernels::addmul_slice`] across all
    /// stripes at once, instead of running Horner evaluation per stripe.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongDataLength`] when
    /// `value.len() != value_bytes`.
    pub fn encode_value(&self, value: &[u8]) -> Result<Vec<Symbol>, CodeError> {
        let l = &self.layout;
        if value.len() != l.value_bytes {
            return Err(CodeError::WrongDataLength {
                expected: l.value_bytes,
                got: value.len(),
            });
        }
        let chunks = self.chunks(value);
        let mut out: Vec<Vec<Gf65536>> = vec![vec![Gf65536::ZERO; l.stripes]; l.n];
        for (i, chunk) in chunks.iter().enumerate() {
            for (pos, row) in out.iter_mut().enumerate() {
                kernels::addmul_slice(self.rs.gen_row(pos)[i], chunk, row);
            }
        }
        Ok(out
            .into_iter()
            .map(|elems| Symbol::new(elems, self.symbol_bits()))
            .collect())
    }

    /// Checks the supplied symbols have the expected stripe count and valid,
    /// non-duplicated positions.
    pub(crate) fn validate_shape(&self, symbols: &[(usize, Symbol)]) -> Result<(), CodeError> {
        let l = &self.layout;
        let mut seen = vec![false; l.n];
        for (pos, sym) in symbols {
            if *pos >= l.n || seen[*pos] {
                return Err(CodeError::BadPosition { position: *pos });
            }
            seen[*pos] = true;
            if sym.stripes() != l.stripes {
                return Err(CodeError::WrongDataLength {
                    expected: l.stripes,
                    got: sym.stripes(),
                });
            }
        }
        Ok(())
    }

    fn stripe_pairs(&self, symbols: &[(usize, Symbol)], s: usize) -> Vec<(usize, Gf65536)> {
        symbols.iter().map(|(pos, sym)| (*pos, sym.elems()[s])).collect()
    }

    /// The cached interpolation weights for the first `k` supplied
    /// symbols' positions, after basic shape validation.
    fn weights(
        &self,
        symbols: &[(usize, Symbol)],
    ) -> Result<std::sync::Arc<crate::weights::InterpWeights<Gf65536>>, CodeError> {
        let l = &self.layout;
        if symbols.len() < l.k {
            return Err(CodeError::NotEnoughSymbols {
                needed: l.k,
                got: symbols.len(),
            });
        }
        let positions: Vec<usize> = symbols[..l.k].iter().map(|&(pos, _)| pos).collect();
        Ok(self.rs.interp_weights(&positions))
    }

    /// Verifies every symbol beyond the first `k` against the cached
    /// polynomial of the first `k`, stripe-parallel: one extension-row
    /// application per extra symbol, reusing one scratch slice.
    fn verify_extras(
        &self,
        w: &crate::weights::InterpWeights<Gf65536>,
        symbols: &[(usize, Symbol)],
        scratch: &mut Vec<Gf65536>,
    ) -> Result<(), CodeError> {
        let l = &self.layout;
        for (pos, sym) in &symbols[l.k..] {
            scratch.clear();
            scratch.resize(l.stripes, Gf65536::ZERO);
            for (j, (_, base)) in symbols[..l.k].iter().enumerate() {
                kernels::addmul_slice(w.ext_row(*pos)[j], base.elems(), scratch);
            }
            if scratch.as_slice() != sym.elems() {
                return Err(CodeError::Inconsistent);
            }
        }
        Ok(())
    }

    /// The consistency predicate `V/A ∈ C_2t` lifted to striped symbols:
    /// true iff every stripe is consistent.
    ///
    /// Incremental: the polynomial determined by the first `k` symbols is
    /// never materialized — each extra symbol is checked against the
    /// memoized extension row for its position, across all stripes at
    /// once.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadPosition`] / [`CodeError::WrongDataLength`]
    /// for malformed input.
    pub fn is_consistent(&self, symbols: &[(usize, Symbol)]) -> Result<bool, CodeError> {
        self.validate_shape(symbols)?;
        if symbols.len() < self.layout.k {
            // Vacuously consistent: some codeword always extends them.
            return Ok(true);
        }
        let w = self.weights(symbols)?;
        let mut scratch = Vec::new();
        match self.verify_extras(&w, symbols, &mut scratch) {
            Ok(()) => Ok(true),
            Err(CodeError::Inconsistent) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Decodes the value from at least `k` symbols, verifying all supplied
    /// symbols lie on one codeword (`C_2t^{-1}`).
    ///
    /// # Errors
    ///
    /// - [`CodeError::NotEnoughSymbols`] with fewer than `k` symbols.
    /// - [`CodeError::Inconsistent`] when the symbols disagree.
    /// - [`CodeError::BadPosition`] / [`CodeError::WrongDataLength`] for
    ///   malformed input.
    pub fn decode_value(&self, symbols: &[(usize, Symbol)]) -> Result<Vec<u8>, CodeError> {
        self.validate_shape(symbols)?;
        let l = &self.layout;
        let w = self.weights(symbols)?;
        let mut scratch = Vec::new();
        self.verify_extras(&w, symbols, &mut scratch)?;
        let mut out = Vec::with_capacity(l.value_bytes);
        for ci in 0..l.k {
            // chunk_ci[s] = Σ_j coeff[j][ci] · y_j[s], stripe-parallel.
            scratch.clear();
            scratch.resize(l.stripes, Gf65536::ZERO);
            for (j, (_, sym)) in symbols[..l.k].iter().enumerate() {
                kernels::addmul_slice(w.coeff_row(j)[ci], sym.elems(), &mut scratch);
            }
            let take = l.chunk_bytes.min(l.value_bytes.saturating_sub(out.len()));
            for (bi, elem) in scratch.iter().enumerate() {
                if 2 * bi >= take {
                    break;
                }
                let bytes = (elem.to_u64() as u16).to_be_bytes();
                out.push(bytes[0]);
                if 2 * bi + 1 < take {
                    out.push(bytes[1]);
                }
            }
        }
        debug_assert_eq!(out.len(), l.value_bytes);
        Ok(out)
    }

    /// Recomputes the full `n`-symbol codeword from at least `k` consistent
    /// symbols, directly from the cached extension rows (no intermediate
    /// decode-then-re-encode pass).
    ///
    /// # Errors
    ///
    /// Same as [`StripedCode::decode_value`].
    pub fn extend_symbols(&self, symbols: &[(usize, Symbol)]) -> Result<Vec<Symbol>, CodeError> {
        self.validate_shape(symbols)?;
        let l = &self.layout;
        let w = self.weights(symbols)?;
        let mut scratch = Vec::new();
        self.verify_extras(&w, symbols, &mut scratch)?;
        let mut out = Vec::with_capacity(l.n);
        for pos in 0..l.n {
            let mut elems = vec![Gf65536::ZERO; l.stripes];
            for (j, (_, sym)) in symbols[..l.k].iter().enumerate() {
                kernels::addmul_slice(w.ext_row(pos)[j], sym.elems(), &mut elems);
            }
            out.push(Symbol::new(elems, self.symbol_bits()));
        }
        Ok(out)
    }

    /// Error-*correcting* decode via Berlekamp-Welch, tolerating up to
    /// `(symbols.len() - k) / 2` corrupted symbols (corruption may differ
    /// per stripe; a symbol counts as corrupted in exactly the stripes
    /// where it deviates).
    ///
    /// The Liang-Vaidya protocol itself never needs this (it detects and
    /// diagnoses instead of correcting); the Fitzi-Hirt baseline and
    /// extension experiments do.
    ///
    /// # Errors
    ///
    /// - [`CodeError::NotEnoughSymbols`] with fewer than `k` symbols.
    /// - [`CodeError::Inconsistent`] when some stripe has more errors than
    ///   the correction radius.
    /// - [`CodeError::BadPosition`] / [`CodeError::WrongDataLength`] for
    ///   malformed input.
    pub fn decode_value_correcting(
        &self,
        symbols: &[(usize, Symbol)],
    ) -> Result<Vec<u8>, CodeError> {
        self.validate_shape(symbols)?;
        let l = &self.layout;
        if symbols.len() < l.k {
            return Err(CodeError::NotEnoughSymbols {
                needed: l.k,
                got: symbols.len(),
            });
        }
        let mut chunks: Vec<Vec<u8>> = vec![Vec::with_capacity(l.chunk_bytes); l.k];
        for s in 0..l.stripes {
            let corrected =
                crate::berlekamp_welch::decode(&self.rs, &self.stripe_pairs(symbols, s))
                    .map_err(|_| CodeError::Inconsistent)?;
            for (ci, elem) in corrected.data.iter().enumerate() {
                let bytes = (elem.to_u64() as u16).to_be_bytes();
                chunks[ci].push(bytes[0]);
                chunks[ci].push(bytes[1]);
            }
        }
        let mut out = Vec::with_capacity(l.value_bytes);
        for chunk in chunks {
            out.extend_from_slice(&chunk[..l.chunk_bytes.min(chunk.len())]);
        }
        out.truncate(l.value_bytes);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 37 + 11) as u8).collect()
    }

    #[test]
    fn layout_geometry() {
        let c = StripedCode::c2t(7, 2, 100).unwrap();
        let l = c.layout();
        assert_eq!(l.k, 3);
        assert_eq!(l.chunk_bytes, 34); // ceil(100/3)
        assert_eq!(l.stripes, 17);
        assert_eq!(c.symbol_bits(), 34 * 8);
    }

    #[test]
    fn roundtrip_various_sizes() {
        for (n, t, len) in [(4, 1, 1), (4, 1, 2), (4, 1, 7), (7, 2, 100), (7, 2, 101), (10, 3, 64), (13, 4, 1000)] {
            let c = StripedCode::c2t(n, t, len).unwrap();
            let v = value(len);
            let syms = c.encode_value(&v).unwrap();
            assert_eq!(syms.len(), n);
            let k = n - 2 * t;
            // Decode from the last k symbols.
            let picks: Vec<_> = syms.iter().cloned().enumerate().skip(n - k).collect();
            assert_eq!(c.decode_value(&picks).unwrap(), v, "n={n} t={t} len={len}");
        }
    }

    #[test]
    fn identical_values_give_identical_symbols() {
        // Lemma 1's premise: processors with the same input compute the
        // same codeword.
        let c = StripedCode::c2t(7, 2, 50).unwrap();
        let v = value(50);
        assert_eq!(c.encode_value(&v).unwrap(), c.encode_value(&v).unwrap());
    }

    #[test]
    fn different_values_differ_in_many_positions() {
        // Distance 2t+1 = 5 of C_2t lifts to striped symbols.
        let c = StripedCode::c2t(7, 2, 30).unwrap();
        let mut v2 = value(30);
        v2[29] ^= 1;
        let s1 = c.encode_value(&value(30)).unwrap();
        let s2 = c.encode_value(&v2).unwrap();
        let diff = s1.iter().zip(&s2).filter(|(a, b)| a != b).count();
        assert!(diff >= 5, "only {diff} symbol positions differ");
    }

    #[test]
    fn corruption_detected() {
        let c = StripedCode::c2t(7, 2, 48).unwrap();
        let v = value(48);
        let syms = c.encode_value(&v).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().collect();
        // Corrupt one stripe element of position 2.
        let mut elems = pairs[2].1.elems().to_vec();
        elems[0] += Gf65536::ONE;
        pairs[2].1 = Symbol::new(elems, pairs[2].1.logical_bits());
        assert!(!c.is_consistent(&pairs).unwrap());
        assert_eq!(c.decode_value(&pairs), Err(CodeError::Inconsistent));
    }

    #[test]
    fn consistency_of_honest_subsets() {
        let c = StripedCode::c2t(10, 3, 64).unwrap();
        let syms = c.encode_value(&value(64)).unwrap();
        let subset: Vec<_> = syms.iter().cloned().enumerate().filter(|(i, _)| i % 2 == 0).collect();
        assert!(c.is_consistent(&subset).unwrap());
    }

    #[test]
    fn extend_symbols_matches_encode() {
        let c = StripedCode::c2t(7, 2, 20).unwrap();
        let v = value(20);
        let syms = c.encode_value(&v).unwrap();
        let picks: Vec<_> = syms.iter().cloned().enumerate().take(3).collect();
        assert_eq!(c.extend_symbols(&picks).unwrap(), syms);
    }

    #[test]
    fn malformed_symbol_rejected() {
        let c = StripedCode::c2t(7, 2, 20).unwrap();
        let syms = c.encode_value(&value(20)).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().take(3).collect();
        pairs[0].1 = Symbol::new(vec![Gf65536::ZERO], 16); // wrong stripes
        assert!(matches!(
            c.decode_value(&pairs),
            Err(CodeError::WrongDataLength { .. })
        ));
    }

    #[test]
    fn zero_length_value_rejected() {
        assert!(StripedCode::c2t(7, 2, 0).is_err());
    }

    #[test]
    fn t_zero_degenerates_to_rate_one() {
        let c = StripedCode::c2t(4, 0, 16).unwrap();
        let v = value(16);
        let syms = c.encode_value(&v).unwrap();
        let picks: Vec<_> = syms.into_iter().enumerate().collect();
        assert_eq!(c.decode_value(&picks).unwrap(), v);
    }

    #[test]
    fn correcting_decode_fixes_t_corruptions() {
        let c = StripedCode::new(7, 3, 60).unwrap(); // e_max = 2
        let v = value(60);
        let syms = c.encode_value(&v).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().collect();
        for victim in [1usize, 4] {
            let mut elems = pairs[victim].1.elems().to_vec();
            for e in &mut elems {
                *e += Gf65536::ONE;
            }
            pairs[victim].1 = Symbol::new(elems, pairs[victim].1.logical_bits());
        }
        assert_eq!(c.decode_value_correcting(&pairs).unwrap(), v);
        // Plain decode refuses.
        assert_eq!(c.decode_value(&pairs), Err(CodeError::Inconsistent));
    }

    #[test]
    fn correcting_decode_rejects_too_many_errors() {
        let c = StripedCode::new(5, 3, 20).unwrap(); // e_max = 1
        let v = value(20);
        let syms = c.encode_value(&v).unwrap();
        let mut pairs: Vec<_> = syms.iter().cloned().enumerate().collect();
        for (victim, pair) in pairs.iter_mut().enumerate().take(2) {
            let mut elems = pair.1.elems().to_vec();
            elems[0] += Gf65536::new(victim as u16 + 3);
            pair.1 = Symbol::new(elems, pair.1.logical_bits());
        }
        // Either fails or returns a *different* valid value; it must not
        // silently return the original.
        match c.decode_value_correcting(&pairs) {
            Err(CodeError::Inconsistent) => {}
            Ok(decoded) => assert_ne!(decoded, v),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn odd_chunk_sizes_pad_correctly() {
        // chunk_bytes odd => final stripe uses one padding byte.
        let c = StripedCode::c2t(4, 1, 3).unwrap(); // k=2, chunk=2 ... pick len 5
        let c2 = StripedCode::c2t(4, 1, 5).unwrap(); // k=2, chunk=3, stripes=2
        assert_eq!(c2.layout().chunk_bytes, 3);
        assert_eq!(c2.layout().stripes, 2);
        let v = value(5);
        let syms = c2.encode_value(&v).unwrap();
        let picks: Vec<_> = syms.into_iter().enumerate().take(2).collect();
        assert_eq!(c2.decode_value(&picks).unwrap(), v);
        let _ = c;
    }
}
